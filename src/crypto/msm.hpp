// Multi-scalar multiplication: sum_i  s_i * P_i.
//
// Two implementations:
//  - `msm_naive`: independent double-and-add per term. This mirrors the
//    paper's "rather straight-forward" Pedersen implementation (Section V).
//  - `msm_pippenger`: bucketed windowed method (the multi-exponentiation
//    optimization the paper cites as future work [27, 28]).
//
// Both scan the actual scalar bit lengths, so small scalars (fixed-point
// gradients) are automatically cheap and nothing is ever truncated.
#pragma once

#include <vector>

#include "crypto/curve.hpp"

namespace dfl::crypto {

/// Naive per-term scalar multiplication; cost scales with per-scalar bit
/// length, matching what a library exponentiation loop would do.
JacobianPoint msm_naive(const Curve& curve, const std::vector<AffinePoint>& points,
                        const std::vector<U256>& scalars);

/// Pippenger bucket method.
JacobianPoint msm_pippenger(const Curve& curve, const std::vector<AffinePoint>& points,
                            const std::vector<U256>& scalars);

/// Dispatches to Pippenger for large inputs, naive for tiny ones.
JacobianPoint msm(const Curve& curve, const std::vector<AffinePoint>& points,
                  const std::vector<U256>& scalars);

}  // namespace dfl::crypto
