// Multi-scalar multiplication: sum_i  s_i * P_i.
//
// Backends:
//  - `msm_naive`: independent double-and-add per term. This mirrors the
//    paper's "rather straight-forward" Pedersen implementation (Section V).
//  - `msm_pippenger`: bucketed windowed method (the multi-exponentiation
//    optimization the paper cites as future work [27, 28]).
//  - `msm_parallel`: Pippenger over thread-pool chunks; the group law is
//    associative, so the combined point is identical at any concurrency.
//  - `msm_fixed_base`: single bucket pass over per-generator precomputed
//    shifted multiples (`FixedBaseTables`) — no doublings at all. For keys
//    whose generators are fixed per task (Pedersen), this trades a one-time
//    table build for a cheaper per-commit cost.
//  - `msm_simd`: signed-digit windowing with batched-affine bucket
//    accumulation, dispatched through crypto/backend.hpp — the AVX2
//    batched-limb engine when compiled and supported, else a scalar twin
//    of the exact same algorithm.
//
// All backends scan the actual scalar bit lengths, so small scalars
// (fixed-point gradients) are automatically cheap and nothing is ever
// truncated; every backend computes the exact same group element.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/pool.hpp"
#include "crypto/curve.hpp"

namespace dfl::crypto {

namespace detail {
struct PreparedBasesImpl;
}  // namespace detail

/// Naive per-term scalar multiplication; cost scales with per-scalar bit
/// length, matching what a library exponentiation loop would do.
JacobianPoint msm_naive(const Curve& curve, const std::vector<AffinePoint>& points,
                        const std::vector<U256>& scalars);

/// Pippenger bucket method.
JacobianPoint msm_pippenger(const Curve& curve, const std::vector<AffinePoint>& points,
                            const std::vector<U256>& scalars);

/// Dispatches to Pippenger for large inputs, naive for tiny ones.
JacobianPoint msm(const Curve& curve, const std::vector<AffinePoint>& points,
                  const std::vector<U256>& scalars);

/// Pippenger over pool chunks, partial sums combined in chunk order.
/// Bit-identical to `msm` at any pool size (group-law associativity); falls
/// back to single-threaded `msm` for small inputs.
JacobianPoint msm_parallel(const Curve& curve, const std::vector<AffinePoint>& points,
                           const std::vector<U256>& scalars, ThreadPool& pool);

/// Per-generator fixed-base precomputation: entry(i, j) = 2^(w*j) * base_i
/// for j in [0, windows). A scalar is split into w-bit digits; each digit
/// indexes one bucket pass over the matching shifted base, so an MSM costs
/// `windows` mixed additions per nonzero digit and zero doublings. Scalar
/// bits beyond w*windows (rare for gradient magnitudes) are folded back
/// through a variable-base multiply of the top entry, so nothing is ever
/// truncated. Memory: windows points per generator.
class FixedBaseTables {
 public:
  FixedBaseTables() = default;

  /// Builds tables covering `covered_bits` scalar bits with `window_bits`-
  /// wide digits. window_bits in [2, 16]; covered_bits >= window_bits.
  /// The build (windows-1 doubling chains per base plus one batch
  /// inversion per chunk) is parallelized over `pool` when given.
  static FixedBaseTables build(const Curve& curve, const std::vector<AffinePoint>& bases,
                               int window_bits, int covered_bits, ThreadPool* pool = nullptr);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t bases() const { return windows_ == 0 ? 0 : entries_.size() / windows_; }
  [[nodiscard]] int window_bits() const { return window_bits_; }
  [[nodiscard]] int windows() const { return windows_; }
  [[nodiscard]] CurveId curve() const { return curve_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return entries_.size() * sizeof(AffinePoint);
  }
  [[nodiscard]] const AffinePoint& entry(std::size_t base, int window) const {
    return entries_[base * static_cast<std::size_t>(windows_) +
                    static_cast<std::size_t>(window)];
  }

 private:
  std::vector<AffinePoint> entries_;  // base-major: [i * windows + j]
  int window_bits_ = 0;
  int windows_ = 0;
  CurveId curve_ = CurveId::kSecp256k1;
};

/// MSM over precomputed tables; uses the first `scalars.size()` bases.
/// `negate`, when given (same length as scalars), subtracts that term
/// instead of adding it — the Pedersen signed-magnitude encoding without
/// materializing negated copies of the generators. Parallelized over base
/// chunks when `pool` is given; identical result at any concurrency.
JacobianPoint msm_fixed_base(const Curve& curve, const FixedBaseTables& tables,
                             const std::vector<U256>& scalars,
                             const std::vector<std::uint8_t>* negate = nullptr,
                             ThreadPool* pool = nullptr);

/// Cost-model window pick for a fixed-base MSM of `n` bases covering
/// `covered_bits` scalar bits: argmin over c of the point-addition count
/// n * ceil(covered_bits / c) + 2^(c+1)  (bucket inserts + bucket folding).
int pick_fixed_base_window(std::size_t n, int covered_bits);

/// Bases preprocessed for `msm_simd`: a canonical affine copy plus — when
/// the AVX2 backend is compiled in and usable on this CPU — the same
/// coordinates converted once into the vector backend's interleaved
/// radix-2^26 limb layout. Cheap shared handle; build once per generator
/// set (PedersenKey caches one) and reuse across commits.
class PreparedBases {
 public:
  PreparedBases() = default;

  static PreparedBases build(const Curve& curve, std::vector<AffinePoint> points);

  [[nodiscard]] bool empty() const { return impl_ == nullptr; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CurveId curve() const;
  /// True when the vector-domain mirror exists (AVX2 compiled + CPU ok).
  [[nodiscard]] bool has_simd_layout() const;

  /// Internal accessor for the MSM engines.
  [[nodiscard]] const detail::PreparedBasesImpl& impl() const { return *impl_; }

 private:
  std::shared_ptr<const detail::PreparedBasesImpl> impl_;
};

/// Signed-digit batched-affine bucket MSM, dispatched to the active
/// backend (crypto/backend.hpp). `negate`, when given (same length as
/// scalars), subtracts that term instead of adding it. Uses the first
/// scalars.size() bases. Bit-exact against every other msm_* backend.
JacobianPoint msm_simd(const Curve& curve, const PreparedBases& bases,
                       const std::vector<U256>& scalars,
                       const std::vector<std::uint8_t>* negate = nullptr);

/// One-shot variant preparing `points` on the fly; prefer the
/// PreparedBases overload when the bases are reused across calls.
JacobianPoint msm_simd(const Curve& curve, const std::vector<AffinePoint>& points,
                       const std::vector<U256>& scalars,
                       const std::vector<std::uint8_t>* negate = nullptr);

}  // namespace dfl::crypto
