// FIPS 180-4 SHA-256, implemented from scratch. Used for IPFS content
// addressing (CIDs), hash-to-curve generator derivation, and the Figure 3
// hashing baseline.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace dfl::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  void update(const void* data, std::size_t len);

  /// Finalizes and returns the digest; the context must not be reused after.
  Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as a Bytes buffer (for APIs that want vectors).
Bytes sha256(BytesView data);

}  // namespace dfl::crypto
