// Crypto engine: the verifiable-aggregation hot path behind one object.
//
// Wraps a PedersenKey with (1) a fixed-size thread pool shared by every
// commit/verify, (2) optional fixed-base window tables for the task's
// generators, (3) deterministic batched verification, and (4) a calibration
// probe that measures real commit throughput so the simulator's modeled
// compute delay (`commit_ns_per_element`) can be grounded in measured time.
//
// Determinism contract: commitments and verdicts are bit-identical at any
// `threads` setting. Parallel MSMs combine chunk partials in chunk order
// (group-law associativity), and batch-verification coefficients are derived
// by hashing the inputs (Fiat–Shamir style) rather than drawn from shared
// mutable RNG state, so concurrency never reorders randomness. Only wall
// clock — reported through stats and calibration — varies with threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/pool.hpp"
#include "crypto/backend.hpp"
#include "crypto/pedersen.hpp"

namespace dfl::crypto {

struct EngineConfig {
  /// Total concurrency (counting the calling thread); 0 = hardware.
  std::size_t threads = 0;
  /// Fixed-base precomputation: 0 disables, 1 auto-picks the window from
  /// the cost model, 2..16 forces that window width.
  int fixed_base_window = 0;
  /// Scalar bits the tables cover; larger scalars take the (exact, slower)
  /// overflow path. 0 defaults to 34 — fixed-point gradient magnitudes.
  int fixed_base_bits = 0;
};

/// Monotonic operation counters; wall times are real (not simulated) ns.
/// `backend`/`isa` report the dispatch the counters' work ran on, sampled
/// when stats() is called.
struct EngineStats {
  std::uint64_t commits = 0;
  std::uint64_t verifies = 0;
  std::uint64_t batch_verifies = 0;
  std::uint64_t committed_elements = 0;
  std::uint64_t commit_wall_ns = 0;
  std::uint64_t verify_wall_ns = 0;
  Backend backend = Backend::kScalar;
  const char* isa = "scalar";
};

/// Result of a calibration probe. `backend`/`isa` record the dispatch the
/// probe actually measured, so a later backend flip is detectable
/// (needs_recalibration) instead of silently mispricing commits.
struct Calibration {
  double ns_per_element = 0.0;   // measured commit cost at configured threads
  double parallel_speedup = 1.0; // single-thread time / configured-threads time
  std::size_t threads = 1;
  Backend backend = Backend::kScalar;
  const char* isa = "scalar";
};

class Engine {
 public:
  /// The key must outlive the engine. The engine attaches its pool to the
  /// key (and detaches it on destruction) and configures the fixed-base
  /// path per `cfg`; tables build lazily on the first commit.
  Engine(PedersenKey& key, EngineConfig cfg = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] PedersenKey& key() { return key_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t threads() const { return pool_->concurrency(); }

  [[nodiscard]] Commitment commit(const std::vector<std::int64_t>& values);
  [[nodiscard]] bool verify(const Commitment& c, const std::vector<std::int64_t>& values);

  /// Batched verification with deterministic (Fiat–Shamir) coefficients:
  /// the random linear combination is seeded from a hash of the
  /// commitments and claimed openings, so the verdict is reproducible
  /// across runs and thread counts yet unpredictable to a prover who must
  /// fix its commitments first. Accepts iff every c_i opens to values_i
  /// (soundness error ~2^-128 per forged opening).
  [[nodiscard]] bool verify_batch(const std::vector<Commitment>& cs,
                                  const std::vector<std::vector<std::int64_t>>& values);

  /// Measures real commit throughput on a synthetic `elements`-sized vector
  /// (averaged over `iters` runs) at the configured concurrency and at 1
  /// thread, returning ns/element and the realized parallel speedup. The
  /// result is meant to feed the simulator's commit_ns_per_element so the
  /// modeled delay tracks this machine. Wall-clock measurement — opt-in
  /// only, never on the default simulated path.
  [[nodiscard]] Calibration calibrate(std::size_t elements, int iters = 3);

  /// True when a calibration ran but dispatch has since moved to a
  /// different backend (test override flipped, DFL_NO_SIMD in a fork, …):
  /// the cached ns/element was measured by different code and would skew
  /// the simulator's modeled commit delay. Callers holding a Calibration
  /// should re-run calibrate(). False before the first calibration.
  [[nodiscard]] bool needs_recalibration() const;

  [[nodiscard]] EngineStats stats() const;

 private:
  PedersenKey& key_;
  EngineConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
  bool calibrated_ = false;
  Backend calibrated_backend_ = Backend::kScalar;

  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> verifies_{0};
  std::atomic<std::uint64_t> batch_verifies_{0};
  std::atomic<std::uint64_t> committed_elements_{0};
  std::atomic<std::uint64_t> commit_wall_ns_{0};
  std::atomic<std::uint64_t> verify_wall_ns_{0};
};

}  // namespace dfl::crypto
