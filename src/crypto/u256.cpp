#include "crypto/u256.hpp"

#include <bit>
#include <stdexcept>

namespace dfl::crypto {

using u128 = unsigned __int128;

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return i * 64 + (64 - std::countl_zero(limb[static_cast<std::size_t>(i)]));
    }
  }
  return 0;
}

std::uint64_t U256::bits(int pos, int width) const {
  if (pos >= 256) return 0;
  const int limb_idx = pos >> 6;
  const int offset = pos & 63;
  std::uint64_t value = limb[static_cast<std::size_t>(limb_idx)] >> offset;
  if (offset + width > 64 && limb_idx + 1 < 4) {
    value |= limb[static_cast<std::size_t>(limb_idx + 1)] << (64 - offset);
  }
  const std::uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  return value & mask;
}

int U256::cmp(const U256& other) const {
  for (int i = 3; i >= 0; --i) {
    const auto a = limb[static_cast<std::size_t>(i)];
    const auto b = other.limb[static_cast<std::size_t>(i)];
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

std::uint64_t U256::add_assign(const U256& other) {
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(limb[i]) + other.limb[i] + carry;
    limb[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t U256::sub_assign(const U256& other) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t d = limb[i] - other.limb[i];
    const std::uint64_t borrow2 = (limb[i] < other.limb[i]) ? 1 : 0;
    const std::uint64_t d2 = d - borrow;
    const std::uint64_t borrow3 = (d < borrow) ? 1 : 0;
    limb[i] = d2;
    borrow = borrow2 | borrow3;
  }
  return borrow;
}

std::uint64_t U256::shl1() {
  const std::uint64_t out = limb[3] >> 63;
  limb[3] = (limb[3] << 1) | (limb[2] >> 63);
  limb[2] = (limb[2] << 1) | (limb[1] >> 63);
  limb[1] = (limb[1] << 1) | (limb[0] >> 63);
  limb[0] <<= 1;
  return out;
}

void U256::shr1() {
  limb[0] = (limb[0] >> 1) | (limb[1] << 63);
  limb[1] = (limb[1] >> 1) | (limb[2] << 63);
  limb[2] = (limb[2] >> 1) | (limb[3] << 63);
  limb[3] >>= 1;
}

Bytes U256::to_be_bytes() const {
  Bytes out(32);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t l = limb[3 - i];
    for (std::size_t j = 0; j < 8; ++j) {
      out[i * 8 + j] = static_cast<std::uint8_t>(l >> (56 - 8 * j));
    }
  }
  return out;
}

U256 U256::from_be_bytes(BytesView bytes) {
  if (bytes.size() > 32) {
    throw std::invalid_argument("U256::from_be_bytes: more than 32 bytes");
  }
  U256 out;
  // Interpret as big-endian, right-aligned.
  std::size_t bit = 0;
  for (std::size_t i = bytes.size(); i > 0; --i, bit += 8) {
    out.limb[bit >> 6] |= static_cast<std::uint64_t>(bytes[i - 1]) << (bit & 63);
  }
  return out;
}

std::string U256::to_hex() const {
  return dfl::to_hex(to_be_bytes());
}

U256 U256::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() >= 2 && padded[0] == '0' && (padded[1] == 'x' || padded[1] == 'X')) {
    padded.erase(0, 2);
  }
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_be_bytes(dfl::from_hex(padded));
}

void mul_wide(const U256& a, const U256& b, std::uint64_t out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limb[i]) * b.limb[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    out[i + 4] = static_cast<std::uint64_t>(carry);
  }
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 r = a;
  const std::uint64_t carry = r.add_assign(b);
  if (carry != 0 || r >= m) r.sub_assign(m);
  return r;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 r = a;
  if (r.sub_assign(b) != 0) r.add_assign(m);
  return r;
}

namespace {

// x <- x/2 mod m for odd m. Even x just shifts; odd x adds m first (x + m
// is even), keeping the 257th bit from add_assign's carry-out.
void halve_mod(U256& x, const U256& m) {
  if (x.is_odd()) {
    const std::uint64_t carry = x.add_assign(m);
    x.shr1();
    x.limb[3] |= carry << 63;
  } else {
    x.shr1();
  }
}

}  // namespace

U256 mod_inverse(const U256& a, const U256& m) {
  if (!m.is_odd()) {
    throw std::invalid_argument("mod_inverse: modulus must be odd");
  }
  if (a.is_zero()) {
    throw std::domain_error("mod_inverse: zero has no inverse");
  }
  if (!(a < m)) {
    throw std::invalid_argument("mod_inverse: operand must be reduced mod m");
  }
  // Binary extended GCD. Invariants: x1 * a == u (mod m), x2 * a == v
  // (mod m); u and v stay positive and their sum strictly decreases, so the
  // loop terminates with gcd(a, m) in whichever of u/v reached it.
  U256 u = a;
  U256 v = m;
  U256 x1(1);
  U256 x2{};
  const U256 kOne(1);
  while (!(u == kOne) && !(v == kOne)) {
    if (u.is_zero() || v.is_zero()) {
      throw std::domain_error("mod_inverse: operand not invertible");
    }
    while (!u.is_odd()) {
      u.shr1();
      halve_mod(x1, m);
    }
    while (!v.is_odd()) {
      v.shr1();
      halve_mod(x2, m);
    }
    if (u >= v) {
      u.sub_assign(v);
      x1 = sub_mod(x1, x2, m);
    } else {
      v.sub_assign(u);
      x2 = sub_mod(x2, x1, m);
    }
  }
  return u == kOne ? x1 : x2;
}

}  // namespace dfl::crypto
