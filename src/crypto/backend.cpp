#include "crypto/backend.hpp"

#include <stdexcept>
#include <vector>

#include "common/cpu.hpp"

#if DFL_HAVE_AVX2
#include "crypto/simd_avx2.hpp"
#endif

namespace dfl::crypto {

namespace {

std::optional<Backend>& override_slot() {
  static std::optional<Backend> slot;
  return slot;
}

void scalar_add(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f.add(a[i], b[i]);
}

void scalar_sub(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f.sub(a[i], b[i]);
}

void scalar_mul(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f.mul(a[i], b[i]);
}

void scalar_sqr(const FieldCtx& f, const Fe* a, Fe* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = f.sqr(a[i]);
}

void scalar_inv(const FieldCtx& f, const Fe* a, Fe* out, std::size_t n) {
  if (n == 0) return;
  // Montgomery's trick: prefix[i] = a[0]*...*a[i-1], one real inversion of
  // the total product, then peel inverses off walking backwards.
  std::vector<Fe> prefix(n);
  Fe acc = f.one();
  for (std::size_t i = 0; i < n; ++i) {
    if (f.is_zero(a[i])) throw std::domain_error("batch inv: zero input");
    prefix[i] = acc;
    acc = f.mul(acc, a[i]);
  }
  Fe inv_acc = f.inv(acc);
  for (std::size_t i = n; i > 0; --i) {
    const Fe ai = a[i - 1];  // read before out[] may overwrite (aliasing)
    out[i - 1] = f.mul(inv_acc, prefix[i - 1]);
    inv_acc = f.mul(inv_acc, ai);
  }
}

constexpr FieldBatchOps kScalarOps{scalar_add, scalar_sub, scalar_mul, scalar_sqr, scalar_inv};

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool backend_compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if DFL_HAVE_AVX2
      return avx2::compiled();
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(Backend b) {
  if (b == Backend::kScalar) return true;
  if (!backend_compiled(b)) return false;
  const CpuFeatures& f = cpu_features();
  if (f.simd_disabled_by_env) return false;
  switch (b) {
    case Backend::kAvx2:
      return f.avx2;
    default:
      return false;
  }
}

Backend active_backend() {
  const std::optional<Backend>& forced = override_slot();
  if (forced.has_value()) return *forced;
  static const Backend best =
      backend_supported(Backend::kAvx2) ? Backend::kAvx2 : Backend::kScalar;
  return best;
}

const char* active_isa() {
#if DFL_HAVE_AVX2
  if (active_backend() == Backend::kAvx2) return avx2::isa();
#endif
  return "scalar";
}

void set_backend_override(std::optional<Backend> b) {
  if (b.has_value() && !backend_supported(*b)) {
    throw std::invalid_argument("set_backend_override: backend not supported on this host");
  }
  override_slot() = b;
}

const FieldBatchOps& field_batch_ops(Backend b) {
#if DFL_HAVE_AVX2
  if (b == Backend::kAvx2 && backend_supported(Backend::kAvx2)) {
    return avx2::field_ops();
  }
#else
  (void)b;
#endif
  return kScalarOps;
}

}  // namespace dfl::crypto
