// Internals shared by the SIMD MSM front-end (msm.cpp), the scalar
// batched-affine engine (msm_batched.cpp) and the AVX2 backend
// (fe_avx2.cpp). Not part of the public crypto surface.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/backend.hpp"
#include "crypto/curve.hpp"
#include "crypto/simd_avx2.hpp"

namespace dfl::crypto::detail {

/// Backing store of msm.hpp's PreparedBases handle.
struct PreparedBasesImpl {
  CurveId curve_id = CurveId::kSecp256k1;
  /// Canonical affine copy: the scalar engine's input and the spill/rare-
  /// case fallback for the vector engine.
  std::vector<AffinePoint> affine;
  /// Vector-domain mirror of `affine`; only populated when the AVX2
  /// backend is compiled in and usable on this CPU.
  avx2::NativeBases native;
  bool has_native = false;
};

}  // namespace dfl::crypto::detail

namespace dfl::crypto::msm_detail {

/// Number of c-bit signed windows covering `bits`-bit scalars: one extra
/// bit of headroom so the final carry of the signed recoding is always
/// absorbed by the top digit.
inline int signed_windows(int bits, int c) { return (bits + c) / c; }

/// Window width for the batched-affine bucket method: argmin of
/// inserts + fold work, with a per-backend fold/insert cost ratio.
int pick_simd_window(std::size_t n, int bits, Backend b);

/// Signed window recoding: digits[i*windows + w] in [-(2^(c-1)-1), 2^(c-1)]
/// with sum_w digit*2^(wc) == scalars[i]. Requires
/// windows >= signed_windows(max bit length, c).
void decompose_signed(const std::vector<U256>& scalars, int c, int windows,
                      std::vector<std::int16_t>& digits);

/// Scalar twin of the vectorized MSM: identical signed-digit windowing and
/// batched-affine bucket accumulation (batch inversion via Montgomery's
/// trick), so the AVX2 engine has a bit-exact reference and non-AVX2 hosts
/// a fast fallback. Uses the first digits.size()/windows points.
JacobianPoint msm_batched_scalar(const Curve& curve, const AffinePoint* points,
                                 const std::vector<std::int16_t>& digits, int c, int windows,
                                 const std::vector<std::uint8_t>* negate);

}  // namespace dfl::crypto::msm_detail
