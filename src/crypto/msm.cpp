#include "crypto/msm.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfl::crypto {

namespace {

void check_sizes(const std::vector<AffinePoint>& points, const std::vector<U256>& scalars) {
  if (points.size() != scalars.size()) {
    throw std::invalid_argument("msm: points/scalars size mismatch");
  }
}

int max_bit_length(const std::vector<U256>& scalars) {
  int bits = 0;
  for (const U256& s : scalars) bits = std::max(bits, s.bit_length());
  return bits;
}

// Window size heuristic: roughly log2(n) - 3, clamped to [2, 16].
int pick_window(std::size_t n) {
  int w = 2;
  std::size_t threshold = 32;
  while (n > threshold && w < 16) {
    ++w;
    threshold *= 2;
  }
  return w;
}

}  // namespace

JacobianPoint msm_naive(const Curve& curve, const std::vector<AffinePoint>& points,
                        const std::vector<U256>& scalars) {
  check_sizes(points, scalars);
  JacobianPoint acc = curve.infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    acc = curve.add(acc, curve.scalar_mul(points[i], scalars[i]));
  }
  return acc;
}

JacobianPoint msm_pippenger(const Curve& curve, const std::vector<AffinePoint>& points,
                            const std::vector<U256>& scalars) {
  check_sizes(points, scalars);
  if (points.empty()) return curve.infinity();

  const int total_bits = std::max(1, max_bit_length(scalars));
  const int c = pick_window(points.size());
  const std::size_t num_buckets = (std::size_t{1} << c) - 1;
  const int num_windows = (total_bits + c - 1) / c;

  JacobianPoint result = curve.infinity();
  std::vector<JacobianPoint> buckets(num_buckets);

  for (int w = num_windows - 1; w >= 0; --w) {
    // Shift the running result left by one window.
    if (!curve.is_infinity(result)) {
      for (int i = 0; i < c; ++i) result = curve.dbl(result);
    }

    std::fill(buckets.begin(), buckets.end(), curve.infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint64_t digit = scalars[i].bits(w * c, c);
      if (digit == 0 || points[i].infinity) continue;
      buckets[digit - 1] = curve.add_mixed(buckets[digit - 1], points[i]);
    }

    // Sum of (digit * bucket[digit]) via the running-sum trick:
    //   sum_{d=1}^{B} d * bucket_d = sum of suffix sums.
    JacobianPoint running = curve.infinity();
    JacobianPoint window_sum = curve.infinity();
    for (std::size_t d = num_buckets; d > 0; --d) {
      running = curve.add(running, buckets[d - 1]);
      window_sum = curve.add(window_sum, running);
    }
    result = curve.add(result, window_sum);
  }
  return result;
}

JacobianPoint msm(const Curve& curve, const std::vector<AffinePoint>& points,
                  const std::vector<U256>& scalars) {
  if (points.size() < 8) return msm_naive(curve, points, scalars);
  return msm_pippenger(curve, points, scalars);
}

}  // namespace dfl::crypto
