#include "crypto/msm.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/msm_internal.hpp"

namespace dfl::crypto {

namespace {

void check_sizes(const std::vector<AffinePoint>& points, const std::vector<U256>& scalars) {
  if (points.size() != scalars.size()) {
    throw std::invalid_argument("msm: points/scalars size mismatch");
  }
}

int max_bit_length(const std::vector<U256>& scalars) {
  int bits = 0;
  for (const U256& s : scalars) bits = std::max(bits, s.bit_length());
  return bits;
}

// Window size heuristic: roughly log2(n) - 3, clamped to [2, 16].
int pick_window(std::size_t n) {
  int w = 2;
  std::size_t threshold = 32;
  while (n > threshold && w < 16) {
    ++w;
    threshold *= 2;
  }
  return w;
}

/// v >> bits, bits in [0, 256).
U256 shift_right(const U256& v, int bits) {
  U256 out{};
  const int limb_shift = bits >> 6;
  const int bit_shift = bits & 63;
  for (int i = 0; i + limb_shift < 4; ++i) {
    const std::size_t src = static_cast<std::size_t>(i + limb_shift);
    std::uint64_t word = v.limb[src] >> bit_shift;
    if (bit_shift != 0 && src + 1 < 4) {
      word |= v.limb[src + 1] << (64 - bit_shift);
    }
    out.limb[static_cast<std::size_t>(i)] = word;
  }
  return out;
}

/// Sum of (digit * bucket[digit]) via the running-sum trick:
///   sum_{d=1}^{B} d * bucket_d = sum of suffix sums.
JacobianPoint fold_buckets(const Curve& curve, const std::vector<JacobianPoint>& buckets) {
  JacobianPoint running = curve.infinity();
  JacobianPoint sum = curve.infinity();
  for (std::size_t d = buckets.size(); d > 0; --d) {
    running = curve.add(running, buckets[d - 1]);
    sum = curve.add(sum, running);
  }
  return sum;
}

}  // namespace

JacobianPoint msm_naive(const Curve& curve, const std::vector<AffinePoint>& points,
                        const std::vector<U256>& scalars) {
  check_sizes(points, scalars);
  JacobianPoint acc = curve.infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    acc = curve.add(acc, curve.scalar_mul(points[i], scalars[i]));
  }
  return acc;
}

JacobianPoint msm_pippenger(const Curve& curve, const std::vector<AffinePoint>& points,
                            const std::vector<U256>& scalars) {
  check_sizes(points, scalars);
  if (points.empty()) return curve.infinity();

  const int total_bits = std::max(1, max_bit_length(scalars));
  const int c = pick_window(points.size());
  const std::size_t num_buckets = (std::size_t{1} << c) - 1;
  const int num_windows = (total_bits + c - 1) / c;

  JacobianPoint result = curve.infinity();
  std::vector<JacobianPoint> buckets(num_buckets);

  for (int w = num_windows - 1; w >= 0; --w) {
    // Shift the running result left by one window.
    if (!curve.is_infinity(result)) {
      for (int i = 0; i < c; ++i) result = curve.dbl(result);
    }

    std::fill(buckets.begin(), buckets.end(), curve.infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint64_t digit = scalars[i].bits(w * c, c);
      if (digit == 0 || points[i].infinity) continue;
      buckets[digit - 1] = curve.add_mixed(buckets[digit - 1], points[i]);
    }

    result = curve.add(result, fold_buckets(curve, buckets));
  }
  return result;
}

JacobianPoint msm(const Curve& curve, const std::vector<AffinePoint>& points,
                  const std::vector<U256>& scalars) {
  if (points.size() < 8) return msm_naive(curve, points, scalars);
#if DFL_HAVE_AVX2
  // Auto call sites (Pedersen kAuto, verify_batch, msm_parallel chunks)
  // get the batched-affine SIMD engine whenever the CPU can run it. The
  // on-the-fly vector-layout conversion is a fraction of one bucket
  // insert per element, and the result is bit-exact vs Pippenger.
  if (active_backend() == Backend::kAvx2 && points.size() >= 32) {
    return msm_simd(curve, points, scalars);
  }
#endif
  return msm_pippenger(curve, points, scalars);
}

JacobianPoint msm_parallel(const Curve& curve, const std::vector<AffinePoint>& points,
                           const std::vector<U256>& scalars, ThreadPool& pool) {
  check_sizes(points, scalars);
  const std::size_t n = points.size();
  const std::size_t threads = pool.concurrency();
  if (threads == 1 || n < 1024) return msm(curve, points, scalars);

  // One chunk per thread; each runs an independent Pippenger over its
  // slice. The partial sums are combined in chunk order, and the group law
  // is associative, so the folded point — and therefore its affine
  // serialization — is identical at any thread count.
  const std::size_t grain = (n + threads - 1) / threads;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<JacobianPoint> partial(chunks, curve.infinity());
  pool.parallel_for(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        const std::vector<AffinePoint> pts(points.begin() + static_cast<std::ptrdiff_t>(lo),
                                           points.begin() + static_cast<std::ptrdiff_t>(hi));
        const std::vector<U256> sc(scalars.begin() + static_cast<std::ptrdiff_t>(lo),
                                   scalars.begin() + static_cast<std::ptrdiff_t>(hi));
        partial[lo / grain] = msm(curve, pts, sc);
      },
      grain);
  JacobianPoint acc = curve.infinity();
  for (const JacobianPoint& p : partial) acc = curve.add(acc, p);
  return acc;
}

int pick_fixed_base_window(std::size_t n, int covered_bits) {
  int best = 2;
  double best_cost = 0;
  for (int c = 2; c <= 16; ++c) {
    const int windows = (covered_bits + c - 1) / c;
    const double cost =
        static_cast<double>(n) * windows + static_cast<double>(std::size_t{1} << (c + 1));
    if (c == 2 || cost < best_cost) {
      best = c;
      best_cost = cost;
    }
  }
  return best;
}

FixedBaseTables FixedBaseTables::build(const Curve& curve,
                                       const std::vector<AffinePoint>& bases, int window_bits,
                                       int covered_bits, ThreadPool* pool) {
  if (window_bits < 2 || window_bits > 16) {
    throw std::invalid_argument("FixedBaseTables: window_bits must be in [2, 16]");
  }
  if (covered_bits < window_bits) covered_bits = window_bits;

  FixedBaseTables t;
  t.window_bits_ = window_bits;
  t.windows_ = (covered_bits + window_bits - 1) / window_bits;
  t.curve_ = curve.id();
  const std::size_t windows = static_cast<std::size_t>(t.windows_);
  t.entries_.resize(bases.size() * windows);

  auto build_range = [&](std::size_t lo, std::size_t hi) {
    // One doubling chain per base, then a single batch inversion for the
    // whole chunk's Jacobian points.
    std::vector<JacobianPoint> chunk((hi - lo) * windows);
    for (std::size_t i = lo; i < hi; ++i) {
      JacobianPoint p = curve.to_jacobian(bases[i]);
      chunk[(i - lo) * windows] = p;
      for (std::size_t j = 1; j < windows; ++j) {
        for (int d = 0; d < window_bits; ++d) p = curve.dbl(p);
        chunk[(i - lo) * windows + j] = p;
      }
    }
    const std::vector<AffinePoint> affine = curve.batch_to_affine(chunk);
    std::copy(affine.begin(), affine.end(),
              t.entries_.begin() + static_cast<std::ptrdiff_t>(lo * windows));
  };

  if (pool != nullptr && pool->concurrency() > 1 && bases.size() >= 256) {
    pool->parallel_for(0, bases.size(), build_range);
  } else {
    build_range(0, bases.size());
  }
  return t;
}

JacobianPoint msm_fixed_base(const Curve& curve, const FixedBaseTables& tables,
                             const std::vector<U256>& scalars,
                             const std::vector<std::uint8_t>* negate, ThreadPool* pool) {
  if (tables.curve() != curve.id()) {
    throw std::invalid_argument("msm_fixed_base: tables built for a different curve");
  }
  if (scalars.size() > tables.bases()) {
    throw std::invalid_argument("msm_fixed_base: more scalars than precomputed bases");
  }
  if (negate != nullptr && negate->size() != scalars.size()) {
    throw std::invalid_argument("msm_fixed_base: negate mask size mismatch");
  }
  const std::size_t n = scalars.size();
  if (n == 0) return curve.infinity();

  const int c = tables.window_bits();
  const int windows = tables.windows();
  const int covered = c * windows;
  const std::size_t num_buckets = (std::size_t{1} << c) - 1;
  const FieldCtx& fp = curve.fp();

  // Single bucket pass over all (base, window) digit pairs: each digit
  // selects the precomputed 2^(c*j) * base_i entry, so there are no
  // doublings and the bucket aggregation runs exactly once.
  auto msm_range = [&](std::size_t lo, std::size_t hi) -> JacobianPoint {
    std::vector<JacobianPoint> buckets(num_buckets, curve.infinity());
    JacobianPoint overflow = curve.infinity();
    for (std::size_t i = lo; i < hi; ++i) {
      const U256& s = scalars[i];
      if (s.is_zero()) continue;
      const bool neg = negate != nullptr && (*negate)[i] != 0;
      for (int j = 0; j < windows; ++j) {
        const std::uint64_t digit = s.bits(j * c, c);
        if (digit == 0) continue;
        AffinePoint pt = tables.entry(i, j);
        if (pt.infinity) continue;
        if (neg) pt.y = fp.neg(pt.y);
        buckets[digit - 1] = curve.add_mixed(buckets[digit - 1], pt);
      }
      if (s.bit_length() > covered) {
        // Rare fallback for scalars beyond the covered range: the excess
        // (s >> covered) * 2^covered * base equals the top table entry
        // times the excess, shifted up by one window.
        const U256 high = shift_right(s, covered);
        JacobianPoint top = curve.scalar_mul_wnaf(tables.entry(i, windows - 1), high);
        for (int d = 0; d < c; ++d) top = curve.dbl(top);
        if (neg) top = curve.neg(top);
        overflow = curve.add(overflow, top);
      }
    }
    return curve.add(fold_buckets(curve, buckets), overflow);
  };

  if (pool == nullptr || pool->concurrency() == 1 || n < 1024) {
    return msm_range(0, n);
  }
  const std::size_t threads = pool->concurrency();
  const std::size_t grain = (n + threads - 1) / threads;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<JacobianPoint> partial(chunks, curve.infinity());
  pool->parallel_for(
      0, n, [&](std::size_t lo, std::size_t hi) { partial[lo / grain] = msm_range(lo, hi); },
      grain);
  JacobianPoint acc = curve.infinity();
  for (const JacobianPoint& p : partial) acc = curve.add(acc, p);
  return acc;
}

std::size_t PreparedBases::size() const { return impl_ == nullptr ? 0 : impl_->affine.size(); }

CurveId PreparedBases::curve() const {
  return impl_ == nullptr ? CurveId::kSecp256k1 : impl_->curve_id;
}

bool PreparedBases::has_simd_layout() const { return impl_ != nullptr && impl_->has_native; }

PreparedBases PreparedBases::build(const Curve& curve, std::vector<AffinePoint> points) {
  auto impl = std::make_shared<detail::PreparedBasesImpl>();
  impl->curve_id = curve.id();
  impl->affine = std::move(points);
#if DFL_HAVE_AVX2
  // The vector mirror is built whenever the CPU can run it (not gated on
  // the dispatch override), so tests can flip backends per call against
  // the same prepared set.
  if (backend_supported(Backend::kAvx2)) {
    impl->native = avx2::prepare_bases(curve, impl->affine);
    impl->has_native = true;
  }
#endif
  PreparedBases out;
  out.impl_ = std::move(impl);
  return out;
}

namespace {

JacobianPoint msm_simd_impl(const Curve& curve, const AffinePoint* points,
                            const detail::PreparedBasesImpl* prepared,
                            const std::vector<U256>& scalars,
                            const std::vector<std::uint8_t>* negate) {
  if (negate != nullptr && negate->size() != scalars.size()) {
    throw std::invalid_argument("msm_simd: negate mask size mismatch");
  }
  if (scalars.empty()) return curve.infinity();
  const int bits = max_bit_length(scalars);
  if (bits == 0) return curve.infinity();

  const Backend be = active_backend();
  const int c = msm_detail::pick_simd_window(scalars.size(), bits, be);
  const int windows = msm_detail::signed_windows(bits, c);
  std::vector<std::int16_t> digits;
  msm_detail::decompose_signed(scalars, c, windows, digits);
#if DFL_HAVE_AVX2
  if (be == Backend::kAvx2 && prepared != nullptr && prepared->has_native) {
    return avx2::msm_native(curve, prepared->native, points, digits, c, windows, negate);
  }
#endif
  (void)prepared;
  return msm_detail::msm_batched_scalar(curve, points, digits, c, windows, negate);
}

}  // namespace

JacobianPoint msm_simd(const Curve& curve, const PreparedBases& bases,
                       const std::vector<U256>& scalars,
                       const std::vector<std::uint8_t>* negate) {
  if (bases.empty()) {
    if (scalars.empty()) return curve.infinity();
    throw std::invalid_argument("msm_simd: empty prepared bases");
  }
  const detail::PreparedBasesImpl& impl = bases.impl();
  if (impl.curve_id != curve.id()) {
    throw std::invalid_argument("msm_simd: bases built for a different curve");
  }
  if (scalars.size() > impl.affine.size()) {
    throw std::invalid_argument("msm_simd: more scalars than prepared bases");
  }
  return msm_simd_impl(curve, impl.affine.data(), &impl, scalars, negate);
}

JacobianPoint msm_simd(const Curve& curve, const std::vector<AffinePoint>& points,
                       const std::vector<U256>& scalars,
                       const std::vector<std::uint8_t>* negate) {
  check_sizes(points, scalars);
#if DFL_HAVE_AVX2
  // Worth converting to the vector layout on the fly: the per-element
  // conversion is a fraction of one bucket insert and each element is
  // inserted once per window.
  if (active_backend() == Backend::kAvx2 && points.size() >= 32) {
    return msm_simd(curve, PreparedBases::build(curve, points), scalars, negate);
  }
#endif
  return msm_simd_impl(curve, points.data(), nullptr, scalars, negate);
}

}  // namespace dfl::crypto
