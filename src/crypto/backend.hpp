// Crypto backend abstraction: one compile-time-selected, runtime-verified
// dispatch point for every SIMD-accelerated primitive.
//
// Selection happens in three layers (see DESIGN.md "crypto backend
// abstraction"):
//   1. compile time — `-DDFL_CRYPTO_BACKEND=scalar|avx2` decides which
//      backend translation units exist in the binary at all;
//   2. process start — CPUID (`dfl::cpu_features()`) and the `DFL_NO_SIMD`
//      environment gate decide which compiled backends are usable here;
//   3. call time — `active_backend()` returns the fastest usable backend
//      (or a test override), and every dispatch site routes through it.
//
// Protocol code never names a backend: PedersenKey, the MSM entry points
// and crypto::Engine all ask `active_backend()` and fall back to scalar
// automatically, so a binary built with AVX2 still runs correctly on any
// x86-64 machine.
#pragma once

#include <cstddef>
#include <optional>

#include "crypto/mont.hpp"

namespace dfl::crypto {

/// Backend identifiers, ordered by preference (larger = faster).
enum class Backend { kScalar = 0, kAvx2 = 1 };

/// Stable lowercase name ("scalar", "avx2") used by EngineStats, bench rows
/// and the CI gate.
const char* backend_name(Backend b);

/// True when the backend's code was compiled into this binary.
bool backend_compiled(Backend b);

/// Compiled AND usable right now: the CPU reports the ISA and DFL_NO_SIMD
/// did not disable SIMD. kScalar is always supported.
bool backend_supported(Backend b);

/// What every dispatch site uses: the test override if set, else the
/// fastest supported backend.
Backend active_backend();

/// The instruction-set tier `active_backend()` actually executes:
/// "scalar", "avx2", or "avx512ifma" (the avx2 backend's wider tier,
/// taken automatically on CPUs with AVX-512 IFMA; DFL_FORCE_ISA=avx2
/// pins the narrower one). Reported in EngineStats and bench rows so a
/// recorded number is attributable to the code that produced it.
const char* active_isa();

/// Test/bench hook forcing dispatch to `b` (must satisfy
/// backend_supported; throws std::invalid_argument otherwise); nullopt
/// restores automatic selection. Not synchronized against concurrent
/// crypto calls — flip it from single-threaded test setup only.
void set_backend_override(std::optional<Backend> b);

/// Batched field primitives with a uniform signature across backends.
/// All arrays have length n; `out` may alias the inputs. `inv` uses
/// Montgomery's trick (one real inversion per call) and throws
/// std::domain_error if any input is zero.
struct FieldBatchOps {
  void (*add)(const FieldCtx&, const Fe* a, const Fe* b, Fe* out, std::size_t n);
  void (*sub)(const FieldCtx&, const Fe* a, const Fe* b, Fe* out, std::size_t n);
  void (*mul)(const FieldCtx&, const Fe* a, const Fe* b, Fe* out, std::size_t n);
  void (*sqr)(const FieldCtx&, const Fe* a, Fe* out, std::size_t n);
  void (*inv)(const FieldCtx&, const Fe* a, Fe* out, std::size_t n);
};

/// The op table for `b`; silently falls back to the scalar table when `b`
/// is not supported, so callers can dispatch unconditionally.
const FieldBatchOps& field_batch_ops(Backend b);

}  // namespace dfl::crypto
