// Fixed-width 256-bit unsigned integer used as the representation of field
// elements and scalars. Little-endian limb order (limb[0] is least
// significant). All arithmetic helpers expose carries/borrows explicitly so
// the Montgomery code in mont.cpp can build exact wide arithmetic on top.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace dfl::crypto {

struct U256 {
  // limb[0] = least-significant 64 bits.
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t low) : limb{low, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  [[nodiscard]] constexpr bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  [[nodiscard]] constexpr bool is_odd() const { return (limb[0] & 1) != 0; }

  /// Index of the highest set bit (0-based); -1 for zero.
  [[nodiscard]] int bit_length() const;

  /// Value of bit i (i in [0, 256)).
  [[nodiscard]] bool bit(int i) const {
    return ((limb[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1) != 0;
  }

  /// Extracts `width` bits starting at bit `pos` (width <= 63); bits beyond
  /// 256 read as zero. Used by windowed multi-scalar multiplication.
  [[nodiscard]] std::uint64_t bits(int pos, int width) const;

  friend constexpr bool operator==(const U256&, const U256&) = default;

  /// Three-way compare: -1, 0, +1.
  [[nodiscard]] int cmp(const U256& other) const;
  [[nodiscard]] bool operator<(const U256& o) const { return cmp(o) < 0; }
  [[nodiscard]] bool operator>=(const U256& o) const { return cmp(o) >= 0; }

  /// this += other; returns the carry out (0 or 1).
  std::uint64_t add_assign(const U256& other);
  /// this -= other; returns the borrow out (0 or 1).
  std::uint64_t sub_assign(const U256& other);

  /// Logical shift left/right by one bit. shl1 returns the bit shifted out.
  std::uint64_t shl1();
  void shr1();

  /// 32-byte big-endian encodings (the standard SEC1 integer encoding).
  [[nodiscard]] Bytes to_be_bytes() const;
  static U256 from_be_bytes(BytesView bytes);

  /// Hex helpers (big-endian, no 0x prefix in output).
  [[nodiscard]] std::string to_hex() const;
  static U256 from_hex(std::string_view hex);
};

/// Full 256x256 -> 512-bit product, out[0..7] little-endian limbs.
void mul_wide(const U256& a, const U256& b, std::uint64_t out[8]);

/// (a + b) mod m, assuming a, m < 2^256 and a, b < m.
U256 add_mod(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m, assuming a, b < m.
U256 sub_mod(const U256& a, const U256& b, const U256& m);

/// Multiplicative inverse of `a` modulo odd `m` via binary extended GCD:
/// ~6x faster than a Fermat ladder and needs no primality assumption.
/// Requires a < m. Throws std::domain_error when a is zero or shares a
/// factor with m (no inverse exists).
U256 mod_inverse(const U256& a, const U256& m);

}  // namespace dfl::crypto
