#include "crypto/pedersen.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/backend.hpp"
#include "crypto/encoding.hpp"
#include "crypto/hash_to_curve.hpp"

namespace dfl::crypto {

std::string Commitment::to_hex() const { return dfl::to_hex(point); }

std::vector<U256> fold_openings(const Curve& curve, const std::vector<U256>& r,
                                const std::vector<std::vector<std::int64_t>>& values,
                                std::size_t dim, bool vectorized) {
  const FieldCtx& fn = curve.fn();
  std::vector<Fe> folded(dim, fn.zero());
  if (vectorized) {
    const FieldBatchOps& ops = field_batch_ops(active_backend());
    std::vector<Fe> coeff(dim);
    std::vector<Fe> term(dim);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::size_t n = values[i].size();
      if (n == 0) continue;
      // r_i·R² times the *plain* scalar reduces to exactly
      // mul(to_mont(r_i), to_mont(v)) — one canonical Montgomery product —
      // so this batched route is bit-identical to the elementwise one.
      const Fe ri_rr = fn.to_mont(fn.to_mont(r[i]).raw);
      std::fill(coeff.begin(), coeff.begin() + static_cast<std::ptrdiff_t>(n), ri_rr);
      for (std::size_t j = 0; j < n; ++j) term[j] = Fe{to_scalar(values[i][j], curve)};
      ops.mul(fn, coeff.data(), term.data(), term.data(), n);
      ops.add(fn, folded.data(), term.data(), folded.data(), n);
    }
  } else {
    for (std::size_t i = 0; i < values.size(); ++i) {
      const Fe ri = fn.to_mont(r[i]);
      for (std::size_t j = 0; j < values[i].size(); ++j) {
        const Fe vj = fn.to_mont(to_scalar(values[i][j], curve));
        folded[j] = fn.add(folded[j], fn.mul(ri, vj));
      }
    }
  }
  std::vector<U256> out;
  out.reserve(dim);
  for (const Fe& f : folded) out.push_back(fn.from_mont(f));
  return out;
}

PedersenKey::PedersenKey(const Curve& curve, std::string domain, std::size_t dim, MsmMode mode)
    : curve_(&curve),
      domain_(std::move(domain)),
      generators_(derive_generators(curve, domain_, dim)),
      blinding_(hash_to_curve(curve, domain_ + "/blinding", 0)),
      mode_(mode) {}

void PedersenKey::configure_fixed_base(int window_bits, int covered_bits) {
  if (covered_bits <= 0) covered_bits = 34;  // fixed-point gradient magnitudes
  if (window_bits <= 0) window_bits = pick_fixed_base_window(generators_.size(), covered_bits);
  const std::lock_guard<std::mutex> lock(fb_mu_);
  fb_window_bits_ = window_bits;
  fb_covered_bits_ = covered_bits;
  fb_tables_.reset();  // reconfigure invalidates any previously built tables
}

const FixedBaseTables* PedersenKey::fixed_base_tables() const {
  const std::lock_guard<std::mutex> lock(fb_mu_);
  return fb_tables_.get();
}

const FixedBaseTables& PedersenKey::ensure_fixed_base() const {
  const std::lock_guard<std::mutex> lock(fb_mu_);
  if (!fb_tables_) {
    fb_tables_ = std::make_unique<FixedBaseTables>(
        FixedBaseTables::build(*curve_, generators_, fb_window_bits_, fb_covered_bits_, pool_));
  }
  return *fb_tables_;
}

const PreparedBases& PedersenKey::ensure_simd_bases() const {
  const std::lock_guard<std::mutex> lock(fb_mu_);
  if (simd_bases_.empty()) {
    simd_bases_ = PreparedBases::build(*curve_, generators_);
  }
  return simd_bases_;
}

JacobianPoint PedersenKey::commit_point(const std::vector<std::int64_t>& values) const {
  if (values.size() > generators_.size()) {
    throw std::invalid_argument("PedersenKey::commit: vector longer than key dimension");
  }
  // Single-threaded kAuto commits on an AVX2-capable host go straight to
  // the batched-affine SIMD engine against a cached vector-layout copy of
  // the generators (index-aligned scalars, sign as a negate mask — no
  // generator copies, no per-commit layout conversion). It preempts even
  // configured fixed-base tables: one bucket pass over the same digits
  // with much cheaper adds measures ~3-4x faster than the tables on
  // AVX2/IFMA hosts. Pooled commits fall through, where the fixed-base
  // and msm_parallel paths parallelize (msm_parallel's per-chunk `msm`
  // calls pick up the SIMD engine themselves).
  if (mode_ == MsmMode::kAuto && pool_ == nullptr &&
      active_backend() == Backend::kAvx2 && values.size() >= 32) {
    std::vector<U256> scalars(values.size());
    std::vector<std::uint8_t> negate(values.size(), 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::int64_t v = values[i];
      if (v < 0) {
        negate[i] = 1;
        scalars[i] = U256(static_cast<std::uint64_t>(-(v + 1)) + 1);
      } else {
        scalars[i] = U256(static_cast<std::uint64_t>(v));
      }
    }
    return msm_simd(*curve_, ensure_simd_bases(), scalars, &negate);
  }
  // The fixed-base path only serves kAuto: the forced kNaive/kPippenger
  // modes stay exact baselines for tests and benchmarks.
  if (mode_ == MsmMode::kAuto && fixed_base_enabled()) {
    // Index-aligned scalars (zeros are skipped inside the MSM) with the
    // sign carried as a negate mask, so no generator copies are made.
    const FixedBaseTables& tables = ensure_fixed_base();
    std::vector<U256> scalars(values.size());
    std::vector<std::uint8_t> negate(values.size(), 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::int64_t v = values[i];
      if (v < 0) {
        negate[i] = 1;
        scalars[i] = U256(static_cast<std::uint64_t>(-(v + 1)) + 1);
      } else {
        scalars[i] = U256(static_cast<std::uint64_t>(v));
      }
    }
    return msm_fixed_base(*curve_, tables, scalars, &negate, pool_);
  }
  // Use |v| as the scalar and fold the sign into the generator, keeping
  // scalars short (gradient-sized) for both MSM backends.
  std::vector<AffinePoint> points;
  std::vector<U256> scalars;
  points.reserve(values.size());
  scalars.reserve(values.size());
  const FieldCtx& fp = curve_->fp();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::int64_t v = values[i];
    if (v == 0) continue;
    AffinePoint base = generators_[i];
    std::uint64_t mag;
    if (v < 0) {
      base.y = fp.neg(base.y);
      mag = static_cast<std::uint64_t>(-(v + 1)) + 1;  // |v| without UB at INT64_MIN
    } else {
      mag = static_cast<std::uint64_t>(v);
    }
    points.push_back(base);
    scalars.push_back(U256(mag));
  }
  switch (mode_) {
    case MsmMode::kNaive:
      return msm_naive(*curve_, points, scalars);
    case MsmMode::kPippenger:
      return msm_pippenger(*curve_, points, scalars);
    case MsmMode::kAuto:
      if (pool_ != nullptr) return msm_parallel(*curve_, points, scalars, *pool_);
      return msm(*curve_, points, scalars);
  }
  return curve_->infinity();
}

Commitment PedersenKey::commit(const std::vector<std::int64_t>& values) const {
  const AffinePoint p = curve_->to_affine(commit_point(values));
  return Commitment{curve_->id(), curve_->serialize(p)};
}

Commitment PedersenKey::identity() const {
  return Commitment{curve_->id(), Bytes{0x00}};
}

Commitment PedersenKey::add(const Commitment& a, const Commitment& b) const {
  if (a.curve != curve_->id() || b.curve != curve_->id()) {
    throw std::invalid_argument("PedersenKey::add: commitment from a different curve");
  }
  const AffinePoint pa = curve_->deserialize(a.point);
  const AffinePoint pb = curve_->deserialize(b.point);
  const JacobianPoint sum = curve_->add_mixed(curve_->to_jacobian(pa), pb);
  return Commitment{curve_->id(), curve_->serialize(curve_->to_affine(sum))};
}

Commitment PedersenKey::add_all(const std::vector<Commitment>& cs) const {
  JacobianPoint acc = curve_->infinity();
  for (const Commitment& c : cs) {
    if (c.curve != curve_->id()) {
      throw std::invalid_argument("PedersenKey::add_all: commitment from a different curve");
    }
    acc = curve_->add_mixed(acc, curve_->deserialize(c.point));
  }
  return Commitment{curve_->id(), curve_->serialize(curve_->to_affine(acc))};
}

Commitment PedersenKey::commit_blinded(const std::vector<std::int64_t>& values,
                                       const U256& blind) const {
  const JacobianPoint v = commit_point(values);
  const JacobianPoint b = curve_->scalar_mul_wnaf(blinding_, blind);
  return Commitment{curve_->id(), curve_->serialize(curve_->to_affine(curve_->add(v, b)))};
}

bool PedersenKey::verify_blinded(const Commitment& c, const std::vector<std::int64_t>& values,
                                 const U256& blind) const {
  return c == commit_blinded(values, blind);
}

bool PedersenKey::verify_batch(const std::vector<Commitment>& cs,
                               const std::vector<std::vector<std::int64_t>>& values,
                               Rng& rng) const {
  if (cs.size() != values.size()) return false;
  if (cs.empty()) return true;

  // Random 128-bit coefficients r_i. A single forged opening passes with
  // probability ~2^-128.
  std::vector<U256> r;
  r.reserve(cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i) {
    r.push_back(U256{rng.next(), rng.next(), 0, 0});
  }

  // LHS: sum_i r_i * C_i.
  std::vector<AffinePoint> c_points;
  c_points.reserve(cs.size());
  for (const Commitment& c : cs) {
    if (c.curve != curve_->id()) return false;
    try {
      c_points.push_back(curve_->deserialize(c.point));
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  const JacobianPoint lhs =
      pool_ != nullptr ? msm_parallel(*curve_, c_points, r, *pool_) : msm(*curve_, c_points, r);

  // RHS: commit(sum_i r_i * v_i) with coefficients folded in the scalar
  // field, evaluated as one MSM over the generators.
  std::size_t dim = 0;
  for (const auto& v : values) dim = std::max(dim, v.size());
  if (dim > generators_.size()) return false;
  // Row-by-row fold through the active backend's batched field tables
  // (scalar table on non-SIMD builds — same values either way).
  std::vector<U256> scalars = fold_openings(*curve_, r, values, dim, /*vectorized=*/true);
  std::vector<AffinePoint> gens(generators_.begin(),
                                generators_.begin() + static_cast<std::ptrdiff_t>(dim));
  // The folded coefficients are full-width scalars, so the fixed-base
  // tables (sized for gradient magnitudes) would mostly hit the overflow
  // path here — the variable-base backends are the right tool.
  const JacobianPoint rhs =
      pool_ != nullptr ? msm_parallel(*curve_, gens, scalars, *pool_) : msm(*curve_, gens, scalars);

  return curve_->eq(lhs, rhs);
}

bool PedersenKey::verify(const Commitment& c, const std::vector<std::int64_t>& values) const {
  if (c.curve != curve_->id()) return false;
  AffinePoint claimed;
  try {
    claimed = curve_->deserialize(c.point);
  } catch (const std::invalid_argument&) {
    return false;
  }
  const JacobianPoint expected = commit_point(values);
  return curve_->eq(curve_->to_jacobian(claimed), expected);
}

}  // namespace dfl::crypto
