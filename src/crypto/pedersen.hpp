// Pedersen vector commitments with homomorphic addition (Section IV of the
// paper):
//
//     C(v) = prod_i  h_i ^ v_i,     C(v1) * C(v2) = C(v1 + v2)
//
// Generators h_i are derived by hash-to-curve under a task-specific domain,
// so no party knows discrete-log relations between them (binding under DL).
//
// Values are signed fixed-point integers; a negative value v_i contributes
// (-h_i)^|v_i|, which equals h_i^{n - |v_i|} but keeps scalars small so both
// MSM backends stay fast on gradient-sized magnitudes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "crypto/curve.hpp"
#include "crypto/msm.hpp"

namespace dfl::crypto {

/// Which multi-exponentiation backend a key uses for commit/verify.
enum class MsmMode { kNaive, kPippenger, kAuto };

/// The scalar-field random-linear-combination fold behind verify_batch:
/// out[j] = Σ_i r_i · to_scalar(values[i][j]) over the curve's scalar
/// field (plain, non-Montgomery scalars; rows shorter than `dim`
/// contribute zero past their length). `vectorized` routes each row's
/// inner products through the active backend's FieldBatchOps tables; both
/// routes are bit-identical (the batched route multiplies r_i·R² by the
/// plain scalar, one Montgomery reduction from the canonical product) —
/// exposed so the differential test can pin that.
[[nodiscard]] std::vector<U256> fold_openings(const Curve& curve, const std::vector<U256>& r,
                                              const std::vector<std::vector<std::int64_t>>& values,
                                              std::size_t dim, bool vectorized);

/// A commitment: one compressed group element plus the curve it lives on.
struct Commitment {
  CurveId curve = CurveId::kSecp256k1;
  Bytes point;  // SEC1-compressed encoding (0x00 for the identity)

  friend bool operator==(const Commitment&, const Commitment&) = default;

  [[nodiscard]] std::string to_hex() const;
};

/// Commitment key: an ordered vector of generators for a fixed max dimension.
class PedersenKey {
 public:
  /// Derives `dim` generators under `domain` on `curve`. Deriving is
  /// deterministic, so every participant builds an identical key locally.
  PedersenKey(const Curve& curve, std::string domain, std::size_t dim,
              MsmMode mode = MsmMode::kAuto);

  [[nodiscard]] std::size_t dim() const { return generators_.size(); }
  [[nodiscard]] const Curve& curve() const { return *curve_; }
  [[nodiscard]] const std::string& domain() const { return domain_; }
  [[nodiscard]] MsmMode mode() const { return mode_; }
  void set_mode(MsmMode mode) { mode_ = mode; }

  /// Attaches a thread pool used to parallelize large commits/verifies (and
  /// the lazy fixed-base table build). Null detaches. Results are identical
  /// at any concurrency; only wall-clock changes. The pool must outlive the
  /// key (or be detached first).
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

  /// Enables the fixed-base commit path (kAuto mode only — the forced
  /// kNaive/kPippenger modes stay exact baselines): per-generator window
  /// tables are built lazily (once, thread-safe) on first use, then commits
  /// become digit-indexed table lookups with zero doublings. `window_bits` 0 picks
  /// the cost-model argmin for this key's dimension; `covered_bits` 0
  /// defaults to 34 bits, enough for fixed-point gradient magnitudes
  /// (larger scalars still work through the overflow fallback).
  void configure_fixed_base(int window_bits = 0, int covered_bits = 0);
  [[nodiscard]] bool fixed_base_enabled() const { return fb_window_bits_ != 0; }

  /// The tables, or nullptr before the first fixed-base commit forces the
  /// build. Exposed for benchmarks reporting table memory.
  [[nodiscard]] const FixedBaseTables* fixed_base_tables() const;

  /// Commits to a signed-integer vector (len <= dim; shorter vectors use a
  /// prefix of the generators). Throws std::invalid_argument if too long.
  [[nodiscard]] Commitment commit(const std::vector<std::int64_t>& values) const;

  /// The identity commitment (commitment to the all-zero vector).
  [[nodiscard]] Commitment identity() const;

  /// Homomorphic combination: C(a) * C(b) = C(a + b).
  [[nodiscard]] Commitment add(const Commitment& a, const Commitment& b) const;

  /// Folds many commitments into one.
  [[nodiscard]] Commitment add_all(const std::vector<Commitment>& cs) const;

  /// Checks that `c` opens to `values` (i.e. c == commit(values)).
  [[nodiscard]] bool verify(const Commitment& c, const std::vector<std::int64_t>& values) const;

  /// Hiding variant: commit(values) + blind * H, where H is an extra
  /// generator with unknown discrete log to every h_i. Classic Pedersen
  /// hiding; the protocol itself uses the deterministic form (integrity,
  /// not privacy), this supports privacy-augmented extensions.
  [[nodiscard]] Commitment commit_blinded(const std::vector<std::int64_t>& values,
                                          const U256& blind) const;
  [[nodiscard]] bool verify_blinded(const Commitment& c,
                                    const std::vector<std::int64_t>& values,
                                    const U256& blind) const;

  /// Probabilistic batch verification via a random linear combination:
  /// accepts iff (whp over `rng`) every c_i opens to values_i. One large
  /// MSM instead of k separate ones — the directory's per-round cost when
  /// checking many partial updates (Section IV-B).
  [[nodiscard]] bool verify_batch(const std::vector<Commitment>& cs,
                                  const std::vector<std::vector<std::int64_t>>& values,
                                  Rng& rng) const;

  /// The blinding generator H.
  [[nodiscard]] const AffinePoint& blinding_generator() const { return blinding_; }

 private:
  [[nodiscard]] JacobianPoint commit_point(const std::vector<std::int64_t>& values) const;
  [[nodiscard]] const FixedBaseTables& ensure_fixed_base() const;
  [[nodiscard]] const PreparedBases& ensure_simd_bases() const;

  const Curve* curve_;
  std::string domain_;
  std::vector<AffinePoint> generators_;
  AffinePoint blinding_;
  MsmMode mode_;
  ThreadPool* pool_ = nullptr;
  int fb_window_bits_ = 0;  // 0 = fixed-base path disabled
  int fb_covered_bits_ = 0;
  // Lazy table build guarded by a mutex (which also makes the key
  // non-copyable — keys are shared by reference everywhere).
  mutable std::mutex fb_mu_;
  mutable std::unique_ptr<FixedBaseTables> fb_tables_;
  // Generators mirrored into the SIMD engine's vector limb layout, built
  // lazily on the first single-threaded kAuto commit and reused across
  // commits (the build cost is one layout conversion per generator).
  mutable PreparedBases simd_bases_;
};

}  // namespace dfl::crypto
