#include "crypto/curve.hpp"

#include <array>
#include <stdexcept>

namespace dfl::crypto {

Curve::Curve(CurveId id, std::string name, const U256& p, const U256& a, const U256& b,
             const U256& n, const U256& gx, const U256& gy)
    : id_(id),
      name_(std::move(name)),
      fp_(p),
      fn_(n),
      a_(fp_.to_mont(a)),
      b_(fp_.to_mont(b)),
      n_(n),
      a_is_zero_(a.is_zero()) {
  g_ = AffinePoint{fp_.to_mont(gx), fp_.to_mont(gy), false};
  if (!is_on_curve(g_)) {
    throw std::logic_error("Curve: generator not on curve (bad parameters)");
  }
}

const Curve& Curve::secp256k1() {
  static const Curve curve(
      CurveId::kSecp256k1, "secp256k1",
      U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"),
      U256::from_hex("0000000000000000000000000000000000000000000000000000000000000000"),
      U256::from_hex("0000000000000000000000000000000000000000000000000000000000000007"),
      U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"),
      U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
      U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
  return curve;
}

const Curve& Curve::secp256r1() {
  static const Curve curve(
      CurveId::kSecp256r1, "secp256r1",
      U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"),
      U256::from_hex("ffffffff00000001000000000000000000000000fffffffffffffffffffffffc"),
      U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
      U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"),
      U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
      U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"));
  return curve;
}

const Curve& Curve::get(CurveId id) {
  return id == CurveId::kSecp256k1 ? secp256k1() : secp256r1();
}

JacobianPoint Curve::infinity() const {
  return JacobianPoint{fp_.one(), fp_.one(), fp_.zero()};
}

Fe Curve::curve_rhs(const Fe& x) const {
  // x^3 + a x + b
  Fe rhs = fp_.mul(fp_.sqr(x), x);
  if (!a_is_zero_) rhs = fp_.add(rhs, fp_.mul(a_, x));
  return fp_.add(rhs, b_);
}

bool Curve::is_on_curve(const AffinePoint& p) const {
  if (p.infinity) return true;
  return fp_.sqr(p.y) == curve_rhs(p.x);
}

JacobianPoint Curve::to_jacobian(const AffinePoint& p) const {
  if (p.infinity) return infinity();
  return JacobianPoint{p.x, p.y, fp_.one()};
}

AffinePoint Curve::to_affine(const JacobianPoint& p) const {
  if (is_infinity(p)) return AffinePoint{};
  const Fe zinv = fp_.inv(p.z);
  const Fe zinv2 = fp_.sqr(zinv);
  return AffinePoint{fp_.mul(p.x, zinv2), fp_.mul(p.y, fp_.mul(zinv2, zinv)), false};
}

std::vector<AffinePoint> Curve::batch_to_affine(const std::vector<JacobianPoint>& pts) const {
  std::vector<AffinePoint> out(pts.size());
  if (pts.empty()) return out;

  // Montgomery batch inversion of all non-zero Z coordinates.
  std::vector<Fe> prefix(pts.size());
  Fe acc = fp_.one();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    prefix[i] = acc;
    if (!is_infinity(pts[i])) acc = fp_.mul(acc, pts[i].z);
  }
  Fe inv_acc = fp_.inv(acc);
  for (std::size_t i = pts.size(); i > 0; --i) {
    const std::size_t k = i - 1;
    if (is_infinity(pts[k])) {
      out[k] = AffinePoint{};
      continue;
    }
    const Fe zinv = fp_.mul(inv_acc, prefix[k]);
    inv_acc = fp_.mul(inv_acc, pts[k].z);
    const Fe zinv2 = fp_.sqr(zinv);
    out[k] = AffinePoint{fp_.mul(pts[k].x, zinv2), fp_.mul(pts[k].y, fp_.mul(zinv2, zinv)),
                         false};
  }
  return out;
}

JacobianPoint Curve::dbl(const JacobianPoint& p) const {
  if (is_infinity(p) || fp_.is_zero(p.y)) return infinity();
  // Standard Jacobian doubling, generic curve coefficient a.
  const Fe y2 = fp_.sqr(p.y);
  const Fe s = fp_.mul(fp_.from_u64(4), fp_.mul(p.x, y2));
  Fe m = fp_.mul(fp_.from_u64(3), fp_.sqr(p.x));
  if (!a_is_zero_) {
    const Fe z2 = fp_.sqr(p.z);
    m = fp_.add(m, fp_.mul(a_, fp_.sqr(z2)));
  }
  const Fe x3 = fp_.sub(fp_.sqr(m), fp_.add(s, s));
  const Fe y3 = fp_.sub(fp_.mul(m, fp_.sub(s, x3)),
                        fp_.mul(fp_.from_u64(8), fp_.sqr(y2)));
  const Fe z3 = fp_.mul(fp_.add(p.y, p.y), p.z);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint Curve::add(const JacobianPoint& p, const JacobianPoint& q) const {
  if (is_infinity(p)) return q;
  if (is_infinity(q)) return p;
  const Fe z1z1 = fp_.sqr(p.z);
  const Fe z2z2 = fp_.sqr(q.z);
  const Fe u1 = fp_.mul(p.x, z2z2);
  const Fe u2 = fp_.mul(q.x, z1z1);
  const Fe s1 = fp_.mul(p.y, fp_.mul(z2z2, q.z));
  const Fe s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return infinity();
  }
  const Fe h = fp_.sub(u2, u1);
  const Fe r = fp_.sub(s2, s1);
  const Fe h2 = fp_.sqr(h);
  const Fe h3 = fp_.mul(h2, h);
  const Fe u1h2 = fp_.mul(u1, h2);
  const Fe x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(u1h2, u1h2));
  const Fe y3 = fp_.sub(fp_.mul(r, fp_.sub(u1h2, x3)), fp_.mul(s1, h3));
  const Fe z3 = fp_.mul(fp_.mul(p.z, q.z), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint Curve::add_mixed(const JacobianPoint& p, const AffinePoint& q) const {
  if (q.infinity) return p;
  if (is_infinity(p)) return to_jacobian(q);
  const Fe z1z1 = fp_.sqr(p.z);
  const Fe u2 = fp_.mul(q.x, z1z1);
  const Fe s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  if (p.x == u2) {
    if (p.y == s2) return dbl(p);
    return infinity();
  }
  const Fe h = fp_.sub(u2, p.x);
  const Fe r = fp_.sub(s2, p.y);
  const Fe h2 = fp_.sqr(h);
  const Fe h3 = fp_.mul(h2, h);
  const Fe u1h2 = fp_.mul(p.x, h2);
  const Fe x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(u1h2, u1h2));
  const Fe y3 = fp_.sub(fp_.mul(r, fp_.sub(u1h2, x3)), fp_.mul(p.y, h3));
  const Fe z3 = fp_.mul(p.z, h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint Curve::neg(const JacobianPoint& p) const {
  return JacobianPoint{p.x, fp_.neg(p.y), p.z};
}

bool Curve::eq(const JacobianPoint& p, const JacobianPoint& q) const {
  const bool pi = is_infinity(p);
  const bool qi = is_infinity(q);
  if (pi || qi) return pi == qi;
  // Compare cross-multiplied coordinates to avoid inversions.
  const Fe z1z1 = fp_.sqr(p.z);
  const Fe z2z2 = fp_.sqr(q.z);
  if (!(fp_.mul(p.x, z2z2) == fp_.mul(q.x, z1z1))) return false;
  return fp_.mul(p.y, fp_.mul(z2z2, q.z)) == fp_.mul(q.y, fp_.mul(z1z1, p.z));
}

JacobianPoint Curve::scalar_mul(const AffinePoint& base, const U256& k) const {
  JacobianPoint acc = infinity();
  if (base.infinity || k.is_zero()) return acc;
  for (int i = k.bit_length() - 1; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(i)) acc = add_mixed(acc, base);
  }
  return acc;
}

JacobianPoint Curve::scalar_mul_wnaf(const AffinePoint& base, const U256& k) const {
  if (base.infinity || k.is_zero()) return infinity();
  constexpr int kWidth = 4;
  constexpr std::uint64_t kWindow = 1ULL << kWidth;       // 16
  constexpr std::uint64_t kHalf = kWindow / 2;            // 8

  // Digit decomposition: odd digits in [-7, 7] (zero-run skipping).
  std::array<std::int8_t, 260> digits{};
  int len = 0;
  U256 n = k;
  while (!n.is_zero()) {
    std::int8_t d = 0;
    if (n.is_odd()) {
      const std::uint64_t mod = n.limb[0] & (kWindow - 1);
      if (mod >= kHalf) {
        d = static_cast<std::int8_t>(static_cast<std::int64_t>(mod) -
                                     static_cast<std::int64_t>(kWindow));
        // n -= d  (d negative): n += |d|
        n.add_assign(U256(static_cast<std::uint64_t>(-static_cast<std::int64_t>(d))));
      } else {
        d = static_cast<std::int8_t>(mod);
        n.sub_assign(U256(mod));
      }
    }
    digits[static_cast<std::size_t>(len++)] = d;
    n.shr1();
  }

  // Precompute odd multiples 1P, 3P, 5P, 7P as affine (one batch inversion).
  std::vector<JacobianPoint> odd;
  odd.reserve(kHalf / 2);
  const JacobianPoint p = to_jacobian(base);
  const JacobianPoint two_p = dbl(p);
  odd.push_back(p);
  for (std::size_t i = 1; i < kHalf / 2; ++i) odd.push_back(add(odd.back(), two_p));
  const std::vector<AffinePoint> table = batch_to_affine(odd);

  JacobianPoint acc = infinity();
  for (int i = len - 1; i >= 0; --i) {
    acc = dbl(acc);
    const std::int8_t d = digits[static_cast<std::size_t>(i)];
    if (d > 0) {
      acc = add_mixed(acc, table[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      AffinePoint negp = table[static_cast<std::size_t>((-d - 1) / 2)];
      negp.y = fp_.neg(negp.y);
      acc = add_mixed(acc, negp);
    }
  }
  return acc;
}

std::optional<Fe> Curve::sqrt(const Fe& a) const {
  if (fp_.is_zero(a)) return fp_.zero();
  // p ≡ 3 (mod 4) for both supported primes: sqrt = a^((p+1)/4).
  U256 e = fp_.modulus();
  e.add_assign(U256(1));  // cannot overflow: p < 2^256 - 1 for both curves
  e.shr1();
  e.shr1();
  const Fe r = fp_.pow(a, e);
  if (!(fp_.sqr(r) == a)) return std::nullopt;
  return r;
}

Bytes Curve::serialize(const AffinePoint& p) const {
  if (p.infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(33);
  const U256 y = fp_.from_mont(p.y);
  out.push_back(y.is_odd() ? 0x03 : 0x02);
  const Bytes x = fp_.from_mont(p.x).to_be_bytes();
  out.insert(out.end(), x.begin(), x.end());
  return out;
}

AffinePoint Curve::deserialize(BytesView bytes) const {
  if (bytes.size() == 1 && bytes[0] == 0x00) return AffinePoint{};
  if (bytes.size() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03)) {
    throw std::invalid_argument("Curve::deserialize: malformed point encoding");
  }
  const U256 x_int = U256::from_be_bytes(bytes.subspan(1));
  if (!(x_int < fp_.modulus())) {
    throw std::invalid_argument("Curve::deserialize: x out of range");
  }
  const Fe x = fp_.to_mont(x_int);
  const auto y = sqrt(curve_rhs(x));
  if (!y) {
    throw std::invalid_argument("Curve::deserialize: x not on curve");
  }
  Fe y_fe = *y;
  const bool want_odd = bytes[0] == 0x03;
  if (fp_.from_mont(y_fe).is_odd() != want_odd) y_fe = fp_.neg(y_fe);
  return AffinePoint{x, y_fe, false};
}

}  // namespace dfl::crypto
