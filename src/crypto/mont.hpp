// Montgomery-form modular arithmetic over an arbitrary odd 256-bit modulus.
// One `FieldCtx` instance exists per modulus (curve base field or scalar
// field); field elements are plain U256 values in Montgomery representation
// so they stay trivially copyable.
#pragma once

#include <cstdint>

#include "crypto/u256.hpp"

namespace dfl::crypto {

/// A field element in Montgomery form. Interpreting the raw U256 requires
/// the owning FieldCtx; the wrapper type exists purely to prevent mixing
/// Montgomery-form and plain integers by accident.
struct Fe {
  U256 raw;
  friend constexpr bool operator==(const Fe&, const Fe&) = default;
};

class FieldCtx {
 public:
  /// `modulus` must be odd and > 2 (true for all curve fields we use).
  explicit FieldCtx(const U256& modulus);

  [[nodiscard]] const U256& modulus() const { return m_; }

  /// Conversions between plain integers (mod m) and Montgomery form.
  [[nodiscard]] Fe to_mont(const U256& x) const;
  [[nodiscard]] U256 from_mont(const Fe& x) const;

  [[nodiscard]] Fe zero() const { return Fe{U256{}}; }
  [[nodiscard]] Fe one() const { return one_; }
  [[nodiscard]] bool is_zero(const Fe& x) const { return x.raw.is_zero(); }

  [[nodiscard]] Fe add(const Fe& a, const Fe& b) const;
  [[nodiscard]] Fe sub(const Fe& a, const Fe& b) const;
  [[nodiscard]] Fe neg(const Fe& a) const;
  [[nodiscard]] Fe mul(const Fe& a, const Fe& b) const;
  [[nodiscard]] Fe sqr(const Fe& a) const { return mul(a, a); }

  /// a^e for a plain (non-Montgomery) exponent.
  [[nodiscard]] Fe pow(const Fe& a, const U256& e) const;

  /// Multiplicative inverse via binary extended GCD (any odd modulus with
  /// gcd(a, m) = 1; throws std::domain_error otherwise, including for 0).
  [[nodiscard]] Fe inv(const Fe& a) const;

  /// Small-integer constant lifted into the field.
  [[nodiscard]] Fe from_u64(std::uint64_t v) const { return to_mont(U256(v)); }

 private:
  [[nodiscard]] U256 mont_mul(const U256& a, const U256& b) const;

  U256 m_;
  std::uint64_t n0_;  // -m^{-1} mod 2^64
  Fe r2_;             // R^2 mod m (Montgomery form of R)
  Fe one_;            // Montgomery form of 1 (= R mod m)
};

}  // namespace dfl::crypto
