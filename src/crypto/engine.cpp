#include "crypto/engine.hpp"

#include <chrono>

#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace dfl::crypto {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void hash_u64(Sha256& h, std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  h.update(buf, sizeof(buf));
}

/// Fiat–Shamir seed: a hash over every commitment and every claimed value.
/// Any single bit of the transcript changes the coefficients, so a prover
/// cannot pick openings after learning them.
std::uint64_t transcript_seed(const std::vector<Commitment>& cs,
                              const std::vector<std::vector<std::int64_t>>& values) {
  Sha256 h;
  h.update(BytesView(reinterpret_cast<const std::uint8_t*>("dfl/batch-verify/v1"), 19));
  hash_u64(h, cs.size());
  for (const Commitment& c : cs) {
    hash_u64(h, static_cast<std::uint64_t>(c.curve));
    hash_u64(h, c.point.size());
    h.update(BytesView(c.point.data(), c.point.size()));
  }
  for (const auto& v : values) {
    hash_u64(h, v.size());
    for (const std::int64_t x : v) hash_u64(h, static_cast<std::uint64_t>(x));
  }
  const Sha256Digest d = h.finalize();
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  return seed;
}

}  // namespace

Engine::Engine(PedersenKey& key, EngineConfig cfg)
    : key_(key), cfg_(cfg), pool_(std::make_unique<ThreadPool>(cfg.threads)) {
  key_.set_pool(pool_.get());
  if (cfg_.fixed_base_window != 0) {
    const int window = cfg_.fixed_base_window == 1 ? 0 : cfg_.fixed_base_window;
    key_.configure_fixed_base(window, cfg_.fixed_base_bits);
  }
}

Engine::~Engine() { key_.set_pool(nullptr); }

Commitment Engine::commit(const std::vector<std::int64_t>& values) {
  // Wall-clock span: crypto is real compute under the simulator, so it is
  // drawn on the wall-time track of whatever thread runs it.
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::SpanToken span = tracer.begin_wall("commit");
  tracer.attr(span, "elements", static_cast<std::int64_t>(values.size()));
  const std::uint64_t t0 = now_ns();
  Commitment c = key_.commit(values);
  commit_wall_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  commits_.fetch_add(1, std::memory_order_relaxed);
  committed_elements_.fetch_add(values.size(), std::memory_order_relaxed);
  tracer.end_wall(span);
  return c;
}

bool Engine::verify(const Commitment& c, const std::vector<std::int64_t>& values) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::SpanToken span = tracer.begin_wall("verify");
  tracer.attr(span, "elements", static_cast<std::int64_t>(values.size()));
  const std::uint64_t t0 = now_ns();
  const bool ok = key_.verify(c, values);
  verify_wall_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  verifies_.fetch_add(1, std::memory_order_relaxed);
  tracer.end_wall(span);
  return ok;
}

bool Engine::verify_batch(const std::vector<Commitment>& cs,
                          const std::vector<std::vector<std::int64_t>>& values) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::SpanToken span = tracer.begin_wall("verify_batch");
  tracer.attr(span, "openings", static_cast<std::int64_t>(cs.size()));
  const std::uint64_t t0 = now_ns();
  Rng rng(transcript_seed(cs, values));
  const bool ok = key_.verify_batch(cs, values, rng);
  verify_wall_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  batch_verifies_.fetch_add(1, std::memory_order_relaxed);
  tracer.end_wall(span);
  return ok;
}

Calibration Engine::calibrate(std::size_t elements, int iters) {
  if (elements == 0 || elements > key_.dim()) elements = key_.dim();
  if (iters < 1) iters = 1;
  // Deterministic synthetic gradient: mixed signs, ~20-bit magnitudes.
  std::vector<std::int64_t> values(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    const std::uint64_t m = (i * 2654435761ULL + 12345) & 0xfffff;
    values[i] = (i & 1) != 0 ? -static_cast<std::int64_t>(m) : static_cast<std::int64_t>(m);
  }

  auto measure = [&]() {
    std::uint64_t best = ~0ULL;  // min over iters: least-interference estimate
    for (int it = 0; it < iters; ++it) {
      const std::uint64_t t0 = now_ns();
      Commitment c = key_.commit(values);
      const std::uint64_t dt = now_ns() - t0;
      (void)c;
      if (dt < best) best = dt;
    }
    return best;
  };

  const std::uint64_t warm = measure();  // also forces the lazy table build
  (void)warm;
  const std::uint64_t multi_ns = measure();
  key_.set_pool(nullptr);
  const std::uint64_t single_ns = measure();
  key_.set_pool(pool_.get());

  Calibration cal;
  cal.threads = pool_->concurrency();
  cal.ns_per_element = static_cast<double>(multi_ns) / static_cast<double>(elements);
  cal.parallel_speedup =
      multi_ns == 0 ? 1.0 : static_cast<double>(single_ns) / static_cast<double>(multi_ns);
  cal.backend = active_backend();
  cal.isa = active_isa();
  calibrated_ = true;
  calibrated_backend_ = cal.backend;
  return cal;
}

bool Engine::needs_recalibration() const {
  return calibrated_ && calibrated_backend_ != active_backend();
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.verifies = verifies_.load(std::memory_order_relaxed);
  s.batch_verifies = batch_verifies_.load(std::memory_order_relaxed);
  s.committed_elements = committed_elements_.load(std::memory_order_relaxed);
  s.commit_wall_ns = commit_wall_ns_.load(std::memory_order_relaxed);
  s.verify_wall_ns = verify_wall_ns_.load(std::memory_order_relaxed);
  s.backend = active_backend();
  s.isa = active_isa();
  return s;
}

}  // namespace dfl::crypto
