// Fixed-point encoding of real-valued gradients into signed 64-bit integers
// and from there into scalars mod the curve order.
//
// Aggregation in the protocol happens over the *encoded integers*, so the
// homomorphic sum of Pedersen commitments matches the aggregated vector
// exactly (no float-rounding mismatch): encode(sum) == sum(encode) by
// construction when all parties encode before summing.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/curve.hpp"
#include "crypto/u256.hpp"

namespace dfl::crypto {

/// Default number of fractional bits for gradient quantization.
inline constexpr int kDefaultFracBits = 16;

/// round(v * 2^frac_bits), saturating at int32 range scaled up so that sums
/// of millions of terms cannot overflow int64.
std::int64_t encode_fixed(double v, int frac_bits = kDefaultFracBits);

/// Inverse of encode_fixed.
double decode_fixed(std::int64_t v, int frac_bits = kDefaultFracBits);

std::vector<std::int64_t> encode_fixed_vec(const std::vector<double>& v,
                                           int frac_bits = kDefaultFracBits);
std::vector<double> decode_fixed_vec(const std::vector<std::int64_t>& v,
                                     int frac_bits = kDefaultFracBits);

/// Maps a signed integer into the scalar field: v >= 0 -> v, v < 0 -> n - |v|.
U256 to_scalar(std::int64_t v, const Curve& curve);

std::vector<U256> to_scalars(const std::vector<std::int64_t>& v, const Curve& curve);

}  // namespace dfl::crypto
