// Short-Weierstrass elliptic-curve group arithmetic (Jacobian coordinates)
// with parameter sets for secp256k1 and secp256r1 — the two curves the
// paper benchmarks Pedersen commitments on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/mont.hpp"
#include "crypto/u256.hpp"

namespace dfl::crypto {

enum class CurveId { kSecp256k1, kSecp256r1 };

/// Affine point; `infinity` set means x/y are ignored.
struct AffinePoint {
  Fe x{};
  Fe y{};
  bool infinity = true;
};

/// Jacobian point (X/Z^2, Y/Z^3); Z == 0 encodes the point at infinity.
struct JacobianPoint {
  Fe x{};
  Fe y{};
  Fe z{};
};

/// A short-Weierstrass curve y^2 = x^3 + ax + b over F_p with prime order n.
/// Instances are immutable; use the static accessors for the two standard
/// curves (constructed once, thread-safe since C++11 magic statics).
class Curve {
 public:
  static const Curve& secp256k1();
  static const Curve& secp256r1();
  static const Curve& get(CurveId id);

  [[nodiscard]] CurveId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FieldCtx& fp() const { return fp_; }
  [[nodiscard]] const FieldCtx& fn() const { return fn_; }
  [[nodiscard]] const U256& order() const { return n_; }
  [[nodiscard]] const AffinePoint& generator() const { return g_; }

  [[nodiscard]] JacobianPoint infinity() const;
  [[nodiscard]] bool is_infinity(const JacobianPoint& p) const { return fp_.is_zero(p.z); }

  [[nodiscard]] bool is_on_curve(const AffinePoint& p) const;

  [[nodiscard]] JacobianPoint to_jacobian(const AffinePoint& p) const;
  [[nodiscard]] AffinePoint to_affine(const JacobianPoint& p) const;

  /// Converts many Jacobian points with a single field inversion
  /// (Montgomery's batch-inversion trick).
  [[nodiscard]] std::vector<AffinePoint> batch_to_affine(
      const std::vector<JacobianPoint>& pts) const;

  [[nodiscard]] JacobianPoint dbl(const JacobianPoint& p) const;
  [[nodiscard]] JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q) const;
  /// Mixed addition with an affine second operand (saves field mults).
  [[nodiscard]] JacobianPoint add_mixed(const JacobianPoint& p, const AffinePoint& q) const;
  [[nodiscard]] JacobianPoint neg(const JacobianPoint& p) const;

  /// Projective equality (compares the underlying affine points).
  [[nodiscard]] bool eq(const JacobianPoint& p, const JacobianPoint& q) const;

  /// k * base via left-to-right double-and-add (variable time; fine here —
  /// commitments carry no secrets that timing could leak in this system).
  [[nodiscard]] JacobianPoint scalar_mul(const AffinePoint& base, const U256& k) const;

  /// k * base via width-4 wNAF with a precomputed odd-multiples table:
  /// ~25% fewer additions than plain double-and-add. Used by the optimized
  /// commitment paths; always agrees with scalar_mul.
  [[nodiscard]] JacobianPoint scalar_mul_wnaf(const AffinePoint& base, const U256& k) const;

  /// Square root in F_p (both our primes are ≡ 3 mod 4); nullopt if `a` is
  /// a quadratic non-residue.
  [[nodiscard]] std::optional<Fe> sqrt(const Fe& a) const;

  /// y^2 = x^3 + ax + b right-hand side.
  [[nodiscard]] Fe curve_rhs(const Fe& x) const;

  /// SEC1 compressed encoding: 0x00 for infinity, else 0x02/0x03 || X.
  [[nodiscard]] Bytes serialize(const AffinePoint& p) const;
  /// Throws std::invalid_argument on malformed or off-curve input.
  [[nodiscard]] AffinePoint deserialize(BytesView bytes) const;

 private:
  Curve(CurveId id, std::string name, const U256& p, const U256& a, const U256& b,
        const U256& n, const U256& gx, const U256& gy);

  CurveId id_;
  std::string name_;
  FieldCtx fp_;
  FieldCtx fn_;
  Fe a_;
  Fe b_;
  U256 n_;
  AffinePoint g_;
  bool a_is_zero_;
};

}  // namespace dfl::crypto
