#include "crypto/mont.hpp"

#include <stdexcept>

namespace dfl::crypto {

using u128 = unsigned __int128;

namespace {

// -m^{-1} mod 2^64 for odd m, via Newton iteration on the 2-adic inverse.
std::uint64_t neg_inv64(std::uint64_t m) {
  std::uint64_t inv = m;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) inv *= 2 - m * inv;
  return ~inv + 1;  // -(m^{-1})
}

// 2^256 mod m via 256 modular doublings — O(1) in the modulus size, so it
// also handles small moduli (used in tests) without degenerate looping.
U256 r_mod(const U256& m) {
  U256 r(1);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t carry = r.shl1();
    if (carry != 0 || r >= m) r.sub_assign(m);
  }
  return r;
}

}  // namespace

FieldCtx::FieldCtx(const U256& modulus) : m_(modulus), n0_(neg_inv64(modulus.limb[0])) {
  if (!modulus.is_odd()) {
    throw std::invalid_argument("FieldCtx: modulus must be odd");
  }
  // R mod m, then square it by doubling 256 times to get R^2 mod m.
  const U256 r = r_mod(m_);
  U256 r2 = r;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t carry = r2.shl1();
    if (carry != 0 || r2 >= m_) r2.sub_assign(m_);
  }
  r2_ = Fe{r2};
  one_ = Fe{r};
}

U256 FieldCtx::mont_mul(const U256& a, const U256& b) const {
  // CIOS (coarsely integrated operand scanning) with 4 limbs.
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    // t += a[i] * b
    u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limb[i]) * b.limb[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 sum = static_cast<u128>(t[4]) + carry;
    t[4] = static_cast<std::uint64_t>(sum);
    t[5] += static_cast<std::uint64_t>(sum >> 64);

    // Reduce one limb: t += q * m with q chosen so the low limb vanishes.
    const std::uint64_t q = t[0] * n0_;
    u128 cur = static_cast<u128>(q) * m_.limb[0] + t[0];
    carry = cur >> 64;
    for (std::size_t j = 1; j < 4; ++j) {
      cur = static_cast<u128>(q) * m_.limb[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    sum = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<std::uint64_t>(sum);
    t[4] = t[5] + static_cast<std::uint64_t>(sum >> 64);
    t[5] = 0;
  }
  U256 r{t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || r >= m_) r.sub_assign(m_);
  return r;
}

Fe FieldCtx::to_mont(const U256& x) const {
  U256 reduced = x;
  if (reduced >= m_) {
    // Binary long division remainder: O(256) regardless of modulus size.
    U256 r{};
    for (int i = x.bit_length() - 1; i >= 0; --i) {
      const std::uint64_t carry = r.shl1();
      if (x.bit(i)) r.add_assign(U256(1));
      if (carry != 0 || r >= m_) r.sub_assign(m_);
    }
    reduced = r;
  }
  return Fe{mont_mul(reduced, r2_.raw)};
}

U256 FieldCtx::from_mont(const Fe& x) const {
  return mont_mul(x.raw, U256(1));
}

Fe FieldCtx::add(const Fe& a, const Fe& b) const {
  return Fe{add_mod(a.raw, b.raw, m_)};
}

Fe FieldCtx::sub(const Fe& a, const Fe& b) const {
  return Fe{sub_mod(a.raw, b.raw, m_)};
}

Fe FieldCtx::neg(const Fe& a) const {
  if (a.raw.is_zero()) return a;
  U256 r = m_;
  r.sub_assign(a.raw);
  return Fe{r};
}

Fe FieldCtx::mul(const Fe& a, const Fe& b) const {
  return Fe{mont_mul(a.raw, b.raw)};
}

Fe FieldCtx::pow(const Fe& a, const U256& e) const {
  Fe result = one();
  const int top = e.bit_length();
  for (int i = top - 1; i >= 0; --i) {
    result = sqr(result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

Fe FieldCtx::inv(const Fe& a) const {
  if (a.raw.is_zero()) {
    throw std::domain_error("FieldCtx::inv of zero");
  }
  // Binary extended GCD on the Montgomery representative: for a_hat = a*R,
  // mod_inverse yields a^{-1}*R^{-1} as a plain integer; two REDC multiplies
  // by R^2 append the two missing factors of R, landing back in Montgomery
  // form. ~6x faster than the Fermat ladder this replaces, which matters
  // because batch-inversion amortization in the SIMD MSM is bounded by the
  // cost of the one real inversion per batch.
  const U256 inv_plain = mod_inverse(a.raw, m_);
  return Fe{mont_mul(mont_mul(inv_plain, r2_.raw), r2_.raw)};
}

}  // namespace dfl::crypto
