// AVX2 crypto backend: 4-way batched field arithmetic over a 10x26-bit
// interleaved limb representation, plus a vectorized batched-affine MSM.
//
// Representation. A field element lives in ten 26-bit limbs inside the low
// bits of ten 64-bit lanes, in the *vector Montgomery domain*: the stored
// integer is value * 2^260 mod p, canonical in [0, p). 2^260 (not 2^256)
// because ten 26-bit limbs carry 260 bits, which lets the Montgomery
// reduction retire exactly one limb per iteration. Four independent
// elements ride in the four 64-bit lanes of each __m256i, so one vmul is
// four field multiplications. The headroom above each 26-bit limb absorbs
// deferred carries: a full product-accumulate pass stays below 2^57 per
// lane, so carries propagate once per multiplication, not once per add.
//
// Every vector function carries a per-function target("avx2") attribute
// instead of building the file with -mavx2; nothing outside the runtime-
// dispatched region is ever compiled with AVX2 codegen, so linking this
// object into a binary that runs on non-AVX2 hosts is safe (backend.cpp
// only routes here after CPUID says yes).
#include "crypto/simd_avx2.hpp"

#include <cstddef>
#include <cstdint>

#include "crypto/msm_internal.hpp"

#if DFL_HAVE_AVX2 && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DFL_AVX2_REAL 1
#else
#define DFL_AVX2_REAL 0
#endif

#if DFL_AVX2_REAL

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#define DFL_TARGET_AVX2 __attribute__((target("avx2")))
// The IFMA tier adds avx512f for the zmm lane plumbing; avx2 is listed
// explicitly so the F4 helpers keep inlining into the wider functions.
#define DFL_TARGET_IFMA \
  __attribute__((target("avx2,avx512f,avx512vl,avx512dq,avx512bw,avx512ifma")))

// GCC 12's unmasked AVX-512 intrinsics expand to masked builtins whose
// passthrough operand is _mm512_undefined_epi32() (GCC PR105593); with
// always_inline the bogus -Wuninitialized fires at every use site, so it
// has to be silenced for the TU rather than fixed in the code.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace dfl::crypto::avx2 {
namespace {

constexpr int kLimbs = 10;
constexpr std::uint64_t kMask26 = (std::uint64_t{1} << 26) - 1;

using Limbs = std::array<std::uint64_t, kLimbs>;

Limbs split26(const U256& v) {
  Limbs out;
  for (int j = 0; j < kLimbs; ++j) {
    out[j] = v.bits(26 * j, 26);
  }
  return out;
}

U256 join26(const Limbs& l) {
  U256 r{};
  for (int j = 0; j < kLimbs; ++j) {
    const int bitpos = 26 * j;
    const int li = bitpos >> 6;
    const int off = bitpos & 63;
    r.limb[static_cast<std::size_t>(li)] |= l[j] << off;
    if (off + 26 > 64 && li + 1 < 4) {
      r.limb[static_cast<std::size_t>(li) + 1] |= l[j] >> (64 - off);
    }
  }
  return r;
}

/// 2^k mod p by repeated modular doubling (setup-time only).
U256 pow2_mod(int k, const U256& p) {
  U256 x(1);
  for (int i = 0; i < k; ++i) x = add_mod(x, x, p);
  return x;
}

/// Per-modulus constants of the vector domain. One instance per field,
/// cached by modulus value (not FieldCtx address: tests build transient
/// contexts over the same modulus).
struct VecField {
  U256 p;
  Limbs p26;          // modulus, split
  std::uint64_t n0lo; // low 26 bits of -p^{-1} mod 2^52
  std::uint64_t n0hi; // high 26 bits of -p^{-1} mod 2^52
  Limbs kin26;        // 2^264 mod p: vmul(x~, kin) lifts scalar-Montgomery raw into the vector domain
  Limbs kout26;       // 2^256 mod p: vmul(x^, kout) drops back to scalar-Montgomery raw
  Limbs one26;        // 2^260 mod p: vector-domain 1 (vmul identity)
  Fe conv_in_fe;      // mont(2^260): Fe -> plain vector-domain integer via one field mul
  Fe conv_out_fe;     // raw 2^252:   plain vector-domain integer -> Fe via one field mul
  Fe k520_fe;         // mont(2^520): seed constant of the vector batch inverse
};

const VecField& vec_field(const FieldCtx& f) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<VecField>> cache;
  std::lock_guard<std::mutex> lk(mu);
  for (const auto& v : cache) {
    if (v->p == f.modulus()) return *v;
  }
  auto vf = std::make_unique<VecField>();
  const U256& p = f.modulus();
  vf->p = p;
  vf->p26 = split26(p);
  // Newton's iteration doubles the number of valid low bits per step;
  // five steps from the trivial inverse mod 2^3 give p^{-1} mod 2^64.
  std::uint64_t inv = p.limb[0];
  for (int i = 0; i < 5; ++i) inv *= 2 - p.limb[0] * inv;
  const std::uint64_t n0_52 = (0 - inv) & ((std::uint64_t(1) << 52) - 1);
  vf->n0lo = n0_52 & kMask26;
  vf->n0hi = n0_52 >> 26;
  vf->kin26 = split26(pow2_mod(264, p));
  vf->kout26 = split26(pow2_mod(256, p));
  vf->one26 = split26(pow2_mod(260, p));
  vf->conv_in_fe = f.to_mont(pow2_mod(260, p));
  vf->conv_out_fe = Fe{pow2_mod(252, p)};
  vf->k520_fe = f.to_mont(pow2_mod(520, p));
  cache.push_back(std::move(vf));
  return *cache.back();
}

// ---------------------------------------------------------------------------
// Vector core. F4 = four field elements, lane l of l[j] = limb j of element
// l. All functions require canonical inputs (limbs < 2^26, value < p) and
// produce canonical outputs unless stated otherwise.
// ---------------------------------------------------------------------------

// alignas(32) is load-bearing: this TU is compiled without -mavx2, where GCC
// only gives __m256i 16-byte alignment, yet the target("avx2") functions emit
// 32-byte-aligned accesses. The explicit alignment also pushes std::vector<F4>
// onto the over-aligned operator new.
struct alignas(32) F4 {
  __m256i l[kLimbs];
};

/// Broadcast constants of one field, preloaded as vectors once per kernel.
struct alignas(32) VConst {
  __m256i mask;
  __m256i n0lo;  // -p^{-1} mod 2^52, low 26 bits
  __m256i n0hi;  // -p^{-1} mod 2^52, high 26 bits
  __m256i p[kLimbs];
  __m256i p2[kLimbs];  // 2p in redundant limbs, each >= 2^26 - 1 (lazy subtract)
  __m256i one[kLimbs];
};

DFL_TARGET_AVX2 inline VConst vconst(const VecField& vf) {
  VConst c;
  c.mask = _mm256_set1_epi64x(static_cast<long long>(kMask26));
  c.n0lo = _mm256_set1_epi64x(static_cast<long long>(vf.n0lo));
  c.n0hi = _mm256_set1_epi64x(static_cast<long long>(vf.n0hi));
  for (int j = 0; j < kLimbs; ++j) {
    c.p[j] = _mm256_set1_epi64x(static_cast<long long>(vf.p26[j]));
    // 2p with 2^26 borrowed down from every higher limb, so each limb is at
    // least 2^26 - 1 >= any canonical limb; a modulus like secp256r1's has
    // zero 26-bit limbs, where plain 2*p_j - b_j would go negative. The top
    // limb stays nonnegative for any modulus >= 2^234.
    const std::uint64_t lift = (j + 1 < kLimbs ? kMask26 + 1 : 0) - (j > 0 ? 1 : 0);
    c.p2[j] = _mm256_set1_epi64x(static_cast<long long>(2 * vf.p26[j] + lift));
    c.one[j] = _mm256_set1_epi64x(static_cast<long long>(vf.one26[j]));
  }
  return c;
}

DFL_TARGET_AVX2 inline F4 vbroadcast(const Limbs& a) {
  F4 r;
  for (int j = 0; j < kLimbs; ++j) r.l[j] = _mm256_set1_epi64x(static_cast<long long>(a[j]));
  return r;
}

DFL_TARGET_AVX2 inline F4 vone(const VConst& c) {
  F4 r;
  for (int j = 0; j < kLimbs; ++j) r.l[j] = c.one[j];
  return r;
}

DFL_TARGET_AVX2 inline F4 vzero() {
  F4 r;
  for (int j = 0; j < kLimbs; ++j) r.l[j] = _mm256_setzero_si256();
  return r;
}

/// Gathers four elements from four 10-limb arrays (AoS storage). Each
/// element is three contiguous vector loads (32+32+16 bytes); two 4x4
/// unpck/perm transposes and one 2x4 tail transpose turn the twelve loads
/// into limb-major form. ~3x fewer uops than lane-by-lane insertion, and
/// plain loads pipeline better than vpgatherqq on scattered pointers.
DFL_TARGET_AVX2 inline F4 vload4(const std::uint64_t* a0, const std::uint64_t* a1,
                                 const std::uint64_t* a2, const std::uint64_t* a3) {
  F4 r;
  const std::uint64_t* a[4] = {a0, a1, a2, a3};
#pragma GCC unroll 2
  for (int g = 0; g < 2; ++g) {
    const __m256i r0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a[0] + 4 * g));
    const __m256i r1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a[1] + 4 * g));
    const __m256i r2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a[2] + 4 * g));
    const __m256i r3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a[3] + 4 * g));
    const __m256i lo01 = _mm256_unpacklo_epi64(r0, r1);  // e0l0 e1l0 | e0l2 e1l2
    const __m256i hi01 = _mm256_unpackhi_epi64(r0, r1);
    const __m256i lo23 = _mm256_unpacklo_epi64(r2, r3);
    const __m256i hi23 = _mm256_unpackhi_epi64(r2, r3);
    r.l[4 * g + 0] = _mm256_permute2x128_si256(lo01, lo23, 0x20);
    r.l[4 * g + 1] = _mm256_permute2x128_si256(hi01, hi23, 0x20);
    r.l[4 * g + 2] = _mm256_permute2x128_si256(lo01, lo23, 0x31);
    r.l[4 * g + 3] = _mm256_permute2x128_si256(hi01, hi23, 0x31);
  }
  const __m128i t0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a[0] + 8));
  const __m128i t1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a[1] + 8));
  const __m128i t2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a[2] + 8));
  const __m128i t3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a[3] + 8));
  const __m256i t01 = _mm256_set_m128i(t2, t0);  // e0l8 e0l9 | e2l8 e2l9
  const __m256i t23 = _mm256_set_m128i(t3, t1);
  r.l[8] = _mm256_unpacklo_epi64(t01, t23);
  r.l[9] = _mm256_unpackhi_epi64(t01, t23);
  return r;
}

/// Scatters the four lanes back to four 10-limb arrays; null skips a lane.
/// Inverse of the vload4 transpose: per lane the element becomes three
/// contiguous stores instead of ten extracted scalars.
DFL_TARGET_AVX2 inline void vstore4(const F4& v, std::uint64_t* o0, std::uint64_t* o1,
                                    std::uint64_t* o2, std::uint64_t* o3) {
  std::uint64_t* o[4] = {o0, o1, o2, o3};
  __m256i row[2][4];
#pragma GCC unroll 2
  for (int g = 0; g < 2; ++g) {
    const __m256i lo01 = _mm256_unpacklo_epi64(v.l[4 * g + 0], v.l[4 * g + 1]);
    const __m256i hi01 = _mm256_unpackhi_epi64(v.l[4 * g + 0], v.l[4 * g + 1]);
    const __m256i lo23 = _mm256_unpacklo_epi64(v.l[4 * g + 2], v.l[4 * g + 3]);
    const __m256i hi23 = _mm256_unpackhi_epi64(v.l[4 * g + 2], v.l[4 * g + 3]);
    row[g][0] = _mm256_permute2x128_si256(lo01, lo23, 0x20);
    row[g][1] = _mm256_permute2x128_si256(hi01, hi23, 0x20);
    row[g][2] = _mm256_permute2x128_si256(lo01, lo23, 0x31);
    row[g][3] = _mm256_permute2x128_si256(hi01, hi23, 0x31);
  }
  const __m256i t01 = _mm256_unpacklo_epi64(v.l[8], v.l[9]);  // e0 e1 | e2 e3 (l8,l9)
  const __m256i t23 = _mm256_unpackhi_epi64(v.l[8], v.l[9]);
  const __m128i tail[4] = {_mm256_castsi256_si128(t01), _mm256_castsi256_si128(t23),
                           _mm256_extracti128_si256(t01, 1), _mm256_extracti128_si256(t23, 1)};
  for (int lane = 0; lane < 4; ++lane) {
    if (o[lane] == nullptr) continue;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o[lane]), row[0][lane]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o[lane] + 4), row[1][lane]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o[lane] + 8), tail[lane]);
  }
}

DFL_TARGET_AVX2 inline Limbs vextract_lane(const F4& v, int lane) {
  alignas(32) std::uint64_t tmp[4];
  Limbs out;
  for (int j = 0; j < kLimbs; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v.l[j]);
    out[j] = tmp[static_cast<std::size_t>(lane)];
  }
  return out;
}

DFL_TARGET_AVX2 inline void vinsert_lane(F4& v, int lane, const Limbs& a) {
  alignas(32) std::uint64_t tmp[4];
  for (int j = 0; j < kLimbs; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v.l[j]);
    tmp[static_cast<std::size_t>(lane)] = a[j];
    v.l[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
}

/// Per-lane select: mask lanes (all-ones) take `a`, zero lanes take `b`.
DFL_TARGET_AVX2 inline F4 vselect(__m256i mask, const F4& a, const F4& b) {
  F4 r;
  for (int j = 0; j < kLimbs; ++j) r.l[j] = _mm256_blendv_epi8(b.l[j], a.l[j], mask);
  return r;
}

/// All-ones per lane whose element is zero (canonical rep required).
DFL_TARGET_AVX2 inline __m256i vis_zero(const F4& a) {
  __m256i acc = a.l[0];
  for (int j = 1; j < kLimbs; ++j) acc = _mm256_or_si256(acc, a.l[j]);
  return _mm256_cmpeq_epi64(acc, _mm256_setzero_si256());
}

/// Conditional subtract of p, for limb-normalized t with value < 2p:
/// borrow-chains t - p in radix 2^26 and keeps the difference on lanes
/// where it did not underflow.
DFL_TARGET_AVX2 inline F4 vcond_sub_p(const VConst& c, const __m256i t[kLimbs]) {
  __m256i d[kLimbs];
  __m256i borrow = _mm256_setzero_si256();
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs; ++j) {
    const __m256i x = _mm256_sub_epi64(t[j], _mm256_add_epi64(c.p[j], borrow));
    borrow = _mm256_srli_epi64(x, 63);
    d[j] = _mm256_and_si256(x, c.mask);
  }
  const __m256i take_d = _mm256_cmpeq_epi64(borrow, _mm256_setzero_si256());
  F4 r;
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs; ++j) r.l[j] = _mm256_blendv_epi8(t[j], d[j], take_d);
  return r;
}

/// Montgomery product: a * b * 2^-260 mod p, canonical.
///
/// Wide CIOS with a radix-2^52 reduction: each of five rounds feeds TWO
/// operand limbs into a rolling 12-limb accumulator window and retires two
/// limbs at once. Halving the round count shortens the serial
/// q -> q*p -> next-q dependency chain that bounds vmul latency while the
/// multiply count stays at 200 vpmuludq, and the window still fits the
/// sixteen ymm registers (a 19-limb full product does not; the spilled
/// accumulators put a store-forward round-trip on the critical path).
///
/// Per round, with u = value of the two low limbs mod 2^52 and
/// n0' = -p^{-1} mod 2^52 split into 26-bit halves (n0lo, n0hi):
///   q = u * n0' mod 2^52, computed from 26-bit halves in three muls:
///   m0 = u_lo*n0lo, m1 = u_lo*n0hi + u_hi*n0lo, q = m0 + 2^26*m1 mod 2^52.
/// Adding q_lo*p and (q_hi*p << 26) zeroes the two low limbs exactly, so
/// their carries move up unmasked. Accumulators stay below ~22*2^52 < 2^57.
DFL_TARGET_AVX2 inline F4 vmul(const VConst& c, const F4& a, const F4& b) {
  __m256i t[kLimbs + 2];
#pragma GCC unroll 12
  for (int j = 0; j < kLimbs + 2; ++j) t[j] = _mm256_setzero_si256();
#pragma GCC unroll 5
  for (int i = 0; i < kLimbs; i += 2) {
    const __m256i a0 = a.l[i];
    const __m256i a1 = a.l[i + 1];
#pragma GCC unroll 10
    for (int j = 0; j < kLimbs; ++j) {
      t[j] = _mm256_add_epi64(t[j], _mm256_mul_epu32(a0, b.l[j]));
      t[j + 1] = _mm256_add_epi64(t[j + 1], _mm256_mul_epu32(a1, b.l[j]));
    }
    const __m256i u_lo = _mm256_and_si256(t[0], c.mask);
    const __m256i u_hi =
        _mm256_and_si256(_mm256_add_epi64(_mm256_srli_epi64(t[0], 26), t[1]), c.mask);
    const __m256i m0 = _mm256_mul_epu32(u_lo, c.n0lo);
    const __m256i m1 = _mm256_add_epi64(_mm256_mul_epu32(u_lo, c.n0hi),
                                        _mm256_mul_epu32(u_hi, c.n0lo));
    const __m256i q_lo = _mm256_and_si256(m0, c.mask);
    const __m256i q_hi =
        _mm256_and_si256(_mm256_add_epi64(_mm256_srli_epi64(m0, 26), m1), c.mask);
#pragma GCC unroll 10
    for (int j = 0; j < kLimbs; ++j) {
      t[j] = _mm256_add_epi64(t[j], _mm256_mul_epu32(q_lo, c.p[j]));
      t[j + 1] = _mm256_add_epi64(t[j + 1], _mm256_mul_epu32(q_hi, c.p[j]));
    }
    // Both low limbs are ≡ 0 mod 2^26 now; their carries shift out exactly.
    t[1] = _mm256_add_epi64(t[1], _mm256_srli_epi64(t[0], 26));
    t[2] = _mm256_add_epi64(t[2], _mm256_srli_epi64(t[1], 26));
#pragma GCC unroll 10
    for (int j = 0; j < kLimbs; ++j) t[j] = t[j + 2];
    t[kLimbs] = _mm256_setzero_si256();
    t[kLimbs + 1] = _mm256_setzero_si256();
  }
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs - 1; ++j) {
    t[j + 1] = _mm256_add_epi64(t[j + 1], _mm256_srli_epi64(t[j], 26));
    t[j] = _mm256_and_si256(t[j], c.mask);
  }
  return vcond_sub_p(c, t);
}

/// a + b mod p, canonical inputs/output.
DFL_TARGET_AVX2 inline F4 vadd(const VConst& c, const F4& a, const F4& b) {
  __m256i t[kLimbs];
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs; ++j) t[j] = _mm256_add_epi64(a.l[j], b.l[j]);
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs - 1; ++j) {
    t[j + 1] = _mm256_add_epi64(t[j + 1], _mm256_srli_epi64(t[j], 26));
    t[j] = _mm256_and_si256(t[j], c.mask);
  }
  return vcond_sub_p(c, t);
}

/// Arithmetic >> 26 for 64-bit lanes (AVX2 has no 64-bit vpsraq): logical
/// shift plus sign bits re-extended into the top 26 positions.
DFL_TARGET_AVX2 inline __m256i vsra26(__m256i v) {
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_or_si256(_mm256_srli_epi64(v, 26), _mm256_slli_epi64(sign, 38));
}

/// a - b + 2p with NO normalization: limbs stay below 2^28 and the value in
/// (0, 3p). Only valid where the result feeds vmul, which tolerates such
/// operands: products still fit the 64-bit accumulators (10 * 2^56 + q*p
/// terms < 2^60) and the Montgomery quotient keeps the result below 2p
/// while 9p^2 < 2^260 * p, which holds for any 256-bit modulus. Skipping
/// the carry sweep and conditional subtract saves ~60 uops per call.
DFL_TARGET_AVX2 inline F4 vsub_lazy(const VConst& c, const F4& a, const F4& b) {
  F4 r;
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs; ++j) {
    r.l[j] = _mm256_sub_epi64(_mm256_add_epi64(a.l[j], c.p2[j]), b.l[j]);
  }
  return r;
}

/// a - b mod p, canonical inputs/output. Computes a + p - b per limb, so
/// intermediate limbs can be negative; carries propagate arithmetically.
DFL_TARGET_AVX2 inline F4 vsub(const VConst& c, const F4& a, const F4& b) {
  __m256i t[kLimbs];
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs; ++j) {
    t[j] = _mm256_sub_epi64(_mm256_add_epi64(a.l[j], c.p[j]), b.l[j]);
  }
#pragma GCC unroll 10
  for (int j = 0; j < kLimbs - 1; ++j) {
    const __m256i carry = vsra26(t[j]);
    t[j] = _mm256_and_si256(t[j], c.mask);
    t[j + 1] = _mm256_add_epi64(t[j + 1], carry);
  }
  return vcond_sub_p(c, t);
}

// ---------------------------------------------------------------------------
// Conversions between the scalar world (Fe, plain U256) and the vector
// domain, used at batch boundaries and for rare-case scalar fallbacks.
// ---------------------------------------------------------------------------

/// Plain vector-domain integer (value * 2^260 mod p, canonical limbs) -> Fe.
Fe native_to_fe(const FieldCtx& f, const VecField& vf, const std::uint64_t* limbs) {
  Limbs l;
  std::memcpy(l.data(), limbs, sizeof(l));
  return f.mul(Fe{join26(l)}, vf.conv_out_fe);
}

/// In-place batch inverse of m vector blocks in the vector domain; every
/// lane must be nonzero (callers pad with the vector-domain 1). One scalar
/// field inversion total: a prefix-product chain across blocks, a 4-lane
/// scalar Montgomery trick for the seed, then back-substitution.
///
/// Invariant of the backward pass: I = 2^520 / pref[k] (the vector-domain
/// inverse of a vector-domain value x^ = x * 2^260 is x^-1 * 2^260 =
/// 2^520 / x^). Then vmul(I, pref[k-1]) = 2^260 * pref[k-1] / pref[k] =
/// 2^520 / w[k] and vmul(I, w[k]) = 2^520 / pref[k-1], closing the loop.
/// Vector-domain inverse of a single block via the 4-lane scalar Montgomery
/// trick (one f.inv total).
DFL_TARGET_AVX2 F4 inv_f4_seed(const FieldCtx& f, const VecField& vf, const F4& x) {
  Fe fe[4];
  for (int lane = 0; lane < 4; ++lane) {
    fe[lane] = f.to_mont(join26(vextract_lane(x, lane)));
  }
  const Fe t1 = f.mul(fe[0], fe[1]);
  const Fe t2 = f.mul(t1, fe[2]);
  Fe acc = f.inv(f.mul(t2, fe[3]));
  Fe inv_fe[4];
  inv_fe[3] = f.mul(acc, t2);
  acc = f.mul(acc, fe[3]);
  inv_fe[2] = f.mul(acc, t1);
  acc = f.mul(acc, fe[2]);
  inv_fe[1] = f.mul(acc, fe[0]);
  inv_fe[0] = f.mul(acc, fe[1]);
  F4 inv = vzero();
  for (int lane = 0; lane < 4; ++lane) {
    const Limbs l = split26(f.from_mont(f.mul(inv_fe[lane], vf.k520_fe)));
    vinsert_lane(inv, lane, l);
  }
  return inv;
}

/// Interleave factor of the batch-inverse chains. A lone prefix-product
/// chain is one long vmul dependency chain; kInvChains independent chains
/// walked in lockstep keep the multiplier ports busy instead.
constexpr std::size_t kInvChains = 4;

DFL_TARGET_AVX2 void inv_f4_list(const FieldCtx& f, const VecField& vf, const VConst& c,
                                 F4* w, std::size_t m, std::vector<F4>& pref_scratch) {
  if (m == 0) return;
  if (m == 1) {
    // Single-block batches hand w[0] straight to the scalar seed path, which
    // requires canonical limbs; one multiply by the vector-domain 1
    // normalizes a possibly-lazy input. Larger batches pass vmul outputs.
    w[0] = inv_f4_seed(f, vf, vmul(c, w[0], vone(c)));
    return;
  }
  pref_scratch.resize(m);
  F4* pref = pref_scratch.data();
  // Chain g owns the strided indices g, g+K, g+2K, ...: lockstep iteration
  // j touches K adjacent blocks, so the interleaved loop stays sequential
  // in memory.
  const std::size_t K = m < 2 * kInvChains ? 1 : kInvChains;
  for (std::size_t g = 0; g < K; ++g) pref[g] = w[g];
  for (std::size_t k = K; k < m; ++k) pref[k] = vmul(c, pref[k - K], w[k]);

  // Product of the K chain tails (tail of chain g is the largest index
  // congruent to g mod K), then one scalar-seeded inverse of the total.
  F4 tails[kInvChains];
  for (std::size_t g = 0; g < K; ++g) tails[g] = pref[m - 1 - (m - 1 - g) % K];
  F4 total = tails[0];
  for (std::size_t g = 1; g < K; ++g) total = vmul(c, total, tails[g]);
  F4 itop = inv_f4_seed(f, vf, total);

  // Peel per-chain inverses off the running inverse-of-suffix-product.
  F4 inv[kInvChains];
  for (std::size_t g = K; g-- > 1;) {
    F4 head = tails[0];
    for (std::size_t h = 1; h < g; ++h) head = vmul(c, head, tails[h]);
    inv[g] = vmul(c, itop, head);
    itop = vmul(c, itop, tails[g]);
  }
  inv[0] = itop;

  // Backward substitution, K chains in lockstep (independent vmuls).
  for (std::size_t k = m; k-- > K;) {
    const std::size_t g = k % K;
    const F4 orig = w[k];
    w[k] = vmul(c, inv[g], pref[k - K]);
    inv[g] = vmul(c, inv[g], orig);
  }
  for (std::size_t g = 0; g < K; ++g) w[g] = inv[g];
}

// ---------------------------------------------------------------------------
// FieldBatchOps: Fe-array boundary. add/sub never leave the 2^256 domain
// (splitting commutes with the shared Montgomery factor); mul/sqr fold the
// domain fixup into one extra vmul; inv converts through the vector domain.
// Tails shorter than a vector go through the scalar FieldCtx — both paths
// produce the unique canonical representative, so results are identical.
// ---------------------------------------------------------------------------

DFL_TARGET_AVX2 void load_fe_block(const Fe* a, std::size_t i, std::size_t n, F4& out) {
  Limbs l[4];
  for (std::size_t k = 0; k < 4; ++k) {
    l[k] = split26(a[i + k < n ? i + k : n - 1].raw);
  }
  out = vload4(l[0].data(), l[1].data(), l[2].data(), l[3].data());
}

DFL_TARGET_AVX2 void store_fe_block(const F4& v, Fe* out, std::size_t i, std::size_t n) {
  Limbs l[4];
  vstore4(v, l[0].data(), l[1].data(), l[2].data(), l[3].data());
  for (std::size_t k = 0; k < 4 && i + k < n; ++k) {
    out[i + k] = Fe{join26(l[k])};
  }
}

DFL_TARGET_AVX2 void avx2_add(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out,
                              std::size_t n) {
  const VConst c = vconst(vec_field(f));
  for (std::size_t i = 0; i < n; i += 4) {
    F4 va, vb;
    load_fe_block(a, i, n, va);
    load_fe_block(b, i, n, vb);
    store_fe_block(vadd(c, va, vb), out, i, n);
  }
}

DFL_TARGET_AVX2 void avx2_sub(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out,
                              std::size_t n) {
  const VConst c = vconst(vec_field(f));
  for (std::size_t i = 0; i < n; i += 4) {
    F4 va, vb;
    load_fe_block(a, i, n, va);
    load_fe_block(b, i, n, vb);
    store_fe_block(vsub(c, va, vb), out, i, n);
  }
}

DFL_TARGET_AVX2 void avx2_mul(const FieldCtx& f, const Fe* a, const Fe* b, Fe* out,
                              std::size_t n) {
  const VecField& vf = vec_field(f);
  const VConst c = vconst(vf);
  const F4 kin = vbroadcast(vf.kin26);
  for (std::size_t i = 0; i < n; i += 4) {
    F4 va, vb;
    load_fe_block(a, i, n, va);
    load_fe_block(b, i, n, vb);
    // a~ * b~ * 2^-260 sits at 2^252; one multiply by 2^264 restores 2^256.
    store_fe_block(vmul(c, vmul(c, va, vb), kin), out, i, n);
  }
}

DFL_TARGET_AVX2 void avx2_sqr(const FieldCtx& f, const Fe* a, Fe* out, std::size_t n) {
  avx2_mul(f, a, a, out, n);
}

DFL_TARGET_AVX2 void avx2_inv(const FieldCtx& f, const Fe* a, Fe* out, std::size_t n) {
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].raw.is_zero()) throw std::domain_error("batch inverse of zero element");
  }
  const VecField& vf = vec_field(f);
  const VConst c = vconst(vf);
  const F4 kin = vbroadcast(vf.kin26);
  const F4 kout = vbroadcast(vf.kout26);
  const std::size_t m = (n + 3) / 4;
  std::vector<F4> w(m);
  for (std::size_t k = 0; k < m; ++k) {
    F4 va;
    load_fe_block(a, k * 4, n, va);  // duplicated tail lanes are harmless
    w[k] = vmul(c, va, kin);         // lift raw (v * 2^256) to v * 2^260
  }
  std::vector<F4> pref;
  inv_f4_list(f, vf, c, w.data(), m, pref);
  for (std::size_t k = 0; k < m; ++k) {
    store_fe_block(vmul(c, w[k], kout), out, k * 4, n);  // back to v^-1 * 2^256
  }
}

// ---------------------------------------------------------------------------
// AVX-512 IFMA tier: 8-way field arithmetic over 5x52-bit limbs.
//
// vpmadd52{l,h}uq computes a 52x52->104-bit product and accumulates either
// half in one instruction, so a Montgomery multiply needs ~21 multiply ops
// per lane instead of ~107 on the AVX2 radix-2^26 path. The vector domain is
// the same value * 2^260 mod p (5 * 52 = 10 * 26 = 260 bits), so a 52-bit
// limb is just two adjacent 26-bit limbs packed together: both tiers share
// the bucket/pool storage, the scalar seed inversion, and the bucket fold,
// and flush_pairs dispatches per process after CPUID confirms IFMA support.
// ---------------------------------------------------------------------------

constexpr int kLimbs52 = 5;
constexpr std::uint64_t kMask52 = (std::uint64_t{1} << 52) - 1;

// alignas(64) for the same reason F4 carries alignas(32): the TU is compiled
// without -mavx512f, where __m512i alignment is not otherwise guaranteed.
struct alignas(64) F8 {
  __m512i l[kLimbs52];
};

struct alignas(64) VConst8 {
  __m512i mask;
  __m512i n0;  // -p^{-1} mod 2^52
  __m512i p[kLimbs52];
  __m512i p2[kLimbs52];  // 2p in redundant limbs, each >= 2^52 - 1 (lazy subtract)
  __m512i one[kLimbs52];
};

DFL_TARGET_IFMA inline VConst8 vconst8(const VecField& vf) {
  VConst8 c;
  c.mask = _mm512_set1_epi64(static_cast<long long>(kMask52));
  c.n0 = _mm512_set1_epi64(static_cast<long long>(vf.n0lo | (vf.n0hi << 26)));
  for (int j = 0; j < kLimbs52; ++j) {
    const std::uint64_t pj = vf.p26[2 * j] | (vf.p26[2 * j + 1] << 26);
    c.p[j] = _mm512_set1_epi64(static_cast<long long>(pj));
    // Same redundant-limb lift as the 26-bit VConst: borrow 2^52 down from
    // every higher limb so each limb dominates any canonical operand limb.
    const std::uint64_t lift = (j + 1 < kLimbs52 ? kMask52 + 1 : 0) - (j > 0 ? 1 : 0);
    c.p2[j] = _mm512_set1_epi64(static_cast<long long>(2 * pj + lift));
    c.one[j] =
        _mm512_set1_epi64(static_cast<long long>(vf.one26[2 * j] | (vf.one26[2 * j + 1] << 26)));
  }
  return c;
}

DFL_TARGET_IFMA inline F8 vone8(const VConst8& c) {
  F8 r;
  for (int j = 0; j < kLimbs52; ++j) r.l[j] = c.one[j];
  return r;
}

/// Two F4 blocks (26-bit limbs) -> one F8 block (52-bit limbs), same values.
DFL_TARGET_IFMA inline F8 f8_pack(const F4& lo, const F4& hi) {
  F8 r;
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) {
    // zext (not cast): the plain cast's undefined upper half trips
    // -Wuninitialized inside the intrinsic headers under -Werror builds.
    const __m512i e =
        _mm512_inserti64x4(_mm512_zextsi256_si512(lo.l[2 * j]), hi.l[2 * j], 1);
    const __m512i o =
        _mm512_inserti64x4(_mm512_zextsi256_si512(lo.l[2 * j + 1]), hi.l[2 * j + 1], 1);
    r.l[j] = _mm512_or_si512(e, _mm512_slli_epi64(o, 26));
  }
  return r;
}

/// Inverse of f8_pack; requires limb-normalized input (limbs < 2^52).
DFL_TARGET_IFMA inline void f8_unpack(const F8& v, F4& lo, F4& hi) {
  const __m512i m26 = _mm512_set1_epi64(static_cast<long long>(kMask26));
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) {
    const __m512i e = _mm512_and_si512(v.l[j], m26);
    const __m512i o = _mm512_srli_epi64(v.l[j], 26);
    lo.l[2 * j] = _mm512_castsi512_si256(e);
    hi.l[2 * j] = _mm512_extracti64x4_epi64(e, 1);
    lo.l[2 * j + 1] = _mm512_castsi512_si256(o);
    hi.l[2 * j + 1] = _mm512_extracti64x4_epi64(o, 1);
  }
}

DFL_TARGET_IFMA inline F8 vcond_sub8_p(const VConst8& c, const __m512i t[kLimbs52]) {
  __m512i d[kLimbs52];
  __m512i borrow = _mm512_setzero_si512();
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) {
    const __m512i x = _mm512_sub_epi64(t[j], _mm512_add_epi64(c.p[j], borrow));
    borrow = _mm512_srli_epi64(x, 63);
    d[j] = _mm512_and_si512(x, c.mask);
  }
  const __mmask8 take_d = _mm512_cmpeq_epi64_mask(borrow, _mm512_setzero_si512());
  F8 r;
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) r.l[j] = _mm512_mask_blend_epi64(take_d, t[j], d[j]);
  return r;
}

/// Montgomery product: a * b * 2^-260 mod p, canonical output. Plain CIOS,
/// one limb per round: q = t0 * n0 mod 2^52 (madd52lo reads exactly the low
/// 52 bits of both operands, so the unreduced accumulator is fine), then
/// t += q*p zeroes the low limb and the round shifts down one position.
/// Inputs may be lazy (limbs < 2^52, value < 4p): the accumulators stay
/// under ~22 * 2^52 < 2^57 and the result is < p + 16p^2/2^260 < 2p for any
/// 256-bit modulus, which one conditional subtract makes canonical.
DFL_TARGET_IFMA inline F8 vmul8(const VConst8& c, const F8& a, const F8& b) {
  __m512i t[kLimbs52 + 1];
#pragma GCC unroll 6
  for (int j = 0; j <= kLimbs52; ++j) t[j] = _mm512_setzero_si512();
#pragma GCC unroll 5
  for (int i = 0; i < kLimbs52; ++i) {
    const __m512i ai = a.l[i];
#pragma GCC unroll 5
    for (int j = 0; j < kLimbs52; ++j) t[j] = _mm512_madd52lo_epu64(t[j], ai, b.l[j]);
#pragma GCC unroll 5
    for (int j = 0; j < kLimbs52; ++j)
      t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], ai, b.l[j]);
    const __m512i q = _mm512_madd52lo_epu64(_mm512_setzero_si512(), t[0], c.n0);
    t[0] = _mm512_madd52lo_epu64(t[0], q, c.p[0]);
    t[1] = _mm512_add_epi64(t[1], _mm512_srli_epi64(t[0], 52));
#pragma GCC unroll 4
    for (int j = 1; j < kLimbs52; ++j) t[j] = _mm512_madd52lo_epu64(t[j], q, c.p[j]);
#pragma GCC unroll 5
    for (int j = 0; j < kLimbs52; ++j)
      t[j + 1] = _mm512_madd52hi_epu64(t[j + 1], q, c.p[j]);
#pragma GCC unroll 5
    for (int j = 0; j < kLimbs52; ++j) t[j] = t[j + 1];
    t[kLimbs52] = _mm512_setzero_si512();
  }
#pragma GCC unroll 4
  for (int j = 0; j < kLimbs52 - 1; ++j) {
    t[j + 1] = _mm512_add_epi64(t[j + 1], _mm512_srli_epi64(t[j], 52));
    t[j] = _mm512_and_si512(t[j], c.mask);
  }
  return vcond_sub8_p(c, t);
}

/// a - b + 2p, limb-normalized but unreduced: value in (0, 3p), every limb
/// below 2^52 as vpmadd52 requires (it reads exactly 52 operand bits, so the
/// AVX2 tier's sweep-free lazy form would be silently truncated here).
DFL_TARGET_IFMA inline F8 vsub8_lazy(const VConst8& c, const F8& a, const F8& b) {
  F8 r;
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) {
    r.l[j] = _mm512_sub_epi64(_mm512_add_epi64(a.l[j], c.p2[j]), b.l[j]);
  }
#pragma GCC unroll 4
  for (int j = 0; j < kLimbs52 - 1; ++j) {
    r.l[j + 1] = _mm512_add_epi64(r.l[j + 1], _mm512_srli_epi64(r.l[j], 52));
    r.l[j] = _mm512_and_si512(r.l[j], c.mask);
  }
  return r;
}

/// a - b mod p, canonical inputs/output. AVX-512 has a real 64-bit
/// arithmetic shift, so the negative intermediate limbs of a + p - b
/// propagate directly.
DFL_TARGET_IFMA inline F8 vsub8(const VConst8& c, const F8& a, const F8& b) {
  __m512i t[kLimbs52];
#pragma GCC unroll 5
  for (int j = 0; j < kLimbs52; ++j) {
    t[j] = _mm512_add_epi64(a.l[j], _mm512_sub_epi64(c.p[j], b.l[j]));
  }
#pragma GCC unroll 4
  for (int j = 0; j < kLimbs52 - 1; ++j) {
    const __m512i carry = _mm512_srai_epi64(t[j], 52);
    t[j] = _mm512_and_si512(t[j], c.mask);
    t[j + 1] = _mm512_add_epi64(t[j + 1], carry);
  }
  return vcond_sub8_p(c, t);
}

/// 8-lane seed inverse: one scalar field inversion for the whole block via
/// Montgomery's trick, through the same conversion constants as the F4 seed.
DFL_TARGET_IFMA F8 inv_f8_seed(const FieldCtx& f, const VecField& vf, const F8& x) {
  F4 lo, hi;
  f8_unpack(x, lo, hi);
  Fe fe[8];
  for (int lane = 0; lane < 4; ++lane) {
    fe[lane] = f.to_mont(join26(vextract_lane(lo, lane)));
    fe[lane + 4] = f.to_mont(join26(vextract_lane(hi, lane)));
  }
  Fe pfx[8];
  pfx[0] = fe[0];
  for (int i = 1; i < 8; ++i) pfx[i] = f.mul(pfx[i - 1], fe[i]);
  Fe acc = f.inv(pfx[7]);
  Fe inv_fe[8];
  for (int i = 7; i >= 1; --i) {
    inv_fe[i] = f.mul(acc, pfx[i - 1]);
    acc = f.mul(acc, fe[i]);
  }
  inv_fe[0] = acc;
  F4 ilo = vzero();
  F4 ihi = vzero();
  for (int lane = 0; lane < 4; ++lane) {
    vinsert_lane(ilo, lane, split26(f.from_mont(f.mul(inv_fe[lane], vf.k520_fe))));
    vinsert_lane(ihi, lane, split26(f.from_mont(f.mul(inv_fe[lane + 4], vf.k520_fe))));
  }
  return f8_pack(ilo, ihi);
}

/// F8 mirror of inv_f4_list: interleaved prefix chains, one scalar-seeded
/// inverse of the chain-tail product, backward substitution.
DFL_TARGET_IFMA void inv_f8_list(const FieldCtx& f, const VecField& vf, const VConst8& c,
                                 F8* w, std::size_t m, std::vector<F8>& pref_scratch) {
  if (m == 0) return;
  if (m == 1) {
    // The scalar seed path needs canonical limbs; a multiply by the
    // vector-domain 1 normalizes a possibly-lazy single block.
    w[0] = inv_f8_seed(f, vf, vmul8(c, w[0], vone8(c)));
    return;
  }
  pref_scratch.resize(m);
  F8* pref = pref_scratch.data();
  const std::size_t K = m < 2 * kInvChains ? 1 : kInvChains;
  for (std::size_t g = 0; g < K; ++g) pref[g] = w[g];
  for (std::size_t k = K; k < m; ++k) pref[k] = vmul8(c, pref[k - K], w[k]);

  F8 tails[kInvChains];
  for (std::size_t g = 0; g < K; ++g) tails[g] = pref[m - 1 - (m - 1 - g) % K];
  F8 total = tails[0];
  for (std::size_t g = 1; g < K; ++g) total = vmul8(c, total, tails[g]);
  F8 itop = inv_f8_seed(f, vf, total);

  F8 inv[kInvChains];
  for (std::size_t g = K; g-- > 1;) {
    F8 head = tails[0];
    for (std::size_t h = 1; h < g; ++h) head = vmul8(c, head, tails[h]);
    inv[g] = vmul8(c, itop, head);
    itop = vmul8(c, itop, tails[g]);
  }
  inv[0] = itop;

  for (std::size_t k = m; k-- > K;) {
    const std::size_t g = k % K;
    const F8 orig = w[k];
    w[k] = vmul8(c, inv[g], pref[k - K]);
    inv[g] = vmul8(c, inv[g], orig);
  }
  for (std::size_t g = 0; g < K; ++g) w[g] = inv[g];
}

/// True once CPUID confirms the full AVX-512 feature set the IFMA tier is
/// compiled against. DFL_FORCE_ISA=avx2 pins the narrower tier (differential
/// tests and apples-to-apples benchmarks).
bool ifma_supported() {
  static const bool ok = [] {
    if (const char* e = std::getenv("DFL_FORCE_ISA")) {
      if (std::strcmp(e, "avx2") == 0) return false;
    }
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512ifma") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 && __builtin_cpu_supports("avx512bw") != 0;
  }();
  return ok;
}

// ---------------------------------------------------------------------------
// Vectorized MSM: signed-digit windows into batched-affine buckets.
//
// Schedule: instead of serializing additions into each bucket, the pairs
// of each bucket are combined as a balanced tree — bucket-sort the window's
// (point, bucket) items, then repeatedly pair up adjacent items of every
// bucket. All chord additions of one tree level are independent, so they
// fill arbitrarily large inversion batches with zero conflict bookkeeping,
// and the total work is exactly (items - occupied buckets) additions.
// Chord adds keep everything affine; the rare equal-x pairs (doubling or
// cancellation) divert to per-bucket Jacobian spill accumulators.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kScratchBit = 0x80000000u;  // item lives in the scratch pool
constexpr std::uint32_t kNegBit = 0x40000000u;      // base item enters negated
constexpr std::uint32_t kIndexMask = 0x3fffffffu;
constexpr std::size_t kVecBatch = 4096;  // pairs per inversion batch (one scalar inv each)

struct PairJob {
  const std::uint64_t* ax;
  const std::uint64_t* ay;
  const std::uint64_t* bx;
  const std::uint64_t* by;
  std::uint64_t* ox;
  std::uint64_t* oy;
};

/// Reused across windows; all vector-element containers are only touched
/// inside target("avx2") functions.
struct MsmScratch {
  std::vector<std::uint32_t> cnt, cnt2;    // per-bucket item counts
  std::vector<std::uint32_t> offs, offs2;  // per-bucket start offsets
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> items, next;  // item codes, bucket-sorted
  std::vector<std::uint64_t> pool_x, pool_y;  // chord outputs, 10 limbs each
  std::size_t pool_used = 0;
  std::vector<PairJob> pending;
  std::vector<F4> ga_x, ga_y, gb_x, gb_y, gdx;  // gathered pair blocks (avx2 tier)
  std::vector<F4> inv_pref;
  std::vector<F8> ha_x, ha_y, hb_x, hb_y, hdx;  // gathered pair blocks (ifma tier)
  std::vector<F8> inv_pref8;
  std::vector<std::uint64_t> bx, by;  // final bucket coords (B * 10)
  std::vector<std::uint8_t> filled;
  std::vector<JacobianPoint> spill;
  std::vector<std::uint32_t> spill_ids;
  bool spill_live = false;
};

const std::uint64_t* item_x(const NativeBases& bases, const MsmScratch& S, std::uint32_t code) {
  const std::size_t i = (code & kIndexMask) * std::size_t{kLimbs};
  return (code & kScratchBit) != 0 ? &S.pool_x[i] : &bases.x[i];
}

const std::uint64_t* item_y(const NativeBases& bases, const MsmScratch& S, std::uint32_t code) {
  const std::size_t i = (code & kIndexMask) * std::size_t{kLimbs};
  if ((code & kScratchBit) != 0) return &S.pool_y[i];
  return (code & kNegBit) != 0 ? &bases.yneg[i] : &bases.y[i];
}

/// Item -> scalar affine point, for the rare spill path.
AffinePoint item_affine(const FieldCtx& f, const VecField& vf, const AffinePoint* affine,
                        const MsmScratch& S, std::uint32_t code) {
  if ((code & kScratchBit) != 0) {
    const std::size_t i = (code & kIndexMask) * std::size_t{kLimbs};
    return AffinePoint{native_to_fe(f, vf, &S.pool_x[i]), native_to_fe(f, vf, &S.pool_y[i]),
                       false};
  }
  AffinePoint q = affine[code & kIndexMask];
  if ((code & kNegBit) != 0) q.y = f.neg(q.y);
  return q;
}

void spill_add(const Curve& curve, MsmScratch& S, std::size_t nbuckets, std::uint32_t bucket,
               const JacobianPoint& p) {
  if (!S.spill_live) {
    S.spill.assign(nbuckets, curve.infinity());
    S.spill_ids.clear();
    S.spill_live = true;
  }
  if (curve.is_infinity(S.spill[bucket])) S.spill_ids.push_back(bucket);
  S.spill[bucket] = curve.add(S.spill[bucket], p);
}

/// Runs the gathered chord additions: one batched inversion of all dx,
/// then lambda = dy/dx, x3 = lambda^2 - x1 - x2, y3 = lambda*(x1-x3) - y1.
/// Callers guarantee dx != 0 (equal-x pairs were diverted to spill).
///
/// Pass structure: every loop iteration carries only a SHORT dependency
/// chain (at most one vmul deep), because one vmul alone overflows the
/// reorder window — chaining several per iteration would serialize them at
/// full latency. Sweeping the scratch multiple times costs less than that:
/// the kernels here are uop-bound, not memory-bound (a fused two-sweep
/// variant with a five-vmul chain per block measured ~20% slower).
DFL_TARGET_AVX2 void flush_pairs_avx2(const FieldCtx& f, const VecField& vf, MsmScratch& S) {
  const std::size_t m = S.pending.size();
  if (m == 0) return;
  const VConst c = vconst(vf);
  const std::size_t m4 = (m + 3) / 4;
  S.ga_x.resize(m4);
  S.ga_y.resize(m4);
  S.gb_x.resize(m4);
  S.gb_y.resize(m4);
  S.gdx.resize(m4);
  for (std::size_t k = 0; k < m4; ++k) {
    // Pair coordinates live at bucket-sorted (i.e. effectively random)
    // offsets; prefetch a few blocks ahead to overlap the misses with the
    // gather shuffles.
    if (4 * k + 19 < m) {
      for (std::size_t a = 16; a < 20; ++a) {
        const PairJob& pj = S.pending[4 * k + a];
        _mm_prefetch(reinterpret_cast<const char*>(pj.ax), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.ay), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.bx), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.by), _MM_HINT_T0);
      }
    }
    const PairJob* j[4];
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const std::size_t idx = 4 * k + lane;
      j[lane] = &S.pending[idx < m ? idx : m - 1];  // duplicated pad lanes keep dx nonzero
    }
    S.ga_x[k] = vload4(j[0]->ax, j[1]->ax, j[2]->ax, j[3]->ax);
    S.ga_y[k] = vload4(j[0]->ay, j[1]->ay, j[2]->ay, j[3]->ay);
    S.gb_x[k] = vload4(j[0]->bx, j[1]->bx, j[2]->bx, j[3]->bx);
    S.gb_y[k] = vload4(j[0]->by, j[1]->by, j[2]->by, j[3]->by);
    S.gdx[k] = vsub_lazy(c, S.gb_x[k], S.ga_x[k]);  // only ever a vmul operand
  }
  inv_f4_list(f, vf, c, S.gdx.data(), m4, S.inv_pref);
  for (std::size_t k = 0; k < m4; ++k) {
    S.gdx[k] = vmul(c, vsub_lazy(c, S.gb_y[k], S.ga_y[k]), S.gdx[k]);  // lambda
  }
  for (std::size_t k = 0; k < m4; ++k) {
    // x3 overwrites b.x (consumed here); y3 still needs a.x, a.y, lambda.
    S.gb_x[k] = vsub(c, vsub(c, vmul(c, S.gdx[k], S.gdx[k]), S.ga_x[k]), S.gb_x[k]);
  }
  for (std::size_t k = 0; k < m4; ++k) {
    const F4 y3 = vsub(c, vmul(c, S.gdx[k], vsub_lazy(c, S.ga_x[k], S.gb_x[k])), S.ga_y[k]);
    std::uint64_t* ox[4];
    std::uint64_t* oy[4];
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const std::size_t idx = 4 * k + lane;
      ox[lane] = idx < m ? S.pending[idx].ox : nullptr;
      oy[lane] = idx < m ? S.pending[idx].oy : nullptr;
    }
    vstore4(S.gb_x[k], ox[0], ox[1], ox[2], ox[3]);
    vstore4(y3, oy[0], oy[1], oy[2], oy[3]);
  }
  S.pending.clear();
}

/// IFMA-tier twin of flush_pairs_avx2: identical pass structure over 8-lane
/// blocks, with the 26-bit pool/bucket storage packed into 52-bit limbs at
/// the gather and unpacked at the scatter.
DFL_TARGET_IFMA void flush_pairs_ifma(const FieldCtx& f, const VecField& vf, MsmScratch& S) {
  const std::size_t m = S.pending.size();
  if (m == 0) return;
  const VConst8 c = vconst8(vf);
  const std::size_t m8 = (m + 7) / 8;
  S.ha_x.resize(m8);
  S.ha_y.resize(m8);
  S.hb_x.resize(m8);
  S.hb_y.resize(m8);
  S.hdx.resize(m8);
  for (std::size_t k = 0; k < m8; ++k) {
    if (8 * k + 31 < m) {
      for (std::size_t a = 24; a < 32; ++a) {
        const PairJob& pj = S.pending[8 * k + a];
        _mm_prefetch(reinterpret_cast<const char*>(pj.ax), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.ay), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.bx), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(pj.by), _MM_HINT_T0);
      }
    }
    const PairJob* j[8];
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const std::size_t idx = 8 * k + lane;
      j[lane] = &S.pending[idx < m ? idx : m - 1];  // duplicated pad lanes keep dx nonzero
    }
    S.ha_x[k] = f8_pack(vload4(j[0]->ax, j[1]->ax, j[2]->ax, j[3]->ax),
                        vload4(j[4]->ax, j[5]->ax, j[6]->ax, j[7]->ax));
    S.ha_y[k] = f8_pack(vload4(j[0]->ay, j[1]->ay, j[2]->ay, j[3]->ay),
                        vload4(j[4]->ay, j[5]->ay, j[6]->ay, j[7]->ay));
    S.hb_x[k] = f8_pack(vload4(j[0]->bx, j[1]->bx, j[2]->bx, j[3]->bx),
                        vload4(j[4]->bx, j[5]->bx, j[6]->bx, j[7]->bx));
    S.hb_y[k] = f8_pack(vload4(j[0]->by, j[1]->by, j[2]->by, j[3]->by),
                        vload4(j[4]->by, j[5]->by, j[6]->by, j[7]->by));
    S.hdx[k] = vsub8_lazy(c, S.hb_x[k], S.ha_x[k]);
  }
  inv_f8_list(f, vf, c, S.hdx.data(), m8, S.inv_pref8);
  for (std::size_t k = 0; k < m8; ++k) {
    S.hdx[k] = vmul8(c, vsub8_lazy(c, S.hb_y[k], S.ha_y[k]), S.hdx[k]);  // lambda
  }
  for (std::size_t k = 0; k < m8; ++k) {
    S.hb_x[k] = vsub8(c, vsub8(c, vmul8(c, S.hdx[k], S.hdx[k]), S.ha_x[k]), S.hb_x[k]);
  }
  for (std::size_t k = 0; k < m8; ++k) {
    const F8 y3 =
        vsub8(c, vmul8(c, S.hdx[k], vsub8_lazy(c, S.ha_x[k], S.hb_x[k])), S.ha_y[k]);
    F4 xlo, xhi, ylo, yhi;
    f8_unpack(S.hb_x[k], xlo, xhi);
    f8_unpack(y3, ylo, yhi);
    std::uint64_t* ox[8];
    std::uint64_t* oy[8];
    for (std::size_t lane = 0; lane < 8; ++lane) {
      const std::size_t idx = 8 * k + lane;
      ox[lane] = idx < m ? S.pending[idx].ox : nullptr;
      oy[lane] = idx < m ? S.pending[idx].oy : nullptr;
    }
    vstore4(xlo, ox[0], ox[1], ox[2], ox[3]);
    vstore4(xhi, ox[4], ox[5], ox[6], ox[7]);
    vstore4(ylo, oy[0], oy[1], oy[2], oy[3]);
    vstore4(yhi, oy[4], oy[5], oy[6], oy[7]);
  }
  S.pending.clear();
}

/// Per-process ISA dispatch between the two flush kernels. Everything
/// around the flush (sorting, pairing, spill, fold) is tier-agnostic.
void flush_pairs(const FieldCtx& f, const VecField& vf, MsmScratch& S) {
  if (ifma_supported()) {
    flush_pairs_ifma(f, vf, S);
  } else {
    flush_pairs_avx2(f, vf, S);
  }
}

}  // namespace

DFL_TARGET_AVX2 static void prepare_bases_impl(const VecField& vf,
                                               const std::vector<AffinePoint>& points,
                                               NativeBases& nb) {
  const VConst c = vconst(vf);
  const F4 kin = vbroadcast(vf.kin26);
  const std::size_t n = points.size();
  const Fe zero{};
  for (std::size_t i = 0; i < n; i += 4) {
    Limbs lx[4], ly[4];
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const std::size_t idx = i + lane < n ? i + lane : n - 1;
      const bool inf = points[idx].infinity;
      lx[lane] = split26(inf ? zero.raw : points[idx].x.raw);
      ly[lane] = split26(inf ? zero.raw : points[idx].y.raw);
    }
    const F4 vx = vmul(c, vload4(lx[0].data(), lx[1].data(), lx[2].data(), lx[3].data()), kin);
    const F4 vy = vmul(c, vload4(ly[0].data(), ly[1].data(), ly[2].data(), ly[3].data()), kin);
    const F4 vyn = vsub(c, vzero(), vy);
    std::uint64_t* px[4];
    std::uint64_t* py[4];
    std::uint64_t* pn[4];
    for (std::size_t lane = 0; lane < 4; ++lane) {
      const bool ok = i + lane < n;
      px[lane] = ok ? &nb.x[(i + lane) * kLimbs] : nullptr;
      py[lane] = ok ? &nb.y[(i + lane) * kLimbs] : nullptr;
      pn[lane] = ok ? &nb.yneg[(i + lane) * kLimbs] : nullptr;
    }
    vstore4(vx, px[0], px[1], px[2], px[3]);
    vstore4(vy, py[0], py[1], py[2], py[3]);
    vstore4(vyn, pn[0], pn[1], pn[2], pn[3]);
  }
  for (std::size_t i = 0; i < n; ++i) nb.inf[i] = points[i].infinity ? 1 : 0;
}

NativeBases prepare_bases(const Curve& curve, const std::vector<AffinePoint>& points) {
  NativeBases nb;
  nb.count = points.size();
  nb.x.resize(nb.count * kLimbs);
  nb.y.resize(nb.count * kLimbs);
  nb.yneg.resize(nb.count * kLimbs);
  nb.inf.resize(nb.count);
  if (nb.count > 0) prepare_bases_impl(vec_field(curve.fp()), points, nb);
  return nb;
}

namespace {

// ---------------------------------------------------------------------------
// Lane-parallel bucket fold. The B buckets split into four contiguous
// segments of s = B/4; lane g runs the classic running-sum fold over its
// segment (digits g*s+1 .. g*s+s), producing W_g = sum_k k*bucket and the
// plain segment sum S_g. The window total is
//   sum_g W_g + s * (S_1 + 2*S_2 + 3*S_3).
// Vector Jacobian adds compute the general case on all lanes and blend in
// the exceptional ones; the genuinely rare doubling lanes (running sum
// collides with a bucket point) fall back to scalar via the conversion
// helpers.
// ---------------------------------------------------------------------------

struct J4 {
  F4 x, y, z;
};

DFL_TARGET_AVX2 Fe lane_to_fe(const FieldCtx& f, const VecField& vf, const F4& v, int lane) {
  return f.mul(Fe{join26(vextract_lane(v, lane))}, vf.conv_out_fe);
}

DFL_TARGET_AVX2 JacobianPoint j4_lane(const FieldCtx& f, const VecField& vf, const J4& p,
                                      int lane) {
  return JacobianPoint{lane_to_fe(f, vf, p.x, lane), lane_to_fe(f, vf, p.y, lane),
                       lane_to_fe(f, vf, p.z, lane)};
}

DFL_TARGET_AVX2 void j4_set_lane(const FieldCtx& f, const VecField& vf, J4& p, int lane,
                                 const JacobianPoint& q) {
  vinsert_lane(p.x, lane, split26(f.from_mont(f.mul(q.x, vf.conv_in_fe))));
  vinsert_lane(p.y, lane, split26(f.from_mont(f.mul(q.y, vf.conv_in_fe))));
  vinsert_lane(p.z, lane, split26(f.from_mont(f.mul(q.z, vf.conv_in_fe))));
}

DFL_TARGET_AVX2 inline int lane_mask_bits(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

/// r += (ax, ay) on `valid` lanes (mixed add, affine operand never
/// infinity). Invalid lanes may carry arbitrary canonical values.
DFL_TARGET_AVX2 void j4_madd(const Curve& curve, const FieldCtx& f, const VecField& vf,
                             const VConst& c, J4& r, const F4& ax, const F4& ay,
                             __m256i valid) {
  const F4 z1z1 = vmul(c, r.z, r.z);
  const F4 u2 = vmul(c, ax, z1z1);
  const F4 s2 = vmul(c, ay, vmul(c, r.z, z1z1));
  const F4 h = vsub(c, u2, r.x);
  const F4 rr = vsub(c, s2, r.y);
  const F4 h2 = vmul(c, h, h);
  const F4 h3 = vmul(c, h2, h);
  const F4 v = vmul(c, r.x, h2);
  F4 x3 = vsub(c, vsub(c, vmul(c, rr, rr), h3), vadd(c, v, v));
  F4 y3 = vsub(c, vmul(c, rr, vsub(c, v, x3)), vmul(c, r.y, h3));
  F4 z3 = vmul(c, r.z, h);

  const __m256i rz0 = vis_zero(r.z);
  const __m256i h0 = _mm256_andnot_si256(rz0, vis_zero(h));
  const __m256i r0 = vis_zero(rr);
  const __m256i cancel = _mm256_andnot_si256(r0, h0);
  const __m256i dblm = _mm256_and_si256(_mm256_and_si256(h0, r0), valid);

  // Doubling lanes (r equals the affine point): snapshot before writeback.
  const int rare = lane_mask_bits(dblm);
  JacobianPoint fix[4];
  if (rare != 0) {
    for (int lane = 0; lane < 4; ++lane) {
      if (((rare >> lane) & 1) != 0) fix[lane] = curve.dbl(j4_lane(f, vf, r, lane));
    }
  }

  x3 = vselect(rz0, ax, x3);
  y3 = vselect(rz0, ay, y3);
  z3 = vselect(rz0, vone(c), z3);
  z3 = vselect(cancel, vzero(), z3);  // r == -point: result is infinity
  r.x = vselect(valid, x3, r.x);
  r.y = vselect(valid, y3, r.y);
  r.z = vselect(valid, z3, r.z);

  if (rare != 0) {
    for (int lane = 0; lane < 4; ++lane) {
      if (((rare >> lane) & 1) != 0) j4_set_lane(f, vf, r, lane, fix[lane]);
    }
  }
}

/// w += r per lane (full Jacobian add; lanes with r == infinity skip).
DFL_TARGET_AVX2 void j4_add(const Curve& curve, const FieldCtx& f, const VecField& vf,
                            const VConst& c, J4& w, const J4& r) {
  const __m256i skip = vis_zero(r.z);
  const int live = lane_mask_bits(skip);
  if (live == 0xf) return;
  const __m256i apply = _mm256_xor_si256(skip, _mm256_set1_epi64x(-1));
  const __m256i winf = _mm256_and_si256(apply, vis_zero(w.z));

  const F4 z1z1 = vmul(c, w.z, w.z);
  const F4 z2z2 = vmul(c, r.z, r.z);
  const F4 u1 = vmul(c, w.x, z2z2);
  const F4 u2 = vmul(c, r.x, z1z1);
  const F4 s1 = vmul(c, w.y, vmul(c, r.z, z2z2));
  const F4 s2 = vmul(c, r.y, vmul(c, w.z, z1z1));
  const F4 h = vsub(c, u2, u1);
  const F4 rr = vsub(c, s2, s1);
  const F4 h2 = vmul(c, h, h);
  const F4 h3 = vmul(c, h2, h);
  const F4 v = vmul(c, u1, h2);
  F4 x3 = vsub(c, vsub(c, vmul(c, rr, rr), h3), vadd(c, v, v));
  F4 y3 = vsub(c, vmul(c, rr, vsub(c, v, x3)), vmul(c, s1, h3));
  F4 z3 = vmul(c, vmul(c, w.z, r.z), h);

  const __m256i gen = _mm256_andnot_si256(winf, apply);
  const __m256i h0 = _mm256_and_si256(gen, vis_zero(h));
  const __m256i r0 = vis_zero(rr);
  const __m256i cancel = _mm256_andnot_si256(r0, h0);
  const __m256i dblm = _mm256_and_si256(h0, r0);

  const int rare = lane_mask_bits(dblm);
  JacobianPoint fix[4];
  if (rare != 0) {
    for (int lane = 0; lane < 4; ++lane) {
      // w and r are the same point on these lanes.
      if (((rare >> lane) & 1) != 0) fix[lane] = curve.dbl(j4_lane(f, vf, w, lane));
    }
  }

  x3 = vselect(winf, r.x, x3);
  y3 = vselect(winf, r.y, y3);
  z3 = vselect(winf, r.z, z3);
  z3 = vselect(cancel, vzero(), z3);
  w.x = vselect(apply, x3, w.x);
  w.y = vselect(apply, y3, w.y);
  w.z = vselect(apply, z3, w.z);

  if (rare != 0) {
    for (int lane = 0; lane < 4; ++lane) {
      if (((rare >> lane) & 1) != 0) j4_set_lane(f, vf, w, lane, fix[lane]);
    }
  }
}

DFL_TARGET_AVX2 JacobianPoint fold_buckets(const Curve& curve, const FieldCtx& f,
                                           const VecField& vf, MsmScratch& S,
                                           std::size_t nbuckets) {
  const VConst c = vconst(vf);
  const std::size_t s = nbuckets / 4;
  J4 run, wgt;
  run.x = run.y = vone(c);
  run.z = vzero();
  wgt = run;
  for (std::size_t k = s; k >= 1; --k) {
    std::size_t idx[4];
    const std::uint64_t* px[4];
    const std::uint64_t* py[4];
    long long fill[4];
    for (std::size_t g = 0; g < 4; ++g) {
      idx[g] = g * s + k - 1;
      px[g] = &S.bx[idx[g] * kLimbs];
      py[g] = &S.by[idx[g] * kLimbs];
      fill[g] = S.filled[idx[g]] != 0 ? -1 : 0;
    }
    const __m256i valid = _mm256_set_epi64x(fill[3], fill[2], fill[1], fill[0]);
    const F4 ax = vload4(px[0], px[1], px[2], px[3]);
    const F4 ay = vload4(py[0], py[1], py[2], py[3]);
    j4_madd(curve, f, vf, c, run, ax, ay, valid);
    j4_add(curve, f, vf, c, wgt, run);
  }
  JacobianPoint total = curve.infinity();
  JacobianPoint seg[4];
  for (int lane = 0; lane < 4; ++lane) {
    total = curve.add(total, j4_lane(f, vf, wgt, lane));
    seg[lane] = j4_lane(f, vf, run, lane);
  }
  // s * (S_1 + 2*S_2 + 3*S_3) = s*S_1 + 2s*(S_2 + S_3) + s*S_3, computed as
  // ((S_2 + S_3) doubled once, plus S_1 plus S_3) doubled log2(s) times.
  JacobianPoint t = curve.add(seg[2], seg[3]);
  t = curve.dbl(t);
  t = curve.add(t, seg[1]);
  t = curve.add(t, seg[3]);
  if (!curve.is_infinity(t)) {
    for (std::size_t sh = s; sh > 1; sh >>= 1) t = curve.dbl(t);
  }
  return curve.add(total, t);
}

/// One signed-digit window: bucket-sort the items, reduce every bucket by
/// pairwise tree levels, then fold.
JacobianPoint accumulate_window(const Curve& curve, const FieldCtx& f, const VecField& vf,
                                const NativeBases& bases, const AffinePoint* affine,
                                const std::vector<std::int16_t>& digits, int w, int windows,
                                std::size_t nbuckets,
                                const std::vector<std::uint8_t>* negate, MsmScratch& S) {
  const std::size_t n = digits.size() / static_cast<std::size_t>(windows);
  S.cnt.assign(nbuckets, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = digits[i * static_cast<std::size_t>(windows) + static_cast<std::size_t>(w)];
    if (d == 0 || bases.inf[i] != 0) continue;
    ++S.cnt[static_cast<std::size_t>(std::abs(d)) - 1];
    ++total;
  }
  S.spill_live = false;
  if (total == 0) return curve.infinity();

  S.offs.resize(nbuckets);
  std::uint32_t off = 0;
  std::uint32_t maxcnt = 0;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    S.offs[b] = off;
    off += S.cnt[b];
    maxcnt = std::max(maxcnt, S.cnt[b]);
  }
  S.cursor.assign(S.offs.begin(), S.offs.end());
  S.items.resize(total);
  for (std::size_t i = 0; i < n; ++i) {
    const int d = digits[i * static_cast<std::size_t>(windows) + static_cast<std::size_t>(w)];
    if (d == 0 || bases.inf[i] != 0) continue;
    bool neg = d < 0;
    if (negate != nullptr && (*negate)[i] != 0) neg = !neg;
    const std::size_t b = static_cast<std::size_t>(std::abs(d)) - 1;
    S.items[S.cursor[b]++] = static_cast<std::uint32_t>(i) | (neg ? kNegBit : 0);
  }

  S.pool_x.resize(total * kLimbs);
  S.pool_y.resize(total * kLimbs);
  S.pool_used = 0;
  S.pending.clear();

  while (maxcnt > 1) {
    S.next.clear();
    S.offs2.resize(nbuckets);
    S.cnt2.resize(nbuckets);
    maxcnt = 0;
    for (std::size_t b = 0; b < nbuckets; ++b) {
      const std::uint32_t cb = S.cnt[b];
      const std::uint32_t base = S.offs[b];
      S.offs2[b] = static_cast<std::uint32_t>(S.next.size());
      for (std::uint32_t j = 0; j + 1 < cb; j += 2) {
        const std::uint32_t ea = S.items[base + j];
        const std::uint32_t eb = S.items[base + j + 1];
        const std::uint64_t* ax = item_x(bases, S, ea);
        const std::uint64_t* bx = item_x(bases, S, eb);
        if (std::memcmp(ax, bx, kLimbs * sizeof(std::uint64_t)) == 0) {
          // Doubling or cancellation: divert the whole pair to the spill.
          const AffinePoint pa = item_affine(f, vf, affine, S, ea);
          const AffinePoint pb = item_affine(f, vf, affine, S, eb);
          spill_add(curve, S, nbuckets, static_cast<std::uint32_t>(b),
                    curve.add_mixed(curve.to_jacobian(pa), pb));
          continue;
        }
        const std::size_t slot = S.pool_used++;
        S.pending.push_back(PairJob{ax, item_y(bases, S, ea), bx, item_y(bases, S, eb),
                                    &S.pool_x[slot * kLimbs], &S.pool_y[slot * kLimbs]});
        S.next.push_back(static_cast<std::uint32_t>(slot) | kScratchBit);
        if (S.pending.size() >= kVecBatch) flush_pairs(f, vf, S);
      }
      if ((cb & 1) != 0) S.next.push_back(S.items[base + cb - 1]);
      S.cnt2[b] = static_cast<std::uint32_t>(S.next.size()) - S.offs2[b];
      maxcnt = std::max(maxcnt, S.cnt2[b]);
    }
    flush_pairs(f, vf, S);
    S.items.swap(S.next);
    S.offs.swap(S.offs2);
    S.cnt.swap(S.cnt2);
  }

  S.bx.assign(nbuckets * kLimbs, 0);
  S.by.assign(nbuckets * kLimbs, 0);
  S.filled.assign(nbuckets, 0);
  for (std::size_t b = 0; b < nbuckets; ++b) {
    if (S.cnt[b] == 0) continue;
    const std::uint32_t code = S.items[S.offs[b]];
    std::memcpy(&S.bx[b * kLimbs], item_x(bases, S, code), kLimbs * sizeof(std::uint64_t));
    std::memcpy(&S.by[b * kLimbs], item_y(bases, S, code), kLimbs * sizeof(std::uint64_t));
    S.filled[b] = 1;
  }

  JacobianPoint out = fold_buckets(curve, f, vf, S, nbuckets);

  if (S.spill_live) {
    // sum_j d_j * spill_j over occupied spill buckets, descending digits:
    // run_j = spill_{d_1} + ... + spill_{d_j} contributes (d_j - d_{j+1})
    // copies, with a sentinel digit 0 at the end.
    std::sort(S.spill_ids.begin(), S.spill_ids.end(), std::greater<std::uint32_t>());
    JacobianPoint run = curve.infinity();
    for (std::size_t j = 0; j < S.spill_ids.size(); ++j) {
      const std::uint32_t d = S.spill_ids[j] + 1;
      const std::uint32_t dnext = j + 1 < S.spill_ids.size() ? S.spill_ids[j + 1] + 1 : 0;
      run = curve.add(run, S.spill[S.spill_ids[j]]);
      // run * (d - dnext) by double-and-add; gaps are small integers.
      std::uint32_t gap = d - dnext;
      JacobianPoint acc = curve.infinity();
      JacobianPoint doubling = run;
      while (gap != 0) {
        if ((gap & 1) != 0) acc = curve.add(acc, doubling);
        gap >>= 1;
        if (gap != 0) doubling = curve.dbl(doubling);
      }
      out = curve.add(out, acc);
    }
  }
  return out;
}

}  // namespace

bool compiled() { return true; }

const char* isa() { return ifma_supported() ? "avx512ifma" : "avx2"; }

const FieldBatchOps& field_ops() {
  static const FieldBatchOps ops{&avx2_add, &avx2_sub, &avx2_mul, &avx2_sqr, &avx2_inv};
  return ops;
}

JacobianPoint msm_native(const Curve& curve, const NativeBases& bases,
                         const AffinePoint* affine, const std::vector<std::int16_t>& digits,
                         int c, int windows, const std::vector<std::uint8_t>* negate) {
  const FieldCtx& f = curve.fp();
  const VecField& vf = vec_field(f);
  const std::size_t nbuckets = std::size_t{1} << (c - 1);
  if (nbuckets % 4 != 0) {
    throw std::invalid_argument("msm_native: window width must be at least 3 bits");
  }
  MsmScratch S;
  JacobianPoint result = curve.infinity();
  for (int w = windows - 1; w >= 0; --w) {
    if (!curve.is_infinity(result)) {
      for (int i = 0; i < c; ++i) result = curve.dbl(result);
    }
    result = curve.add(
        result, accumulate_window(curve, f, vf, bases, affine, digits, w, windows, nbuckets,
                                  negate, S));
  }
  return result;
}

}  // namespace dfl::crypto::avx2

#else  // !DFL_AVX2_REAL — stub for non-x86 builds of the avx2 configuration

#include <stdexcept>

namespace dfl::crypto::avx2 {

bool compiled() { return false; }

const char* isa() { return "scalar"; }

const FieldBatchOps& field_ops() {
  throw std::logic_error("avx2 backend not compiled on this architecture");
}

NativeBases prepare_bases(const Curve&, const std::vector<AffinePoint>&) {
  throw std::logic_error("avx2 backend not compiled on this architecture");
}

JacobianPoint msm_native(const Curve&, const NativeBases&, const AffinePoint*,
                         const std::vector<std::int16_t>&, int, int,
                         const std::vector<std::uint8_t>*) {
  throw std::logic_error("avx2 backend not compiled on this architecture");
}

}  // namespace dfl::crypto::avx2

#endif  // DFL_AVX2_REAL
