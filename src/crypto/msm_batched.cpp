// Scalar engine for the signed-digit batched-affine bucket MSM, plus the
// recoding/window helpers shared with the AVX2 engine.
//
// The classic Pippenger inner loop does one Jacobian mixed addition per
// (point, window) digit. Here buckets hold *affine* points and pairs are
// accumulated in large batches: each batch needs one field inversion
// (Montgomery's trick) and ~6 field multiplies per pair, under half the
// cost of a mixed addition. Signed digits halve the bucket count on top.
// Rare cases the affine chord formula cannot express (equal-x pairs, i.e.
// doublings/cancellations, and tiny tail batches where an inversion would
// dominate) divert to per-bucket Jacobian "spill" accumulators, keeping
// every path exact — the final group element is identical to msm_naive.
#include <cmath>
#include <cstdlib>
#include <vector>

#include "crypto/msm_internal.hpp"

namespace dfl::crypto::msm_detail {

int pick_simd_window(std::size_t n, int bits, Backend b) {
  // Tuning escape hatch: pin the window width, bypassing the cost model.
  if (const char* env = std::getenv("DFL_MSM_WINDOW_BITS")) {
    const int forced = std::atoi(env);
    if (forced >= 4 && forced <= 13) return forced;
  }
  // Unit = one bucket insert; the fold weight is the measured cost ratio of
  // folding one bucket (suffix-sum Jacobian adds) to one batched insert.
  const double fold_weight = b == Backend::kAvx2 ? 2.5 : 5.0;
  int best = 4;
  double best_cost = -1.0;
  for (int c = 4; c <= 13; ++c) {
    const int w = signed_windows(bits, c);
    const double cost =
        static_cast<double>(n) * w +
        fold_weight * static_cast<double>(std::size_t{1} << (c - 1)) * w;
    if (best_cost < 0.0 || cost < best_cost) {
      best = c;
      best_cost = cost;
    }
  }
  return best;
}

void decompose_signed(const std::vector<U256>& scalars, int c, int windows,
                      std::vector<std::int16_t>& digits) {
  digits.assign(scalars.size() * static_cast<std::size_t>(windows), 0);
  const std::uint64_t half = std::uint64_t{1} << (c - 1);
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    const U256& s = scalars[i];
    std::int16_t* out = &digits[i * static_cast<std::size_t>(windows)];
    std::uint64_t carry = 0;
    for (int w = 0; w < windows; ++w) {
      const std::uint64_t d = s.bits(w * c, c) + carry;
      if (d > half) {
        // Borrow from the next window: d - 2^c is in [-(2^(c-1)-1), 0].
        out[w] = static_cast<std::int16_t>(static_cast<std::int64_t>(d) -
                                           (std::int64_t{1} << c));
        carry = 1;
      } else {
        out[w] = static_cast<std::int16_t>(d);
        carry = 0;
      }
    }
    // windows covers bit_length+1 bits, so the top digit is <= 2^(c-1) and
    // never borrows: carry == 0 here by construction.
  }
}

namespace {

// One pair queued for batched accumulation: bucket += q.
struct BatchSlot {
  std::uint32_t bucket;
  AffinePoint q;
};

// Pairs per batch: large enough that the one real inversion per batch
// (binary xgcd, ~order of 10 field mults per element at this size)
// disappears into the per-pair cost.
constexpr std::size_t kBatchSize = 256;
// Below this, Jacobian spill adds are cheaper than a batch inversion.
constexpr std::size_t kMinBatchForInversion = 24;

class ScalarBucketAccumulator {
 public:
  ScalarBucketAccumulator(const Curve& curve, std::size_t num_buckets)
      : curve_(curve),
        fp_(curve.fp()),
        buckets_(num_buckets),  // AffinePoint{} has infinity=true: "empty"
        epoch_(num_buckets, 0) {
    batch_.reserve(kBatchSize);
  }

  void add(std::uint32_t b, const AffinePoint& q) {
    if (buckets_[b].infinity) {
      // Never-touched bucket (occupancy is monotone): plain store. Later
      // pairs in this same batch read the stored value at flush time.
      buckets_[b] = q;
      return;
    }
    if (epoch_[b] == batch_id_) {
      // Bucket already has a pending pair in this batch; retry later.
      retry_.push_back({b, q});
      return;
    }
    epoch_[b] = batch_id_;
    batch_.push_back({b, q});
    if (batch_.size() >= kBatchSize) flush();
  }

  /// Drains conflicted pairs; call once after the last add().
  void finish() {
    flush();
    while (!retry_.empty()) {
      std::vector<BatchSlot> pending;
      pending.swap(retry_);
      // The first re-added slot never conflicts with the fresh batch, so
      // every pass retires at least one pair and the drain terminates.
      for (const BatchSlot& s : pending) add(s.bucket, s.q);
      flush();
    }
  }

  /// sum_d d * (bucket_d + spill_d) via the running-sum trick.
  [[nodiscard]] JacobianPoint fold() const {
    JacobianPoint running = curve_.infinity();
    JacobianPoint sum = curve_.infinity();
    for (std::size_t d = buckets_.size(); d > 0; --d) {
      if (!buckets_[d - 1].infinity) running = curve_.add_mixed(running, buckets_[d - 1]);
      if (!spill_.empty() && !curve_.is_infinity(spill_[d - 1])) {
        running = curve_.add(running, spill_[d - 1]);
      }
      sum = curve_.add(sum, running);
    }
    return sum;
  }

 private:
  void spill_add(std::uint32_t b, const AffinePoint& q) {
    if (spill_.empty()) spill_.assign(buckets_.size(), curve_.infinity());
    spill_[b] = curve_.add_mixed(spill_[b], q);
  }

  void flush() {
    ++batch_id_;  // every queued epoch mark becomes stale
    if (batch_.empty()) return;
    if (batch_.size() < kMinBatchForInversion) {
      for (const BatchSlot& s : batch_) spill_add(s.bucket, s.q);
      batch_.clear();
      return;
    }
    // The affine chord formula needs x1 != x2; equal-x pairs (doubling or
    // P + (-P)) divert to the Jacobian spill bucket.
    valid_.clear();
    dx_.clear();
    for (const BatchSlot& s : batch_) {
      const AffinePoint& p = buckets_[s.bucket];
      if (p.x == s.q.x) {
        spill_add(s.bucket, s.q);
        continue;
      }
      valid_.push_back(s);
      dx_.push_back(fp_.sub(s.q.x, p.x));
    }
    if (!dx_.empty()) {
      inv_.resize(dx_.size());
      field_batch_ops(Backend::kScalar).inv(fp_, dx_.data(), inv_.data(), dx_.size());
      for (std::size_t k = 0; k < valid_.size(); ++k) {
        AffinePoint& p = buckets_[valid_[k].bucket];
        const AffinePoint& q = valid_[k].q;
        const Fe lambda = fp_.mul(fp_.sub(q.y, p.y), inv_[k]);
        const Fe x3 = fp_.sub(fp_.sub(fp_.sqr(lambda), p.x), q.x);
        const Fe y3 = fp_.sub(fp_.mul(lambda, fp_.sub(p.x, x3)), p.y);
        p = AffinePoint{x3, y3, false};
      }
    }
    batch_.clear();
  }

  const Curve& curve_;
  const FieldCtx& fp_;
  std::vector<AffinePoint> buckets_;
  std::vector<JacobianPoint> spill_;  // allocated on first rare case
  std::vector<std::uint32_t> epoch_;
  std::uint32_t batch_id_ = 1;
  std::vector<BatchSlot> batch_;
  std::vector<BatchSlot> retry_;
  std::vector<BatchSlot> valid_;
  std::vector<Fe> dx_;
  std::vector<Fe> inv_;
};

}  // namespace

JacobianPoint msm_batched_scalar(const Curve& curve, const AffinePoint* points,
                                 const std::vector<std::int16_t>& digits, int c, int windows,
                                 const std::vector<std::uint8_t>* negate) {
  const std::size_t n =
      windows == 0 ? 0 : digits.size() / static_cast<std::size_t>(windows);
  const std::size_t num_buckets = std::size_t{1} << (c - 1);
  const FieldCtx& fp = curve.fp();

  JacobianPoint result = curve.infinity();
  for (int w = windows - 1; w >= 0; --w) {
    if (!curve.is_infinity(result)) {
      for (int i = 0; i < c; ++i) result = curve.dbl(result);
    }
    ScalarBucketAccumulator acc(curve, num_buckets);
    for (std::size_t i = 0; i < n; ++i) {
      const int d = digits[i * static_cast<std::size_t>(windows) + static_cast<std::size_t>(w)];
      if (d == 0 || points[i].infinity) continue;
      bool neg = d < 0;
      if (negate != nullptr && (*negate)[i] != 0) neg = !neg;
      AffinePoint q = points[i];
      if (neg) q.y = fp.neg(q.y);
      acc.add(static_cast<std::uint32_t>(std::abs(d)) - 1, q);
    }
    acc.finish();
    result = curve.add(result, acc.fold());
  }
  return result;
}

}  // namespace dfl::crypto::msm_detail
