// Deterministic derivation of independent group generators with unknown
// discrete-log relations, via try-and-increment hashing. Used to build the
// Pedersen commitment key so no party knows a trapdoor between generators.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/curve.hpp"

namespace dfl::crypto {

/// Hashes (domain, index) to a curve point. Deterministic: every node
/// derives the same generator vector independently.
AffinePoint hash_to_curve(const Curve& curve, std::string_view domain, std::uint64_t index);

/// Derives `count` generators h_0 .. h_{count-1} under a common domain tag.
std::vector<AffinePoint> derive_generators(const Curve& curve, std::string_view domain,
                                           std::size_t count);

}  // namespace dfl::crypto
