// Internal interface of the AVX2 backend (fe_avx2.cpp). Only backend.cpp
// and the MSM dispatch include this; everything else goes through
// crypto/backend.hpp. The functions exist only when the avx2 backend is
// compiled in (DFL_HAVE_AVX2).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/backend.hpp"
#include "crypto/curve.hpp"
#include "crypto/u256.hpp"

namespace dfl::crypto::avx2 {

/// True when this translation unit actually carries AVX2 code (x86-64 with
/// a compiler supporting per-function target attributes); false for the
/// stub build on other architectures.
bool compiled();

/// The ISA tier this backend's dispatch lands on right now: "avx512ifma"
/// when the CPU has the full AVX-512 IFMA feature set (and DFL_FORCE_ISA
/// does not pin it down), else "avx2"; "scalar" in the stub build.
const char* isa();

/// Batched field ops over the interleaved 10x26-bit limb layout (conversion
/// at the array boundary, so the Fe-facing signature matches scalar).
const FieldBatchOps& field_ops();

/// Opaque SIMD-resident base set: affine coordinates pre-converted to the
/// vector Montgomery domain. Built once per generator set.
struct NativeBases {
  std::size_t count = 0;
  // AoS layout: element i occupies limbs [i*10, i*10+10), radix-2^26,
  // vector Montgomery domain (value * 2^260 mod p), canonical in [0, p).
  std::vector<std::uint64_t> x;
  std::vector<std::uint64_t> y;
  std::vector<std::uint64_t> yneg;  // p - y, for the negate mask
  std::vector<std::uint8_t> inf;
};

/// Converts affine points into the native layout. Requires compiled().
NativeBases prepare_bases(const Curve& curve, const std::vector<AffinePoint>& points);

/// Signed-digit batched-affine bucket MSM over prepared bases. `digits`
/// holds windows*count signed window digits (window-major stride =
/// `windows` per point, matching msm_detail::decompose_signed). Exact same
/// group element as the scalar backends.
JacobianPoint msm_native(const Curve& curve, const NativeBases& bases,
                         const AffinePoint* affine, const std::vector<std::int16_t>& digits,
                         int c, int windows, const std::vector<std::uint8_t>* negate);

}  // namespace dfl::crypto::avx2
