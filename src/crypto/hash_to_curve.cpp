#include "crypto/hash_to_curve.hpp"

#include <stdexcept>

#include "common/pool.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace dfl::crypto {

AffinePoint hash_to_curve(const Curve& curve, std::string_view domain, std::uint64_t index) {
  // Try-and-increment: candidate x = H(domain || curve || index || counter);
  // succeeds for ~half the counters, so a few iterations suffice.
  for (std::uint32_t counter = 0; counter < 1000; ++counter) {
    Writer w;
    w.put_string("dfl/hash-to-curve/v1");
    w.put_string(std::string(domain));
    w.put_string(curve.name());
    w.put<std::uint64_t>(index);
    w.put<std::uint32_t>(counter);
    const Sha256Digest digest = Sha256::hash(w.bytes());
    const U256 x_int = U256::from_be_bytes(BytesView(digest.data(), digest.size()));
    if (!(x_int < curve.fp().modulus())) continue;
    const Fe x = curve.fp().to_mont(x_int);
    const auto y = curve.sqrt(curve.curve_rhs(x));
    if (!y) continue;
    // Normalize the sign choice: take the even-y root for determinism.
    Fe y_fe = *y;
    if (curve.fp().from_mont(y_fe).is_odd()) y_fe = curve.fp().neg(y_fe);
    const AffinePoint p{x, y_fe, false};
    // Curves have prime order and cofactor 1, so any on-curve point != O
    // generates the full group; no cofactor clearing needed.
    return p;
  }
  throw std::runtime_error("hash_to_curve: exhausted counters (should be unreachable)");
}

std::vector<AffinePoint> derive_generators(const Curve& curve, std::string_view domain,
                                           std::size_t count) {
  std::vector<AffinePoint> out(count);
  // Derivation is pure and per-index independent; fan out on the shared
  // pool for large commitment keys (setup cost only — commits themselves
  // are what the paper measures). Each index writes its own slot, so the
  // result does not depend on how the range is chunked.
  ThreadPool& pool = ThreadPool::shared();
  if (count >= 4096 && pool.concurrency() > 1) {
    pool.parallel_for(0, count, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = hash_to_curve(curve, domain, i);
    });
  } else {
    for (std::size_t i = 0; i < count; ++i) out[i] = hash_to_curve(curve, domain, i);
  }
  return out;
}

}  // namespace dfl::crypto
