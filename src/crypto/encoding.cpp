#include "crypto/encoding.hpp"

#include <algorithm>
#include <cmath>

namespace dfl::crypto {

namespace {

// Saturate encoded magnitudes to 2^40 so that aggregating up to ~2^20
// parties' values stays far from int64 overflow.
constexpr std::int64_t kEncodedCap = std::int64_t{1} << 40;

}  // namespace

std::int64_t encode_fixed(double v, int frac_bits) {
  const double scaled = std::nearbyint(v * static_cast<double>(std::int64_t{1} << frac_bits));
  if (scaled >= static_cast<double>(kEncodedCap)) return kEncodedCap;
  if (scaled <= -static_cast<double>(kEncodedCap)) return -kEncodedCap;
  return static_cast<std::int64_t>(scaled);
}

double decode_fixed(std::int64_t v, int frac_bits) {
  return static_cast<double>(v) / static_cast<double>(std::int64_t{1} << frac_bits);
}

std::vector<std::int64_t> encode_fixed_vec(const std::vector<double>& v, int frac_bits) {
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  for (double x : v) out.push_back(encode_fixed(x, frac_bits));
  return out;
}

std::vector<double> decode_fixed_vec(const std::vector<std::int64_t>& v, int frac_bits) {
  std::vector<double> out;
  out.reserve(v.size());
  for (std::int64_t x : v) out.push_back(decode_fixed(x, frac_bits));
  return out;
}

U256 to_scalar(std::int64_t v, const Curve& curve) {
  if (v >= 0) return U256(static_cast<std::uint64_t>(v));
  U256 n = curve.order();
  n.sub_assign(U256(static_cast<std::uint64_t>(-v)));
  return n;
}

std::vector<U256> to_scalars(const std::vector<std::int64_t>& v, const Curve& curve) {
  std::vector<U256> out;
  out.reserve(v.size());
  for (std::int64_t x : v) out.push_back(to_scalar(x, curve));
  return out;
}

}  // namespace dfl::crypto
