// Immutable, ref-counted content block — the unit of the zero-copy data
// plane. A Block owns its bytes exactly once; every hop (block store, node
// RPC, swarm retry/replication, pub/sub delivery) passes the same backing
// buffer around by reference, and the CID is computed at most once and
// cached on the buffer (real IPFS computes it at add time; re-hashing a
// multi-MB model update on every hop dominated host-side cost).
//
// Mutation is explicit: `mutate_copy` materializes a private copy (CoW), so
// the chaos layer can corrupt a *served* payload without touching the
// stored replica or any concurrent reader. The fresh copy has no cached
// CID — verification against the original CID re-hashes and fails, exactly
// as content addressing demands.
//
// sim::DataPathMode::kDeepCopy switches `serve_copy` (the hop primitive)
// and the CID cache off, faithfully emulating the pre-zero-copy plane for
// A/B benchmarking; simulated time is identical in both modes.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "ipfs/cid.hpp"

namespace dfl {

class Block {
 public:
  /// The null block: empty, size 0, null CID.
  Block() = default;

  /// Takes ownership of `data` (one allocation, shared from here on).
  /// Implicit so call sites can hand over a serialized buffer directly.
  Block(Bytes data);  // NOLINT(google-explicit-constructor)

  /// Wraps `data` with a CID already known to match it (trusted caller).
  Block(Bytes data, ipfs::Cid known_cid);

  /// Materializes a block from borrowed bytes (counted as a copy).
  [[nodiscard]] static Block copy_of(BytesView data);

  [[nodiscard]] bool is_null() const { return rep_ == nullptr; }
  [[nodiscard]] std::size_t size() const { return rep_ == nullptr ? 0 : rep_->data.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] BytesView view() const {
    return rep_ == nullptr ? BytesView{} : BytesView(rep_->data);
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  /// The owned buffer (valid while any handle to this block lives).
  [[nodiscard]] const Bytes& bytes() const;

  /// The content identifier — computed lazily, cached on the shared buffer.
  /// In kDeepCopy mode the cache is bypassed (legacy hash-per-call).
  [[nodiscard]] const ipfs::Cid& cid() const;

  /// True when cid() would be answered from the cache.
  [[nodiscard]] bool has_cached_cid() const { return rep_ != nullptr && rep_->cid_known; }

  /// Content verification against `expected`. Answered from the cached CID
  /// when available (zero-copy mode); otherwise re-hashes. A successful
  /// re-hash populates the cache.
  [[nodiscard]] bool verify(const ipfs::Cid& expected) const;

  /// Copy-on-write: returns a new block holding a private, mutated copy of
  /// the bytes; this block (and every other reader) is untouched. The copy
  /// has no cached CID.
  [[nodiscard]] Block mutate_copy(const std::function<void(Bytes&)>& mutator) const;

  /// An unconditional private copy of the bytes (no cached CID).
  [[nodiscard]] Block deep_copy() const;

  /// The hop primitive: hand this payload to another actor. Zero-copy mode
  /// bumps the refcount and counts the bytes as shared; kDeepCopy mode
  /// returns (and counts) a physical copy.
  [[nodiscard]] Block serve_copy() const;

  /// Readers currently sharing the backing buffer (tests/observability).
  [[nodiscard]] long use_count() const { return rep_ == nullptr ? 0 : rep_.use_count(); }

  /// True when `other` shares this block's backing buffer.
  [[nodiscard]] bool aliases(const Block& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

  /// Content equality (cheap when the buffers alias).
  friend bool operator==(const Block& a, const Block& b) {
    if (a.rep_ == b.rep_) return true;
    return a.bytes() == b.bytes();
  }
  friend bool operator==(const Block& a, const Bytes& b) { return a.bytes() == b; }

 private:
  struct Rep {
    explicit Rep(Bytes d);
    ~Rep();
    Rep(const Rep&) = delete;
    Rep& operator=(const Rep&) = delete;

    const Bytes data;
    mutable ipfs::Cid cid;  // meaningful only when cid_known
    mutable bool cid_known = false;
  };

  std::shared_ptr<const Rep> rep_;
};

}  // namespace dfl
