// Storage-economics accounting for the swarm — the Section VI direction of
// incentivized storage (Filecoin [23]): the task owner compensates storage
// nodes for bytes they served and bytes they held, so availability can be
// paid for rather than assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "ipfs/swarm.hpp"

namespace dfl::ipfs {

/// Per-MB compensation rates (arbitrary credit units).
struct CreditRates {
  double per_mb_served = 1.0;   // egress: gradients/updates shipped to peers
  double per_mb_ingested = 0.2; // ingress: accepting uploads
  double per_mb_stored = 0.5;   // at-rest: blocks currently held
};

struct NodeEarnings {
  std::uint32_t node_id = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t bytes_ingested = 0;
  std::uint64_t bytes_stored = 0;
  double credits = 0.0;
};

/// Ledger over a swarm's host counters. settle() computes each node's
/// earnings since the last checkpoint() — typically once per FL round.
class CreditLedger {
 public:
  explicit CreditLedger(Swarm& swarm, CreditRates rates = {});

  /// Snapshots current counters as the new baseline.
  void checkpoint();

  /// Earnings since the last checkpoint (does not move the baseline).
  [[nodiscard]] std::vector<NodeEarnings> settle() const;

  /// Sum of credits across nodes since the last checkpoint.
  [[nodiscard]] double total_credits() const;

  /// Gini-style imbalance in [0, 1]: 0 = perfectly even earnings. Used to
  /// compare provider-allocation policies (Section VI asks for uniform
  /// allocation to reduce collusion value and hot-spotting).
  [[nodiscard]] double earnings_imbalance() const;

 private:
  Swarm& swarm_;
  CreditRates rates_;
  std::vector<std::uint64_t> base_sent_;
  std::vector<std::uint64_t> base_received_;
};

}  // namespace dfl::ipfs
