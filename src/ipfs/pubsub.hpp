// Topic-based publish/subscribe over the simulated network, mirroring
// IPFS pub/sub. The paper's aggregators use it to announce the hashes of
// their partial updates during the synchronization phase (Section IV-B).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "ipfs/block.hpp"
#include "sim/net.hpp"
#include "sim/sync.hpp"

namespace dfl::ipfs {

class PubSub {
 public:
  explicit PubSub(sim::Network& net) : net_(net) {}
  PubSub(const PubSub&) = delete;
  PubSub& operator=(const PubSub&) = delete;

  /// Subscribes `subscriber` to `topic`; returns the mailbox messages will
  /// arrive on. Subscribing twice returns the same mailbox.
  sim::Channel<Block>& subscribe(const std::string& topic, sim::Host& subscriber);

  void unsubscribe(const std::string& topic, sim::Host& subscriber);

  /// Delivers `message` to every subscriber of `topic` (except the sender
  /// itself). Fan-out is sequential on the publisher's uplink, as real
  /// gossip initiation would be. Subscribers whose host is down simply
  /// miss the message (pubsub is best-effort). Every delivery shares the
  /// one published buffer (per-subscriber serve accounting applies).
  [[nodiscard]] sim::Task<void> publish(sim::Host& from, std::string topic, Block message);

  [[nodiscard]] std::size_t subscriber_count(const std::string& topic) const;

 private:
  struct Subscription {
    sim::Host* host;
    std::unique_ptr<sim::Channel<Block>> mailbox;
  };

  sim::Network& net_;
  std::map<std::string, std::vector<Subscription>> topics_;
};

}  // namespace dfl::ipfs
