// A single IPFS storage node: a network host plus a content-addressed
// block store, exposing put/get RPCs over the simulated network and the
// paper's merge-and-download extension (Section III-E).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "ipfs/block.hpp"
#include "ipfs/blockstore.hpp"
#include "ipfs/chunker.hpp"
#include "ipfs/cid.hpp"
#include "sim/net.hpp"

namespace dfl::ipfs {

/// Thrown by get/merge_get when a block is not on the node, and by
/// Swarm::fetch when no provider record exists at all: the block never
/// existed (or was garbage-collected). Fatal — retrying cannot help.
struct NotFoundError : std::runtime_error {
  explicit NotFoundError(const Cid& cid)
      : std::runtime_error("block not found: " + cid.to_hex()) {}
};

/// Thrown by Swarm::fetch/replicate when the block *is* recorded with
/// providers but none of them is live (or every live one failed) right
/// now. Retryable — a provider may restart; distinguish from NotFoundError.
struct UnavailableError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Application-supplied block semantics for merge-and-download: the storage
/// node itself has no idea blocks are gradient vectors; the FL layer
/// registers a merger that sums payloads.
class BlockMerger {
 public:
  virtual ~BlockMerger() = default;

  /// Combines blocks into a single block (e.g. element-wise vector sum).
  /// Must be associative and order-independent for the protocol to be
  /// correct regardless of provider assignment. Inputs are views into the
  /// stored (shared) blocks — no copies are made to merge.
  [[nodiscard]] virtual Bytes merge(const std::vector<BytesView>& blocks) const = 0;

  // Streaming extension (chunked plane). A merger that can combine byte
  // ranges independently declares its valid split points via
  // merge_boundary and implements merge_range; concatenating merge_range
  // over consecutive boundaries MUST be bit-identical to merge() on the
  // whole blocks. The defaults stream nothing (only the full block is a
  // boundary), which keeps existing mergers correct unchanged.

  /// Largest valid split point that is <= `limit` for blocks of `total`
  /// bytes (0 = no prefix can be merged yet; `total` = everything).
  [[nodiscard]] virtual std::uint64_t merge_boundary(std::uint64_t limit,
                                                     std::uint64_t total) const {
    return limit >= total ? total : 0;
  }

  /// Merges byte range [from, to) of each input. `parts` are views of at
  /// least the first `to` bytes of each (whole) block; `from`/`to` must be
  /// consecutive merge_boundary outputs. Returns exactly to-from bytes.
  [[nodiscard]] virtual Bytes merge_range(const std::vector<BytesView>& parts,
                                          std::uint64_t from, std::uint64_t to) const;
};

struct IpfsNodeConfig {
  /// Throughput of the node's merge computation, bytes of input per second.
  /// Pre-aggregation is cheap vector addition; default 400 MB/s.
  double merge_bytes_per_sec = 400e6;
  /// Transfer plane: monolithic blobs (legacy) or chunked Merkle DAGs.
  ChunkingConfig chunking{};
};

class Swarm;

class IpfsNode {
 public:
  IpfsNode(sim::Network& net, sim::Host& host, IpfsNodeConfig config, Swarm* swarm,
           std::uint32_t node_id)
      : net_(net), host_(host), config_(config), swarm_(swarm), node_id_(node_id) {}

  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] const sim::Host& host() const { return host_; }
  [[nodiscard]] std::uint32_t node_id() const { return node_id_; }
  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }

  /// Uploads `data` from `caller` to this node, stores it, and acknowledges.
  /// Completes when the caller has the ack (paper's upload-delay endpoint).
  /// The block is stored by reference: retries and replicas of the same
  /// logical payload share one buffer.
  [[nodiscard]] sim::Task<Cid> put(sim::Host& caller, Block data);

  /// Downloads the block for `cid` to `caller`. The served handle shares
  /// the stored buffer; content is verified against the CID (cache-aware —
  /// storage is still not trusted: the chaos corruption path produces a
  /// private mutated copy whose verification re-hashes and fails).
  [[nodiscard]] sim::Task<Block> get(sim::Host& caller, Cid cid);

  /// Merge-and-download: the node pre-aggregates the named blocks with
  /// `merger` and ships only the merged result. All CIDs must be local.
  [[nodiscard]] sim::Task<Block> merge_get(sim::Host& caller, std::vector<Cid> cids,
                                           const BlockMerger& merger);

  /// Local (zero-network-cost) store access, used by the replication engine
  /// and by tests.
  Cid put_local(Block data);

  // --- chunked (DAG) plane ------------------------------------------------

  /// Downloads the root block of `root` (the manifest in DAG mode, or the
  /// content itself when `root` addresses a plain block). Tagged in the
  /// network trace as the manifest transfer of the DAG.
  [[nodiscard]] sim::Task<Block> get_manifest(sim::Host& caller, Cid root);

  /// Downloads one block, tagging the transfer with (dag_root prefix, leaf
  /// index) for the trace. The caller verifies content addressing per leaf.
  /// Used by the swarm's striped fetch path; a nonzero `claim_ticket` is
  /// released (Swarm::stripe_release) the moment the serve hits the wire,
  /// so the scheduler's demand look-ahead never double-counts pipe load.
  [[nodiscard]] sim::Task<Block> get_leaf(sim::Host& caller, Cid cid, std::uint64_t root_tag,
                                          std::int32_t leaf_index,
                                          std::uint64_t claim_ticket = 0);

  /// Polls the local store until `cid` is present (cut-through: the block
  /// may still be in flight to this node). False when `deadline` passes or
  /// the host goes down first.
  [[nodiscard]] sim::Task<bool> await_block(Cid cid, sim::TimeNs deadline);

  /// The decoded manifest for `root`, if this node knows `root` is a DAG
  /// (from a put, a replication, or a lazily decoded stored manifest).
  [[nodiscard]] std::optional<DagManifest> dag_manifest(const Cid& root);

  /// Registers a manifest in the node's DAG index (used by replication).
  void adopt_manifest(const Cid& root, DagManifest manifest);

  /// Omniscient content read for measurement code (no network, no copy
  /// accounting): reassembles a DAG root from local leaves, or returns the
  /// plain stored block. nullopt when any piece is missing.
  [[nodiscard]] std::optional<Block> peek_content(const Cid& cid);

 private:
  // Spawned helpers take the attributing obs span explicitly: they run
  // concurrently, so the consume-once ambient channel (captured by the
  // public RPCs at entry) cannot carry across into them.

  /// Receives one block of an in-progress DAG put and stores it on arrival
  /// (cut-through: later hops can start shipping it immediately).
  [[nodiscard]] sim::Task<void> receive_block(sim::Host& caller, Block block, std::uint64_t tag,
                                              std::int32_t leaf_index, std::uint64_t parent_span);
  /// Serves one leaf of a DAG get, waiting for it to land if still in
  /// flight; records delivery into the shared first/last timestamps.
  [[nodiscard]] sim::Task<void> serve_leaf(sim::Host& caller, Cid leaf, std::uint64_t tag,
                                           std::int32_t leaf_index, sim::TimeNs deadline,
                                           Block* out, sim::TimeNs* first, sim::TimeNs* last,
                                           std::uint64_t parent_span);
  [[nodiscard]] sim::Task<Block> get_dag(sim::Host& caller, Cid root, DagManifest manifest,
                                         std::uint64_t parent_span);
  [[nodiscard]] sim::Task<Block> merge_get_streaming(sim::Host& caller,
                                                     const std::vector<Cid>& roots,
                                                     const BlockMerger& merger,
                                                     std::uint64_t parent_span);
  /// Ships one merged range to the caller; records the first-byte time.
  [[nodiscard]] sim::Task<void> ship_range(sim::Host* caller, std::uint64_t bytes,
                                           sim::TimeNs* first, std::uint64_t parent_span);

  sim::Network& net_;
  sim::Host& host_;
  IpfsNodeConfig config_;
  Swarm* swarm_;
  std::uint32_t node_id_;
  BlockStore store_;
  std::unordered_map<Cid, DagManifest, CidHash> dag_index_;
};

}  // namespace dfl::ipfs
