// A single IPFS storage node: a network host plus a content-addressed
// block store, exposing put/get RPCs over the simulated network and the
// paper's merge-and-download extension (Section III-E).
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "ipfs/block.hpp"
#include "ipfs/blockstore.hpp"
#include "ipfs/cid.hpp"
#include "sim/net.hpp"

namespace dfl::ipfs {

/// Thrown by get/merge_get when a block is not on the node, and by
/// Swarm::fetch when no provider record exists at all: the block never
/// existed (or was garbage-collected). Fatal — retrying cannot help.
struct NotFoundError : std::runtime_error {
  explicit NotFoundError(const Cid& cid)
      : std::runtime_error("block not found: " + cid.to_hex()) {}
};

/// Thrown by Swarm::fetch/replicate when the block *is* recorded with
/// providers but none of them is live (or every live one failed) right
/// now. Retryable — a provider may restart; distinguish from NotFoundError.
struct UnavailableError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Application-supplied block semantics for merge-and-download: the storage
/// node itself has no idea blocks are gradient vectors; the FL layer
/// registers a merger that sums payloads.
class BlockMerger {
 public:
  virtual ~BlockMerger() = default;

  /// Combines blocks into a single block (e.g. element-wise vector sum).
  /// Must be associative and order-independent for the protocol to be
  /// correct regardless of provider assignment. Inputs are views into the
  /// stored (shared) blocks — no copies are made to merge.
  [[nodiscard]] virtual Bytes merge(const std::vector<BytesView>& blocks) const = 0;
};

struct IpfsNodeConfig {
  /// Throughput of the node's merge computation, bytes of input per second.
  /// Pre-aggregation is cheap vector addition; default 400 MB/s.
  double merge_bytes_per_sec = 400e6;
};

class Swarm;

class IpfsNode {
 public:
  IpfsNode(sim::Network& net, sim::Host& host, IpfsNodeConfig config, Swarm* swarm,
           std::uint32_t node_id)
      : net_(net), host_(host), config_(config), swarm_(swarm), node_id_(node_id) {}

  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] const sim::Host& host() const { return host_; }
  [[nodiscard]] std::uint32_t node_id() const { return node_id_; }
  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }

  /// Uploads `data` from `caller` to this node, stores it, and acknowledges.
  /// Completes when the caller has the ack (paper's upload-delay endpoint).
  /// The block is stored by reference: retries and replicas of the same
  /// logical payload share one buffer.
  [[nodiscard]] sim::Task<Cid> put(sim::Host& caller, Block data);

  /// Downloads the block for `cid` to `caller`. The served handle shares
  /// the stored buffer; content is verified against the CID (cache-aware —
  /// storage is still not trusted: the chaos corruption path produces a
  /// private mutated copy whose verification re-hashes and fails).
  [[nodiscard]] sim::Task<Block> get(sim::Host& caller, Cid cid);

  /// Merge-and-download: the node pre-aggregates the named blocks with
  /// `merger` and ships only the merged result. All CIDs must be local.
  [[nodiscard]] sim::Task<Block> merge_get(sim::Host& caller, std::vector<Cid> cids,
                                           const BlockMerger& merger);

  /// Local (zero-network-cost) store access, used by the replication engine
  /// and by tests.
  Cid put_local(Block data);

 private:
  sim::Network& net_;
  sim::Host& host_;
  IpfsNodeConfig config_;
  Swarm* swarm_;
  std::uint32_t node_id_;
  BlockStore store_;
};

}  // namespace dfl::ipfs
