#include "ipfs/pubsub.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace dfl::ipfs {

sim::Channel<Block>& PubSub::subscribe(const std::string& topic, sim::Host& subscriber) {
  auto& subs = topics_[topic];
  for (auto& s : subs) {
    if (s.host == &subscriber) return *s.mailbox;
  }
  subs.push_back(Subscription{&subscriber,
                              std::make_unique<sim::Channel<Block>>(net_.simulator())});
  return *subs.back().mailbox;
}

void PubSub::unsubscribe(const std::string& topic, sim::Host& subscriber) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove_if(subs.begin(), subs.end(),
                            [&](const Subscription& s) { return s.host == &subscriber; }),
             subs.end());
}

sim::Task<void> PubSub::publish(sim::Host& from, std::string topic, Block message) {
  const obs::SpanId parent = obs::take_ambient_span();
  const auto it = topics_.find(topic);
  if (it == topics_.end()) co_return;
  // Snapshot targets: subscription changes during delivery must not
  // invalidate iteration.
  std::vector<Subscription*> targets;
  for (auto& s : it->second) {
    if (s.host != &from) targets.push_back(&s);
  }
  for (Subscription* s : targets) {
    if (!s->host->is_up()) continue;  // best-effort delivery
    try {
      obs::set_ambient_span(parent);
      co_await net_.transfer(from, *s->host, message.size());
    } catch (const sim::NetworkError&) {
      continue;  // subscriber (or we) went down mid-delivery; skip
    }
    s->mailbox->send(message.serve_copy());
  }
}

std::size_t PubSub::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace dfl::ipfs
