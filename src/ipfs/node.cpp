#include "ipfs/node.hpp"

#include <algorithm>

#include "ipfs/swarm.hpp"
#include "obs/trace.hpp"
#include "sim/datapath.hpp"
#include "sim/sync.hpp"

namespace dfl::ipfs {

Bytes BlockMerger::merge_range(const std::vector<BytesView>& parts, std::uint64_t from,
                               std::uint64_t to) const {
  // Default: the merger declared no interior boundaries, so the only legal
  // range is the whole block.
  if (from != 0) {
    throw std::logic_error("BlockMerger::merge_range: merger only merges whole blocks");
  }
  std::vector<BytesView> whole;
  whole.reserve(parts.size());
  for (const BytesView& p : parts) whole.push_back(p.first(to));
  return merge(whole);
}

sim::Task<Cid> IpfsNode::put(sim::Host& caller, Block data) {
  // Capture the caller's span context at entry (consume-once; see
  // obs/trace.hpp) and re-establish it before every transfer we issue —
  // each transfer consumes it, and suspensions in between would otherwise
  // let an unrelated coroutine's context leak in.
  const obs::SpanId parent = obs::take_ambient_span();
  if (config_.chunking.mode == ChunkingMode::kDag) {
    // Client-side chunking: the caller splits the content, then streams the
    // manifest (first — it unlocks downstream fetches) and every leaf as
    // independent transfers. Each piece is stored the moment it arrives, so
    // a concurrent fetch/merge can start forwarding leaf i while leaf i+1
    // is still on the caller's uplink (cut-through).
    Chunker chunker(config_.chunking.chunk_size);
    DagBlock dag = chunker.build(data);
    const std::uint64_t tag = cid_prefix64(dag.root);
    const Cid root = dag.root;
    // Manifest first (its arrival registers the root provider record), then
    // the leaves through a bounded pipeline window: the FIFO pipes are
    // reserved ~pipeline_depth chunks ahead, never for the whole blob, so
    // concurrent traffic interleaves at chunk granularity (cut-through).
    co_await receive_block(caller, std::move(dag.manifest), tag,
                           sim::TransferRecord::kManifestLeaf, parent);
    co_await sim::for_each_windowed(
        net_.simulator(), dag.leaves.size(), config_.chunking.pipeline_depth,
        [&, parent](std::size_t i) {
          return receive_block(caller, std::move(dag.leaves[i]), tag,
                               static_cast<std::int32_t>(i), parent);
        });
    obs::set_ambient_span(parent);
    co_await net_.transfer(host_, caller, 0);  // ack (framing overhead only)
    co_return root;
  }
  // Payload travels caller -> node, then a small ack travels back.
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, data.size());
  const Cid cid = put_local(std::move(data));
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, 0);  // ack (framing overhead only)
  co_return cid;
}

sim::Task<void> IpfsNode::receive_block(sim::Host& caller, Block block, std::uint64_t tag,
                                        std::int32_t leaf_index, std::uint64_t parent_span) {
  obs::set_ambient_span(parent_span);
  co_await net_.transfer(caller, host_, block.size(), tag, leaf_index);
  put_local(std::move(block));
}

sim::Task<Block> IpfsNode::get(sim::Host& caller, Cid cid) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, 0);  // request
  if (config_.chunking.mode == ChunkingMode::kDag) {
    if (auto manifest = dag_manifest(cid)) {
      co_return co_await get_dag(caller, cid, std::move(*manifest), parent);
    }
  }
  auto block = store_.get(cid);
  if (!block) throw NotFoundError(cid);
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, block->size());
  // Chaos hook: a faulty node (or link) may corrupt the served bytes.
  // mutate_copy is the explicit CoW path: the stored replica (and any other
  // readers sharing the buffer) stay pristine; only this delivery is bad.
  if (auto* hook = net_.fault_hook();
      hook != nullptr && !block->empty() && hook->should_corrupt_payload(host_)) {
    block = block->mutate_copy([](Bytes& b) { b[0] ^= 0xff; });
  }
  // Retrieval verification: content addressing means the caller checks the
  // hash. A pristine shared block verifies from the CID cache; a mutated
  // copy has no cached CID and re-hashes (and fails).
  if (!block->verify(cid)) {
    throw std::runtime_error("ipfs get: block failed content verification");
  }
  co_return *std::move(block);
}

sim::Task<Block> IpfsNode::get_dag(sim::Host& caller, Cid root, DagManifest manifest,
                                   std::uint64_t parent_span) {
  const std::uint64_t tag = cid_prefix64(root);
  sim::Simulator& sim = net_.simulator();
  const sim::TimeNs t0 = sim.now();
  const sim::TimeNs deadline = t0 + config_.chunking.leaf_wait;
  const std::size_t n = manifest.leaf_count();
  if (n == 0) {
    obs::set_ambient_span(parent_span);
    co_await net_.transfer(host_, caller, 0, tag, -1);
    co_return Block(Bytes{});
  }
  // Leaves go out through a bounded pipeline window (per-chunk pipe
  // occupancy, not per-blob), and each leaf that is still in flight *to*
  // this node is forwarded as soon as it lands (serve_leaf waits per leaf).
  std::vector<Block> leaves(n);
  sim::TimeNs first = -1;
  sim::TimeNs last = 0;
  co_await sim::for_each_windowed(sim, n, config_.chunking.pipeline_depth, [&](std::size_t i) {
    return serve_leaf(caller, manifest.leaves[i], tag, static_cast<std::int32_t>(i), deadline,
                      &leaves[i], &first, &last, parent_span);
  });
  sim::note_chunked_transfer(static_cast<std::uint64_t>(first < 0 ? 0 : first - t0),
                             static_cast<std::uint64_t>(last - t0), n);
  co_return Chunker::reassemble(manifest, leaves);
}

sim::Task<void> IpfsNode::serve_leaf(sim::Host& caller, Cid leaf, std::uint64_t tag,
                                     std::int32_t leaf_index, sim::TimeNs deadline, Block* out,
                                     sim::TimeNs* first, sim::TimeNs* last,
                                     std::uint64_t parent_span) {
  if (!co_await await_block(leaf, deadline)) {
    throw UnavailableError("ipfs get: leaf " + leaf.to_hex() + " never arrived");
  }
  auto block = store_.get(leaf);
  if (!block) throw NotFoundError(leaf);
  obs::set_ambient_span(parent_span);
  co_await net_.transfer(host_, caller, block->size(), tag, leaf_index);
  const sim::TimeNs now = net_.simulator().now();
  if (*first < 0) *first = now;
  *last = std::max(*last, now);
  if (auto* hook = net_.fault_hook();
      hook != nullptr && !block->empty() && hook->should_corrupt_payload(host_)) {
    block = block->mutate_copy([](Bytes& b) { b[0] ^= 0xff; });
  }
  if (!block->verify(leaf)) {
    throw std::runtime_error("ipfs get: leaf failed content verification");
  }
  *out = *std::move(block);
}

sim::Task<Block> IpfsNode::get_manifest(sim::Host& caller, Cid root) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, 0);  // request
  const sim::TimeNs deadline = net_.simulator().now() + config_.chunking.leaf_wait;
  if (!co_await await_block(root, deadline)) {
    throw UnavailableError("ipfs get_manifest: " + root.to_hex() + " not available");
  }
  auto block = store_.get(root);
  if (!block) throw NotFoundError(root);
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, block->size(), cid_prefix64(root),
                         sim::TransferRecord::kManifestLeaf);
  if (!block->verify(root)) {
    throw std::runtime_error("ipfs get_manifest: block failed content verification");
  }
  co_return *std::move(block);
}

sim::Task<Block> IpfsNode::get_leaf(sim::Host& caller, Cid cid, std::uint64_t root_tag,
                                    std::int32_t leaf_index, std::uint64_t claim_ticket) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, 0);  // request
  auto block = store_.get(cid);
  if (!block) throw NotFoundError(cid);
  // The serve reserves the uplink below; from here the pipe itself carries
  // the load signal, so retire the scheduler's demand claim.
  if (claim_ticket != 0 && swarm_ != nullptr) swarm_->stripe_release(claim_ticket);
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, block->size(), root_tag, leaf_index);
  if (auto* hook = net_.fault_hook();
      hook != nullptr && !block->empty() && hook->should_corrupt_payload(host_)) {
    block = block->mutate_copy([](Bytes& b) { b[0] ^= 0xff; });
  }
  if (!block->verify(cid)) {
    throw std::runtime_error("ipfs get: leaf failed content verification");
  }
  co_return *std::move(block);
}

sim::Task<bool> IpfsNode::await_block(Cid cid, sim::TimeNs deadline) {
  sim::Simulator& sim = net_.simulator();
  while (!store_.has(cid)) {
    if (!host_.is_up() || sim.now() >= deadline) co_return false;
    co_await sim.sleep(std::min(config_.chunking.leaf_poll, deadline - sim.now()));
  }
  co_return true;
}

std::optional<DagManifest> IpfsNode::dag_manifest(const Cid& root) {
  const auto it = dag_index_.find(root);
  if (it != dag_index_.end()) return it->second;
  const auto block = store_.peek(root);
  if (!block) return std::nullopt;
  auto manifest = DagManifest::decode(block->view());
  if (manifest) dag_index_.emplace(root, *manifest);
  return manifest;
}

void IpfsNode::adopt_manifest(const Cid& root, DagManifest manifest) {
  dag_index_.insert_or_assign(root, std::move(manifest));
}

std::optional<Block> IpfsNode::peek_content(const Cid& cid) {
  if (config_.chunking.mode == ChunkingMode::kDag) {
    if (auto manifest = dag_manifest(cid)) {
      std::vector<Block> leaves;
      leaves.reserve(manifest->leaf_count());
      for (const Cid& leaf : manifest->leaves) {
        auto block = store_.peek(leaf);
        if (!block) return std::nullopt;
        leaves.push_back(std::move(*block));
      }
      return Chunker::reassemble(*manifest, leaves);
    }
  }
  return store_.peek(cid);
}

sim::Task<Block> IpfsNode::merge_get(sim::Host& caller, std::vector<Cid> cids,
                                     const BlockMerger& merger) {
  const obs::SpanId parent = obs::take_ambient_span();
  // Request carries the hash list (32 bytes per CID).
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, cids.size() * 32);
  if (config_.chunking.mode == ChunkingMode::kDag && !cids.empty()) {
    co_return co_await merge_get_streaming(caller, cids, merger, parent);
  }
  std::vector<Block> blocks;
  std::vector<BytesView> views;
  blocks.reserve(cids.size());
  views.reserve(cids.size());
  std::uint64_t input_bytes = 0;
  for (const Cid& cid : cids) {
    auto block = store_.get(cid);
    if (!block) throw NotFoundError(cid);
    input_bytes += block->size();
    blocks.push_back(std::move(*block));
    views.push_back(blocks.back().view());
  }
  // Pre-aggregation compute time on the storage node.
  const auto compute =
      static_cast<sim::TimeNs>(static_cast<double>(input_bytes) / config_.merge_bytes_per_sec * 1e9);
  co_await net_.simulator().sleep(compute);
  Block merged(merger.merge(views));
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, merged.size());
  co_return merged;
}

sim::Task<Block> IpfsNode::merge_get_streaming(sim::Host& caller, const std::vector<Cid>& roots,
                                               const BlockMerger& merger,
                                               std::uint64_t parent_span) {
  sim::Simulator& sim = net_.simulator();
  const ChunkingConfig& ck = config_.chunking;
  const sim::TimeNs t0 = sim.now();
  const sim::TimeNs deadline = t0 + ck.leaf_wait;

  // The inputs may still be uploading (roots are announced before their
  // leaves finish): wait for every manifest, then stream the leaves.
  std::vector<DagManifest> manifests;
  manifests.reserve(roots.size());
  for (const Cid& root : roots) {
    if (!co_await await_block(root, deadline)) throw NotFoundError(root);
    auto manifest = dag_manifest(root);
    if (!manifest) {
      throw std::runtime_error("ipfs merge_get: input is not a DAG root in DAG mode");
    }
    manifests.push_back(std::move(*manifest));
  }
  const std::uint64_t total = manifests.front().total_size;
  for (const DagManifest& m : manifests) {
    if (m.total_size != total) {
      throw std::invalid_argument("ipfs merge_get: input sizes differ");
    }
  }
  if (total == 0) {
    const std::vector<BytesView> empty_views(roots.size());
    Block merged(merger.merge(empty_views));
    obs::set_ambient_span(parent_span);
    co_await net_.transfer(host_, caller, merged.size());
    co_return merged;
  }

  // Streaming merge: append each root's leaves into a flat buffer as they
  // land, and whenever every input covers a new merger boundary, sum that
  // range and ship it — summation and the outbound wire overlap the
  // still-arriving downloads. Assembly is a physical copy; charge it.
  std::vector<Bytes> bufs(roots.size());
  std::vector<std::size_t> next_leaf(roots.size(), 0);
  for (auto& b : bufs) b.reserve(total);
  Bytes out;
  out.reserve(total);
  std::uint64_t shipped = 0;
  std::uint64_t ranges = 0;
  sim::TimeNs first = -1;
  sim::TaskGroup sends(sim);
  while (shipped < total) {
    std::uint64_t avail = total;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const DagManifest& m = manifests[i];
      while (next_leaf[i] < m.leaf_count() && store_.has(m.leaves[next_leaf[i]])) {
        const auto leaf = store_.get(m.leaves[next_leaf[i]]);
        if (!leaf) throw NotFoundError(m.leaves[next_leaf[i]]);
        const BytesView v = leaf->view();
        bufs[i].insert(bufs[i].end(), v.begin(), v.end());
        sim::note_bytes_copied(v.size());
        ++next_leaf[i];
      }
      avail = std::min(avail, static_cast<std::uint64_t>(bufs[i].size()));
    }
    const std::uint64_t boundary = merger.merge_boundary(avail, total);
    if (boundary > shipped) {
      std::vector<BytesView> parts;
      parts.reserve(bufs.size());
      for (const Bytes& b : bufs) parts.emplace_back(b.data(), b.size());
      Bytes piece = merger.merge_range(parts, shipped, boundary);
      const auto compute = static_cast<sim::TimeNs>(
          static_cast<double>((boundary - shipped) * roots.size()) / config_.merge_bytes_per_sec *
          1e9);
      co_await sim.sleep(compute);
      sends.spawn(ship_range(&caller, piece.size(), &first, parent_span));
      ++ranges;
      out.insert(out.end(), piece.begin(), piece.end());
      shipped = boundary;
    } else {
      if (sim.now() >= deadline) {
        // Drain in-flight range sends before failing so their frames never
        // outlive this one.
        co_await sends.join();
        throw UnavailableError("ipfs merge_get: leaves stalled before " +
                               std::to_string(shipped) + "/" + std::to_string(total));
      }
      co_await sim.sleep(ck.leaf_poll);
    }
  }
  co_await sends.join();
  sim::note_chunked_transfer(static_cast<std::uint64_t>(first < 0 ? 0 : first - t0),
                             static_cast<std::uint64_t>(sim.now() - t0), ranges);
  co_return Block(std::move(out));
}

sim::Task<void> IpfsNode::ship_range(sim::Host* caller, std::uint64_t bytes, sim::TimeNs* first,
                                     std::uint64_t parent_span) {
  obs::set_ambient_span(parent_span);
  co_await net_.transfer(host_, *caller, bytes);
  if (*first < 0) *first = net_.simulator().now();
}

Cid IpfsNode::put_local(Block data) {
  const Cid cid = store_.put(std::move(data));
  if (swarm_ != nullptr) swarm_->add_provider(cid, node_id_);
  return cid;
}

}  // namespace dfl::ipfs
