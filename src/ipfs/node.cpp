#include "ipfs/node.hpp"

#include "ipfs/swarm.hpp"

namespace dfl::ipfs {

sim::Task<Cid> IpfsNode::put(sim::Host& caller, Block data) {
  // Payload travels caller -> node, then a small ack travels back.
  co_await net_.transfer(caller, host_, data.size());
  const Cid cid = put_local(std::move(data));
  co_await net_.transfer(host_, caller, 0);  // ack (framing overhead only)
  co_return cid;
}

sim::Task<Block> IpfsNode::get(sim::Host& caller, Cid cid) {
  co_await net_.transfer(caller, host_, 0);  // request
  auto block = store_.get(cid);
  if (!block) throw NotFoundError(cid);
  co_await net_.transfer(host_, caller, block->size());
  // Chaos hook: a faulty node (or link) may corrupt the served bytes.
  // mutate_copy is the explicit CoW path: the stored replica (and any other
  // readers sharing the buffer) stay pristine; only this delivery is bad.
  if (auto* hook = net_.fault_hook();
      hook != nullptr && !block->empty() && hook->should_corrupt_payload(host_)) {
    block = block->mutate_copy([](Bytes& b) { b[0] ^= 0xff; });
  }
  // Retrieval verification: content addressing means the caller checks the
  // hash. A pristine shared block verifies from the CID cache; a mutated
  // copy has no cached CID and re-hashes (and fails).
  if (!block->verify(cid)) {
    throw std::runtime_error("ipfs get: block failed content verification");
  }
  co_return *std::move(block);
}

sim::Task<Block> IpfsNode::merge_get(sim::Host& caller, std::vector<Cid> cids,
                                     const BlockMerger& merger) {
  // Request carries the hash list (32 bytes per CID).
  co_await net_.transfer(caller, host_, cids.size() * 32);
  std::vector<Block> blocks;
  std::vector<BytesView> views;
  blocks.reserve(cids.size());
  views.reserve(cids.size());
  std::uint64_t input_bytes = 0;
  for (const Cid& cid : cids) {
    auto block = store_.get(cid);
    if (!block) throw NotFoundError(cid);
    input_bytes += block->size();
    blocks.push_back(std::move(*block));
    views.push_back(blocks.back().view());
  }
  // Pre-aggregation compute time on the storage node.
  const auto compute =
      static_cast<sim::TimeNs>(static_cast<double>(input_bytes) / config_.merge_bytes_per_sec * 1e9);
  co_await net_.simulator().sleep(compute);
  Block merged(merger.merge(views));
  co_await net_.transfer(host_, caller, merged.size());
  co_return merged;
}

Cid IpfsNode::put_local(Block data) {
  const Cid cid = store_.put(std::move(data));
  if (swarm_ != nullptr) swarm_->add_provider(cid, node_id_);
  return cid;
}

}  // namespace dfl::ipfs
