#include "ipfs/block.hpp"

#include "sim/datapath.hpp"

namespace dfl {

namespace {
const Bytes kEmptyBytes{};
const ipfs::Cid kNullCid{};
}  // namespace

Block::Rep::Rep(Bytes d) : data(std::move(d)) { sim::note_block_alloc(data.size()); }

Block::Rep::~Rep() { sim::note_block_free(data.size()); }

Block::Block(Bytes data) : rep_(std::make_shared<Rep>(std::move(data))) {}

Block::Block(Bytes data, ipfs::Cid known_cid) : rep_(std::make_shared<Rep>(std::move(data))) {
  rep_->cid = known_cid;
  rep_->cid_known = true;
}

Block Block::copy_of(BytesView data) {
  sim::note_bytes_copied(data.size());
  return Block(Bytes(data.begin(), data.end()));
}

const Bytes& Block::bytes() const { return rep_ == nullptr ? kEmptyBytes : rep_->data; }

const ipfs::Cid& Block::cid() const {
  if (rep_ == nullptr) return kNullCid;
  if (sim::datapath_mode() == sim::DataPathMode::kZeroCopy && rep_->cid_known) {
    sim::note_cid_cache_hit();
    return rep_->cid;
  }
  sim::note_block_hashed(rep_->data.size());
  rep_->cid = ipfs::Cid::of(rep_->data);
  rep_->cid_known = true;
  return rep_->cid;
}

bool Block::verify(const ipfs::Cid& expected) const {
  if (rep_ == nullptr) return expected.is_null();
  if (sim::datapath_mode() == sim::DataPathMode::kZeroCopy && rep_->cid_known) {
    sim::note_cid_cache_hit();
    return rep_->cid == expected;
  }
  sim::note_block_hashed(rep_->data.size());
  const bool ok = expected.matches(rep_->data);
  if (ok) {
    rep_->cid = expected;
    rep_->cid_known = true;
  }
  return ok;
}

Block Block::mutate_copy(const std::function<void(Bytes&)>& mutator) const {
  Bytes copy = bytes();
  sim::note_bytes_copied(copy.size());
  mutator(copy);
  return Block(std::move(copy));
}

Block Block::deep_copy() const {
  sim::note_bytes_copied(size());
  return Block(Bytes(bytes()));
}

Block Block::serve_copy() const {
  if (rep_ == nullptr) return Block{};
  if (sim::datapath_mode() == sim::DataPathMode::kDeepCopy) return deep_copy();
  sim::note_bytes_shared(size());
  return *this;
}

}  // namespace dfl
