#include "ipfs/swarm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sim/timeout.hpp"

namespace dfl::ipfs {

namespace {

/// Deadline budget of one attempt: the policy's per-attempt timeout capped
/// by the time remaining to the absolute deadline (0 = unbounded). A call
/// issued at or past the deadline still gets one attempt (the deadline
/// bounds retries, not the mandatory first try), budgeted by the policy's
/// per-attempt timeout alone.
sim::TimeNs attempt_budget(const RetryPolicy& policy, sim::TimeNs deadline, sim::TimeNs now) {
  sim::TimeNs budget = policy.attempt_timeout;
  if (deadline >= 0) {
    const sim::TimeNs remaining = deadline - now;
    if (remaining > 0) budget = budget > 0 ? std::min(budget, remaining) : remaining;
  }
  return budget;
}

}  // namespace

IpfsNode& Swarm::add_node(const std::string& name, const sim::HostConfig& host_config) {
  sim::Host& host = net_.add_host(name, host_config);
  nodes_.push_back(std::make_unique<IpfsNode>(net_, host, config_.node_config, this,
                                              static_cast<std::uint32_t>(nodes_.size())));
  return *nodes_.back();
}

std::size_t Swarm::live_node_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node->host().is_up()) ++n;
  }
  return n;
}

void Swarm::add_provider(const Cid& cid, std::uint32_t node_id) {
  auto& list = provider_records_[cid];
  if (std::find(list.begin(), list.end(), node_id) == list.end()) {
    list.push_back(node_id);
  }
}

std::vector<std::uint32_t> Swarm::providers(const Cid& cid) const {
  const auto it = provider_records_.find(cid);
  if (it == provider_records_.end()) return {};
  return it->second;
}

sim::Task<Block> Swarm::fetch(sim::Host& caller, Cid cid, RetryStats* stats) {
  co_await net_.simulator().sleep(config_.lookup_latency);
  const auto it = provider_records_.find(cid);
  if (it == provider_records_.end() || it->second.empty()) {
    // No record at all: the block never existed (fatal, do not retry).
    throw NotFoundError(cid);
  }
  // Spread load across live replicas (IPFS swarming fetches from whichever
  // peer serves the block; we pick deterministically by caller identity).
  std::vector<IpfsNode*> live;
  for (const std::uint32_t id : it->second) {
    IpfsNode& provider = *nodes_.at(id);
    if (provider.host().is_up()) live.push_back(&provider);
  }
  if (live.empty()) {
    throw UnavailableError("fetch " + cid.to_hex() + ": no live provider");
  }
  const std::size_t start = caller.id() % live.size();
  for (std::size_t k = 0; k < live.size(); ++k) {
    IpfsNode& provider = *live[(start + k) % live.size()];
    if (!provider.host().is_up()) continue;  // crashed since the lookup
    try {
      co_return co_await provider.get(caller, cid);
    } catch (const std::exception& e) {
      // Stale record, mid-transfer crash, corruption: fail over in place.
      DFL_DEBUG("swarm") << "fetch from " << provider.host().name() << " failed (" << e.what()
                         << "); trying next replica";
    }
    if (stats != nullptr && k + 1 < live.size()) ++stats->failovers;
  }
  throw UnavailableError("fetch " + cid.to_hex() + ": every live provider failed");
}

sim::Task<Block> Swarm::fetch_with_retry(sim::Host& caller, Cid cid, const RetryPolicy& policy,
                                         sim::TimeNs deadline, RetryStats* stats) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  std::exception_ptr last;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        auto result = co_await sim::with_timeout(sim, fetch(caller, cid, stats), budget);
        if (result) co_return std::move(*result);
        ++s.timeouts;
      } else {
        co_return co_await fetch(caller, cid, stats);
      }
    } catch (const NotFoundError&) {
      ++s.giveups;
      throw;  // the block never existed; retrying cannot help
    } catch (const std::exception&) {
      last = std::current_exception();
    }
  }
  ++s.giveups;
  if (last) std::rethrow_exception(last);
  throw UnavailableError("fetch " + cid.to_hex() + ": deadline/attempts exhausted");
}

sim::Task<std::optional<Cid>> Swarm::put_with_retry(std::uint32_t node_id, sim::Host& caller,
                                                    Block data, const RetryPolicy& policy,
                                                    sim::TimeNs deadline, RetryStats* stats) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  IpfsNode& target = *nodes_.at(node_id);
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        // serve_copy hands the attempt its own handle to the shared buffer
        // (a refcount bump, not a byte copy), so an attempt abandoned at
        // its deadline can complete (or not) without touching our frame —
        // exactly an RPC whose ack was lost; content addressing dedupes.
        auto result = co_await sim::with_timeout(sim, target.put(caller, data.serve_copy()), budget);
        if (result) co_return *result;
        ++s.timeouts;
      } else {
        co_return co_await target.put(caller, data.serve_copy());
      }
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "put to " << target.host().name() << " failed: " << e.what();
    }
  }
  ++s.giveups;
  co_return std::nullopt;
}

sim::Task<std::optional<Block>> Swarm::merge_get_with_retry(std::uint32_t node_id,
                                                            sim::Host& caller,
                                                            std::vector<Cid> cids,
                                                            const BlockMerger& merger,
                                                            const RetryPolicy& policy,
                                                            sim::TimeNs deadline,
                                                            RetryStats* stats) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  IpfsNode& provider = *nodes_.at(node_id);
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        auto result =
            co_await sim::with_timeout(sim, provider.merge_get(caller, cids, merger), budget);
        if (result) co_return std::move(*result);
        ++s.timeouts;
      } else {
        co_return co_await provider.merge_get(caller, cids, merger);
      }
    } catch (const NotFoundError&) {
      // The provider is missing one of the blocks: merging there can never
      // succeed — degrade gracefully to individual fetches.
      break;
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "merge_get at " << provider.host().name() << " failed: " << e.what();
    }
  }
  ++s.giveups;
  co_return std::nullopt;
}

sim::Task<std::size_t> Swarm::replicate(Cid cid, std::size_t copies) {
  const auto holders = providers(cid);
  if (holders.empty()) throw NotFoundError(cid);
  IpfsNode* source = nullptr;
  for (const std::uint32_t id : holders) {
    IpfsNode& n = *nodes_.at(id);
    if (n.host().is_up() && n.store().has(cid)) {
      source = &n;
      break;
    }
  }
  if (source == nullptr) {
    throw UnavailableError("replicate " + cid.to_hex() + ": no live holder");
  }
  // One handle to the stored buffer; every replica target below shares it.
  const auto block = source->store().get(cid);

  // Best effort: cover as many distinct live nodes as available; when the
  // swarm has fewer live nodes than requested copies, that is the achieved
  // count (never throw, never loop waiting for capacity).
  std::size_t have = holders.size();
  for (std::size_t i = 0; i < nodes_.size() && have < copies; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (std::find(holders.begin(), holders.end(), id) != holders.end()) continue;
    IpfsNode& target = *nodes_[i];
    if (!target.host().is_up()) continue;
    try {
      co_await net_.transfer(source->host(), target.host(), block->size());
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "replicate to " << target.host().name() << " failed: " << e.what();
      continue;
    }
    target.put_local(block->serve_copy());
    ++have;
  }
  co_return have;
}

}  // namespace dfl::ipfs
