#include "ipfs/swarm.hpp"

#include <algorithm>

namespace dfl::ipfs {

IpfsNode& Swarm::add_node(const std::string& name, const sim::HostConfig& host_config) {
  sim::Host& host = net_.add_host(name, host_config);
  nodes_.push_back(std::make_unique<IpfsNode>(net_, host, config_.node_config, this,
                                              static_cast<std::uint32_t>(nodes_.size())));
  return *nodes_.back();
}

void Swarm::add_provider(const Cid& cid, std::uint32_t node_id) {
  auto& list = provider_records_[cid];
  if (std::find(list.begin(), list.end(), node_id) == list.end()) {
    list.push_back(node_id);
  }
}

std::vector<std::uint32_t> Swarm::providers(const Cid& cid) const {
  const auto it = provider_records_.find(cid);
  if (it == provider_records_.end()) return {};
  return it->second;
}

sim::Task<Bytes> Swarm::fetch(sim::Host& caller, Cid cid) {
  co_await net_.simulator().sleep(config_.lookup_latency);
  // Spread load across live replicas (IPFS swarming fetches from whichever
  // peer serves the block; we pick deterministically by caller identity).
  std::vector<IpfsNode*> live;
  for (const std::uint32_t id : providers(cid)) {
    IpfsNode& provider = *nodes_.at(id);
    if (provider.host().is_up()) live.push_back(&provider);
  }
  if (live.empty()) throw NotFoundError(cid);
  const std::size_t start = caller.id() % live.size();
  for (std::size_t k = 0; k < live.size(); ++k) {
    IpfsNode& provider = *live[(start + k) % live.size()];
    if (!provider.host().is_up()) continue;
    co_return co_await provider.get(caller, cid);
  }
  throw NotFoundError(cid);
}

sim::Task<void> Swarm::replicate(Cid cid, std::size_t copies) {
  const auto holders = providers(cid);
  if (holders.empty()) throw NotFoundError(cid);
  IpfsNode& source = *nodes_.at(holders.front());
  const auto block = source.store().get(cid);
  if (!block) throw NotFoundError(cid);

  std::size_t have = holders.size();
  for (std::size_t i = 0; i < nodes_.size() && have < copies; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (std::find(holders.begin(), holders.end(), id) != holders.end()) continue;
    IpfsNode& target = *nodes_[i];
    if (!target.host().is_up()) continue;
    co_await net_.transfer(source.host(), target.host(), block->size());
    target.put_local(*block);
    ++have;
  }
}

}  // namespace dfl::ipfs
