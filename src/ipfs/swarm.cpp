#include "ipfs/swarm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/trace.hpp"
#include "sim/datapath.hpp"
#include "sim/span.hpp"
#include "sim/sync.hpp"
#include "sim/timeout.hpp"

namespace dfl::ipfs {

namespace {

/// Re-establishes `span` as the ambient obs context, then runs `inner`.
/// Needed around with_timeout: it starts the payload task through the
/// event queue (sim.spawn), so the caller's synchronously-set ambient
/// context cannot reach the payload's entry — this shim sets it inside
/// the spawned chain, immediately before the payload body runs.
template <typename T>
sim::Task<T> with_span(obs::SpanId span, sim::Task<T> inner) {
  obs::set_ambient_span(span);
  co_return co_await std::move(inner);
}


/// Deadline budget of one attempt: the policy's per-attempt timeout capped
/// by the time remaining to the absolute deadline (0 = unbounded). A call
/// issued at or past the deadline still gets one attempt (the deadline
/// bounds retries, not the mandatory first try), budgeted by the policy's
/// per-attempt timeout alone.
sim::TimeNs attempt_budget(const RetryPolicy& policy, sim::TimeNs deadline, sim::TimeNs now) {
  sim::TimeNs budget = policy.attempt_timeout;
  if (deadline >= 0) {
    const sim::TimeNs remaining = deadline - now;
    if (remaining > 0) budget = budget > 0 ? std::min(budget, remaining) : remaining;
  }
  return budget;
}

}  // namespace

IpfsNode& Swarm::add_node(const std::string& name, const sim::HostConfig& host_config) {
  sim::Host& host = net_.add_host(name, host_config);
  nodes_.push_back(std::make_unique<IpfsNode>(net_, host, config_.node_config, this,
                                              static_cast<std::uint32_t>(nodes_.size())));
  return *nodes_.back();
}

std::size_t Swarm::live_node_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node->host().is_up()) ++n;
  }
  return n;
}

sim::TimeNs Swarm::record_expiry() const {
  return config_.provider_ttl <= 0 ? -1 : net_.simulator().now() + config_.provider_ttl;
}

void Swarm::add_provider(const Cid& cid, std::uint32_t node_id) {
  auto& list = provider_records_[cid];
  for (ProviderRecord& rec : list) {
    if (rec.node_id == node_id) {
      rec.expires_at = record_expiry();  // re-announce refreshes the TTL
      return;
    }
  }
  list.push_back(ProviderRecord{node_id, record_expiry()});
}

std::vector<std::uint32_t> Swarm::providers(const Cid& cid, bool include_expired) const {
  const auto it = provider_records_.find(cid);
  if (it == provider_records_.end()) return {};
  const sim::TimeNs now = net_.simulator().now();
  std::vector<std::uint32_t> out;
  out.reserve(it->second.size());
  for (const ProviderRecord& rec : it->second) {
    if (include_expired || rec.expires_at < 0 || now < rec.expires_at) {
      out.push_back(rec.node_id);
    }
  }
  return out;
}

void Swarm::republish_sweep() {
  ++provider_stats_.republish_sweeps;
  for (auto& [cid, records] : provider_records_) {
    for (ProviderRecord& rec : records) {
      if (rec.expires_at < 0) continue;
      const IpfsNode& holder = *nodes_.at(rec.node_id);
      if (!holder.host().is_up() || !holder.store().has(cid)) continue;
      rec.expires_at = record_expiry();
      ++provider_stats_.records_refreshed;
    }
  }
}

void Swarm::republish_until(sim::TimeNs until) {
  if (config_.provider_republish <= 0 || config_.provider_ttl <= 0) return;
  sim::Simulator& sim = net_.simulator();
  if (next_republish_at_ <= 0) next_republish_at_ = config_.provider_republish;
  while (next_republish_at_ < until) {
    sim.schedule_at(next_republish_at_, [this] { republish_sweep(); });
    next_republish_at_ += config_.provider_republish;
  }
}

sim::Task<Block> Swarm::fetch(sim::Host& caller, Cid cid, RetryStats* stats) {
  const obs::SpanId parent = obs::take_ambient_span();
  co_await net_.simulator().sleep(config_.lookup_latency);
  if (config_.node_config.chunking.mode == ChunkingMode::kDag) {
    obs::set_ambient_span(parent);
    co_return co_await fetch_dag(caller, cid, stats);
  }
  const std::vector<std::uint32_t> current = providers(cid);
  if (current.empty()) {
    if (!providers(cid, /*include_expired=*/true).empty()) {
      // Records exist but every one lapsed: the bytes are probably still
      // out there and a republish can revive the record — retryable.
      ++provider_stats_.expired_lookups;
      throw UnavailableError("fetch " + cid.to_hex() + ": provider records expired");
    }
    // No record at all: the block never existed (fatal, do not retry).
    throw NotFoundError(cid);
  }
  // Spread load across live replicas (IPFS swarming fetches from whichever
  // peer serves the block; we pick deterministically by caller identity).
  std::vector<IpfsNode*> live;
  for (const std::uint32_t id : current) {
    IpfsNode& provider = *nodes_.at(id);
    if (provider.host().is_up()) live.push_back(&provider);
  }
  if (live.empty()) {
    throw UnavailableError("fetch " + cid.to_hex() + ": no live provider");
  }
  const std::size_t start = caller.id() % live.size();
  for (std::size_t k = 0; k < live.size(); ++k) {
    IpfsNode& provider = *live[(start + k) % live.size()];
    if (!provider.host().is_up()) continue;  // crashed since the lookup
    try {
      obs::set_ambient_span(parent);
      co_return co_await provider.get(caller, cid);
    } catch (const std::exception& e) {
      // Stale record, mid-transfer crash, corruption: fail over in place.
      DFL_DEBUG("swarm") << "fetch from " << provider.host().name() << " failed (" << e.what()
                         << "); trying next replica";
    }
    if (stats != nullptr && k + 1 < live.size()) ++stats->failovers;
  }
  throw UnavailableError("fetch " + cid.to_hex() + ": every live provider failed");
}

sim::Task<Block> Swarm::fetch_dag(sim::Host& caller, Cid root, RetryStats* stats) {
  sim::Simulator& sim = net_.simulator();
  const ChunkingConfig& ck = config_.node_config.chunking;
  const sim::TimeNs t0 = sim.now();
  const sim::TimeNs deadline = t0 + ck.leaf_wait;

  // The span every chunk transfer of this fetch is attributed to.
  sim::ScopedSpan span(sim, "dag_fetch", caller.id(), obs::take_ambient_span());
  if (span) span.attr("root", root.to_hex().substr(0, 16));
  const obs::SpanId wire_parent = span.id();

  // Resolve the root. In the chunked plane the CID is announced before the
  // upload finishes, so "no record yet" usually means "still in flight":
  // poll up to the leaf-wait budget before declaring it nonexistent.
  while (providers(root).empty()) {
    if (sim.now() >= deadline) {
      if (!providers(root, /*include_expired=*/true).empty()) {
        // Announced once but every record lapsed: retryable, a republish
        // from a live holder can revive it.
        ++provider_stats_.expired_lookups;
        throw UnavailableError("fetch " + root.to_hex() + ": provider records expired");
      }
      throw NotFoundError(root);
    }
    co_await sim.sleep(ck.leaf_poll);
  }

  // Manifest from the holder whose pipes drain first (rotation breaks
  // ties), failing over across the rest; re-poll while every holder is
  // down (one may restart before the deadline).
  std::optional<Block> root_block;
  std::size_t live_count = 1;
  for (;;) {
    std::vector<std::uint32_t> live;
    for (const std::uint32_t id : providers(root)) {
      if (nodes_.at(id)->host().is_up()) live.push_back(id);
    }
    if (!live.empty()) {
      live_count = live.size();
      std::rotate(live.begin(), live.begin() + caller.id() % live.size(), live.end());
      std::stable_sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
        return node_drain_time(a) < node_drain_time(b);
      });
      for (std::size_t k = 0; k < live.size() && !root_block; ++k) {
        IpfsNode& provider = *nodes_.at(live[k]);
        try {
          obs::set_ambient_span(wire_parent);
          root_block = co_await provider.get_manifest(caller, root);
        } catch (const std::exception& e) {
          DFL_DEBUG("swarm") << "manifest from " << provider.host().name() << " failed ("
                             << e.what() << "); trying next replica";
          if (stats != nullptr) ++stats->failovers;
        }
      }
    }
    if (root_block) break;
    if (sim.now() >= deadline) {
      throw UnavailableError("fetch " + root.to_hex() + ": no live provider");
    }
    co_await sim.sleep(ck.leaf_poll);
  }

  auto manifest = DagManifest::decode(root_block->view());
  if (!manifest) {
    // Not a DAG: the root block *is* the content (stored pre-chunking, e.g.
    // directly via put_local). It verified against its CID; hand it over.
    co_return *std::move(root_block);
  }
  const std::size_t n = manifest->leaf_count();
  if (span) span.attr("leaves", static_cast<std::int64_t>(n));
  if (n == 0) co_return Block(Bytes{});

  // Stripe leaf downloads across providers: a shared claim counter feeds a
  // small pool of lanes, so up to `workers` leaves are on the wire at once,
  // each from the provider its rotation picks.
  std::vector<Block> leaves(n);
  std::size_t next = 0;
  sim::TimeNs first = -1;
  sim::TimeNs last = 0;
  const std::uint64_t tag = cid_prefix64(root);
  const std::size_t workers = std::min(n, std::min<std::size_t>(2 * live_count, 8));
  sim::TaskGroup group(sim);
  for (std::size_t w = 0; w < workers; ++w) {
    group.spawn(stripe_worker(caller, root, &*manifest, tag, deadline, &next, &leaves, stats,
                              &first, &last, wire_parent));
  }
  co_await group.join();
  sim::note_chunked_transfer(static_cast<std::uint64_t>(first < 0 ? 0 : first - t0),
                             static_cast<std::uint64_t>(last - t0), n);
  co_return Chunker::reassemble(*manifest, leaves);
}

sim::Task<void> Swarm::stripe_worker(sim::Host& caller, Cid root, const DagManifest* manifest,
                                     std::uint64_t tag, sim::TimeNs deadline, std::size_t* next,
                                     std::vector<Block>* out, RetryStats* stats,
                                     sim::TimeNs* first, sim::TimeNs* last,
                                     std::uint64_t parent_span) {
  sim::Simulator& sim = net_.simulator();
  const sim::TimeNs poll = config_.node_config.chunking.leaf_poll;
  while (*next < manifest->leaf_count()) {
    const std::size_t k = (*next)++;
    const Cid& leaf = manifest->leaves[k];
    for (;;) {
      // A leaf's provider record appears the instant the leaf is stored
      // (put_local), so a record always means the node can serve it now —
      // polling records is how the fetch streams behind the upload.
      std::vector<std::uint32_t> live;
      for (const std::uint32_t id : providers(leaf)) {
        if (nodes_.at(id)->host().is_up()) live.push_back(id);
      }
      bool done = false;
      if (!live.empty()) {
        // Load-aware pick: serve from the replica that would get to us
        // first, counting both its pipe backlog and the bytes other stripe
        // lanes have claimed from it but not yet put on the wire (without
        // that look-ahead every concurrent fetcher herds onto the same
        // momentarily-idle node). Rotation by (leaf, caller) breaks ties,
        // so cold-start load still spreads deterministically.
        std::rotate(live.begin(), live.begin() + (k + caller.id()) % live.size(), live.end());
        std::stable_sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
          return node_drain_time(a) < node_drain_time(b);
        });
        const auto [lo, hi] = manifest->leaf_range(k);
        const std::uint64_t leaf_bytes = hi - lo;
        // Patience: when a fetch streams behind the upload, each leaf's
        // record appears on the first replica one copy-slot before the
        // others — committing on sight herds every downloader onto that
        // replica while the rest of the swarm holds the same bytes moments
        // later. So if some live root holder is still missing this leaf
        // (its copy is materializing) and even the best current holder
        // could not start serving within one chunk-serve time, wait: the
        // backed-up queue would not have served us sooner, and the lagging
        // replica becomes an idle server for this very leaf.
        bool replica_pending = false;
        for (const std::uint32_t id : providers(root)) {
          if (nodes_.at(id)->host().is_up() &&
              std::find(live.begin(), live.end(), id) == live.end()) {
            replica_pending = true;
            break;
          }
        }
        if (replica_pending) {
          const sim::Host& best = nodes_.at(live.front())->host();
          const auto serve_ns = static_cast<sim::TimeNs>(static_cast<double>(leaf_bytes) * 8.0 /
                                                         best.config().up_bps * 1e9);
          if (node_drain_time(live.front()) > sim.now() + serve_ns && sim.now() < deadline) {
            co_await sim.sleep(poll);
            continue;
          }
        }
        for (std::size_t j = 0; j < live.size() && !done; ++j) {
          IpfsNode& provider = *nodes_.at(live[j]);
          const std::uint64_t claim = stripe_claim(live[j], leaf_bytes);
          try {
            obs::set_ambient_span(parent_span);
            (*out)[k] = co_await provider.get_leaf(caller, leaf, tag,
                                                   static_cast<std::int32_t>(k), claim);
            stripe_release(claim);  // no-op if the serve already released it
            const sim::TimeNs now = sim.now();
            if (*first < 0) *first = now;
            *last = std::max(*last, now);
            done = true;
          } catch (const std::exception& e) {
            stripe_release(claim);
            DFL_DEBUG("swarm") << "leaf " << k << " from " << provider.host().name()
                               << " failed (" << e.what() << "); failing over";
            if (stats != nullptr) ++stats->failovers;
          }
        }
      }
      if (done) break;
      if (sim.now() >= deadline) {
        throw UnavailableError("fetch: leaf " + std::to_string(k) + " unavailable");
      }
      co_await sim.sleep(poll);
    }
  }
}

sim::Task<Block> Swarm::fetch_with_retry(sim::Host& caller, Cid cid, const RetryPolicy& policy,
                                         sim::TimeNs deadline, RetryStats* stats) {
  const obs::SpanId parent = obs::take_ambient_span();
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  std::exception_ptr last;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        auto result = co_await sim::with_timeout(
            sim, with_span(parent, fetch(caller, cid, stats)), budget);
        if (result) co_return std::move(*result);
        ++s.timeouts;
      } else {
        obs::set_ambient_span(parent);
        co_return co_await fetch(caller, cid, stats);
      }
    } catch (const NotFoundError&) {
      ++s.giveups;
      throw;  // the block never existed; retrying cannot help
    } catch (const std::exception&) {
      last = std::current_exception();
    }
  }
  ++s.giveups;
  if (last) std::rethrow_exception(last);
  throw UnavailableError("fetch " + cid.to_hex() + ": deadline/attempts exhausted");
}

sim::Task<std::optional<Cid>> Swarm::put_with_retry(std::uint32_t node_id, sim::Host& caller,
                                                    Block data, const RetryPolicy& policy,
                                                    sim::TimeNs deadline, RetryStats* stats) {
  const obs::SpanId parent = obs::take_ambient_span();
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  IpfsNode& target = *nodes_.at(node_id);
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        // serve_copy hands the attempt its own handle to the shared buffer
        // (a refcount bump, not a byte copy), so an attempt abandoned at
        // its deadline can complete (or not) without touching our frame —
        // exactly an RPC whose ack was lost; content addressing dedupes.
        auto result = co_await sim::with_timeout(
            sim, with_span(parent, target.put(caller, data.serve_copy())), budget);
        if (result) co_return *result;
        ++s.timeouts;
      } else {
        obs::set_ambient_span(parent);
        co_return co_await target.put(caller, data.serve_copy());
      }
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "put to " << target.host().name() << " failed: " << e.what();
    }
  }
  ++s.giveups;
  co_return std::nullopt;
}

sim::Task<std::optional<Block>> Swarm::merge_get_with_retry(std::uint32_t node_id,
                                                            sim::Host& caller,
                                                            std::vector<Cid> cids,
                                                            const BlockMerger& merger,
                                                            const RetryPolicy& policy,
                                                            sim::TimeNs deadline,
                                                            RetryStats* stats) {
  const obs::SpanId parent = obs::take_ambient_span();
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  sim::Simulator& sim = net_.simulator();
  IpfsNode& provider = *nodes_.at(node_id);
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++s.retries;
      sim::TimeNs pause = policy.backoff(attempt, retry_rng_);
      if (deadline >= 0) pause = std::min(pause, deadline - sim.now());
      if (pause > 0) co_await sim.sleep(pause);
    }
    if (attempt > 0 && deadline >= 0 && sim.now() >= deadline) break;
    ++s.attempts;
    const sim::TimeNs budget = attempt_budget(policy, deadline, sim.now());
    try {
      if (budget > 0) {
        auto result = co_await sim::with_timeout(
            sim, with_span(parent, provider.merge_get(caller, cids, merger)), budget);
        if (result) co_return std::move(*result);
        ++s.timeouts;
      } else {
        obs::set_ambient_span(parent);
        co_return co_await provider.merge_get(caller, cids, merger);
      }
    } catch (const NotFoundError&) {
      // The provider is missing one of the blocks: merging there can never
      // succeed — degrade gracefully to individual fetches.
      break;
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "merge_get at " << provider.host().name() << " failed: " << e.what();
    }
  }
  ++s.giveups;
  co_return std::nullopt;
}

std::uint64_t Swarm::stripe_claim(std::uint32_t node_id, std::uint64_t bytes) {
  const std::uint64_t ticket = next_stripe_ticket_++;
  stripe_claims_.emplace(ticket, std::make_pair(node_id, bytes));
  stripe_pending_[node_id] += bytes;
  return ticket;
}

void Swarm::stripe_release(std::uint64_t ticket) {
  const auto it = stripe_claims_.find(ticket);
  if (it == stripe_claims_.end()) return;
  stripe_pending_[it->second.first] -= it->second.second;
  stripe_claims_.erase(it);
}

sim::TimeNs Swarm::node_drain_time(std::uint32_t node_id) const {
  // Uplink-centric: serves leave on the uplink, and the request that
  // triggers one is a control frame that never queues behind the node's
  // inbound bulk, so downlink backlog does not delay a download.
  const sim::Host& h = nodes_.at(node_id)->host();
  sim::TimeNs t = std::max(net_.simulator().now(), h.uplink_busy_until());
  if (const auto it = stripe_pending_.find(node_id);
      it != stripe_pending_.end() && it->second > 0) {
    t += static_cast<sim::TimeNs>(static_cast<double>(it->second) * 8.0 /
                                  h.config().up_bps * 1e9);
  }
  return t;
}

sim::Task<std::size_t> Swarm::replicate(Cid cid, std::size_t copies) {
  // Maintenance path: an expired record still points at real bytes, and
  // the copy below re-announces (refreshing the record) via put_local.
  const auto holders = providers(cid, /*include_expired=*/true);
  if (holders.empty()) throw NotFoundError(cid);
  IpfsNode* source = nullptr;
  for (const std::uint32_t id : holders) {
    IpfsNode& n = *nodes_.at(id);
    if (n.host().is_up() && n.store().has(cid)) {
      source = &n;
      break;
    }
  }
  if (source == nullptr) {
    throw UnavailableError("replicate " + cid.to_hex() + ": no live holder");
  }
  // One handle to the stored buffer; every replica target below shares it.
  const auto block = source->store().get(cid);
  // In the chunked plane a stored root is a manifest: replicate the DAG
  // (manifest plus every leaf) so the new holder can serve stripes too.
  const auto manifest = config_.node_config.chunking.mode == ChunkingMode::kDag
                            ? source->dag_manifest(cid)
                            : std::nullopt;

  // Best effort: cover as many distinct live nodes as available; when the
  // swarm has fewer live nodes than requested copies, that is the achieved
  // count (never throw, never loop waiting for capacity).
  std::size_t have = holders.size();
  for (std::size_t i = 0; i < nodes_.size() && have < copies; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    if (std::find(holders.begin(), holders.end(), id) != holders.end()) continue;
    IpfsNode& target = *nodes_[i];
    if (!target.host().is_up()) continue;
    try {
      if (manifest) {
        const std::uint64_t tag = cid_prefix64(cid);
        co_await copy_block(source, &target, cid, tag, sim::TransferRecord::kManifestLeaf);
        // Bounded window: replication shares the source's uplink with live
        // serving traffic, so never reserve it more than a few chunks ahead.
        co_await sim::for_each_windowed(
            net_.simulator(), manifest->leaf_count(), config_.node_config.chunking.pipeline_depth,
            [&](std::size_t l) {
              return copy_block(source, &target, manifest->leaves[l], tag,
                                static_cast<std::int32_t>(l));
            });
      } else {
        co_await net_.transfer(source->host(), target.host(), block->size());
        target.put_local(block->serve_copy());
      }
    } catch (const std::exception& e) {
      DFL_DEBUG("swarm") << "replicate to " << target.host().name() << " failed: " << e.what();
      continue;
    }
    ++have;
  }
  co_return have;
}

sim::Task<void> Swarm::copy_block(IpfsNode* source, IpfsNode* target, Cid cid, std::uint64_t tag,
                                  std::int32_t leaf_index) {
  auto block = source->store().get(cid);
  if (!block) throw NotFoundError(cid);
  co_await net_.transfer(source->host(), target->host(), block->size(), tag, leaf_index);
  target->put_local(*std::move(block));
}

void Swarm::replicate_background(Cid cid, std::size_t copies) {
  net_.simulator().spawn(replicate_task(std::move(cid), copies));
}

sim::Task<void> Swarm::replicate_task(Cid cid, std::size_t copies) {
  try {
    (void)co_await replicate(cid, copies);
  } catch (const std::exception& e) {
    DFL_DEBUG("swarm") << "background replicate " << cid.to_hex() << " failed: " << e.what();
  }
}

}  // namespace dfl::ipfs
