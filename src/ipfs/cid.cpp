#include "ipfs/cid.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace dfl::ipfs {

Cid Cid::of(BytesView data) {
  Cid cid;
  cid.digest_ = crypto::Sha256::hash(data);
  return cid;
}

Cid Cid::from_digest(BytesView digest) {
  if (digest.size() != 32) {
    throw std::invalid_argument("Cid::from_digest: digest must be 32 bytes");
  }
  Cid cid;
  std::copy(digest.begin(), digest.end(), cid.digest_.begin());
  return cid;
}

bool Cid::is_null() const {
  return std::all_of(digest_.begin(), digest_.end(), [](std::uint8_t b) { return b == 0; });
}

std::string Cid::to_hex() const {
  return dfl::to_hex(BytesView(digest_.data(), digest_.size()));
}

bool Cid::matches(BytesView data) const {
  return Cid::of(data) == *this;
}

}  // namespace dfl::ipfs
