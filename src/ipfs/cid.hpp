// Content identifiers: the SHA-256 digest of a block's bytes, mirroring
// IPFS's default content addressing (Section III-C of the paper: parties
// locate data by Cid = Hash(data) and verify integrity by rehashing).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace dfl::ipfs {

class Cid {
 public:
  Cid() = default;  // the null CID (all zero) — used as "not yet known"

  /// Computes the CID of a data block (SHA-256 of its bytes).
  static Cid of(BytesView data);

  /// Reconstructs a CID from its 32 raw digest bytes.
  static Cid from_digest(BytesView digest);

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] const std::array<std::uint8_t, 32>& digest() const { return digest_; }
  [[nodiscard]] std::string to_hex() const;

  /// True if `data` actually hashes to this CID (retrieval verification —
  /// the paper assumes storage nodes are not trusted for correctness).
  [[nodiscard]] bool matches(BytesView data) const;

  friend bool operator==(const Cid&, const Cid&) = default;
  friend std::strong_ordering operator<=>(const Cid&, const Cid&) = default;

 private:
  std::array<std::uint8_t, 32> digest_{};
};

struct CidHash {
  std::size_t operator()(const Cid& cid) const {
    // Digest bytes are already uniform; fold the first 8.
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | cid.digest()[static_cast<std::size_t>(i)];
    return h;
  }
};

}  // namespace dfl::ipfs
