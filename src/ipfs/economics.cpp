#include "ipfs/economics.hpp"

#include <algorithm>
#include <cmath>

namespace dfl::ipfs {

CreditLedger::CreditLedger(Swarm& swarm, CreditRates rates) : swarm_(swarm), rates_(rates) {
  checkpoint();
}

void CreditLedger::checkpoint() {
  base_sent_.assign(swarm_.node_count(), 0);
  base_received_.assign(swarm_.node_count(), 0);
  for (std::size_t i = 0; i < swarm_.node_count(); ++i) {
    base_sent_[i] = swarm_.node(i).host().bytes_sent();
    base_received_[i] = swarm_.node(i).host().bytes_received();
  }
}

std::vector<NodeEarnings> CreditLedger::settle() const {
  std::vector<NodeEarnings> out;
  out.reserve(swarm_.node_count());
  for (std::size_t i = 0; i < swarm_.node_count(); ++i) {
    IpfsNode& node = swarm_.node(i);
    NodeEarnings e;
    e.node_id = node.node_id();
    // New nodes added after the checkpoint start from zero.
    const std::uint64_t base_s = i < base_sent_.size() ? base_sent_[i] : 0;
    const std::uint64_t base_r = i < base_received_.size() ? base_received_[i] : 0;
    e.bytes_served = node.host().bytes_sent() - base_s;
    e.bytes_ingested = node.host().bytes_received() - base_r;
    e.bytes_stored = node.store().bytes_stored();
    e.credits = rates_.per_mb_served * static_cast<double>(e.bytes_served) / 1e6 +
                rates_.per_mb_ingested * static_cast<double>(e.bytes_ingested) / 1e6 +
                rates_.per_mb_stored * static_cast<double>(e.bytes_stored) / 1e6;
    out.push_back(e);
  }
  return out;
}

double CreditLedger::total_credits() const {
  double total = 0;
  for (const NodeEarnings& e : settle()) total += e.credits;
  return total;
}

double CreditLedger::earnings_imbalance() const {
  const auto earnings = settle();
  if (earnings.size() < 2) return 0.0;
  // Gini coefficient over per-node credits.
  std::vector<double> c;
  c.reserve(earnings.size());
  double sum = 0;
  for (const NodeEarnings& e : earnings) {
    c.push_back(e.credits);
    sum += e.credits;
  }
  if (sum <= 0) return 0.0;
  std::sort(c.begin(), c.end());
  const double n = static_cast<double>(c.size());
  double weighted = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    weighted += (2.0 * (static_cast<double>(i) + 1) - n - 1) * c[i];
  }
  return weighted / (n * sum);
}

}  // namespace dfl::ipfs
