// The storage network as a whole: node registry, provider records
// (a DHT-lite: who has which CID) and replication. Provider lookups pay a
// configurable routing latency, standing in for IPFS's DHT walks.
//
// Two RPC surfaces:
//  - raw:      fetch / IpfsNode::put/get/merge_get — one attempt, throws.
//  - reliable: *_with_retry — deadline-bounded attempts, exponential
//    backoff with deterministic jitter, provider failover; the chaos-layer
//    entry points the protocol actors use (see retry.hpp).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ipfs/node.hpp"
#include "ipfs/retry.hpp"
#include "sim/net.hpp"

namespace dfl::ipfs {

struct SwarmConfig {
  /// Routing latency of one provider lookup (DHT walk).
  sim::TimeNs lookup_latency = sim::from_millis(20);
  IpfsNodeConfig node_config{};
  /// Seed of the retry-jitter RNG stream (deterministic backoff).
  std::uint64_t retry_seed = 0x5eed5eedULL;
  /// Provider-record TTL (0 = records never expire, the legacy behavior).
  /// With a TTL, a record not refreshed within `provider_ttl` stops
  /// resolving: lookups see stale directory entries actually fail, which
  /// forces failover/retry through RetryPolicy — the IPFS DHT expiry
  /// dynamic measured by Trautwein et al.
  sim::TimeNs provider_ttl = 0;
  /// Republish sweep interval (0 = no republish). Each sweep refreshes
  /// the records of every live node that still holds the bytes; see
  /// republish_until().
  sim::TimeNs provider_republish = 0;
};

/// Provider-plane observability: expiry and republish activity.
struct ProviderStats {
  std::uint64_t republish_sweeps = 0;
  std::uint64_t records_refreshed = 0;
  /// Lookups that found only expired records (retryable UnavailableError).
  std::uint64_t expired_lookups = 0;
};

class Swarm {
 public:
  explicit Swarm(sim::Network& net, SwarmConfig config = {})
      : net_(net), config_(config), retry_rng_(config.retry_seed) {}
  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Creates a storage node backed by a new host with the given link config.
  IpfsNode& add_node(const std::string& name, const sim::HostConfig& host_config);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] IpfsNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t live_node_count() const;

  /// Records that `node_id` holds `cid` (called by IpfsNode on put).
  /// Refreshes the expiry of an existing record (config().provider_ttl).
  void add_provider(const Cid& cid, std::uint32_t node_id);

  /// Provider set for a CID (no latency; see `fetch` for the routed path).
  /// Excludes expired records unless `include_expired` — omniscient
  /// measurement reads pass true, the routed data path never does.
  [[nodiscard]] std::vector<std::uint32_t> providers(const Cid& cid,
                                                     bool include_expired = false) const;

  /// Schedules republish sweeps (every config().provider_republish) up to
  /// `until`. Each sweep refreshes the record expiry of every live node
  /// that still holds the block's bytes, reviving entries that lapsed
  /// while the holder was down. Incremental like FaultInjector::arm_until:
  /// the cursor is monotonic, so a per-round driver never schedules a
  /// sweep twice and never floods the event queue past the horizon.
  /// No-op when provider_republish or provider_ttl is 0.
  void republish_until(sim::TimeNs until);

  [[nodiscard]] const ProviderStats& provider_stats() const { return provider_stats_; }

  /// Resolves the CID through the routing layer (pays lookup_latency) and
  /// downloads from the live providers, failing over to the next replica
  /// when one errors. Throws NotFoundError when no provider record exists
  /// (the block never existed) and UnavailableError when providers are
  /// recorded but none could serve the block right now (retryable).
  /// `stats`, when given, counts the provider failovers taken.
  [[nodiscard]] sim::Task<Block> fetch(sim::Host& caller, Cid cid, RetryStats* stats = nullptr);

  /// `fetch` under the retry policy: deadline-bounded attempts with backoff
  /// until `deadline` (absolute simulated time; < 0 = unbounded) or the
  /// policy's attempt budget runs out. NotFoundError aborts immediately;
  /// exhaustion rethrows the last retryable error.
  [[nodiscard]] sim::Task<Block> fetch_with_retry(sim::Host& caller, Cid cid,
                                                  const RetryPolicy& policy,
                                                  sim::TimeNs deadline = -1,
                                                  RetryStats* stats = nullptr);

  /// Uploads `data` to node `node_id` under the retry policy. Returns the
  /// CID, or nullopt when every attempt failed or `deadline` passed (the
  /// caller typically fails over to the next replica target). All attempts
  /// (and all replica targets the caller tries) share `data`'s one
  /// immutable buffer — a retry is a refcount bump, not a reallocation.
  [[nodiscard]] sim::Task<std::optional<Cid>> put_with_retry(std::uint32_t node_id,
                                                             sim::Host& caller, Block data,
                                                             const RetryPolicy& policy,
                                                             sim::TimeNs deadline = -1,
                                                             RetryStats* stats = nullptr);

  /// merge_get on node `node_id` under the retry policy. Returns nullopt —
  /// *graceful degradation*, not an exception — when the provider cannot
  /// serve the merge (down, missing block, repeated timeouts); the caller
  /// then falls back to fetching the blocks individually.
  [[nodiscard]] sim::Task<std::optional<Block>> merge_get_with_retry(
      std::uint32_t node_id, sim::Host& caller, std::vector<Cid> cids, const BlockMerger& merger,
      const RetryPolicy& policy, sim::TimeNs deadline = -1, RetryStats* stats = nullptr);

  /// Replicates `cid` onto up to `copies` distinct nodes (including
  /// existing holders), moving bytes node-to-node. When fewer live nodes
  /// exist than requested, replicates to all of them; returns the number
  /// of copies that exist after the call. Supports the paper's
  /// data-availability future-work direction (Section VI).
  [[nodiscard]] sim::Task<std::size_t> replicate(Cid cid, std::size_t copies);

  /// Fire-and-forget replication: runs replicate(cid, copies) as a detached
  /// simulator root and swallows failures. Chain replication off the
  /// writer's uplink — the writer announces, uploads one primary copy, and
  /// durability spreads node-to-node off its critical path.
  void replicate_background(Cid cid, std::size_t copies);

  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] const SwarmConfig& config() const { return config_; }

  /// Registers striped-fetch demand against `node_id`: `bytes` claimed by a
  /// lane but not yet on the wire. Returns a ticket for stripe_release.
  std::uint64_t stripe_claim(std::uint32_t node_id, std::uint64_t bytes);
  /// Drops a claim (idempotent). The serving node calls this the moment the
  /// leaf transfer is issued — from then on the pipe reservation itself
  /// carries the load signal and keeping the claim would double-count it.
  void stripe_release(std::uint64_t ticket);

 private:
  /// Chunked fetch: resolve the root (polling — the root may be announced
  /// before its manifest lands anywhere), download the manifest from any
  /// live holder, then stripe leaf downloads across every node that holds
  /// each leaf, failing over per-chunk instead of restarting the blob.
  [[nodiscard]] sim::Task<Block> fetch_dag(sim::Host& caller, Cid root, RetryStats* stats);
  /// One striping lane: claims leaf indices from the shared counter and
  /// downloads each from the least-loaded live holder (deterministic
  /// rotation by leaf index + caller id breaks ties), re-polling until the
  /// deadline when none can serve — or when every current holder is backed
  /// up while another root replica is still materializing (its copy of the
  /// leaf will land soon and serve faster than the hot holder's queue).
  [[nodiscard]] sim::Task<void> stripe_worker(sim::Host& caller, Cid root,
                                              const DagManifest* manifest, std::uint64_t tag,
                                              sim::TimeNs deadline, std::size_t* next,
                                              std::vector<Block>* out, RetryStats* stats,
                                              sim::TimeNs* first, sim::TimeNs* last,
                                              std::uint64_t parent_span);
  /// Copies one stored block node-to-node (replication data path).
  [[nodiscard]] sim::Task<void> copy_block(IpfsNode* source, IpfsNode* target, Cid cid,
                                           std::uint64_t tag, std::int32_t leaf_index);
  [[nodiscard]] sim::Task<void> replicate_task(Cid cid, std::size_t copies);

  /// Scheduling score for routing one request to `node`: when its pipes
  /// would serve us, counting bytes other stripe lanes already claimed
  /// from it but whose transfers have not reserved the pipes yet.
  [[nodiscard]] sim::TimeNs node_drain_time(std::uint32_t node_id) const;

  /// One DHT-lite provider record: who, and until when the record
  /// resolves (expires_at < 0 = never, the no-TTL legacy mode).
  struct ProviderRecord {
    std::uint32_t node_id = 0;
    sim::TimeNs expires_at = -1;
  };

  /// Expiry horizon for a record created/refreshed now.
  [[nodiscard]] sim::TimeNs record_expiry() const;
  /// One republish sweep: refresh records whose holder is up and still
  /// has the bytes.
  void republish_sweep();

  sim::Network& net_;
  SwarmConfig config_;
  Rng retry_rng_;
  std::vector<std::unique_ptr<IpfsNode>> nodes_;
  std::unordered_map<Cid, std::vector<ProviderRecord>, CidHash> provider_records_;
  ProviderStats provider_stats_;
  /// Next republish sweep not yet scheduled (monotonic cursor).
  sim::TimeNs next_republish_at_ = 0;
  /// In-flight striped-fetch demand per node (bytes claimed, not yet on
  /// the wire) — the look-ahead the pipe reservations can't see.
  std::unordered_map<std::uint32_t, std::uint64_t> stripe_pending_;
  /// Open claims: ticket -> (node, bytes). Released at serve start (by the
  /// node) or on failure (by the claiming lane); release is idempotent.
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>> stripe_claims_;
  std::uint64_t next_stripe_ticket_ = 1;
};

}  // namespace dfl::ipfs
