// The storage network as a whole: node registry, provider records
// (a DHT-lite: who has which CID) and replication. Provider lookups pay a
// configurable routing latency, standing in for IPFS's DHT walks.
//
// Two RPC surfaces:
//  - raw:      fetch / IpfsNode::put/get/merge_get — one attempt, throws.
//  - reliable: *_with_retry — deadline-bounded attempts, exponential
//    backoff with deterministic jitter, provider failover; the chaos-layer
//    entry points the protocol actors use (see retry.hpp).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ipfs/node.hpp"
#include "ipfs/retry.hpp"
#include "sim/net.hpp"

namespace dfl::ipfs {

struct SwarmConfig {
  /// Routing latency of one provider lookup (DHT walk).
  sim::TimeNs lookup_latency = sim::from_millis(20);
  IpfsNodeConfig node_config{};
  /// Seed of the retry-jitter RNG stream (deterministic backoff).
  std::uint64_t retry_seed = 0x5eed5eedULL;
};

class Swarm {
 public:
  explicit Swarm(sim::Network& net, SwarmConfig config = {})
      : net_(net), config_(config), retry_rng_(config.retry_seed) {}
  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Creates a storage node backed by a new host with the given link config.
  IpfsNode& add_node(const std::string& name, const sim::HostConfig& host_config);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] IpfsNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t live_node_count() const;

  /// Records that `node_id` holds `cid` (called by IpfsNode on put).
  void add_provider(const Cid& cid, std::uint32_t node_id);

  /// Provider set for a CID (no latency; see `fetch` for the routed path).
  [[nodiscard]] std::vector<std::uint32_t> providers(const Cid& cid) const;

  /// Resolves the CID through the routing layer (pays lookup_latency) and
  /// downloads from the live providers, failing over to the next replica
  /// when one errors. Throws NotFoundError when no provider record exists
  /// (the block never existed) and UnavailableError when providers are
  /// recorded but none could serve the block right now (retryable).
  /// `stats`, when given, counts the provider failovers taken.
  [[nodiscard]] sim::Task<Block> fetch(sim::Host& caller, Cid cid, RetryStats* stats = nullptr);

  /// `fetch` under the retry policy: deadline-bounded attempts with backoff
  /// until `deadline` (absolute simulated time; < 0 = unbounded) or the
  /// policy's attempt budget runs out. NotFoundError aborts immediately;
  /// exhaustion rethrows the last retryable error.
  [[nodiscard]] sim::Task<Block> fetch_with_retry(sim::Host& caller, Cid cid,
                                                  const RetryPolicy& policy,
                                                  sim::TimeNs deadline = -1,
                                                  RetryStats* stats = nullptr);

  /// Uploads `data` to node `node_id` under the retry policy. Returns the
  /// CID, or nullopt when every attempt failed or `deadline` passed (the
  /// caller typically fails over to the next replica target). All attempts
  /// (and all replica targets the caller tries) share `data`'s one
  /// immutable buffer — a retry is a refcount bump, not a reallocation.
  [[nodiscard]] sim::Task<std::optional<Cid>> put_with_retry(std::uint32_t node_id,
                                                             sim::Host& caller, Block data,
                                                             const RetryPolicy& policy,
                                                             sim::TimeNs deadline = -1,
                                                             RetryStats* stats = nullptr);

  /// merge_get on node `node_id` under the retry policy. Returns nullopt —
  /// *graceful degradation*, not an exception — when the provider cannot
  /// serve the merge (down, missing block, repeated timeouts); the caller
  /// then falls back to fetching the blocks individually.
  [[nodiscard]] sim::Task<std::optional<Block>> merge_get_with_retry(
      std::uint32_t node_id, sim::Host& caller, std::vector<Cid> cids, const BlockMerger& merger,
      const RetryPolicy& policy, sim::TimeNs deadline = -1, RetryStats* stats = nullptr);

  /// Replicates `cid` onto up to `copies` distinct nodes (including
  /// existing holders), moving bytes node-to-node. When fewer live nodes
  /// exist than requested, replicates to all of them; returns the number
  /// of copies that exist after the call. Supports the paper's
  /// data-availability future-work direction (Section VI).
  [[nodiscard]] sim::Task<std::size_t> replicate(Cid cid, std::size_t copies);

  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] const SwarmConfig& config() const { return config_; }

 private:
  sim::Network& net_;
  SwarmConfig config_;
  Rng retry_rng_;
  std::vector<std::unique_ptr<IpfsNode>> nodes_;
  std::unordered_map<Cid, std::vector<std::uint32_t>, CidHash> provider_records_;
};

}  // namespace dfl::ipfs
