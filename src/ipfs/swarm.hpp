// The storage network as a whole: node registry, provider records
// (a DHT-lite: who has which CID) and replication. Provider lookups pay a
// configurable routing latency, standing in for IPFS's DHT walks.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ipfs/node.hpp"
#include "sim/net.hpp"

namespace dfl::ipfs {

struct SwarmConfig {
  /// Routing latency of one provider lookup (DHT walk).
  sim::TimeNs lookup_latency = sim::from_millis(20);
  IpfsNodeConfig node_config{};
};

class Swarm {
 public:
  explicit Swarm(sim::Network& net, SwarmConfig config = {}) : net_(net), config_(config) {}
  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Creates a storage node backed by a new host with the given link config.
  IpfsNode& add_node(const std::string& name, const sim::HostConfig& host_config);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] IpfsNode& node(std::size_t i) { return *nodes_.at(i); }

  /// Records that `node_id` holds `cid` (called by IpfsNode on put).
  void add_provider(const Cid& cid, std::uint32_t node_id);

  /// Provider set for a CID (no latency; see `fetch` for the routed path).
  [[nodiscard]] std::vector<std::uint32_t> providers(const Cid& cid) const;

  /// Resolves the CID through the routing layer (pays lookup_latency) and
  /// downloads from the first live provider. Throws NotFoundError if no
  /// live provider holds the block.
  [[nodiscard]] sim::Task<Bytes> fetch(sim::Host& caller, Cid cid);

  /// Replicates `cid` onto `copies` distinct nodes (including existing
  /// holders), moving bytes node-to-node. Supports the paper's
  /// data-availability future-work direction (Section VI).
  [[nodiscard]] sim::Task<void> replicate(Cid cid, std::size_t copies);

  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] const SwarmConfig& config() const { return config_; }

 private:
  sim::Network& net_;
  SwarmConfig config_;
  std::vector<std::unique_ptr<IpfsNode>> nodes_;
  std::unordered_map<Cid, std::vector<std::uint32_t>, CidHash> provider_records_;
};

}  // namespace dfl::ipfs
