#include "ipfs/chunker.hpp"

#include <stdexcept>

#include "common/serde.hpp"

namespace dfl::ipfs {

namespace {

// Manifest wire magic ("DAG1"): guards decode against plain content blocks.
constexpr std::uint32_t kManifestMagic = 0x31474144;

}  // namespace

std::pair<std::uint64_t, std::uint64_t> DagManifest::leaf_range(std::size_t i) const {
  const std::uint64_t first = static_cast<std::uint64_t>(i) * chunk_size;
  const std::uint64_t last = std::min(total_size, first + chunk_size);
  return {first, last};
}

Bytes DagManifest::encode() const {
  Writer w;
  w.put<std::uint32_t>(kManifestMagic);
  w.put<std::uint64_t>(total_size);
  w.put<std::uint32_t>(chunk_size);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(leaves.size()));
  for (const Cid& leaf : leaves) {
    w.put_raw(BytesView(leaf.digest().data(), leaf.digest().size()));
  }
  return w.take();
}

std::optional<DagManifest> DagManifest::decode(BytesView data) {
  try {
    Reader r(data);
    if (r.get<std::uint32_t>() != kManifestMagic) return std::nullopt;
    DagManifest m;
    m.total_size = r.get<std::uint64_t>();
    m.chunk_size = r.get<std::uint32_t>();
    const auto n = r.get<std::uint32_t>();
    m.leaves.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Bytes digest(32);
      for (auto& b : digest) b = r.get<std::uint8_t>();
      m.leaves.push_back(Cid::from_digest(digest));
    }
    if (!r.done()) return std::nullopt;
    // Layout consistency: n chunks of chunk_size must cover total_size.
    if (m.chunk_size == 0 && m.total_size != 0) return std::nullopt;
    const std::uint64_t cs = m.chunk_size;
    const std::uint64_t expect =
        m.total_size == 0 ? 0 : (m.total_size + cs - 1) / cs;
    if (expect != m.leaves.size()) return std::nullopt;
    return m;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

Block DagBlock::reassemble() const { return Chunker::reassemble(index, leaves); }

Chunker::Chunker(std::size_t chunk_size) : chunk_size_(chunk_size) {
  if (chunk_size_ == 0) throw std::invalid_argument("Chunker: chunk size must be > 0");
}

DagBlock Chunker::build(const Block& data) const {
  DagBlock out;
  out.index.total_size = data.size();
  out.index.chunk_size = static_cast<std::uint32_t>(chunk_size_);
  const BytesView bytes = data.view();
  for (std::size_t off = 0; off < bytes.size(); off += chunk_size_) {
    const std::size_t len = std::min(chunk_size_, bytes.size() - off);
    Block leaf = Block::copy_of(bytes.subspan(off, len));
    out.index.leaves.push_back(leaf.cid());
    out.leaves.push_back(std::move(leaf));
  }
  out.manifest = Block(out.index.encode());
  out.root = out.manifest.cid();
  return out;
}

Cid Chunker::root_cid(const Block& data) const {
  DagManifest m;
  m.total_size = data.size();
  m.chunk_size = static_cast<std::uint32_t>(chunk_size_);
  const BytesView bytes = data.view();
  for (std::size_t off = 0; off < bytes.size(); off += chunk_size_) {
    const std::size_t len = std::min(chunk_size_, bytes.size() - off);
    m.leaves.push_back(Cid::of(bytes.subspan(off, len)));
  }
  return Cid::of(m.encode());
}

Block Chunker::reassemble(const DagManifest& manifest, const std::vector<Block>& leaves) {
  if (leaves.size() != manifest.leaf_count()) {
    throw std::invalid_argument("Chunker::reassemble: leaf count mismatch");
  }
  Bytes out;
  out.reserve(manifest.total_size);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto [first, last] = manifest.leaf_range(i);
    if (leaves[i].size() != last - first) {
      throw std::invalid_argument("Chunker::reassemble: leaf size mismatch");
    }
    const BytesView v = leaves[i].view();
    out.insert(out.end(), v.begin(), v.end());
  }
  if (out.size() != manifest.total_size) {
    throw std::invalid_argument("Chunker::reassemble: total size mismatch");
  }
  return Block(std::move(out));
}

std::uint64_t cid_prefix64(const Cid& cid) {
  std::uint64_t h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | cid.digest()[static_cast<std::size_t>(i)];
  return h;
}

}  // namespace dfl::ipfs
