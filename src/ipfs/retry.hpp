// Resilience policy for storage RPCs: per-attempt deadlines, bounded
// retries, and exponential backoff with deterministic jitter. Used by the
// Swarm's *_with_retry wrappers (swarm.hpp) and tunable per deployment
// through core::ProtocolOptions::retry.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace dfl::ipfs {

struct RetryPolicy {
  /// Total tries per operation (first attempt included). <= 1 disables
  /// retrying.
  int max_attempts = 4;
  /// Deadline of a single attempt; 0 = unbounded (wait for the RPC).
  sim::TimeNs attempt_timeout = sim::from_seconds(60);
  /// Backoff before retry k (1-based) is base * multiplier^(k-1), capped at
  /// max_backoff, then jittered by ±jitter_frac deterministically.
  sim::TimeNs base_backoff = sim::from_millis(250);
  double backoff_multiplier = 2.0;
  sim::TimeNs max_backoff = sim::from_seconds(8);
  double jitter_frac = 0.25;

  /// The pause before retry number `retry` (1-based). Deterministic given
  /// the rng state.
  [[nodiscard]] sim::TimeNs backoff(int retry, Rng& rng) const {
    double d = static_cast<double>(base_backoff);
    for (int i = 1; i < retry; ++i) d *= backoff_multiplier;
    d = std::min(d, static_cast<double>(max_backoff));
    if (jitter_frac > 0) {
      d *= 1.0 + rng.uniform_real(-jitter_frac, jitter_frac);
    }
    return std::max<sim::TimeNs>(0, static_cast<sim::TimeNs>(d));
  }
};

/// Counters produced by the retry wrappers; aggregated per protocol actor
/// into core::RoundMetrics.
struct RetryStats {
  std::uint64_t attempts = 0;   // RPC attempts issued
  std::uint64_t retries = 0;    // attempts beyond the first, per operation
  std::uint64_t timeouts = 0;   // attempts abandoned at their deadline
  std::uint64_t failovers = 0;  // switched provider/replica after a failure
  std::uint64_t giveups = 0;    // operations abandoned entirely

  RetryStats& operator+=(const RetryStats& o) {
    attempts += o.attempts;
    retries += o.retries;
    timeouts += o.timeouts;
    failovers += o.failovers;
    giveups += o.giveups;
    return *this;
  }
  [[nodiscard]] bool operator==(const RetryStats& o) const = default;
};

}  // namespace dfl::ipfs
