// In-memory content-addressed block storage for one IPFS node. Stores
// immutable ref-counted Blocks: a get is a refcount bump, not a copy, and
// the CID is taken from the block's cache (computed once at first put).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "ipfs/block.hpp"
#include "ipfs/cid.hpp"

namespace dfl::ipfs {

class BlockStore {
 public:
  /// Stores a block; returns its CID. Idempotent (same content, same CID).
  /// Accepts a Bytes buffer implicitly (wrapped into a Block, one move).
  Cid put(Block block);

  [[nodiscard]] bool has(const Cid& cid) const { return blocks_.contains(cid); }

  /// Returns the block or nullopt. Zero-copy: the returned handle shares
  /// the stored buffer (counted in sim::datapath_stats; kDeepCopy mode
  /// returns a physical copy instead).
  [[nodiscard]] std::optional<Block> get(const Cid& cid) const;

  /// Like get, but without the data-plane accounting or deep-copy
  /// emulation: for measurement/bookkeeping reads that are not protocol
  /// traffic (runner's omniscient collection, tests).
  [[nodiscard]] std::optional<Block> peek(const Cid& cid) const;

  /// Removes a block (garbage collection between FL rounds — the paper
  /// notes gradients are only needed briefly). Returns true if present.
  bool remove(const Cid& cid);

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_stored_; }

  void clear();

 private:
  std::unordered_map<Cid, Block, CidHash> blocks_;
  std::uint64_t bytes_stored_ = 0;
};

}  // namespace dfl::ipfs
