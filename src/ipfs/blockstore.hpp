// In-memory content-addressed block storage for one IPFS node.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "ipfs/cid.hpp"

namespace dfl::ipfs {

class BlockStore {
 public:
  /// Stores a block; returns its CID. Idempotent (same content, same CID).
  Cid put(Bytes data);

  [[nodiscard]] bool has(const Cid& cid) const { return blocks_.contains(cid); }

  /// Returns the block or nullopt.
  [[nodiscard]] std::optional<Bytes> get(const Cid& cid) const;

  /// Removes a block (garbage collection between FL rounds — the paper
  /// notes gradients are only needed briefly). Returns true if present.
  bool remove(const Cid& cid);

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t bytes_stored() const { return bytes_stored_; }

  void clear();

 private:
  std::unordered_map<Cid, Bytes, CidHash> blocks_;
  std::uint64_t bytes_stored_ = 0;
};

}  // namespace dfl::ipfs
