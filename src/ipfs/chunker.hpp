// Chunked content addressing: splits a Block into fixed-size leaf blocks
// under a Merkle-DAG root, mirroring how real IPFS imports content (unixfs
// chunks of ~256 KiB linked from a DAG node). The root CID is the hash of
// the serialized manifest — the ordered list of leaf CIDs plus the layout —
// so the manifest verifies against the root and every leaf verifies against
// its own CID: integrity of the whole object follows from per-piece checks,
// which is what lets transfers pipeline per-chunk and stripe across
// providers without trusting any of them.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "ipfs/block.hpp"
#include "ipfs/cid.hpp"
#include "sim/simulator.hpp"

namespace dfl::ipfs {

/// Which transfer plane the swarm and its nodes run.
enum class ChunkingMode : std::uint8_t {
  kMonolithic,  // whole-blob store-and-forward (legacy plane, default)
  kDag,         // chunked Merkle-DAG: per-leaf transfers, striping, streaming
};

inline constexpr std::size_t kDefaultChunkSize = 256 * 1024;

struct ChunkingConfig {
  ChunkingMode mode = ChunkingMode::kMonolithic;
  /// Leaf payload size in bytes (the last leaf may be shorter).
  std::size_t chunk_size = kDefaultChunkSize;
  /// Poll interval while waiting for a not-yet-arrived leaf or provider
  /// record (cut-through transfers race the upload that produces them).
  sim::TimeNs leaf_poll = sim::from_millis(20);
  /// Longest a single fetch/merge attempt waits for a pending leaf or
  /// record before declaring it unavailable (retry layer takes over).
  sim::TimeNs leaf_wait = sim::from_seconds(120);
  /// How many leaf transfers one bulk operation keeps in flight (its pipe
  /// reservation horizon; 0 = unbounded). Small values keep the FIFO pipes
  /// available to concurrent traffic — control RPCs wait ~depth chunks,
  /// not a whole blob. 1 (strict store-and-forward per chunk) measures
  /// best across the ablation grid: the per-chunk delivery latency it
  /// exposes is tiny next to the queueing it avoids.
  std::size_t pipeline_depth = 1;
};

/// The decoded DAG node: content layout plus the ordered leaf CIDs.
struct DagManifest {
  std::uint64_t total_size = 0;
  std::uint32_t chunk_size = 0;
  std::vector<Cid> leaves;

  [[nodiscard]] std::size_t leaf_count() const { return leaves.size(); }

  /// Byte range [first, last) of leaf `i` within the reassembled content.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> leaf_range(std::size_t i) const;

  [[nodiscard]] Bytes encode() const;
  /// Decodes a manifest; nullopt when `data` is not a manifest (wrong magic,
  /// truncated, or layout inconsistent with total_size/chunk_size).
  static std::optional<DagManifest> decode(BytesView data);

  friend bool operator==(const DagManifest&, const DagManifest&) = default;
};

/// A chunked object ready to store or ship: the manifest block (whose CID
/// is the DAG root) plus the leaf blocks in order.
struct DagBlock {
  Cid root;        // CID of the manifest bytes
  Block manifest;  // encoded manifest; manifest.cid() == root
  DagManifest index;
  std::vector<Block> leaves;  // parallel to index.leaves

  /// Reassembles the original content, bit-identical to the block that was
  /// split (verified per-leaf; see Chunker::reassemble).
  [[nodiscard]] Block reassemble() const;
};

class Chunker {
 public:
  explicit Chunker(std::size_t chunk_size = kDefaultChunkSize);

  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }

  /// Splits `data` into leaves and builds the manifest. Deterministic:
  /// same bytes + same chunk size => same root; a different chunk size
  /// yields a different leaf set (and the manifest records the chunk size),
  /// so the root always changes with the chunking geometry.
  [[nodiscard]] DagBlock build(const Block& data) const;

  /// The DAG root `build` would produce, without keeping the leaves around
  /// (cheap local hashing — used for announce-before-upload).
  [[nodiscard]] Cid root_cid(const Block& data) const;

  /// Concatenates `leaves` per `manifest` into the original content.
  /// Throws std::invalid_argument when the pieces do not match the layout.
  [[nodiscard]] static Block reassemble(const DagManifest& manifest,
                                        const std::vector<Block>& leaves);

 private:
  std::size_t chunk_size_;
};

/// First 8 digest bytes as a big-endian word — the compact trace tag used
/// by sim::TransferRecord (0 is reserved for "untagged"; a real digest
/// prefix of 0 has probability 2^-64).
[[nodiscard]] std::uint64_t cid_prefix64(const Cid& cid);

}  // namespace dfl::ipfs
