#include "ipfs/blockstore.hpp"

namespace dfl::ipfs {

Cid BlockStore::put(Block block) {
  // cid() hashes once and caches on the shared buffer; replica puts of the
  // same handle are cache hits.
  const Cid cid = block.cid();
  auto [it, inserted] = blocks_.try_emplace(cid, std::move(block));
  if (inserted) bytes_stored_ += it->second.size();
  return cid;
}

std::optional<Block> BlockStore::get(const Cid& cid) const {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return std::nullopt;
  return it->second.serve_copy();
}

std::optional<Block> BlockStore::peek(const Cid& cid) const {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

bool BlockStore::remove(const Cid& cid) {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return false;
  bytes_stored_ -= it->second.size();
  blocks_.erase(it);
  return true;
}

void BlockStore::clear() {
  blocks_.clear();
  bytes_stored_ = 0;
}

}  // namespace dfl::ipfs
