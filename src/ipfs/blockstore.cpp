#include "ipfs/blockstore.hpp"

namespace dfl::ipfs {

Cid BlockStore::put(Bytes data) {
  const Cid cid = Cid::of(data);
  auto [it, inserted] = blocks_.try_emplace(cid, std::move(data));
  if (inserted) bytes_stored_ += it->second.size();
  return cid;
}

std::optional<Bytes> BlockStore::get(const Cid& cid) const {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

bool BlockStore::remove(const Cid& cid) {
  const auto it = blocks_.find(cid);
  if (it == blocks_.end()) return false;
  bytes_stored_ -= it->second.size();
  blocks_.erase(it);
  return true;
}

void BlockStore::clear() {
  blocks_.clear();
  bytes_stored_ = 0;
}

}  // namespace dfl::ipfs
