#include "sim/net.hpp"

#include <algorithm>
#include <memory>

namespace dfl::sim {

Host& Network::add_host(const std::string& name, const HostConfig& config) {
  hosts_.push_back(std::make_unique<Host>(name, static_cast<std::uint32_t>(hosts_.size()), config));
  return *hosts_.back();
}

Task<void> Network::transfer(Host& from, Host& to, std::uint64_t bytes) {
  if (!from.is_up() || !to.is_up()) {
    throw NetworkError("transfer " + from.name() + " -> " + to.name() + ": endpoint down");
  }
  const std::uint64_t wire_bytes = bytes + overhead_bytes_;
  const double bps = std::min(from.config().up_bps, to.config().down_bps);
  const auto duration = static_cast<TimeNs>(static_cast<double>(wire_bytes) * 8.0 * 1e9 / bps);

  // Reserve both pipes FIFO: start when the later of the two frees up.
  const TimeNs start = std::max({sim_.now(), from.uplink_free_at_, to.downlink_free_at_});
  const TimeNs pipe_end = start + duration;
  from.uplink_free_at_ = pipe_end;
  to.downlink_free_at_ = pipe_end;

  from.bytes_sent_ += wire_bytes;
  to.bytes_received_ += wire_bytes;
  total_bytes_ += wire_bytes;

  const TimeNs arrival = pipe_end + from.config().latency + to.config().latency;
  if (tracing_) {
    trace_.push_back(TransferRecord{sim_.now(), start, arrival, from.id(), to.id(), wire_bytes});
  }
  co_await sim_.sleep_until(arrival);
  // Loss of the receiving endpoint mid-flight: model as failure at delivery.
  if (!to.is_up()) {
    throw NetworkError("transfer " + from.name() + " -> " + to.name() + ": receiver went down");
  }
}

}  // namespace dfl::sim
