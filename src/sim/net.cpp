#include "sim/net.hpp"

#include <algorithm>
#include <memory>

#include "obs/trace.hpp"

namespace dfl::sim {

void TraceBuffer::set_capacity(std::size_t cap) {
  if (cap != 0 && records_.size() > cap) {
    // Keep the newest `cap` records, re-based so head_ = 0.
    std::vector<TransferRecord> kept;
    kept.reserve(cap);
    for (std::size_t i = records_.size() - cap; i < records_.size(); ++i) {
      kept.push_back((*this)[i]);
    }
    dropped_ += records_.size() - cap;
    records_ = std::move(kept);
    head_ = 0;
  } else if (head_ != 0) {
    // Re-base a wrapped ring so future pushes append behind the newest.
    std::vector<TransferRecord> kept;
    kept.reserve(records_.size());
    for (const TransferRecord& r : *this) kept.push_back(r);
    records_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = cap;
}

std::vector<TransferRecord> TraceBuffer::snapshot() const {
  std::vector<TransferRecord> out;
  out.reserve(records_.size());
  for (const TransferRecord& r : *this) out.push_back(r);
  return out;
}

void Host::set_up(bool up) {
  const bool was_up = up_;
  up_ = up;
  if (was_up && !up && net_ != nullptr) net_->on_host_down(*this);
}

Host& Network::add_host(const std::string& name, const HostConfig& config) {
  hosts_.push_back(std::make_unique<Host>(name, static_cast<std::uint32_t>(hosts_.size()), config));
  hosts_.back()->net_ = this;
  return *hosts_.back();
}

TimeNs Network::min_path_latency() const {
  // Path latency is from.latency + to.latency over distinct hosts, so the
  // floor is the sum of the two smallest per-host latencies.
  TimeNs lo1 = Simulator::kNoEvent;
  TimeNs lo2 = Simulator::kNoEvent;
  for (const auto& h : hosts_) {
    const TimeNs l = h->config().latency;
    if (l < lo1) {
      lo2 = lo1;
      lo1 = l;
    } else if (l < lo2) {
      lo2 = l;
    }
  }
  return lo2 == Simulator::kNoEvent ? 0 : lo1 + lo2;
}

TimeNs Network::min_cross_shard_latency(const ShardPlacement& placement) const {
  placement.validate();
  // Per-shard minimum host latency, then the two smallest minima from
  // *distinct* shards bound every cross-shard pair.
  std::vector<TimeNs> shard_min(placement.shards, Simulator::kNoEvent);
  for (const auto& h : hosts_) {
    const std::uint32_t s = placement.shard(h->id());
    shard_min[s] = std::min(shard_min[s], h->config().latency);
  }
  TimeNs lo1 = Simulator::kNoEvent;
  TimeNs lo2 = Simulator::kNoEvent;
  for (const TimeNs m : shard_min) {
    if (m == Simulator::kNoEvent) continue;  // unpopulated shard
    if (m < lo1) {
      lo2 = lo1;
      lo1 = m;
    } else if (m < lo2) {
      lo2 = m;
    }
  }
  return lo2 == Simulator::kNoEvent ? Simulator::kNoEvent : lo1 + lo2;
}

void Network::InflightAwaiter::await_suspend(std::coroutine_handle<> h) {
  rec->handle = h;
  net.sim_.schedule_at(arrival, [rec = rec] {
    if (rec->woken) return;  // already failed by a crash
    rec->woken = true;
    rec->handle.resume();
  });
}

void Network::on_host_down(const Host& h) {
  for (auto& rec : inflight_) {
    if (rec->woken || (rec->from != h.id() && rec->to != h.id())) continue;
    rec->woken = true;
    rec->failed = true;
    ++mid_transfer_failures_;
    // Resume through the event queue (never inline) so the crash handler
    // returns before the failed transfer unwinds.
    sim_.schedule_at(sim_.now(), [rec] { rec->handle.resume(); });
  }
}

Task<void> Network::transfer(Host& from, Host& to, std::uint64_t bytes) {
  return transfer(from, to, bytes, 0, -1);
}

Task<void> Network::transfer(Host& from, Host& to, std::uint64_t bytes, std::uint64_t dag_root,
                             std::int32_t dag_leaf) {
  // Consume the ambient span first so a throw below still clears it —
  // a stale ambient would mis-attribute an unrelated later transfer.
  const obs::SpanId parent_span = obs::take_ambient_span();
  const std::uint64_t transfer_id = ++transfer_seq_;
  if (!from.is_up() || !to.is_up()) {
    throw NetworkError("transfer " + from.name() + " -> " + to.name() + ": endpoint down");
  }
  if (fault_hook_ != nullptr && fault_hook_->should_drop_transfer(from, to)) {
    ++transfers_dropped_;
    throw NetworkError("transfer " + from.name() + " -> " + to.name() + ": injected fault");
  }
  const std::uint64_t wire_bytes = bytes + overhead_bytes_;
  double up_bps = from.config().up_bps;
  double down_bps = to.config().down_bps;
  TimeNs extra_latency = 0;
  if (fault_hook_ != nullptr) {
    const FaultHook::PathEffect pe = fault_hook_->path_effect(from, to);
    up_bps *= std::clamp(pe.up_factor, 1e-6, 1.0);
    down_bps *= std::clamp(pe.down_factor, 1e-6, 1.0);
    extra_latency = std::max<TimeNs>(pe.extra_latency, 0);
  }
  const double bps = std::min(up_bps, down_bps);
  const auto duration = static_cast<TimeNs>(static_cast<double>(wire_bytes) * 8.0 * 1e9 / bps);

  // Reserve both pipes FIFO: start when the later of the two frees up.
  // Zero-payload control frames (requests, acks) multiplex into the bulk
  // streams instead — they pay their own serialization and latency but
  // neither wait for nor extend the pipe reservations.
  TimeNs start = sim_.now();
  TimeNs pipe_end = start + duration;
  if (bytes > 0) {
    start = std::max({sim_.now(), from.uplink_free_at_, to.downlink_free_at_});
    pipe_end = start + duration;
    from.uplink_free_at_ = pipe_end;
    to.downlink_free_at_ = pipe_end;
  }

  from.bytes_sent_ += wire_bytes;
  to.bytes_received_ += wire_bytes;
  total_bytes_ += wire_bytes;

  const TimeNs arrival = pipe_end + from.config().latency + to.config().latency + extra_latency;
  if (placement_ != nullptr) {
    // The routing decision of a sharded transport: a delivery whose
    // endpoints live on different shards crosses a window barrier.
    if (placement_->shard(from.id()) == placement_->shard(to.id())) {
      ++local_shard_transfers_;
    } else {
      ++cross_shard_transfers_;
    }
  }
  if (tracing_) {
    trace_.push(TransferRecord{sim_.now(), start, arrival, from.id(), to.id(), wire_bytes,
                               dag_root, dag_leaf, transfer_id, parent_span});
  }
  auto rec = std::make_shared<Inflight>(Inflight{from.id(), to.id(), {}, false, false});
  inflight_.push_back(rec);
  co_await InflightAwaiter{*this, rec, arrival};
  std::erase(inflight_, rec);
  if (rec->failed) {
    throw NetworkError("transfer " + from.name() + " -> " + to.name() +
                       ": endpoint crashed mid-transfer");
  }
  // Endpoint taken down without crash notification (e.g. a host of another
  // network sharing the simulator): model as failure at delivery.
  if (!to.is_up()) {
    throw NetworkError("transfer " + from.name() + " -> " + to.name() + ": receiver went down");
  }
}

}  // namespace dfl::sim
