// Declarative chaos scenarios: a small INI-style config format that
// composes into the existing FaultPlan / FaultInjector / Network setup,
// so Internet-realistic adversity (heavy-tailed access links, diurnal
// availability waves, mobile session churn, asymmetric degradation,
// provider-record expiry) is described in a checked-in `.scn` file
// instead of hand-written C++ — and every future perf change is
// regression-tested under the same named conditions.
//
// Format (all times in seconds, all rates in Mbps, `#`/`;` comments):
//
//   [scenario]
//   name = diurnal
//   seed = 7
//   rounds = 8
//
//   [deployment]            ; raw key=value overrides, applied by
//   trainers = 8            ; core::apply_scenario (sim stays core-free)
//
//   [links.trainers]        ; per-role link sampling, one draw per host
//   bandwidth_mbps = lognormal(10, 0.5)
//   latency_ms = pareto(5, 2.5)
//
//   [faults]                ; probabilistic per-transfer faults
//   latency_jitter_ms = exp(20)
//
//   [churn] [diurnal] [sessions]   ; CrashWindow generators
//   [degrade]               ; window = <role|host:N> <start> <end> <factor> [up|down|both]
//   [outage]                ; window = <role|host:N> <down_at> <up_at>
//   [providers]             ; ttl_s / republish_s (record expiry)
//   [slo]                   ; numeric thresholds for tools/check_scenario.py
//
// Everything is seeded and deterministic: the same (.scn, seed) pair
// produces a bit-identical fault schedule, link assignment, and run.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault.hpp"

namespace dfl::sim {

/// Parse or semantic error in a scenario file; the message carries the
/// offending line number.
struct ScenarioError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// role name -> network host ids, in creation order. Built by the
/// deployment layer ("nodes", "directory", "trainers", "aggregators").
using RoleMap = std::map<std::string, std::vector<std::uint32_t>>;

/// Per-role link model: each host of the role draws its own HostConfig.
/// `bandwidth_mbps` sets both directions with one draw (symmetric link);
/// `up_mbps` / `down_mbps` override a direction with an independent draw.
struct LinkModel {
  Distribution bandwidth_mbps{};
  Distribution up_mbps{};
  Distribution down_mbps{};
  Distribution latency_ms{};
  bool has_bandwidth = false;
  bool has_up = false;
  bool has_down = false;
  bool has_latency = false;

  /// One deterministic draw: fields not present keep `base`'s values.
  /// Bandwidth draws clamp to >= 0.01 Mbps, latency to >= 0.
  [[nodiscard]] HostConfig sample(const HostConfig& base, Rng& rng) const;

  /// Guaranteed lower bound of any latency this model can draw, in ns
  /// (the distribution's floor; see Distribution::floor). Returns
  /// `fallback` when the model does not override latency. Placement and
  /// lookahead accounting use this before any host has been sampled.
  [[nodiscard]] TimeNs latency_floor_ns(TimeNs fallback) const;
};

/// Periodic random churn (see FaultPlan::periodic_churn).
struct ChurnSpec {
  std::vector<std::string> roles;
  double period_s = 0;
  double downtime_s = 0;
  double prob = 0;
};

/// Diurnal availability wave: every `period_s`, hosts of the role sleep
/// with probability `down_prob` during the trough window
/// [offset, offset + len). Each host gets a fixed per-host phase shift in
/// [-phase_jitter_s, +phase_jitter_s] so the wave is staggered, not a
/// synchronized mass crash.
struct DiurnalSpec {
  std::vector<std::string> roles;
  double period_s = 0;
  double trough_offset_s = 0;
  double trough_len_s = 0;
  double down_prob = 1.0;
  double phase_jitter_s = 0;
};

/// Mobile-style session trace: each host alternates online/offline with
/// durations drawn from `on_s` / `off_s` until the horizon. Offline
/// intervals become CrashWindows.
struct SessionSpec {
  std::vector<std::string> roles;
  Distribution on_s{};
  Distribution off_s{};
  double start_online_prob = 1.0;
};

/// Explicit degradation window on a role or single host.
struct DegradeSpec {
  std::string target;  // role name or "host:N"
  double start_s = 0;
  double end_s = 0;
  double factor = 1.0;
  LinkDirection dir = LinkDirection::kBoth;
};

/// Explicit outage window on a role or single host (up_s <= down_s means
/// the hosts never return — a permanent partition).
struct OutageSpec {
  std::string target;
  double down_s = 0;
  double up_s = 0;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;
  bool has_seed = false;
  /// Suggested round count (0 = caller decides).
  int rounds = 0;

  /// Raw [deployment] overrides, interpreted by core::apply_scenario.
  std::vector<std::pair<std::string, std::string>> deployment;

  std::map<std::string, LinkModel> links;  // role -> model

  // [faults]
  double transfer_failure_prob = 0;
  double corruption_prob = 0;
  Distribution latency_jitter_ms{};
  double latency_jitter_prob = 1.0;

  std::vector<ChurnSpec> churn;
  std::vector<DiurnalSpec> diurnal;
  std::vector<SessionSpec> sessions;
  std::vector<DegradeSpec> degrade;
  std::vector<OutageSpec> outages;

  /// [providers]: record TTL and republish interval (0 = disabled).
  TimeNs provider_ttl = 0;
  TimeNs provider_republish = 0;

  /// [slo] thresholds, in file order (checked by tools/check_scenario.py).
  std::vector<std::pair<std::string, double>> slo;

  [[nodiscard]] bool active() const { return !name.empty(); }

  /// Expands every generator into one merged, validated FaultPlan over
  /// [0, horizon): churn/diurnal/session traces become CrashWindows
  /// (overlapping windows on one host are coalesced), degrade/outage
  /// targets are resolved through `roles`, probabilistic fields copy
  /// through. Deterministic in (spec, roles, horizon, seed). Throws
  /// ScenarioError on an unknown role.
  [[nodiscard]] FaultPlan build_fault_plan(const RoleMap& roles, TimeNs horizon,
                                           std::uint64_t seed) const;

  /// Guaranteed minimum extra one-way latency the scenario's jitter adds
  /// to every transfer, in ns — the same accounting as
  /// FaultPlan::latency_floor_ns, available before the plan is built so a
  /// sharded driver can fold it into the lookahead window up front.
  [[nodiscard]] TimeNs latency_floor_ns() const;

  /// Smallest per-host one-way latency any host can be assigned under the
  /// scenario's link models, in ns: the minimum over the roles' latency
  /// distribution floors, with `base_latency` standing in for roles (and
  /// deployments) the scenario leaves untouched. A conservative lookahead
  /// derived from this bound stays valid for every seed, because no draw
  /// can undercut its distribution's floor.
  [[nodiscard]] TimeNs min_host_latency_ns(TimeNs base_latency) const;
};

/// Parses one distribution: a bare number (constant) or
/// `constant(v)`, `uniform(a,b)`, `normal(mean,sd)`,
/// `lognormal(median,sigma)`, `exp(mean)` / `exponential(mean)`,
/// `pareto(min,tail)`. Throws ScenarioError on malformed input.
[[nodiscard]] Distribution parse_distribution(const std::string& text);

/// Parses scenario text. Throws ScenarioError with a line number on
/// malformed syntax, unknown sections/keys, or invalid values.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Reads and parses a `.scn` file; the filename is included in errors.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace dfl::sim
