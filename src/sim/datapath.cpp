#include "sim/datapath.hpp"

#include <algorithm>

namespace dfl::sim {

namespace {
DataPathStats g_stats;
DataPathMode g_mode = DataPathMode::kZeroCopy;
}  // namespace

DataPathStats& datapath_stats() { return g_stats; }

void reset_datapath_stats() {
  const std::uint64_t resident = g_stats.resident_block_bytes;
  g_stats = DataPathStats{};
  g_stats.resident_block_bytes = resident;
  g_stats.peak_resident_block_bytes = resident;
}

DataPathMode datapath_mode() { return g_mode; }

void set_datapath_mode(DataPathMode mode) { g_mode = mode; }

void note_block_alloc(std::uint64_t bytes) {
  ++g_stats.blocks_created;
  g_stats.resident_block_bytes += bytes;
  g_stats.peak_resident_block_bytes =
      std::max(g_stats.peak_resident_block_bytes, g_stats.resident_block_bytes);
}

void note_block_free(std::uint64_t bytes) { g_stats.resident_block_bytes -= bytes; }

void note_bytes_copied(std::uint64_t bytes) { g_stats.bytes_copied += bytes; }

void note_bytes_shared(std::uint64_t bytes) { g_stats.bytes_shared += bytes; }

void note_block_hashed(std::uint64_t bytes) {
  ++g_stats.blocks_hashed;
  g_stats.bytes_hashed += bytes;
}

void note_cid_cache_hit() { ++g_stats.cid_cache_hits; }

void note_chunked_transfer(std::uint64_t first_byte_ns, std::uint64_t last_byte_ns,
                           std::uint64_t chunks) {
  ++g_stats.chunked_transfers;
  g_stats.chunks_delivered += chunks;
  g_stats.first_byte_ns_total += first_byte_ns;
  g_stats.last_byte_ns_total += last_byte_ns;
}

}  // namespace dfl::sim
