// Simulated network: named hosts with uplink/downlink capacity and
// propagation latency. Replaces the paper's mininet emulation.
//
// Transfer model ("circuit" / store-and-forward FIFO): a transfer of S
// bytes from A to B reserves A's uplink and B's downlink for the same
// interval of length S*8/min(A.up, B.down), starting when both pipes are
// free (FIFO in issue order), and delivers one propagation latency later.
// Congestion at a busy storage node therefore serializes exactly as the
// paper's analysis in Section III-E assumes (τ = S·(T/(dP) + P/b)).
//
// Control frames — zero-payload transfers (requests, acks) — do not
// reserve the pipes: a few hundred bytes of framing multiplex into bulk
// streams packet-by-packet on a real link, so they pay their own
// serialization plus path latency but never queue behind a reserved bulk
// transfer (nor delay one measurably).
//
// Fault surface: a host that goes down (Host::set_up(false)) fails every
// in-flight transfer touching it *at the instant of the crash*, not at
// delivery time; an optional FaultHook lets an injector drop transfers
// probabilistically, degrade path bandwidth, and corrupt served payloads
// (see sim/fault.hpp).
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dfl::sim {

struct HostConfig {
  double up_bps = 10e6;    // uplink capacity, bits per second
  double down_bps = 10e6;  // downlink capacity, bits per second
  TimeNs latency = from_millis(1);  // one-way propagation delay
};

class Network;

/// A network endpoint. Created and owned by Network; identified by id.
class Host {
 public:
  Host(std::string name, std::uint32_t id, const HostConfig& config)
      : name_(std::move(name)), id_(id), config_(config) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  void reset_counters() { bytes_sent_ = bytes_received_ = 0; }

  /// Simulated failure switch: while down, new transfers throw NetworkError
  /// and every in-flight transfer touching the host fails at crash time.
  [[nodiscard]] bool is_up() const { return up_; }
  void set_up(bool up);

  /// Time the uplink's/downlink's FIFO reservation queue drains (<= now
  /// means idle). Schedulers use these to route work to the least-loaded
  /// replica instead of piling onto a hot one.
  [[nodiscard]] TimeNs uplink_busy_until() const { return uplink_free_at_; }
  [[nodiscard]] TimeNs downlink_busy_until() const { return downlink_free_at_; }

 private:
  friend class Network;
  std::string name_;
  std::uint32_t id_;
  HostConfig config_;
  Network* net_ = nullptr;  // set by Network::add_host
  TimeNs uplink_free_at_ = 0;
  TimeNs downlink_free_at_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool up_ = true;
};

/// Thrown by transfer() when either endpoint is down (at issue time or
/// mid-transfer) or when a fault hook drops the transfer.
struct NetworkError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Chaos hook consulted by the network on every transfer. Implemented by
/// sim::FaultInjector; the default (no hook) is a fault-free network.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// True to fail this transfer at issue time (random packet-level fault).
  virtual bool should_drop_transfer(const Host& from, const Host& to) = 0;
  /// Multiplier in (0, 1] applied to the path bandwidth right now.
  virtual double bandwidth_factor(const Host& from, const Host& to) = 0;
  /// True to corrupt a payload served by `server` (storage-layer fault;
  /// consulted by IpfsNode::get, detected by CID re-verification).
  virtual bool should_corrupt_payload(const Host& server) = 0;

  /// Direction-aware per-transfer effect: separate multipliers in (0, 1]
  /// for the sender's uplink and the receiver's downlink, plus extra
  /// one-way latency (jitter). This is what the network actually consults;
  /// the default adapts the legacy symmetric bandwidth_factor so existing
  /// hooks keep working unchanged.
  struct PathEffect {
    double up_factor = 1.0;
    double down_factor = 1.0;
    TimeNs extra_latency = 0;
  };
  virtual PathEffect path_effect(const Host& from, const Host& to) {
    const double f = bandwidth_factor(from, to);
    return PathEffect{f, f, 0};
  }
};

/// One completed transfer, for offline analysis of a simulation run.
struct TransferRecord {
  TimeNs issued_at;
  TimeNs start;      // when the pipes were actually acquired
  TimeNs delivered;  // last byte + latency
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t wire_bytes;
  /// Chunked-plane tag: first 8 digest bytes of the DAG root this transfer
  /// belongs to (0 = untagged / monolithic), and the leaf index within the
  /// DAG (kManifestLeaf for the manifest itself).
  std::uint64_t dag_root = 0;
  std::int32_t dag_leaf = -1;
  /// Monotonic per-network sequence number (1-based; 0 = unset). Stable
  /// across tracing on/off, so records can be joined with external logs.
  std::uint64_t id = 0;
  /// obs span that issued this transfer (obs::take_ambient_span() at issue
  /// time; 0 = unattributed). Lets exporters draw chunk-level wire activity
  /// under the protocol phase that caused it.
  std::uint64_t parent_span = 0;

  static constexpr std::int32_t kManifestLeaf = -2;
};

/// Bounded transfer log. Unlimited by default; with a capacity set it is a
/// ring buffer that keeps the most recent records and counts the dropped
/// ones, so tracing can stay enabled on long runs without unbounded growth.
/// Indexing is chronological over the retained window (0 = oldest kept).
class TraceBuffer {
 public:
  void push(const TransferRecord& rec) {
    if (capacity_ == 0) {
      records_.push_back(rec);
      return;
    }
    if (records_.size() < capacity_) {
      records_.push_back(rec);
      return;
    }
    records_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const TransferRecord& operator[](std::size_t i) const {
    return records_[(head_ + i) % records_.size()];
  }

  /// 0 = unlimited. Shrinking an over-full buffer keeps the newest records.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void reserve(std::size_t n) { records_.reserve(capacity_ == 0 ? n : std::min(n, capacity_)); }
  void clear() {
    records_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Chronological copy of the retained window (offline analysis).
  [[nodiscard]] std::vector<TransferRecord> snapshot() const;

  // Range-for support (chronological).
  class const_iterator {
   public:
    const_iterator(const TraceBuffer* buf, std::size_t i) : buf_(buf), i_(i) {}
    const TransferRecord& operator*() const { return (*buf_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const TraceBuffer* buf_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, records_.size()}; }

 private:
  std::vector<TransferRecord> records_;
  std::size_t capacity_ = 0;  // 0 = unlimited
  std::size_t head_ = 0;      // oldest retained record when the ring wrapped
  std::uint64_t dropped_ = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Creates a host; the reference stays valid for the Network's lifetime.
  Host& add_host(const std::string& name, const HostConfig& config);

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] Host& host(std::uint32_t id) { return *hosts_.at(id); }

  /// Moves `bytes` from `from` to `to`; completes (resumes the caller) at
  /// the simulated time the last byte arrives. Throws NetworkError if
  /// either endpoint is down at issue time, if the fault hook drops the
  /// transfer, or if an endpoint crashes while the transfer is in flight
  /// (the failure fires at crash time, not at the would-be delivery).
  [[nodiscard]] Task<void> transfer(Host& from, Host& to, std::uint64_t bytes);

  /// Same transfer, tagged for the trace with the DAG root prefix and leaf
  /// index it carries (see TransferRecord). Timing is identical to the
  /// untagged overload — the tag is observability only.
  [[nodiscard]] Task<void> transfer(Host& from, Host& to, std::uint64_t bytes,
                                    std::uint64_t dag_root, std::int32_t dag_leaf);

  /// Total payload bytes moved since construction.
  [[nodiscard]] std::uint64_t total_bytes_transferred() const { return total_bytes_; }

  /// Lookahead extraction for the sharded engine: the guaranteed minimum
  /// delivery delay of any host-to-host transfer, i.e. the smallest
  /// possible from.latency + to.latency over distinct hosts. Degradation
  /// only stretches serialization and jitter only *adds* latency
  /// (PathEffect::extra_latency >= 0), so the floor computed at arm time
  /// stays conservative under chaos. Returns 0 with fewer than two hosts.
  [[nodiscard]] TimeNs min_path_latency() const;

  /// The same floor restricted to pairs of hosts in *different* shards —
  /// intra-shard links do not constrain the conservative window, so this
  /// is usually a (much) larger lookahead than min_path_latency. Returns
  /// Simulator::kNoEvent when no cross-shard pair exists (all hosts on
  /// one shard: no cross traffic, the window is unbounded).
  [[nodiscard]] TimeNs min_cross_shard_latency(const ShardPlacement& placement) const;

  /// Installs (or clears, with nullptr) the host->shard placement used to
  /// classify deliveries as intra- vs cross-shard — the routing decision a
  /// sharded transport makes per delivery, surfaced here as accounting so
  /// the metrics/trace planes can show where parallelism dies. The
  /// placement must outlive the network or be cleared first.
  void set_shard_placement(const ShardPlacement* placement) { placement_ = placement; }
  [[nodiscard]] const ShardPlacement* shard_placement() const { return placement_; }
  /// Deliveries whose endpoints lived on different / the same shard
  /// (counted at issue time; 0 until a placement is installed).
  [[nodiscard]] std::uint64_t cross_shard_transfers() const { return cross_shard_transfers_; }
  [[nodiscard]] std::uint64_t local_shard_transfers() const { return local_shard_transfers_; }

  /// Installs (or clears, with nullptr) the chaos hook. The hook must
  /// outlive the network or be cleared before destruction.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] FaultHook* fault_hook() const { return fault_hook_; }

  /// In-flight transfers failed by endpoint crashes (observability).
  [[nodiscard]] std::uint64_t mid_transfer_failures() const { return mid_transfer_failures_; }
  /// Transfers dropped at issue time by the fault hook.
  [[nodiscard]] std::uint64_t transfers_dropped() const { return transfers_dropped_; }

  /// Overhead applied to every transfer (protocol framing); default 256
  /// bytes, negligible for MB payloads but keeps tiny control messages from
  /// being free.
  void set_per_message_overhead(std::uint64_t bytes) { overhead_bytes_ = bytes; }
  [[nodiscard]] std::uint64_t per_message_overhead() const { return overhead_bytes_; }

  /// When enabled, every transfer is appended to trace() (observability;
  /// off by default). Enabling with no limit set applies a default cap of
  /// kDefaultTraceCapacity records so a long run cannot grow the log
  /// without bound; adjust it with set_trace_limit *after* enabling.
  void set_tracing(bool on) {
    tracing_ = on;
    if (on) {
      if (trace_.capacity() == 0) trace_.set_capacity(kDefaultTraceCapacity);
      trace_.reserve(kTraceReserveOnEnable);
    }
  }
  [[nodiscard]] bool tracing() const { return tracing_; }
  /// Caps the trace at the most recent `cap` records: the log becomes a
  /// ring buffer that keeps the newest `cap` records and counts evictions
  /// in trace().dropped(). `cap == 0` removes the bound entirely (use
  /// only for short runs or with periodic clear_trace()). Shrinking below
  /// the current size keeps the newest records. Call after set_tracing —
  /// enabling tracing installs the default cap when none is set.
  void set_trace_limit(std::size_t cap) { trace_.set_capacity(cap); }
  [[nodiscard]] const TraceBuffer& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  friend class Host;

  /// Bookkeeping for one suspended transfer so a crash can fail it early.
  struct Inflight {
    std::uint32_t from;
    std::uint32_t to;
    std::coroutine_handle<> handle;
    bool woken = false;   // a resume (delivery or failure) is already scheduled
    bool failed = false;  // an endpoint crashed while in flight
  };

  struct InflightAwaiter {
    // Reference, not a copy: awaiter temporaries must stay trivially
    // destructible (a non-trivial member is destroyed once per co_await
    // *plus* once at frame teardown under GCC 12 — double release). The
    // referenced shared_ptr is the transfer frame's local, which outlives
    // the suspension.
    Network& net;
    const std::shared_ptr<Inflight>& rec;
    TimeNs arrival;
    bool await_ready() const noexcept { return arrival <= net.sim_.now(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  /// Called by Host::set_up(false): fails every in-flight transfer that
  /// touches the host, resuming it (with failure) at the current time.
  void on_host_down(const Host& h);

  Simulator& sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::shared_ptr<Inflight>> inflight_;
  FaultHook* fault_hook_ = nullptr;
  const ShardPlacement* placement_ = nullptr;
  std::uint64_t cross_shard_transfers_ = 0;
  std::uint64_t local_shard_transfers_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t overhead_bytes_ = 256;
  std::uint64_t mid_transfer_failures_ = 0;
  std::uint64_t transfers_dropped_ = 0;
  std::uint64_t transfer_seq_ = 0;
  static constexpr std::size_t kTraceReserveOnEnable = 4096;

 public:
  /// Default trace() bound installed by set_tracing(true); ~64Ki records
  /// (a few MB) — enough for several rounds of a mid-size deployment.
  static constexpr std::size_t kDefaultTraceCapacity = 65536;

 private:

  bool tracing_ = false;
  TraceBuffer trace_;
};

}  // namespace dfl::sim
