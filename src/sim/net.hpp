// Simulated network: named hosts with uplink/downlink capacity and
// propagation latency. Replaces the paper's mininet emulation.
//
// Transfer model ("circuit" / store-and-forward FIFO): a transfer of S
// bytes from A to B reserves A's uplink and B's downlink for the same
// interval of length S*8/min(A.up, B.down), starting when both pipes are
// free (FIFO in issue order), and delivers one propagation latency later.
// Congestion at a busy storage node therefore serializes exactly as the
// paper's analysis in Section III-E assumes (τ = S·(T/(dP) + P/b)).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dfl::sim {

struct HostConfig {
  double up_bps = 10e6;    // uplink capacity, bits per second
  double down_bps = 10e6;  // downlink capacity, bits per second
  TimeNs latency = from_millis(1);  // one-way propagation delay
};

/// A network endpoint. Created and owned by Network; identified by id.
class Host {
 public:
  Host(std::string name, std::uint32_t id, const HostConfig& config)
      : name_(std::move(name)), id_(id), config_(config) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const HostConfig& config() const { return config_; }

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  void reset_counters() { bytes_sent_ = bytes_received_ = 0; }

  /// Simulated failure switch: while down, transfers throw NetworkError.
  [[nodiscard]] bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

 private:
  friend class Network;
  std::string name_;
  std::uint32_t id_;
  HostConfig config_;
  TimeNs uplink_free_at_ = 0;
  TimeNs downlink_free_at_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool up_ = true;
};

/// Thrown by transfer() when either endpoint is marked down.
struct NetworkError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One completed transfer, for offline analysis of a simulation run.
struct TransferRecord {
  TimeNs issued_at;
  TimeNs start;      // when the pipes were actually acquired
  TimeNs delivered;  // last byte + latency
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t wire_bytes;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Creates a host; the reference stays valid for the Network's lifetime.
  Host& add_host(const std::string& name, const HostConfig& config);

  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] Host& host(std::uint32_t id) { return *hosts_.at(id); }

  /// Moves `bytes` from `from` to `to`; completes (resumes the caller) at
  /// the simulated time the last byte arrives. Throws NetworkError if
  /// either endpoint is down at issue time.
  [[nodiscard]] Task<void> transfer(Host& from, Host& to, std::uint64_t bytes);

  /// Total payload bytes moved since construction.
  [[nodiscard]] std::uint64_t total_bytes_transferred() const { return total_bytes_; }

  /// Overhead applied to every transfer (protocol framing); default 256
  /// bytes, negligible for MB payloads but keeps tiny control messages from
  /// being free.
  void set_per_message_overhead(std::uint64_t bytes) { overhead_bytes_ = bytes; }
  [[nodiscard]] std::uint64_t per_message_overhead() const { return overhead_bytes_; }

  /// When enabled, every transfer is appended to trace() (observability;
  /// off by default — long runs would accumulate a large log).
  void set_tracing(bool on) { tracing_ = on; }
  [[nodiscard]] bool tracing() const { return tracing_; }
  [[nodiscard]] const std::vector<TransferRecord>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t overhead_bytes_ = 256;
  bool tracing_ = false;
  std::vector<TransferRecord> trace_;
};

}  // namespace dfl::sim
