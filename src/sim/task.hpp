// A minimal lazy coroutine task type for the discrete-event simulator.
//
// Protocol actors (trainers, aggregators, IPFS nodes) are written as
// straight-line coroutines over simulated time:
//
//     sim::Task<void> trainer_round(...) {
//       co_await net.transfer(me, provider, bytes);
//       co_await sim.sleep(poll_interval);
//       ...
//     }
//
// Tasks are lazy (started when awaited or spawned), single-threaded, and
// propagate exceptions to the awaiter. `Simulator::spawn` owns root tasks.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace dfl::sim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    // Symmetric transfer to whoever awaited us; root tasks park forever
    // (their frame is freed by the owning Task object).
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started coroutine returning T. Move-only; destroying a Task
/// destroys the (suspended) coroutine frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Starts the task without awaiting it (used by Simulator::spawn).
  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() {
        if (handle.promise().exception) std::rethrow_exception(handle.promise().exception);
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  void start() {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        if (handle.promise().exception) std::rethrow_exception(handle.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dfl::sim
