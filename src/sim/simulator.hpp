// Deterministic discrete-event simulator: a virtual clock plus a
// time-ordered event queue. Stands in for the paper's mininet testbed —
// all protocol delays (Figures 1 and 2) are measured on this clock.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "common/function.hpp"
#include "sim/task.hpp"

namespace dfl {
class ThreadPool;
}

namespace dfl::sim {

/// Simulated time in nanoseconds (integer, so event ordering is exact).
using TimeNs = std::int64_t;

constexpr TimeNs from_seconds(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr TimeNs from_millis(double ms) { return static_cast<TimeNs>(ms * 1e6); }

/// Event callable: small-buffer storage sized for the common captures (a
/// coroutine handle, a shared_ptr transfer record, a couple of pointers) so
/// the per-event heap allocation std::function paid is gone.
using EventFn = InlineFn<48>;

class Simulator {
 public:
  Simulator() { events_.reserve(kInitialEventCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t events_pending() const {
    return events_.size() + ring_count_ + (cur_.size() - cur_pos_) + cur_overflow_.size();
  }

  /// Pre-sizes the event heap (hot-path hint for large deployments; growth
  /// is still automatic).
  void reserve_events(std::size_t n) { events_.reserve(n); }

  /// Timestamp of the earliest pending event, or kNoEvent when the queue
  /// is empty. Window schedulers (ShardedSimulator) use this to place the
  /// next conservative execution window.
  static constexpr TimeNs kNoEvent = std::numeric_limits<TimeNs>::max();
  [[nodiscard]] TimeNs next_event_time() const;

  /// Schedules a callback at absolute simulated time `at` (clamped to now).
  /// Events at equal times run in scheduling (FIFO) order — deterministic.
  void schedule_at(TimeNs at, EventFn fn);
  void schedule_after(TimeNs delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Starts a coroutine as a detached root process. The simulator owns the
  /// frame; it is released when the simulator is destroyed (or reset()).
  void spawn(Task<void> task);

  /// Awaitable: suspends the calling coroutine until the given time.
  struct SleepAwaiter {
    Simulator& sim;
    TimeNs wake_at;
    bool await_ready() const noexcept { return wake_at <= sim.now_; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule_at(wake_at, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] SleepAwaiter sleep(TimeNs duration) {
    return SleepAwaiter{*this, now_ + (duration < 0 ? 0 : duration)};
  }
  [[nodiscard]] SleepAwaiter sleep_until(TimeNs at) { return SleepAwaiter{*this, at}; }

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains (all processes finished or parked
  /// forever). `max_events` guards against accidental livelock in tests.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs until simulated time would exceed `until`; pending later events
  /// remain queued.
  void run_until(TimeNs until);

  /// Runs every pending event with timestamp strictly before `end`; later
  /// events stay queued and the clock stops at the last executed event
  /// (never advanced to `end`). This is the half-open window primitive of
  /// the sharded engine: a window [W, W+lookahead) may be executed safely
  /// before cross-shard messages timestamped >= W+lookahead are merged.
  void run_before(TimeNs end);

  /// Drops all pending events and root tasks; clock keeps its value.
  void reset();

  /// Switches the event queue to calendar (bucket) mode: events land in a
  /// ring of time buckets `width` ns wide and each bucket is sorted once
  /// when its window begins, so scheduling is O(1) and popping costs a
  /// share of one small contiguous sort instead of a sift through a
  /// potentially megabyte-sized binary heap. Execution order is the exact
  /// same total (at, seq) order as heap mode — callers cannot tell the
  /// modes apart except by speed. The natural `width` is the sharded
  /// engine's lookahead: ShardedSimulator enables bucket mode on every
  /// shard for K > 1 (the window structure is what makes a fixed bucket
  /// width work; the K = 1 path keeps the classic heap untouched).
  /// Pending events are migrated; calling again re-buckets with the new
  /// width. Throws std::invalid_argument for width < 1.
  void enable_window_buckets(TimeNs width);
  [[nodiscard]] TimeNs bucket_width() const { return bucket_width_; }

  /// Ring span, in buckets. Events beyond base + kRingBuckets windows
  /// overflow into a far-future heap and are promoted as the ring turns.
  static constexpr std::size_t kRingBuckets = 1024;

 private:
  static constexpr std::size_t kInitialEventCapacity = 1024;

  struct Event {
    TimeNs at;
    std::uint64_t seq;
    EventFn fn;
  };
  /// Min-heap order: the (at, seq) pair decides; seq makes ordering total,
  /// so heap reshuffles cannot perturb determinism.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Loads the next non-empty bucket (or far-heap promotion) into cur_ and
  /// sorts it. Returns false when no events remain anywhere.
  bool load_next_bucket();
  /// Routes one event into cur_/ring/far according to its window.
  void bucket_insert(Event ev);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  // Binary heap managed via std::push_heap/pop_heap over a plain vector:
  // unlike priority_queue this allows reserve() and moving the top element
  // out without const_cast. In bucket mode this vector is the far-future
  // overflow heap instead.
  std::vector<Event> events_;
  // deque: spawn keeps a pointer to the element until its start event runs,
  // so container growth must not invalidate references.
  std::deque<Task<void>> roots_;

  // Calendar-queue state (bucket_width_ == 0 means classic heap mode).
  TimeNs bucket_width_ = 0;
  std::vector<std::vector<Event>> ring_;  // ring_[w & (kRingBuckets-1)]
  std::vector<Event> cur_;                // sorted in-drain bucket
  std::size_t cur_pos_ = 0;
  std::int64_t cur_window_ = -1;          // window index of cur_ (-1: none)
  std::int64_t base_window_ = 0;          // earliest window the ring covers
  std::size_t ring_count_ = 0;            // events in ring_ (not cur_/far)
  // Events scheduled into the executing window *by the executing event*:
  // inserting into cur_ mid-execution could reallocate it under the live
  // handler, so they park here and step() splices them after the handler
  // returns.
  std::vector<Event> cur_overflow_;
  bool in_event_ = false;
};

/// Host -> shard assignment for the sharded engine. Hosts of one shard
/// share an event heap, a local clock, and (in parallel mode) a thread, so
/// a placement should keep chatty neighbours together and balance counts.
struct ShardPlacement {
  /// shard_of[host_id] = owning shard, in [0, shards).
  std::vector<std::uint32_t> shard_of;
  std::uint32_t shards = 1;

  [[nodiscard]] std::uint32_t shard(std::uint32_t host) const {
    return host < shard_of.size() ? shard_of[host] : 0;
  }
  [[nodiscard]] std::size_t hosts() const { return shard_of.size(); }

  /// Contiguous block placement: host h -> floor(h * k / hosts). Blocks
  /// respect creation order, so a deployment that creates hosts role by
  /// role keeps each role's hosts clustered on few shards.
  static ShardPlacement blocks(std::size_t hosts, std::uint32_t k);

  /// Throws std::invalid_argument (naming the field) unless shards >= 1
  /// and every shard_of entry is < shards.
  void validate() const;
};

/// Aggregate counters of one sharded run (observability: exported to the
/// metrics registry / Perfetto so barrier stalls are visible).
struct ShardedStats {
  std::uint64_t windows = 0;              // conservative windows executed
  std::uint64_t cross_shard_events = 0;   // messages exchanged at barriers
  std::uint64_t max_window_events = 0;    // densest window (all shards)
  std::uint64_t stalled_shard_windows = 0;  // (shard, window) pairs with 0 events
  /// Events executed per shard (parallelism balance).
  std::vector<std::uint64_t> shard_events;
};

/// Sharded discrete-event engine: K serial Simulators, one per shard,
/// synchronized by conservative windows derived from `lookahead` — the
/// guaranteed minimum delay of any cross-shard interaction (for a network
/// workload: the minimum cross-shard link latency; see
/// Network::min_cross_shard_latency).
///
/// Protocol: every shard executes its local events inside the half-open
/// window [W, W + lookahead), where W is the globally earliest pending
/// event. Cross-shard events produced during the window must be
/// timestamped >= sender-now + lookahead (enforced by send()), so they can
/// never land inside the window being executed. At the barrier the
/// per-shard-pair outboxes are drained in (timestamp, sending shard,
/// send sequence) order into the destination heaps — a deterministic merge,
/// so results are bit-identical at any shard count and on any thread
/// count. With K == 1 run() delegates straight to the serial Simulator:
/// the unsharded code path stays exactly what it was.
///
/// Execution modes: with a ThreadPool of concurrency > 1, window bodies
/// run on pool threads, one shard per task (shard state must then be
/// confined to its shard's handlers); without a pool (or concurrency 1)
/// windows execute shard-by-shard on the caller — same ordering, same
/// results. Even single-threaded, per-shard heaps and shard-local state
/// are far smaller than one global heap, which is where the scaling-curve
/// bench gets most of its events/sec at 10^4..10^5 hosts.
class ShardedSimulator {
 public:
  /// `lookahead` must be >= 1 ns when shards > 1 (a zero window cannot
  /// make progress); it is ignored for K == 1. `pool` may be null.
  ShardedSimulator(std::uint32_t shards, TimeNs lookahead, ThreadPool* pool = nullptr);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  [[nodiscard]] Simulator& shard(std::uint32_t k) { return *shards_.at(k); }

  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }
  /// Lookahead is re-computable between run() calls (e.g. when armed
  /// degrade windows change the latency floor); never while running.
  void set_lookahead(TimeNs lookahead);

  /// Schedules onto `shard`'s local heap directly. Safe from outside run()
  /// (setup), or from an event already executing on that same shard.
  void schedule_on(std::uint32_t shard, TimeNs at, EventFn fn) {
    shards_.at(shard)->schedule_at(at, std::move(fn));
  }

  /// Cross-shard event: queued in the (src, dst) outbox and merged into
  /// dst's heap at the next barrier. Must satisfy the lookahead contract
  /// `at >= shard(src).now() + lookahead` — violating it would let a
  /// message land inside a window another thread is executing, so it
  /// throws std::logic_error instead. src == dst degrades to schedule_on.
  void send(std::uint32_t src, std::uint32_t dst, TimeNs at, EventFn fn);

  /// Runs to quiescence (all heaps and outboxes empty).
  void run();
  /// Runs every event with timestamp <= until; clocks end at `until`.
  void run_until(TimeNs until);

  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::size_t events_pending() const;
  /// Earliest pending timestamp across shards and outboxes (kNoEvent when
  /// drained).
  [[nodiscard]] TimeNs next_event_time() const;
  /// Minimum of the shard clocks (the conservative global "now").
  [[nodiscard]] TimeNs now() const;

  /// Splits a deployment-sized event-count hint evenly across the
  /// per-shard heaps (see Simulator::reserve_events).
  void reserve_events(std::size_t n);

  /// Drops pending events, outbox messages, and root tasks on every shard;
  /// clocks keep their values. Stats are preserved (they are a run log).
  void reset();

  [[nodiscard]] const ShardedStats& stats() const { return stats_; }

 private:
  struct Msg {
    TimeNs at;
    EventFn fn;
  };

  /// Merges every outbox into the destination heaps in (timestamp,
  /// sending shard, send sequence) order — the last two implicitly: boxes
  /// are concatenated in src order (each already in send order) and then
  /// stable-sorted by timestamp. Single-threaded (barrier only).
  void drain_outboxes();
  /// Executes one window ending at `wend` on every shard, in parallel when
  /// a pool with concurrency > 1 is installed.
  void run_window(TimeNs wend);

  std::vector<std::unique_ptr<Simulator>> shards_;
  /// outboxes_[src * K + dst]: written only by src's window task, drained
  /// only at barriers — no locks needed.
  std::vector<std::vector<Msg>> outboxes_;
  /// Barrier-time scratch for the per-destination merge and the per-window
  /// event counters (kept across windows to avoid per-window allocation).
  std::vector<Msg> merge_scratch_;
  std::vector<std::uint64_t> window_before_;
  ThreadPool* pool_;
  TimeNs lookahead_;
  bool running_ = false;
  ShardedStats stats_;
};

}  // namespace dfl::sim
