// Deterministic discrete-event simulator: a virtual clock plus a
// time-ordered event queue. Stands in for the paper's mininet testbed —
// all protocol delays (Figures 1 and 2) are measured on this clock.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/function.hpp"
#include "sim/task.hpp"

namespace dfl::sim {

/// Simulated time in nanoseconds (integer, so event ordering is exact).
using TimeNs = std::int64_t;

constexpr TimeNs from_seconds(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr TimeNs from_millis(double ms) { return static_cast<TimeNs>(ms * 1e6); }

/// Event callable: small-buffer storage sized for the common captures (a
/// coroutine handle, a shared_ptr transfer record, a couple of pointers) so
/// the per-event heap allocation std::function paid is gone.
using EventFn = InlineFn<48>;

class Simulator {
 public:
  Simulator() { events_.reserve(kInitialEventCapacity); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t events_pending() const { return events_.size(); }

  /// Pre-sizes the event heap (hot-path hint for large deployments; growth
  /// is still automatic).
  void reserve_events(std::size_t n) { events_.reserve(n); }

  /// Schedules a callback at absolute simulated time `at` (clamped to now).
  /// Events at equal times run in scheduling (FIFO) order — deterministic.
  void schedule_at(TimeNs at, EventFn fn);
  void schedule_after(TimeNs delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Starts a coroutine as a detached root process. The simulator owns the
  /// frame; it is released when the simulator is destroyed (or reset()).
  void spawn(Task<void> task);

  /// Awaitable: suspends the calling coroutine until the given time.
  struct SleepAwaiter {
    Simulator& sim;
    TimeNs wake_at;
    bool await_ready() const noexcept { return wake_at <= sim.now_; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule_at(wake_at, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] SleepAwaiter sleep(TimeNs duration) {
    return SleepAwaiter{*this, now_ + (duration < 0 ? 0 : duration)};
  }
  [[nodiscard]] SleepAwaiter sleep_until(TimeNs at) { return SleepAwaiter{*this, at}; }

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains (all processes finished or parked
  /// forever). `max_events` guards against accidental livelock in tests.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs until simulated time would exceed `until`; pending later events
  /// remain queued.
  void run_until(TimeNs until);

  /// Drops all pending events and root tasks; clock keeps its value.
  void reset();

 private:
  static constexpr std::size_t kInitialEventCapacity = 1024;

  struct Event {
    TimeNs at;
    std::uint64_t seq;
    EventFn fn;
  };
  /// Min-heap order: the (at, seq) pair decides; seq makes ordering total,
  /// so heap reshuffles cannot perturb determinism.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  // Binary heap managed via std::push_heap/pop_heap over a plain vector:
  // unlike priority_queue this allows reserve() and moving the top element
  // out without const_cast.
  std::vector<Event> events_;
  // deque: spawn keeps a pointer to the element until its start event runs,
  // so container growth must not invalidate references.
  std::deque<Task<void>> roots_;
};

}  // namespace dfl::sim
