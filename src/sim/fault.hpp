// Deterministic chaos engineering for the simulator: a FaultPlan describes
// *what* goes wrong (scheduled crash/restart windows, probabilistic
// per-transfer faults, link degradation, latency jitter, payload
// corruption) and a FaultInjector makes it happen on a Network. All
// randomness flows through dfl::Rng seeded from the plan, so a given
// (plan, seed) pair reproduces the exact same fault sequence bit-for-bit —
// chaos runs are regressions, not flakes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/net.hpp"
#include "sim/simulator.hpp"

namespace dfl::sim {

/// A parameterized scalar distribution, sampled through dfl::Rng so every
/// draw is deterministic. The chaos vocabulary (heavy-tailed bandwidth,
/// Pareto latency, exponential jitter) is expressed with these; parsing
/// from scenario text lives in sim/scenario.hpp.
struct Distribution {
  enum class Kind : std::uint8_t {
    kConstant,     // a
    kUniform,      // [a, b)
    kNormal,       // mean a, stddev b (clamped to >= 0 by sample())
    kLogNormal,    // median a (scale), sigma-of-log b — heavy-tailed bandwidth
    kExponential,  // mean a — queueing-style latency jitter
    kPareto,       // minimum a, tail index b — heavy-tailed latency
  };
  Kind kind = Kind::kConstant;
  double a = 0.0;
  double b = 0.0;

  /// One non-negative draw (negative normal samples clamp to 0).
  [[nodiscard]] double sample(Rng& rng) const;

  /// Guaranteed lower bound of every draw: constant/uniform/pareto never
  /// yield below their `a`; normal/lognormal/exponential can reach 0.
  /// Lookahead accounting uses this to *raise* the conservative window
  /// when a scenario's jitter has a positive floor.
  [[nodiscard]] double floor() const;

  [[nodiscard]] bool is_constant() const { return kind == Kind::kConstant; }
  [[nodiscard]] bool is_zero() const { return kind == Kind::kConstant && a == 0.0; }

  /// Degenerate distribution that always yields `v`.
  static Distribution constant(double v) { return Distribution{Kind::kConstant, v, 0.0}; }

  [[nodiscard]] bool operator==(const Distribution&) const = default;
};

/// One scheduled outage: the host goes down at `down_at` (failing every
/// in-flight transfer touching it) and restarts at `up_at`. `up_at <=
/// down_at` means the host never comes back.
struct CrashWindow {
  std::uint32_t host_id = 0;
  TimeNs down_at = 0;
  TimeNs up_at = 0;
};

/// Which side of a path a degradation applies to. Real access links are
/// asymmetric (a saturated uplink leaves the downlink untouched), so a
/// window can hit only the host's uplink, only its downlink, or both.
enum class LinkDirection : std::uint8_t { kBoth = 0, kUplink = 1, kDownlink = 2 };

/// Bandwidth degradation: while active, every transfer touching `host_id`
/// on the selected direction runs at `factor` (in (0, 1]) of the normal
/// capacity.
struct DegradeWindow {
  std::uint32_t host_id = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  double factor = 1.0;
  LinkDirection dir = LinkDirection::kBoth;
};

struct FaultPlan {
  std::vector<CrashWindow> crashes;
  std::vector<DegradeWindow> degradations;
  /// Probability that any single transfer fails at issue time.
  double transfer_failure_prob = 0.0;
  /// Probability that a block served by a storage node is corrupted in
  /// flight (detected by the caller's CID re-verification).
  double corruption_prob = 0.0;
  /// Extra one-way latency added to each transfer, in milliseconds,
  /// sampled per transfer (constant 0 = no jitter).
  Distribution latency_jitter_ms{};
  /// Probability that a given transfer experiences the jitter at all.
  double latency_jitter_prob = 1.0;
  /// Seed of the injector's private RNG stream.
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && degradations.empty() && transfer_failure_prob <= 0 &&
           corruption_prob <= 0 && latency_jitter_ms.is_zero();
  }

  /// Sanity-checks every field: probabilities in [0, 1], degradation
  /// factors in (0, 1], windows with end >= start, non-negative times and
  /// jitter. Throws std::invalid_argument naming the offending entry.
  /// FaultInjector::arm() calls this, so a malformed plan fails loudly at
  /// arm time instead of silently misbehaving mid-run.
  void validate() const;

  /// Guaranteed minimum extra one-way latency this plan adds to *every*
  /// transfer, in ns: positive only when jitter is unconditional
  /// (latency_jitter_prob >= 1) and its distribution has a positive
  /// floor. A sharded driver adds this to the link-latency floor when
  /// deriving the conservative lookahead window — jitter can only delay
  /// deliveries further, so the result stays safe (and a *larger*
  /// lookahead means wider windows, i.e. more parallelism, not less).
  [[nodiscard]] TimeNs latency_floor_ns() const;

  /// Splits the plan by home shard for per-shard arming: crash and
  /// degrade windows follow their target host's shard, so a sharded
  /// engine schedules every chaos event on the heap that owns the host
  /// and never crosses a window barrier to flip a host. Per-transfer
  /// probabilistic fields are sender-side and copy into every shard's
  /// plan with a shard-forked seed (seed ^ shard) so the shard streams
  /// stay independent yet deterministic.
  [[nodiscard]] std::vector<FaultPlan> split_by_shard(const ShardPlacement& placement) const;

  /// Deterministic churn generator: in every `period`-long slot up to
  /// `horizon`, each host in `host_ids` independently crashes with
  /// probability `churn_prob` and stays down for `downtime`. The schedule
  /// depends only on the arguments (an Rng is forked from `seed`).
  static FaultPlan periodic_churn(const std::vector<std::uint32_t>& host_ids, TimeNs horizon,
                                  TimeNs period, TimeNs downtime, double churn_prob,
                                  std::uint64_t seed);
};

/// What the injector actually did (observability; compare against the plan).
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t transfers_dropped = 0;
  std::uint64_t payloads_corrupted = 0;
  std::uint64_t transfers_jittered = 0;

  /// Delta of this snapshot against an earlier one (per-round metrics).
  [[nodiscard]] FaultStats since(const FaultStats& before) const {
    return FaultStats{crashes - before.crashes, restarts - before.restarts,
                      transfers_dropped - before.transfers_dropped,
                      payloads_corrupted - before.payloads_corrupted,
                      transfers_jittered - before.transfers_jittered};
  }
  [[nodiscard]] bool operator==(const FaultStats&) const = default;
};

/// Executes a FaultPlan against a Network. Construct, then arm() once (or
/// arm_until() repeatedly for incremental scenario runs); the injector must
/// outlive the network (or the hook must be cleared first).
class FaultInjector : public FaultHook {
 public:
  FaultInjector(Network& net, FaultPlan plan)
      : net_(net), plan_(std::move(plan)), rng_(plan_.seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validates the plan, schedules every crash/restart window on the
  /// simulator (relative times in the plan are interpreted as absolute
  /// simulated times) and installs this injector as the network's fault
  /// hook. Windows naming unknown hosts are ignored.
  void arm();

  /// Incremental arming for long scenario horizons: schedules only the
  /// crash windows with down_at < `until` that have not been scheduled
  /// yet (windows are taken in down_at order; the cursor is monotonic).
  /// Installs the hook and validates on the first call. Lets a driver arm
  /// one round's worth of chaos at a time, so draining the event queue to
  /// quiescence never fast-forwards the clock through the whole horizon.
  void arm_until(TimeNs until);

  // FaultHook:
  bool should_drop_transfer(const Host& from, const Host& to) override;
  double bandwidth_factor(const Host& from, const Host& to) override;
  PathEffect path_effect(const Host& from, const Host& to) override;
  bool should_corrupt_payload(const Host& server) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  void install();
  void schedule_window(const CrashWindow& w);
  /// Directional degradation factors active right now on a path.
  void degrade_factors(const Host& from, const Host& to, double& up, double& down) const;

  Network& net_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  bool armed_ = false;
  /// Crash indices sorted by down_at (built on first arm_until) and the
  /// count already scheduled.
  std::vector<std::size_t> crash_order_;
  std::size_t crash_cursor_ = 0;
};

}  // namespace dfl::sim
