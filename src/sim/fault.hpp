// Deterministic chaos engineering for the simulator: a FaultPlan describes
// *what* goes wrong (scheduled crash/restart windows, probabilistic
// per-transfer faults, link degradation, payload corruption) and a
// FaultInjector makes it happen on a Network. All randomness flows through
// dfl::Rng seeded from the plan, so a given (plan, seed) pair reproduces
// the exact same fault sequence bit-for-bit — chaos runs are regressions,
// not flakes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/net.hpp"
#include "sim/simulator.hpp"

namespace dfl::sim {

/// One scheduled outage: the host goes down at `down_at` (failing every
/// in-flight transfer touching it) and restarts at `up_at`. `up_at <=
/// down_at` means the host never comes back.
struct CrashWindow {
  std::uint32_t host_id = 0;
  TimeNs down_at = 0;
  TimeNs up_at = 0;
};

/// Bandwidth degradation: while active, every transfer touching `host_id`
/// runs at `factor` (in (0, 1]) of the normal path capacity.
struct DegradeWindow {
  std::uint32_t host_id = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  double factor = 1.0;
};

struct FaultPlan {
  std::vector<CrashWindow> crashes;
  std::vector<DegradeWindow> degradations;
  /// Probability that any single transfer fails at issue time.
  double transfer_failure_prob = 0.0;
  /// Probability that a block served by a storage node is corrupted in
  /// flight (detected by the caller's CID re-verification).
  double corruption_prob = 0.0;
  /// Seed of the injector's private RNG stream.
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && degradations.empty() && transfer_failure_prob <= 0 &&
           corruption_prob <= 0;
  }

  /// Deterministic churn generator: in every `period`-long slot up to
  /// `horizon`, each host in `host_ids` independently crashes with
  /// probability `churn_prob` and stays down for `downtime`. The schedule
  /// depends only on the arguments (an Rng is forked from `seed`).
  static FaultPlan periodic_churn(const std::vector<std::uint32_t>& host_ids, TimeNs horizon,
                                  TimeNs period, TimeNs downtime, double churn_prob,
                                  std::uint64_t seed);
};

/// What the injector actually did (observability; compare against the plan).
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t transfers_dropped = 0;
  std::uint64_t payloads_corrupted = 0;
};

/// Executes a FaultPlan against a Network. Construct, then arm() once; the
/// injector must outlive the network (or the hook must be cleared first).
class FaultInjector : public FaultHook {
 public:
  FaultInjector(Network& net, FaultPlan plan)
      : net_(net), plan_(std::move(plan)), rng_(plan_.seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every crash/restart window on the simulator (relative times
  /// in the plan are interpreted as absolute simulated times) and installs
  /// this injector as the network's fault hook. Windows naming unknown
  /// hosts are ignored.
  void arm();

  // FaultHook:
  bool should_drop_transfer(const Host& from, const Host& to) override;
  double bandwidth_factor(const Host& from, const Host& to) override;
  bool should_corrupt_payload(const Host& server) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  Network& net_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace dfl::sim
