// Deadline primitives over simulated time: race a Task against the clock.
//
//   auto r = co_await with_timeout(sim, node.get(host, cid), from_seconds(5));
//   if (!r) { /* timed out; the RPC keeps running detached */ }
//
// Timing out does NOT cancel the inner task — coroutines cannot be torn
// down mid-await safely — it detaches it: the task runs to completion on
// the simulator (as a real abandoned RPC would) and its result or
// exception is discarded. Exceptions thrown by the task *before* the
// deadline propagate to the awaiter.
#pragma once

#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dfl::sim {

namespace detail {

template <typename T>
struct RaceState {
  std::optional<T> value;
  std::exception_ptr error;
  bool done = false;            // the inner task finished (value or error)
  bool waiter_resumed = false;  // the outer coroutine is (being) resumed
  std::coroutine_handle<> waiter;
};

template <>
struct RaceState<void> {
  std::exception_ptr error;
  bool done = false;
  bool waiter_resumed = false;
  std::coroutine_handle<> waiter;
};

template <typename T>
void signal_done(Simulator& sim, const std::shared_ptr<RaceState<T>>& st) {
  st->done = true;
  if (st->waiter && !st->waiter_resumed) {
    st->waiter_resumed = true;
    sim.schedule_at(sim.now(), [h = st->waiter] { h.resume(); });
  }
}

template <typename T>
Task<void> drive(Task<T> task, std::shared_ptr<RaceState<T>> st, Simulator& sim) {
  try {
    if constexpr (std::is_void_v<T>) {
      co_await std::move(task);
    } else {
      st->value = co_await std::move(task);
    }
  } catch (...) {
    st->error = std::current_exception();
  }
  signal_done(sim, st);
}

template <typename T>
struct DeadlineAwaiter {
  // Reference, not a copy: awaiter temporaries must stay trivially
  // destructible (see InflightAwaiter). `st` is the with_timeout frame's
  // local, which outlives the suspension.
  Simulator& sim;
  const std::shared_ptr<RaceState<T>>& st;
  TimeNs deadline;
  bool await_ready() const noexcept { return st->done || deadline <= sim.now(); }
  void await_suspend(std::coroutine_handle<> h) {
    st->waiter = h;
    sim.schedule_at(deadline, [s = st] {
      if (s->waiter_resumed) return;  // the task finished first
      s->waiter_resumed = true;
      s->waiter.resume();
    });
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

/// Awaits `task` for at most `timeout` of simulated time. Returns the
/// task's value, or nullopt if the deadline fired first (the task is then
/// detached — see file comment). Task exceptions before the deadline
/// rethrow here.
template <typename T>
[[nodiscard]] Task<std::optional<T>> with_timeout(Simulator& sim, Task<T> task, TimeNs timeout) {
  auto st = std::make_shared<detail::RaceState<T>>();
  sim.spawn(detail::drive<T>(std::move(task), st, sim));
  const TimeNs deadline = sim.now() + (timeout < 0 ? 0 : timeout);
  if (!st->done) {
    co_await detail::DeadlineAwaiter<T>{sim, st, deadline};
  }
  if (st->done) {
    if (st->error) std::rethrow_exception(st->error);
    co_return std::move(st->value);
  }
  co_return std::nullopt;
}

/// void overload: true if the task completed before the deadline.
[[nodiscard]] inline Task<bool> with_timeout(Simulator& sim, Task<void> task, TimeNs timeout) {
  auto st = std::make_shared<detail::RaceState<void>>();
  sim.spawn(detail::drive<void>(std::move(task), st, sim));
  const TimeNs deadline = sim.now() + (timeout < 0 ? 0 : timeout);
  if (!st->done) {
    co_await detail::DeadlineAwaiter<void>{sim, st, deadline};
  }
  if (st->done && st->error) std::rethrow_exception(st->error);
  co_return st->done;
}

}  // namespace dfl::sim
