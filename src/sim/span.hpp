// RAII wrapper for simulated-time obs spans: opens at construction (at
// sim.now()) and closes at destruction (at the then-current simulated
// time), so an exception unwinding a coroutine frame still closes the
// span at the simulated time of the failure. No-cost when tracing is
// disabled (the token is inert and every call short-circuits).
#pragma once

#include <string>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace dfl::sim {

class ScopedSpan {
 public:
  ScopedSpan(Simulator& sim, const char* name, std::uint32_t track, obs::SpanId parent = 0)
      : sim_(sim), token_(obs::Tracer::instance().begin(name, track, sim.now(), parent)) {}
  ~ScopedSpan() { close(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now; the destructor then does nothing. Call it when
  /// the phase ends before the enclosing scope does.
  void close() {
    if (token_) {
      obs::Tracer::instance().end(token_, sim_.now());
      token_ = {};
    }
  }

  [[nodiscard]] obs::SpanId id() const { return token_.id; }
  [[nodiscard]] explicit operator bool() const { return static_cast<bool>(token_); }

  void attr(const char* key, std::int64_t value) {
    obs::Tracer::instance().attr(token_, key, value);
  }
  void attr(const char* key, std::string value) {
    obs::Tracer::instance().attr(token_, key, std::move(value));
  }

 private:
  Simulator& sim_;
  obs::SpanToken token_;
};

}  // namespace dfl::sim
