#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/pool.hpp"

namespace dfl::sim {

void Simulator::schedule_at(TimeNs at, EventFn fn) {
  if (at < now_) at = now_;
  Event ev{at, next_seq_++, std::move(fn)};
  if (bucket_width_ == 0) {
    events_.push_back(std::move(ev));
    std::push_heap(events_.begin(), events_.end(), EventLater{});
    return;
  }
  bucket_insert(std::move(ev));
}

void Simulator::bucket_insert(Event ev) {
  const std::int64_t w = static_cast<std::int64_t>(ev.at / bucket_width_);
  if (w == cur_window_) {
    // Landing in the window being drained (e.g. a coroutine resuming
    // itself at now): splice into the undrained, sorted tail. seq is the
    // largest issued, so ordering among equal timestamps is by at alone.
    // While a handler is executing, cur_ must not be mutated (the handler
    // lives in it); step() splices the parked events afterwards.
    if (in_event_) {
      cur_overflow_.push_back(std::move(ev));
      return;
    }
    const auto it = std::upper_bound(
        cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_), cur_.end(), ev.at,
        [](TimeNs at, const Event& e) { return at < e.at; });
    cur_.insert(it, std::move(ev));
    return;
  }
  if (w < base_window_ + static_cast<std::int64_t>(kRingBuckets)) {
    ring_[static_cast<std::size_t>(w) & (kRingBuckets - 1)].push_back(std::move(ev));
    ++ring_count_;
    return;
  }
  // Beyond the ring horizon: far-future overflow heap.
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EventLater{});
}

bool Simulator::load_next_bucket() {
  cur_.clear();
  cur_pos_ = 0;
  cur_window_ = -1;
  for (;;) {
    if (ring_count_ == 0 && events_.empty()) return false;
    if (ring_count_ != 0) {
      // Find the earliest populated window; pending events bound the scan.
      for (std::size_t i = 0; i < kRingBuckets; ++i) {
        auto& bucket = ring_[static_cast<std::size_t>(base_window_ + static_cast<std::int64_t>(i)) &
                             (kRingBuckets - 1)];
        if (bucket.empty()) continue;
        base_window_ += static_cast<std::int64_t>(i);
        cur_.swap(bucket);
        ring_count_ -= cur_.size();
        break;
      }
    } else {
      // Ring drained: jump the base to the far heap's earliest window.
      base_window_ = static_cast<std::int64_t>(events_.front().at / bucket_width_);
    }
    // Promote far-future events that now fall inside the ring span (or
    // into the bucket just selected). Saturate: a huge bucket width (e.g.
    // a degenerate lookahead) must not overflow the horizon product.
    const std::int64_t hw = base_window_ + static_cast<std::int64_t>(kRingBuckets);
    const TimeNs horizon = hw > kNoEvent / bucket_width_ ? kNoEvent : hw * bucket_width_;
    while (!events_.empty() && events_.front().at < horizon) {
      std::pop_heap(events_.begin(), events_.end(), EventLater{});
      Event ev = std::move(events_.back());
      events_.pop_back();
      const std::int64_t w = static_cast<std::int64_t>(ev.at / bucket_width_);
      if (w == base_window_ && !cur_.empty()) {
        cur_.push_back(std::move(ev));
      } else {
        ring_[static_cast<std::size_t>(w) & (kRingBuckets - 1)].push_back(std::move(ev));
        ++ring_count_;
      }
    }
    if (!cur_.empty()) break;
  }
  cur_window_ = base_window_;
  ++base_window_;
  // One contiguous sort per window replaces a heap sift per event; (at,
  // seq) keeps the exact total order of heap mode.
  std::sort(cur_.begin(), cur_.end(), [](const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  return true;
}

TimeNs Simulator::next_event_time() const {
  if (bucket_width_ == 0) return events_.empty() ? kNoEvent : events_.front().at;
  if (cur_pos_ < cur_.size()) return cur_[cur_pos_].at;
  TimeNs best = kNoEvent;
  if (ring_count_ != 0) {
    for (std::size_t i = 0; i < kRingBuckets; ++i) {
      const auto& bucket =
          ring_[static_cast<std::size_t>(base_window_ + static_cast<std::int64_t>(i)) &
                (kRingBuckets - 1)];
      if (bucket.empty()) continue;
      for (const Event& ev : bucket) best = std::min(best, ev.at);
      break;  // earlier windows always beat later ones
    }
    if (best != kNoEvent) return best;
  }
  return events_.empty() ? kNoEvent : events_.front().at;
}

void Simulator::spawn(Task<void> task) {
  roots_.push_back(std::move(task));
  // Start the root inside an event so spawning during another coroutine's
  // execution keeps FIFO ordering.
  Task<void>* t = &roots_.back();
  schedule_at(now_, [t] { t->start(); });
}

bool Simulator::step() {
  if (bucket_width_ == 0) {
    if (events_.empty()) return false;
    std::pop_heap(events_.begin(), events_.end(), EventLater{});
    Event ev = std::move(events_.back());
    events_.pop_back();
    now_ = ev.at;
    ++events_processed_;
    ev.fn();
    return true;
  }
  if (cur_pos_ >= cur_.size() && !load_next_bucket()) return false;
  {
    // In-place execution: bucket_insert parks same-window schedules in
    // cur_overflow_ while in_event_ is set, so cur_ cannot reallocate
    // under this reference and the 64-byte move-out of heap mode is gone.
    Event& ev = cur_[cur_pos_++];
    now_ = ev.at;
    ++events_processed_;
    in_event_ = true;
    ev.fn();
    in_event_ = false;
    // Release the closure now — the slot itself lives until the bucket
    // turns over, and a captured coroutine frame must not be pinned.
    ev.fn = EventFn{};
  }
  for (Event& ev : cur_overflow_) {
    const auto it = std::upper_bound(
        cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_), cur_.end(), ev.at,
        [](TimeNs at, const Event& e) { return at < e.at; });
    cur_.insert(it, std::move(ev));
  }
  cur_overflow_.clear();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(TimeNs until) {
  while (next_event_time() <= until && step()) {
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_before(TimeNs end) {
  while (next_event_time() < end && step()) {
  }
}

void Simulator::reset() {
  events_.clear();
  roots_.clear();
  for (auto& bucket : ring_) bucket.clear();
  cur_.clear();
  cur_overflow_.clear();
  cur_pos_ = 0;
  cur_window_ = -1;
  ring_count_ = 0;
  if (bucket_width_ != 0) base_window_ = now_ / bucket_width_;
}

void Simulator::enable_window_buckets(TimeNs width) {
  if (width < 1) throw std::invalid_argument("Simulator.bucket_width: must be >= 1 ns");
  if (width == bucket_width_) return;
  // Migrate everything pending into one flat list, then re-insert through
  // the new bucket geometry. (at, seq) survives the trip, so order does.
  std::vector<Event> pending;
  pending.reserve(events_pending());
  for (std::size_t i = cur_pos_; i < cur_.size(); ++i) pending.push_back(std::move(cur_[i]));
  for (Event& ev : cur_overflow_) pending.push_back(std::move(ev));
  cur_.clear();
  cur_overflow_.clear();
  cur_pos_ = 0;
  cur_window_ = -1;
  for (auto& bucket : ring_) {
    for (Event& ev : bucket) pending.push_back(std::move(ev));
    bucket.clear();
  }
  ring_count_ = 0;
  for (Event& ev : events_) pending.push_back(std::move(ev));
  events_.clear();
  bucket_width_ = width;
  base_window_ = now_ / width;
  if (ring_.empty()) ring_.resize(kRingBuckets);
  for (Event& ev : pending) bucket_insert(std::move(ev));
}

ShardPlacement ShardPlacement::blocks(std::size_t hosts, std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("ShardPlacement.shards: must be >= 1");
  ShardPlacement p;
  p.shards = k;
  p.shard_of.resize(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    p.shard_of[h] = static_cast<std::uint32_t>(h * k / hosts);
  }
  return p;
}

void ShardPlacement::validate() const {
  if (shards == 0) throw std::invalid_argument("ShardPlacement.shards: must be >= 1");
  for (std::size_t h = 0; h < shard_of.size(); ++h) {
    if (shard_of[h] >= shards) {
      throw std::invalid_argument("ShardPlacement.shard_of[" + std::to_string(h) +
                                  "]: shard " + std::to_string(shard_of[h]) +
                                  " out of range (shards = " + std::to_string(shards) + ")");
    }
  }
}

ShardedSimulator::ShardedSimulator(std::uint32_t shards, TimeNs lookahead, ThreadPool* pool)
    : pool_(pool), lookahead_(lookahead) {
  if (shards == 0) throw std::invalid_argument("ShardedSimulator.shards: must be >= 1");
  if (shards > 1 && lookahead < 1) {
    throw std::invalid_argument(
        "ShardedSimulator.lookahead: must be >= 1 ns when shards > 1 (a zero "
        "window cannot make progress)");
  }
  shards_.reserve(shards);
  for (std::uint32_t k = 0; k < shards; ++k) shards_.push_back(std::make_unique<Simulator>());
  outboxes_.resize(static_cast<std::size_t>(shards) * shards);
  window_before_.resize(shards);
  stats_.shard_events.assign(shards, 0);
  // The lookahead window is what makes a fixed calendar-bucket width work;
  // give every shard the O(1) queue. K = 1 keeps the classic heap — that
  // path must stay bit-for-bit today's serial engine.
  if (shards > 1) {
    for (auto& s : shards_) s->enable_window_buckets(lookahead);
  }
}

void ShardedSimulator::set_lookahead(TimeNs lookahead) {
  if (running_) throw std::logic_error("ShardedSimulator.lookahead: cannot change mid-run");
  if (shards() > 1 && lookahead < 1) {
    throw std::invalid_argument("ShardedSimulator.lookahead: must be >= 1 ns when shards > 1");
  }
  lookahead_ = lookahead;
  if (shards() > 1) {
    for (auto& s : shards_) s->enable_window_buckets(lookahead);
  }
}

void ShardedSimulator::send(std::uint32_t src, std::uint32_t dst, TimeNs at, EventFn fn) {
  if (src == dst) {
    schedule_on(src, at, std::move(fn));
    return;
  }
  Simulator& s = *shards_.at(src);
  (void)shards_.at(dst);  // range-check dst before queueing
  if (at - s.now() < lookahead_) {
    throw std::logic_error("ShardedSimulator::send: shard " + std::to_string(src) +
                           " -> " + std::to_string(dst) + " at t=" + std::to_string(at) +
                           " violates the lookahead contract (now=" + std::to_string(s.now()) +
                           ", lookahead=" + std::to_string(lookahead_) +
                           "): the message could land inside the current window");
  }
  outboxes_[static_cast<std::size_t>(src) * shards() + dst].push_back(Msg{at, std::move(fn)});
}

void ShardedSimulator::drain_outboxes() {
  const std::uint32_t k = shards();
  for (std::uint32_t dst = 0; dst < k; ++dst) {
    merge_scratch_.clear();
    for (std::uint32_t src = 0; src < k; ++src) {
      auto& box = outboxes_[static_cast<std::size_t>(src) * k + dst];
      for (Msg& m : box) merge_scratch_.push_back(std::move(m));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Boxes were appended in sending-shard order, each already in send
    // order; a stable sort by timestamp therefore yields exactly
    // (timestamp, sending shard, send sequence) — the deterministic merge
    // the bit-identity guarantee rests on.
    std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                     [](const Msg& a, const Msg& b) { return a.at < b.at; });
    stats_.cross_shard_events += merge_scratch_.size();
    for (Msg& m : merge_scratch_) shards_[dst]->schedule_at(m.at, std::move(m.fn));
  }
  merge_scratch_.clear();
}

void ShardedSimulator::run_window(TimeNs wend) {
  const std::size_t k = shards_.size();
  ++stats_.windows;
  for (std::size_t i = 0; i < k; ++i) window_before_[i] = shards_[i]->events_processed();
  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) shards_[i]->run_before(wend);
  };
  if (pool_ != nullptr && pool_->concurrency() > 1) {
    pool_->parallel_for(0, k, body, /*grain=*/1);
  } else {
    body(0, k);
  }
  std::uint64_t window_total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t delta = shards_[i]->events_processed() - window_before_[i];
    stats_.shard_events[i] += delta;
    window_total += delta;
    if (delta == 0) ++stats_.stalled_shard_windows;
  }
  stats_.max_window_events = std::max(stats_.max_window_events, window_total);
}

namespace {
/// Saturating window end: W + lookahead without wrapping past kNoEvent.
TimeNs window_end(TimeNs next, TimeNs lookahead) {
  return next > Simulator::kNoEvent - lookahead ? Simulator::kNoEvent : next + lookahead;
}
struct RunningFlag {
  bool& flag;
  explicit RunningFlag(bool& f) : flag(f) { flag = true; }
  ~RunningFlag() { flag = false; }
};
}  // namespace

void ShardedSimulator::run() {
  if (shards_.size() == 1) {
    shards_[0]->run();  // unsharded: exactly the serial engine
    return;
  }
  RunningFlag guard(running_);
  for (;;) {
    drain_outboxes();
    TimeNs next = Simulator::kNoEvent;
    for (const auto& s : shards_) next = std::min(next, s->next_event_time());
    if (next == Simulator::kNoEvent) break;
    run_window(window_end(next, lookahead_));
  }
}

void ShardedSimulator::run_until(TimeNs until) {
  if (shards_.size() == 1) {
    shards_[0]->run_until(until);
    return;
  }
  RunningFlag guard(running_);
  for (;;) {
    drain_outboxes();
    TimeNs next = Simulator::kNoEvent;
    for (const auto& s : shards_) next = std::min(next, s->next_event_time());
    if (next > until) break;
    // Cap the window at until (inclusive: run_before is exclusive-end).
    const TimeNs cap = until == Simulator::kNoEvent ? until : until + 1;
    run_window(std::min(window_end(next, lookahead_), cap));
  }
  // Heaps now hold only events later than `until`; advance the clocks.
  for (auto& s : shards_) s->run_until(until);
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events_processed();
  return total;
}

std::size_t ShardedSimulator::events_pending() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->events_pending();
  for (const auto& box : outboxes_) total += box.size();
  return total;
}

TimeNs ShardedSimulator::next_event_time() const {
  TimeNs next = Simulator::kNoEvent;
  for (const auto& s : shards_) next = std::min(next, s->next_event_time());
  for (const auto& box : outboxes_) {
    for (const Msg& m : box) next = std::min(next, m.at);
  }
  return next;
}

TimeNs ShardedSimulator::now() const {
  TimeNs t = Simulator::kNoEvent;
  for (const auto& s : shards_) t = std::min(t, s->now());
  return t;
}

void ShardedSimulator::reserve_events(std::size_t n) {
  const std::size_t per_shard = n / shards_.size() + 1;
  for (auto& s : shards_) s->reserve_events(per_shard);
}

void ShardedSimulator::reset() {
  for (auto& s : shards_) s->reset();
  for (auto& box : outboxes_) box.clear();
}

}  // namespace dfl::sim
