#include "sim/simulator.hpp"

namespace dfl::sim {

void Simulator::schedule_at(TimeNs at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  roots_.push_back(std::move(task));
  // Start the root inside an event so spawning during another coroutine's
  // execution keeps FIFO ordering.
  Task<void>* t = &roots_.back();
  schedule_at(now_, [t] { t->start(); });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved
  // out before pop. const_cast is safe: the element is removed immediately.
  auto& top = const_cast<Event&>(queue_.top());
  now_ = top.at;
  auto fn = std::move(top.fn);
  queue_.pop();
  ++events_processed_;
  fn();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(TimeNs until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  if (now_ < until) now_ = until;
}

void Simulator::reset() {
  while (!queue_.empty()) queue_.pop();
  roots_.clear();
}

}  // namespace dfl::sim
