#include "sim/simulator.hpp"

#include <algorithm>

namespace dfl::sim {

void Simulator::schedule_at(TimeNs at, EventFn fn) {
  if (at < now_) at = now_;
  events_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(events_.begin(), events_.end(), EventLater{});
}

void Simulator::spawn(Task<void> task) {
  roots_.push_back(std::move(task));
  // Start the root inside an event so spawning during another coroutine's
  // execution keeps FIFO ordering.
  Task<void>* t = &roots_.back();
  schedule_at(now_, [t] { t->start(); });
}

bool Simulator::step() {
  if (events_.empty()) return false;
  std::pop_heap(events_.begin(), events_.end(), EventLater{});
  Event ev = std::move(events_.back());
  events_.pop_back();
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(TimeNs until) {
  while (!events_.empty() && events_.front().at <= until) step();
  if (now_ < until) now_ = until;
}

void Simulator::reset() {
  events_.clear();
  roots_.clear();
}

}  // namespace dfl::sim
