#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace dfl::sim {

double Distribution::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kConstant:
      return a;
    case Kind::kUniform:
      return rng.uniform_real(a, b);
    case Kind::kNormal:
      return std::max(0.0, rng.normal(a, b));
    case Kind::kLogNormal:
      // a is the median (exp of the log-mean), b the sigma of the log.
      return a * std::exp(rng.normal(0.0, b));
    case Kind::kExponential:
      return a <= 0 ? 0.0 : rng.exponential(1.0 / a);
    case Kind::kPareto: {
      // Inverse-CDF with tail index b, minimum a.
      const double u = rng.uniform01();
      return a / std::pow(1.0 - u, 1.0 / std::max(b, 1e-9));
    }
  }
  return 0.0;
}

double Distribution::floor() const {
  switch (kind) {
    case Kind::kConstant:
    case Kind::kUniform:
    case Kind::kPareto:
      return std::max(0.0, a);
    case Kind::kNormal:
    case Kind::kLogNormal:
    case Kind::kExponential:
      return 0.0;
  }
  return 0.0;
}

namespace {

void check_prob(const char* name, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("FaultPlan: " + std::string(name) + " = " + std::to_string(p) +
                                " outside [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_prob("transfer_failure_prob", transfer_failure_prob);
  check_prob("corruption_prob", corruption_prob);
  check_prob("latency_jitter_prob", latency_jitter_prob);
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (crashes[i].down_at < 0) {
      throw std::invalid_argument("FaultPlan: crash window " + std::to_string(i) +
                                  " (host " + std::to_string(crashes[i].host_id) +
                                  ") has negative down_at");
    }
  }
  for (std::size_t i = 0; i < degradations.size(); ++i) {
    const DegradeWindow& w = degradations[i];
    const std::string where =
        "FaultPlan: degrade window " + std::to_string(i) + " (host " +
        std::to_string(w.host_id) + ")";
    if (!(w.factor > 0.0 && w.factor <= 1.0)) {
      throw std::invalid_argument(where + " factor " + std::to_string(w.factor) +
                                  " outside (0, 1]");
    }
    if (w.end < w.start) {
      throw std::invalid_argument(where + " ends before it starts (end " +
                                  std::to_string(w.end) + " < start " +
                                  std::to_string(w.start) + ")");
    }
    if (w.start < 0) {
      throw std::invalid_argument(where + " has negative start");
    }
  }
  if (latency_jitter_ms.is_constant() && latency_jitter_ms.a < 0) {
    throw std::invalid_argument("FaultPlan: negative latency_jitter_ms");
  }
}

TimeNs FaultPlan::latency_floor_ns() const {
  // Conditional jitter (prob < 1) can skip a transfer entirely, so its
  // guaranteed floor is zero. path_effect() also suppresses draws <= 0.
  if (latency_jitter_prob < 1.0) return 0;
  const double ms = latency_jitter_ms.floor();
  return ms > 0 ? from_millis(ms) : 0;
}

std::vector<FaultPlan> FaultPlan::split_by_shard(const ShardPlacement& placement) const {
  placement.validate();
  std::vector<FaultPlan> out(placement.shards);
  for (std::uint32_t k = 0; k < placement.shards; ++k) {
    FaultPlan& p = out[k];
    p.transfer_failure_prob = transfer_failure_prob;
    p.corruption_prob = corruption_prob;
    p.latency_jitter_ms = latency_jitter_ms;
    p.latency_jitter_prob = latency_jitter_prob;
    // Fork the stream per shard so the shard injectors stay deterministic
    // and mutually independent regardless of transfer interleaving.
    p.seed = seed ^ (0x9e3779b97f4a7c15ULL * (k + 1));
  }
  for (const CrashWindow& w : crashes) {
    out[placement.shard(w.host_id)].crashes.push_back(w);
  }
  for (const DegradeWindow& w : degradations) {
    out[placement.shard(w.host_id)].degradations.push_back(w);
  }
  return out;
}

FaultPlan FaultPlan::periodic_churn(const std::vector<std::uint32_t>& host_ids, TimeNs horizon,
                                    TimeNs period, TimeNs downtime, double churn_prob,
                                    std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (period <= 0 || churn_prob <= 0) return plan;
  // A private stream so drawing the schedule never perturbs the injector's
  // own per-transfer RNG.
  Rng rng(seed ^ 0xc3a5c85c97cb3127ULL);
  for (TimeNs slot = 0; slot < horizon; slot += period) {
    for (const std::uint32_t id : host_ids) {
      if (rng.uniform01() >= churn_prob) continue;
      // Crash somewhere inside the slot, not always at its edge.
      const TimeNs down_at = slot + static_cast<TimeNs>(rng.uniform01() * 0.5 * static_cast<double>(period));
      plan.crashes.push_back(CrashWindow{id, down_at, down_at + downtime});
    }
  }
  return plan;
}

void FaultInjector::install() {
  plan_.validate();
  net_.set_fault_hook(this);
}

void FaultInjector::schedule_window(const CrashWindow& w) {
  Simulator& sim = net_.simulator();
  if (w.host_id >= net_.host_count()) {
    DFL_WARN("fault") << "crash window names unknown host " << w.host_id << "; skipped";
    return;
  }
  sim.schedule_at(w.down_at, [this, id = w.host_id] {
    Host& h = net_.host(id);
    if (!h.is_up()) return;  // overlapping windows: already down
    ++stats_.crashes;
    DFL_DEBUG("fault") << "crash host " << h.name() << " at " << to_seconds(net_.simulator().now()) << "s";
    obs::Tracer::instance().instant("crash", id, net_.simulator().now());
    h.set_up(false);
  });
  if (w.up_at > w.down_at) {
    sim.schedule_at(w.up_at, [this, id = w.host_id] {
      Host& h = net_.host(id);
      if (h.is_up()) return;
      ++stats_.restarts;
      DFL_DEBUG("fault") << "restart host " << h.name() << " at "
                         << to_seconds(net_.simulator().now()) << "s";
      obs::Tracer::instance().instant("restart", id, net_.simulator().now());
      h.set_up(true);
    });
  }
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  install();
  for (const CrashWindow& w : plan_.crashes) schedule_window(w);
  // Everything is scheduled; an arm_until after a full arm is a no-op.
  crash_cursor_ = plan_.crashes.size();
  crash_order_.clear();
}

void FaultInjector::arm_until(TimeNs until) {
  if (!armed_) {
    armed_ = true;
    install();
    crash_order_.resize(plan_.crashes.size());
    for (std::size_t i = 0; i < crash_order_.size(); ++i) crash_order_[i] = i;
    std::stable_sort(crash_order_.begin(), crash_order_.end(), [this](std::size_t a, std::size_t b) {
      return plan_.crashes[a].down_at < plan_.crashes[b].down_at;
    });
  }
  while (crash_cursor_ < crash_order_.size() &&
         plan_.crashes[crash_order_[crash_cursor_]].down_at < until) {
    schedule_window(plan_.crashes[crash_order_[crash_cursor_]]);
    ++crash_cursor_;
  }
}

bool FaultInjector::should_drop_transfer(const Host& from, const Host&) {
  if (plan_.transfer_failure_prob <= 0) return false;
  const bool drop = rng_.uniform01() < plan_.transfer_failure_prob;
  if (drop) {
    ++stats_.transfers_dropped;
    obs::Tracer::instance().instant("drop", from.id(), net_.simulator().now());
  }
  return drop;
}

void FaultInjector::degrade_factors(const Host& from, const Host& to, double& up,
                                    double& down) const {
  const TimeNs now = net_.simulator().now();
  for (const DegradeWindow& w : plan_.degradations) {
    if (now < w.start || now >= w.end) continue;
    const double f = std::clamp(w.factor, 1e-6, 1.0);
    // The window throttles the named host's own pipes: its uplink when it
    // is the sender, its downlink when it is the receiver.
    if (w.host_id == from.id() && w.dir != LinkDirection::kDownlink) up *= f;
    if (w.host_id == to.id() && w.dir != LinkDirection::kUplink) down *= f;
  }
}

double FaultInjector::bandwidth_factor(const Host& from, const Host& to) {
  // Legacy symmetric view: the tighter of the two directional factors.
  double up = 1.0;
  double down = 1.0;
  degrade_factors(from, to, up, down);
  return std::min(up, down);
}

FaultHook::PathEffect FaultInjector::path_effect(const Host& from, const Host& to) {
  PathEffect effect;
  degrade_factors(from, to, effect.up_factor, effect.down_factor);
  if (!plan_.latency_jitter_ms.is_zero() &&
      (plan_.latency_jitter_prob >= 1.0 || rng_.uniform01() < plan_.latency_jitter_prob)) {
    const double ms = plan_.latency_jitter_ms.sample(rng_);
    if (ms > 0) {
      effect.extra_latency = from_millis(ms);
      ++stats_.transfers_jittered;
    }
  }
  return effect;
}

bool FaultInjector::should_corrupt_payload(const Host& server) {
  if (plan_.corruption_prob <= 0) return false;
  const bool corrupt = rng_.uniform01() < plan_.corruption_prob;
  if (corrupt) {
    ++stats_.payloads_corrupted;
    obs::Tracer::instance().instant("corrupt", server.id(), net_.simulator().now());
  }
  return corrupt;
}

}  // namespace dfl::sim
