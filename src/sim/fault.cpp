#include "sim/fault.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dfl::sim {

FaultPlan FaultPlan::periodic_churn(const std::vector<std::uint32_t>& host_ids, TimeNs horizon,
                                    TimeNs period, TimeNs downtime, double churn_prob,
                                    std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (period <= 0 || churn_prob <= 0) return plan;
  // A private stream so drawing the schedule never perturbs the injector's
  // own per-transfer RNG.
  Rng rng(seed ^ 0xc3a5c85c97cb3127ULL);
  for (TimeNs slot = 0; slot < horizon; slot += period) {
    for (const std::uint32_t id : host_ids) {
      if (rng.uniform01() >= churn_prob) continue;
      // Crash somewhere inside the slot, not always at its edge.
      const TimeNs down_at = slot + static_cast<TimeNs>(rng.uniform01() * 0.5 * static_cast<double>(period));
      plan.crashes.push_back(CrashWindow{id, down_at, down_at + downtime});
    }
  }
  return plan;
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  Simulator& sim = net_.simulator();
  for (const CrashWindow& w : plan_.crashes) {
    if (w.host_id >= net_.host_count()) {
      DFL_WARN("fault") << "crash window names unknown host " << w.host_id << "; skipped";
      continue;
    }
    sim.schedule_at(w.down_at, [this, id = w.host_id] {
      Host& h = net_.host(id);
      if (!h.is_up()) return;  // overlapping windows: already down
      ++stats_.crashes;
      DFL_DEBUG("fault") << "crash host " << h.name() << " at " << to_seconds(net_.simulator().now()) << "s";
      h.set_up(false);
    });
    if (w.up_at > w.down_at) {
      sim.schedule_at(w.up_at, [this, id = w.host_id] {
        Host& h = net_.host(id);
        if (h.is_up()) return;
        ++stats_.restarts;
        DFL_DEBUG("fault") << "restart host " << h.name() << " at "
                           << to_seconds(net_.simulator().now()) << "s";
        h.set_up(true);
      });
    }
  }
  net_.set_fault_hook(this);
}

bool FaultInjector::should_drop_transfer(const Host&, const Host&) {
  if (plan_.transfer_failure_prob <= 0) return false;
  const bool drop = rng_.uniform01() < plan_.transfer_failure_prob;
  if (drop) ++stats_.transfers_dropped;
  return drop;
}

double FaultInjector::bandwidth_factor(const Host& from, const Host& to) {
  double factor = 1.0;
  const TimeNs now = net_.simulator().now();
  for (const DegradeWindow& w : plan_.degradations) {
    if (now < w.start || now >= w.end) continue;
    if (w.host_id != from.id() && w.host_id != to.id()) continue;
    factor *= std::clamp(w.factor, 1e-6, 1.0);
  }
  return factor;
}

bool FaultInjector::should_corrupt_payload(const Host&) {
  if (plan_.corruption_prob <= 0) return false;
  const bool corrupt = rng_.uniform01() < plan_.corruption_prob;
  if (corrupt) ++stats_.payloads_corrupted;
  return corrupt;
}

}  // namespace dfl::sim
