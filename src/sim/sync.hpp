// Coroutine synchronization primitives over simulated time: a broadcast
// event and an unbounded channel. Waiters are resumed through the event
// queue (never inline) so wake-up order is deterministic FIFO.
#pragma once

#include <coroutine>
#include <deque>
#include <exception>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace dfl::sim {

/// Manual-reset broadcast event: wait() parks until set() is called.
/// Once set, wait() completes immediately until clear().
class SyncEvent {
 public:
  explicit SyncEvent(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_.schedule_at(sim_.now(), [h] { h.resume(); });
    }
  }

  void clear() { set_ = false; }

  auto wait() {
    struct Awaiter {
      SyncEvent& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded single-producer/multi-consumer FIFO channel.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}

  void send(T value) {
    queue_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_at(sim_.now(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Awaitable receive; completes when a value is available.
  auto receive() {
    struct Awaiter {
      Channel& ch;
      bool await_ready() const noexcept { return !ch.queue_.empty(); }
      void await_suspend(std::coroutine_handle<> h) { ch.waiters_.push_back(h); }
      T await_resume() {
        // A competing consumer resumed first could have drained the queue;
        // with FIFO wake-ups and one wake per send this cannot happen, but
        // guard the invariant in debug builds.
        T value = std::move(ch.queue_.front());
        ch.queue_.pop_front();
        return value;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::deque<T> queue_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Structured fan-out: spawn() starts child tasks as simulator roots (so
/// they run concurrently over simulated time) and join() waits for all of
/// them, rethrowing the first child exception after the group drains.
///
/// The group must be joined before it is destroyed — in-flight children
/// hold a reference to it. Children spawned in one expression start in
/// spawn order (the simulator's FIFO event queue), so fan-out is exactly
/// as deterministic as sequential code.
///
/// Lifetime caveat (coroutine lambdas): a child created from a lambda
/// keeps its captures in the *lambda object*, not the coroutine frame.
/// Keep the lambda alive until join() returns, or pass state by value to
/// a named coroutine function.
class TaskGroup {
 public:
  explicit TaskGroup(Simulator& sim) : sim_(sim), done_(sim) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(Task<void> task) {
    ++outstanding_;
    done_.clear();
    sim_.spawn(run(std::move(task)));
  }

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }

  /// Completes when every spawned child has finished. Rethrows the first
  /// exception any child threw (later ones are dropped — children are
  /// peers; one failure diagnosis suffices).
  [[nodiscard]] Task<void> join() {
    while (outstanding_ > 0) co_await done_.wait();
    if (first_error_ != nullptr) {
      std::rethrow_exception(std::exchange(first_error_, nullptr));
    }
  }

 private:
  Task<void> run(Task<void> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    if (--outstanding_ == 0) done_.set();
  }

  Simulator& sim_;
  SyncEvent done_;
  std::size_t outstanding_ = 0;
  std::exception_ptr first_error_ = nullptr;
};

/// Windowed fan-out: runs fn(0) .. fn(count-1) across `window` lanes, lane
/// j handling indices j, j+window, j+2*window, ... sequentially (window 0 =
/// one lane per item, i.e. unbounded). Use this instead of spawning all
/// items at once when fn issues network transfers: the pipe model reserves
/// FIFO slots at issue time, so an unbounded spawn occupies the pipes for
/// the whole batch up front and any later traffic (even a tiny control RPC)
/// queues behind it. A small window keeps the pipes saturated while
/// bounding the reservation horizon to ~window items — per-chunk occupancy,
/// the cut-through property of the chunked plane.
template <typename Fn>
[[nodiscard]] Task<void> for_each_windowed(Simulator& sim, std::size_t count, std::size_t window,
                                           Fn fn) {
  if (count == 0) co_return;
  TaskGroup group(sim);
  const std::size_t lanes = std::min(window == 0 ? count : window, count);
  auto lane = [&fn, count, lanes](std::size_t j) -> Task<void> {
    for (std::size_t k = j; k < count; k += lanes) co_await fn(k);
  };
  for (std::size_t j = 0; j < lanes; ++j) group.spawn(lane(j));
  co_await group.join();
}

}  // namespace dfl::sim
