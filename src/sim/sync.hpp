// Coroutine synchronization primitives over simulated time: a broadcast
// event and an unbounded channel. Waiters are resumed through the event
// queue (never inline) so wake-up order is deterministic FIFO.
#pragma once

#include <coroutine>
#include <deque>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace dfl::sim {

/// Manual-reset broadcast event: wait() parks until set() is called.
/// Once set, wait() completes immediately until clear().
class SyncEvent {
 public:
  explicit SyncEvent(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_.schedule_at(sim_.now(), [h] { h.resume(); });
    }
  }

  void clear() { set_ = false; }

  auto wait() {
    struct Awaiter {
      SyncEvent& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded single-producer/multi-consumer FIFO channel.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}

  void send(T value) {
    queue_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_at(sim_.now(), [h] { h.resume(); });
    }
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Awaitable receive; completes when a value is available.
  auto receive() {
    struct Awaiter {
      Channel& ch;
      bool await_ready() const noexcept { return !ch.queue_.empty(); }
      void await_suspend(std::coroutine_handle<> h) { ch.waiters_.push_back(h); }
      T await_resume() {
        // A competing consumer resumed first could have drained the queue;
        // with FIFO wake-ups and one wake per send this cannot happen, but
        // guard the invariant in debug builds.
        T value = std::move(ch.queue_.front());
        ch.queue_.pop_front();
        return value;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::deque<T> queue_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace dfl::sim
