// Host-side data-plane observability: how many payload bytes the process
// actually memcpy'd versus served by reference (refcount bump), and how
// often content was re-hashed versus answered from a block's cached CID.
//
// These are *measurement* counters for the machine running the simulation —
// they never influence simulated time, so enabling/resetting them cannot
// perturb protocol results. The data plane is single-threaded (everything
// runs on the simulator thread), so plain counters suffice.
//
// DataPathMode::kDeepCopy re-enables the pre-zero-copy behaviour (every
// store read, put attempt, replica write and pub/sub delivery deep-copies,
// every verification re-hashes). bench/abl_datapath uses it to A/B the two
// planes in one binary and to prove simulated results are bit-identical.
#pragma once

#include <cstdint>

namespace dfl::sim {

enum class DataPathMode : std::uint8_t {
  kZeroCopy,  // immutable shared blocks, cached CIDs (default)
  kDeepCopy,  // legacy copy-per-hop emulation, for A/B benchmarking
};

struct DataPathStats {
  /// Payload bytes physically copied on this host (memcpy'd buffers).
  std::uint64_t bytes_copied = 0;
  /// Payload bytes handed over by reference instead of copying — exactly
  /// the bytes the deep-copy plane would have memcpy'd.
  std::uint64_t bytes_shared = 0;
  /// Full content hashes computed (SHA-256 over a block's bytes).
  std::uint64_t blocks_hashed = 0;
  /// Bytes fed through the hash function for those computations.
  std::uint64_t bytes_hashed = 0;
  /// CID requests answered from a block's cached digest.
  std::uint64_t cid_cache_hits = 0;
  /// Block buffers materialized (allocations of backing storage).
  std::uint64_t blocks_created = 0;
  /// Backing-store bytes currently alive across all blocks.
  std::uint64_t resident_block_bytes = 0;
  /// High-water mark of resident_block_bytes.
  std::uint64_t peak_resident_block_bytes = 0;

  // Chunked (DAG) transfer-plane observability. Unlike the counters above,
  // the latency sums are *simulated* nanoseconds: first-byte is when the
  // first chunk of a streamed transfer landed, last-byte when the final
  // chunk did, both measured from the moment the transfer was issued.
  /// Streamed (chunked) fetch/merge transfers completed.
  std::uint64_t chunked_transfers = 0;
  /// Leaf/range chunks delivered across those transfers.
  std::uint64_t chunks_delivered = 0;
  /// Σ first-byte latency over chunked transfers (simulated ns).
  std::uint64_t first_byte_ns_total = 0;
  /// Σ last-byte latency over chunked transfers (simulated ns).
  std::uint64_t last_byte_ns_total = 0;

  /// Mean first-byte latency of streamed transfers, seconds (0 when none).
  [[nodiscard]] double mean_first_byte_s() const {
    return chunked_transfers == 0 ? 0.0
                                  : static_cast<double>(first_byte_ns_total) * 1e-9 /
                                        static_cast<double>(chunked_transfers);
  }
  /// Mean last-byte latency of streamed transfers, seconds (0 when none).
  [[nodiscard]] double mean_last_byte_s() const {
    return chunked_transfers == 0 ? 0.0
                                  : static_cast<double>(last_byte_ns_total) * 1e-9 /
                                        static_cast<double>(chunked_transfers);
  }

  /// Copy-traffic reduction versus the deep-copy plane: bytes the old plane
  /// would have copied divided by the bytes this plane copied. Returns 1
  /// when nothing was shared (e.g. in kDeepCopy mode).
  [[nodiscard]] double copy_reduction_factor() const {
    const double would_copy = static_cast<double>(bytes_copied + bytes_shared);
    return bytes_copied == 0 ? (bytes_shared == 0 ? 1.0 : would_copy)
                             : would_copy / static_cast<double>(bytes_copied);
  }

  /// Counter-wise difference (for per-round deltas). Resident/peak gauges
  /// are not differenced: the later snapshot's values are kept.
  [[nodiscard]] DataPathStats since(const DataPathStats& earlier) const {
    DataPathStats d = *this;
    d.bytes_copied -= earlier.bytes_copied;
    d.bytes_shared -= earlier.bytes_shared;
    d.blocks_hashed -= earlier.blocks_hashed;
    d.bytes_hashed -= earlier.bytes_hashed;
    d.cid_cache_hits -= earlier.cid_cache_hits;
    d.blocks_created -= earlier.blocks_created;
    d.chunked_transfers -= earlier.chunked_transfers;
    d.chunks_delivered -= earlier.chunks_delivered;
    d.first_byte_ns_total -= earlier.first_byte_ns_total;
    d.last_byte_ns_total -= earlier.last_byte_ns_total;
    return d;
  }
};

/// The process-wide counter set (single-threaded data plane).
[[nodiscard]] DataPathStats& datapath_stats();

/// Zeroes all counters and gauges (peak restarts from current residency).
void reset_datapath_stats();

[[nodiscard]] DataPathMode datapath_mode();
void set_datapath_mode(DataPathMode mode);

/// Counter helpers used by the block/data-plane layer.
void note_block_alloc(std::uint64_t bytes);
void note_block_free(std::uint64_t bytes);
void note_bytes_copied(std::uint64_t bytes);
void note_bytes_shared(std::uint64_t bytes);
void note_block_hashed(std::uint64_t bytes);
void note_cid_cache_hit();
/// Records one completed streamed (chunked) transfer: its first-byte and
/// last-byte latency in simulated ns and how many chunks it moved.
void note_chunked_transfer(std::uint64_t first_byte_ns, std::uint64_t last_byte_ns,
                           std::uint64_t chunks);

}  // namespace dfl::sim
