#include "sim/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dfl::sim {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ScenarioError("scenario:" + std::to_string(line) + ": " + msg);
}

double to_double(const std::string& s, int line, const char* what) {
  const std::string t = trim(s);
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (t.empty() || end != t.c_str() + t.size()) {
    fail(line, std::string(what) + ": not a number: '" + t + "'");
  }
  return v;
}

std::uint64_t to_u64(const std::string& s, int line, const char* what) {
  const std::string t = trim(s);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (t.empty() || end != t.c_str() + t.size()) {
    fail(line, std::string(what) + ": not an unsigned integer: '" + t + "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(trim(cur));
  return out;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// One parsed `[section]` with its `key = value` entries and line numbers.
struct Section {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, std::string>> entries;
  std::vector<int> entry_lines;
};

std::vector<Section> tokenize(const std::string& text) {
  std::vector<Section> sections;
  std::istringstream is(text);
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    // Strip comments: everything from the first unquoted '#' or ';'.
    std::string stripped;
    for (const char c : raw) {
      if (c == '#' || c == ';') break;
      stripped += c;
    }
    const std::string s = trim(stripped);
    if (s.empty()) continue;
    if (s.front() == '[') {
      if (s.back() != ']' || s.size() < 3) fail(line, "malformed section header '" + s + "'");
      sections.push_back(Section{trim(s.substr(1, s.size() - 2)), line, {}, {}});
      continue;
    }
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) fail(line, "expected 'key = value', got '" + s + "'");
    if (sections.empty()) fail(line, "entry before any [section]");
    sections.back().entries.emplace_back(trim(s.substr(0, eq)), trim(s.substr(eq + 1)));
    sections.back().entry_lines.push_back(line);
  }
  return sections;
}

double prob_value(const std::string& v, int line, const char* what) {
  const double p = to_double(v, line, what);
  if (p < 0.0 || p > 1.0) fail(line, std::string(what) + " outside [0, 1]");
  return p;
}

LinkDirection parse_dir(const std::string& s, int line) {
  if (s == "both") return LinkDirection::kBoth;
  if (s == "up") return LinkDirection::kUplink;
  if (s == "down") return LinkDirection::kDownlink;
  fail(line, "direction must be up, down, or both; got '" + s + "'");
}

/// Derives an independent, reproducible RNG stream per generator: the
/// stream index is the generator's position in the spec, so adding a new
/// section never perturbs earlier ones in the same file.
Rng derived_rng(std::uint64_t seed, std::uint64_t stream) {
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

std::vector<std::uint32_t> resolve_target(const std::string& target, const RoleMap& roles) {
  if (target.rfind("host:", 0) == 0) {
    char* end = nullptr;
    const std::string num = target.substr(5);
    const unsigned long id = std::strtoul(num.c_str(), &end, 10);
    if (num.empty() || end != num.c_str() + num.size()) {
      throw ScenarioError("scenario: malformed host target '" + target + "'");
    }
    return {static_cast<std::uint32_t>(id)};
  }
  const auto it = roles.find(target);
  if (it == roles.end()) {
    std::string known;
    for (const auto& [name, ids] : roles) known += (known.empty() ? "" : ", ") + name;
    throw ScenarioError("scenario: unknown role '" + target + "' (known: " + known + ")");
  }
  return it->second;
}

/// Coalesces overlapping/adjacent crash windows per host so a host is
/// never "restarted" by one window while another still holds it down
/// (up_at <= down_at means the host never returns).
std::vector<CrashWindow> merge_windows(std::vector<CrashWindow> in) {
  std::stable_sort(in.begin(), in.end(), [](const CrashWindow& a, const CrashWindow& b) {
    if (a.host_id != b.host_id) return a.host_id < b.host_id;
    return a.down_at < b.down_at;
  });
  std::vector<CrashWindow> out;
  for (const CrashWindow& w : in) {
    if (!out.empty() && out.back().host_id == w.host_id) {
      CrashWindow& prev = out.back();
      const bool prev_forever = prev.up_at <= prev.down_at;
      if (prev_forever) continue;  // already down for good
      if (w.down_at <= prev.up_at) {
        const bool w_forever = w.up_at <= w.down_at;
        prev.up_at = w_forever ? prev.down_at : std::max(prev.up_at, w.up_at);
        continue;
      }
    }
    out.push_back(w);
  }
  // Global schedule order: by time, then host (bit-stable run over run).
  std::stable_sort(out.begin(), out.end(), [](const CrashWindow& a, const CrashWindow& b) {
    if (a.down_at != b.down_at) return a.down_at < b.down_at;
    return a.host_id < b.host_id;
  });
  return out;
}

}  // namespace

HostConfig LinkModel::sample(const HostConfig& base, Rng& rng) const {
  HostConfig cfg = base;
  if (has_bandwidth) {
    const double mbps = std::max(0.01, bandwidth_mbps.sample(rng));
    cfg.up_bps = cfg.down_bps = mbps * 1e6;
  }
  if (has_up) cfg.up_bps = std::max(0.01, up_mbps.sample(rng)) * 1e6;
  if (has_down) cfg.down_bps = std::max(0.01, down_mbps.sample(rng)) * 1e6;
  if (has_latency) cfg.latency = from_millis(std::max(0.0, latency_ms.sample(rng)));
  return cfg;
}

TimeNs LinkModel::latency_floor_ns(TimeNs fallback) const {
  if (!has_latency) return fallback;
  const double ms = latency_ms.floor();
  return ms > 0 ? from_millis(ms) : 0;
}

Distribution parse_distribution(const std::string& text) {
  const std::string s = trim(text);
  const std::size_t open = s.find('(');
  if (open == std::string::npos) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size()) {
      throw ScenarioError("scenario: malformed distribution '" + s + "'");
    }
    return Distribution::constant(v);
  }
  if (s.back() != ')') throw ScenarioError("scenario: missing ')' in '" + s + "'");
  const std::string name = trim(s.substr(0, open));
  const std::vector<std::string> args = split(s.substr(open + 1, s.size() - open - 2), ',');
  auto arg = [&](std::size_t i) {
    char* end = nullptr;
    const double v = std::strtod(args[i].c_str(), &end);
    if (args[i].empty() || end != args[i].c_str() + args[i].size()) {
      throw ScenarioError("scenario: bad argument '" + args[i] + "' in '" + s + "'");
    }
    return v;
  };
  auto expect = [&](std::size_t n) {
    if (args.size() != n) {
      throw ScenarioError("scenario: " + name + " takes " + std::to_string(n) +
                          " argument(s), got " + std::to_string(args.size()));
    }
  };
  Distribution d;
  if (name == "constant") {
    expect(1);
    d = Distribution::constant(arg(0));
  } else if (name == "uniform") {
    expect(2);
    d = Distribution{Distribution::Kind::kUniform, arg(0), arg(1)};
  } else if (name == "normal") {
    expect(2);
    d = Distribution{Distribution::Kind::kNormal, arg(0), arg(1)};
  } else if (name == "lognormal") {
    expect(2);
    d = Distribution{Distribution::Kind::kLogNormal, arg(0), arg(1)};
  } else if (name == "exp" || name == "exponential") {
    expect(1);
    d = Distribution{Distribution::Kind::kExponential, arg(0), 0.0};
  } else if (name == "pareto") {
    expect(2);
    d = Distribution{Distribution::Kind::kPareto, arg(0), arg(1)};
  } else {
    throw ScenarioError("scenario: unknown distribution '" + name + "'");
  }
  return d;
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  for (const Section& sec : tokenize(text)) {
    auto unknown_key = [&](std::size_t i) {
      fail(sec.entry_lines[i],
           "unknown key '" + sec.entries[i].first + "' in [" + sec.name + "]");
    };
    if (sec.name == "scenario") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k == "name") {
          spec.name = v;
        } else if (k == "description") {
          spec.description = v;
        } else if (k == "seed") {
          spec.seed = to_u64(v, ln, "seed");
          spec.has_seed = true;
        } else if (k == "rounds") {
          spec.rounds = static_cast<int>(to_u64(v, ln, "rounds"));
        } else {
          unknown_key(i);
        }
      }
    } else if (sec.name == "deployment") {
      for (const auto& kv : sec.entries) spec.deployment.push_back(kv);
    } else if (sec.name.rfind("links.", 0) == 0) {
      LinkModel& model = spec.links[sec.name.substr(6)];
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        try {
          if (k == "bandwidth_mbps") {
            model.bandwidth_mbps = parse_distribution(v);
            model.has_bandwidth = true;
          } else if (k == "up_mbps") {
            model.up_mbps = parse_distribution(v);
            model.has_up = true;
          } else if (k == "down_mbps") {
            model.down_mbps = parse_distribution(v);
            model.has_down = true;
          } else if (k == "latency_ms") {
            model.latency_ms = parse_distribution(v);
            model.has_latency = true;
          } else {
            unknown_key(i);
          }
        } catch (const ScenarioError& e) {
          fail(sec.entry_lines[i], e.what());
        }
      }
    } else if (sec.name == "faults") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k == "transfer_failure_prob") {
          spec.transfer_failure_prob = prob_value(v, ln, k.c_str());
        } else if (k == "corruption_prob") {
          spec.corruption_prob = prob_value(v, ln, k.c_str());
        } else if (k == "latency_jitter_ms") {
          try {
            spec.latency_jitter_ms = parse_distribution(v);
          } catch (const ScenarioError& e) {
            fail(ln, e.what());
          }
        } else if (k == "latency_jitter_prob") {
          spec.latency_jitter_prob = prob_value(v, ln, k.c_str());
        } else {
          unknown_key(i);
        }
      }
    } else if (sec.name == "churn") {
      ChurnSpec c;
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k == "roles") {
          c.roles = split(v, ',');
        } else if (k == "period_s") {
          c.period_s = to_double(v, ln, k.c_str());
        } else if (k == "downtime_s") {
          c.downtime_s = to_double(v, ln, k.c_str());
        } else if (k == "prob") {
          c.prob = prob_value(v, ln, k.c_str());
        } else {
          unknown_key(i);
        }
      }
      if (c.roles.empty()) fail(sec.line, "[churn] needs roles = ...");
      spec.churn.push_back(std::move(c));
    } else if (sec.name == "diurnal") {
      DiurnalSpec d;
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k == "roles") {
          d.roles = split(v, ',');
        } else if (k == "period_s") {
          d.period_s = to_double(v, ln, k.c_str());
        } else if (k == "trough_offset_s") {
          d.trough_offset_s = to_double(v, ln, k.c_str());
        } else if (k == "trough_len_s") {
          d.trough_len_s = to_double(v, ln, k.c_str());
        } else if (k == "down_prob") {
          d.down_prob = prob_value(v, ln, k.c_str());
        } else if (k == "phase_jitter_s") {
          d.phase_jitter_s = to_double(v, ln, k.c_str());
        } else {
          unknown_key(i);
        }
      }
      if (d.roles.empty()) fail(sec.line, "[diurnal] needs roles = ...");
      if (d.period_s <= 0) fail(sec.line, "[diurnal] needs period_s > 0");
      spec.diurnal.push_back(std::move(d));
    } else if (sec.name == "sessions") {
      SessionSpec s;
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        try {
          if (k == "roles") {
            s.roles = split(v, ',');
          } else if (k == "on_s") {
            s.on_s = parse_distribution(v);
          } else if (k == "off_s") {
            s.off_s = parse_distribution(v);
          } else if (k == "start_online_prob") {
            s.start_online_prob = prob_value(v, ln, k.c_str());
          } else {
            unknown_key(i);
          }
        } catch (const ScenarioError& e) {
          fail(ln, e.what());
        }
      }
      if (s.roles.empty()) fail(sec.line, "[sessions] needs roles = ...");
      spec.sessions.push_back(std::move(s));
    } else if (sec.name == "degrade") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k != "window") unknown_key(i);
        const std::vector<std::string> f = split_ws(v);
        if (f.size() != 4 && f.size() != 5) {
          fail(ln, "window = <target> <start_s> <end_s> <factor> [up|down|both]");
        }
        DegradeSpec d;
        d.target = f[0];
        d.start_s = to_double(f[1], ln, "start_s");
        d.end_s = to_double(f[2], ln, "end_s");
        d.factor = to_double(f[3], ln, "factor");
        if (f.size() == 5) d.dir = parse_dir(f[4], ln);
        spec.degrade.push_back(std::move(d));
      }
    } else if (sec.name == "outage") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k != "window") unknown_key(i);
        const std::vector<std::string> f = split_ws(v);
        if (f.size() != 3) fail(ln, "window = <target> <down_s> <up_s>");
        OutageSpec o;
        o.target = f[0];
        o.down_s = to_double(f[1], ln, "down_s");
        o.up_s = to_double(f[2], ln, "up_s");
        spec.outages.push_back(std::move(o));
      }
    } else if (sec.name == "providers") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        const int ln = sec.entry_lines[i];
        if (k == "ttl_s") {
          spec.provider_ttl = from_seconds(to_double(v, ln, k.c_str()));
        } else if (k == "republish_s") {
          spec.provider_republish = from_seconds(to_double(v, ln, k.c_str()));
        } else {
          unknown_key(i);
        }
      }
    } else if (sec.name == "slo") {
      for (std::size_t i = 0; i < sec.entries.size(); ++i) {
        const auto& [k, v] = sec.entries[i];
        spec.slo.emplace_back(k, to_double(v, sec.entry_lines[i], k.c_str()));
      }
    } else {
      fail(sec.line, "unknown section [" + sec.name + "]");
    }
  }
  if (spec.name.empty()) {
    throw ScenarioError("scenario: missing [scenario] name = ...");
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("scenario: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario(buf.str());
  } catch (const ScenarioError& e) {
    throw ScenarioError(path + ": " + e.what());
  }
}

FaultPlan ScenarioSpec::build_fault_plan(const RoleMap& roles, TimeNs horizon,
                                         std::uint64_t plan_seed) const {
  FaultPlan plan;
  plan.seed = plan_seed;
  plan.transfer_failure_prob = transfer_failure_prob;
  plan.corruption_prob = corruption_prob;
  plan.latency_jitter_ms = latency_jitter_ms;
  plan.latency_jitter_prob = latency_jitter_prob;

  std::vector<CrashWindow> windows;
  std::uint64_t stream = 0;

  for (const ChurnSpec& c : churn) {
    Rng rng = derived_rng(plan_seed, stream++);
    const auto period = from_seconds(c.period_s);
    const auto downtime = from_seconds(c.downtime_s);
    if (period <= 0 || c.prob <= 0) continue;
    for (const std::string& role : c.roles) {
      for (const std::uint32_t id : resolve_target(role, roles)) {
        for (TimeNs slot = 0; slot < horizon; slot += period) {
          if (rng.uniform01() >= c.prob) continue;
          const auto down_at =
              slot + static_cast<TimeNs>(rng.uniform01() * 0.5 * static_cast<double>(period));
          windows.push_back(CrashWindow{id, down_at, down_at + downtime});
        }
      }
    }
  }

  for (const DiurnalSpec& d : diurnal) {
    Rng rng = derived_rng(plan_seed, stream++);
    const auto period = from_seconds(d.period_s);
    const auto len = from_seconds(d.trough_len_s);
    if (period <= 0 || len <= 0) continue;
    for (const std::string& role : d.roles) {
      for (const std::uint32_t id : resolve_target(role, roles)) {
        const double phase = d.phase_jitter_s > 0
                                 ? rng.uniform_real(-d.phase_jitter_s, d.phase_jitter_s)
                                 : 0.0;
        for (TimeNs t = 0; t < horizon; t += period) {
          if (rng.uniform01() >= d.down_prob) continue;
          const TimeNs down_at =
              std::max<TimeNs>(0, t + from_seconds(d.trough_offset_s + phase));
          windows.push_back(CrashWindow{id, down_at, down_at + len});
        }
      }
    }
  }

  for (const SessionSpec& s : sessions) {
    Rng rng = derived_rng(plan_seed, stream++);
    for (const std::string& role : s.roles) {
      for (const std::uint32_t id : resolve_target(role, roles)) {
        TimeNs t = 0;
        bool online = rng.uniform01() < s.start_online_prob;
        while (t < horizon) {
          if (online) {
            t += std::max<TimeNs>(from_seconds(s.on_s.sample(rng)), from_millis(1));
          } else {
            const TimeNs down_at = t;
            t += std::max<TimeNs>(from_seconds(s.off_s.sample(rng)), from_millis(1));
            windows.push_back(CrashWindow{id, down_at, t});
          }
          online = !online;
        }
      }
    }
  }

  for (const OutageSpec& o : outages) {
    for (const std::uint32_t id : resolve_target(o.target, roles)) {
      windows.push_back(
          CrashWindow{id, from_seconds(o.down_s), from_seconds(o.up_s)});
    }
  }

  plan.crashes = merge_windows(std::move(windows));

  for (const DegradeSpec& d : degrade) {
    for (const std::uint32_t id : resolve_target(d.target, roles)) {
      plan.degradations.push_back(DegradeWindow{id, from_seconds(d.start_s),
                                                from_seconds(d.end_s), d.factor, d.dir});
    }
  }

  plan.validate();
  return plan;
}

TimeNs ScenarioSpec::latency_floor_ns() const {
  if (latency_jitter_prob < 1.0) return 0;
  const double ms = latency_jitter_ms.floor();
  return ms > 0 ? from_millis(ms) : 0;
}

TimeNs ScenarioSpec::min_host_latency_ns(TimeNs base_latency) const {
  TimeNs lo = base_latency;
  for (const auto& [role, model] : links) {
    lo = std::min(lo, model.latency_floor_ns(base_latency));
  }
  return lo;
}

}  // namespace dfl::sim
