#include "ml/federated.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dfl::ml {

std::vector<Dataset> split_iid(const Dataset& data, std::size_t num_parts, Rng& rng) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<Dataset> parts(num_parts);
  for (auto& p : parts) {
    p.num_features = data.num_features;
    p.num_classes = data.num_classes;
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    parts[i % num_parts].examples.push_back(data.examples[order[i]]);
  }
  return parts;
}

std::vector<Dataset> split_label_skew(const Dataset& data, std::size_t num_parts, double alpha,
                                      Rng& rng) {
  if (num_parts == 0) throw std::invalid_argument("split_label_skew: zero parts");
  const auto num_classes = static_cast<std::size_t>(data.num_classes);
  // Per-shard class preference: sample gamma-like weights (sum of `alpha`
  // exponentials approximates the Dirichlet concentration behaviour well
  // enough for workload generation).
  std::vector<std::vector<double>> pref(num_parts, std::vector<double>(num_classes));
  for (auto& shard_pref : pref) {
    double sum = 0;
    for (double& w : shard_pref) {
      // Gamma(alpha, 1) via sum of exponentials for integer part + jitter.
      double g = 0;
      const int whole = static_cast<int>(alpha);
      for (int k = 0; k < whole; ++k) g += rng.exponential(1.0);
      g += (alpha - whole) * rng.exponential(1.0);
      g = std::max(g, 1e-9);
      w = g;
      sum += g;
    }
    for (double& w : shard_pref) w /= sum;
  }

  std::vector<Dataset> parts(num_parts);
  for (auto& p : parts) {
    p.num_features = data.num_features;
    p.num_classes = data.num_classes;
  }
  for (const Example& ex : data.examples) {
    // Choose the shard proportionally to its preference for this label.
    const auto label = static_cast<std::size_t>(ex.label);
    double total = 0;
    for (std::size_t s = 0; s < num_parts; ++s) total += pref[s][label];
    double r = rng.uniform01() * total;
    std::size_t chosen = num_parts - 1;
    for (std::size_t s = 0; s < num_parts; ++s) {
      r -= pref[s][label];
      if (r <= 0) {
        chosen = s;
        break;
      }
    }
    parts[chosen].examples.push_back(ex);
  }
  return parts;
}

void train_sgd(Model& model, const Dataset& data, const SgdConfig& config, Rng& rng) {
  for (int r = 0; r < config.rounds; ++r) {
    const auto batch = draw_batch(data.size(), config.batch_size, rng);
    model.apply_gradient(model.gradient(data, batch), config.learning_rate);
  }
}

std::vector<std::size_t> draw_batch(std::size_t dataset_size, std::size_t batch_size, Rng& rng) {
  if (batch_size == 0 || batch_size >= dataset_size) return {};
  std::vector<std::size_t> idx;
  idx.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) idx.push_back(rng.uniform(dataset_size));
  return idx;
}

std::vector<double> weighted_average(const std::vector<std::vector<double>>& grads,
                                     const std::vector<double>& weights) {
  if (grads.empty()) return {};
  if (grads.size() != weights.size()) {
    throw std::invalid_argument("weighted_average: size mismatch");
  }
  std::vector<double> out(grads.front().size(), 0.0);
  double total_w = 0;
  for (std::size_t i = 0; i < grads.size(); ++i) {
    if (grads[i].size() != out.size()) {
      throw std::invalid_argument("weighted_average: inconsistent gradient sizes");
    }
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += weights[i] * grads[i][j];
    total_w += weights[i];
  }
  if (total_w <= 0) throw std::invalid_argument("weighted_average: nonpositive total weight");
  for (double& v : out) v /= total_w;
  return out;
}

}  // namespace dfl::ml
