#include "ml/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dfl::ml {

namespace {

// Iterates either the whole dataset or just the batch indices.
template <typename Fn>
void for_each_example(const Dataset& data, const std::vector<std::size_t>& batch, Fn&& fn) {
  if (batch.empty()) {
    for (const Example& ex : data.examples) fn(ex);
  } else {
    for (const std::size_t i : batch) fn(data.examples.at(i));
  }
}

std::size_t effective_count(const Dataset& data, const std::vector<std::size_t>& batch) {
  return batch.empty() ? data.size() : batch.size();
}

}  // namespace

std::vector<double> softmax(std::vector<double> logits) {
  const double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0;
  for (double& v : logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : logits) v /= sum;
  return logits;
}

double Model::accuracy(const Dataset& data) const {
  if (data.examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Example& ex : data.examples) {
    if (predict(ex.x) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void Model::apply_gradient(const std::vector<double>& grad, double lr) {
  std::vector<double> p = params();
  if (grad.size() != p.size()) {
    throw std::invalid_argument("apply_gradient: size mismatch");
  }
  for (std::size_t i = 0; i < p.size(); ++i) p[i] -= lr * grad[i];
  set_params(std::move(p));
}

// ---------------------------------------------------------------------------
// LogisticRegression

LogisticRegression::LogisticRegression(std::size_t num_features, int num_classes, Rng& rng)
    : f_(num_features), c_(num_classes) {
  params_.resize(static_cast<std::size_t>(c_) * f_ + static_cast<std::size_t>(c_));
  const double scale = 1.0 / std::sqrt(static_cast<double>(f_));
  for (std::size_t i = 0; i < static_cast<std::size_t>(c_) * f_; ++i) {
    params_[i] = rng.normal(0.0, scale);
  }
}

void LogisticRegression::set_params(std::vector<double> p) {
  if (p.size() != params_.size()) {
    throw std::invalid_argument("LogisticRegression::set_params: size mismatch");
  }
  params_ = std::move(p);
}

std::vector<double> LogisticRegression::logits(const std::vector<double>& x) const {
  std::vector<double> out(static_cast<std::size_t>(c_));
  for (int k = 0; k < c_; ++k) {
    double z = params_[static_cast<std::size_t>(c_) * f_ + static_cast<std::size_t>(k)];  // bias
    const std::size_t row = static_cast<std::size_t>(k) * f_;
    for (std::size_t j = 0; j < f_; ++j) z += params_[row + j] * x[j];
    out[static_cast<std::size_t>(k)] = z;
  }
  return out;
}

double LogisticRegression::loss(const Dataset& data) const {
  if (data.examples.empty()) return 0.0;
  double total = 0;
  for (const Example& ex : data.examples) {
    const auto p = softmax(logits(ex.x));
    total += -std::log(std::max(p[static_cast<std::size_t>(ex.label)], 1e-15));
  }
  return total / static_cast<double>(data.size());
}

std::vector<double> LogisticRegression::gradient(const Dataset& data,
                                                 const std::vector<std::size_t>& batch) const {
  std::vector<double> grad(params_.size(), 0.0);
  const std::size_t n = effective_count(data, batch);
  if (n == 0) return grad;
  for_each_example(data, batch, [&](const Example& ex) {
    auto p = softmax(logits(ex.x));
    p[static_cast<std::size_t>(ex.label)] -= 1.0;  // dL/dz
    for (int k = 0; k < c_; ++k) {
      const double d = p[static_cast<std::size_t>(k)];
      const std::size_t row = static_cast<std::size_t>(k) * f_;
      for (std::size_t j = 0; j < f_; ++j) grad[row + j] += d * ex.x[j];
      grad[static_cast<std::size_t>(c_) * f_ + static_cast<std::size_t>(k)] += d;
    }
  });
  for (double& g : grad) g /= static_cast<double>(n);
  return grad;
}

int LogisticRegression::predict(const std::vector<double>& x) const {
  const auto z = logits(x);
  return static_cast<int>(std::max_element(z.begin(), z.end()) - z.begin());
}

std::unique_ptr<Model> LogisticRegression::clone() const {
  return std::make_unique<LogisticRegression>(*this);
}

// ---------------------------------------------------------------------------
// Mlp

Mlp::Mlp(std::size_t num_features, std::size_t hidden, int num_classes, Rng& rng)
    : f_(num_features), h_(hidden), c_(num_classes) {
  params_.resize(h_ * f_ + h_ + static_cast<std::size_t>(c_) * h_ + static_cast<std::size_t>(c_));
  const double s1 = 1.0 / std::sqrt(static_cast<double>(f_));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(h_));
  for (std::size_t i = 0; i < h_ * f_; ++i) params_[i] = rng.normal(0.0, s1);
  for (std::size_t k = 0; k < static_cast<std::size_t>(c_) * h_; ++k) {
    params_[h_ * f_ + h_ + k] = rng.normal(0.0, s2);
  }
}

void Mlp::set_params(std::vector<double> p) {
  if (p.size() != params_.size()) {
    throw std::invalid_argument("Mlp::set_params: size mismatch");
  }
  params_ = std::move(p);
}

Mlp::Forward Mlp::forward(const std::vector<double>& x) const {
  Forward fw;
  fw.hidden.resize(h_);
  for (std::size_t i = 0; i < h_; ++i) {
    double z = params_[b1(i)];
    for (std::size_t j = 0; j < f_; ++j) z += params_[w1(i, j)] * x[j];
    fw.hidden[i] = std::tanh(z);
  }
  std::vector<double> logits(static_cast<std::size_t>(c_));
  for (std::size_t k = 0; k < static_cast<std::size_t>(c_); ++k) {
    double z = params_[b2(k)];
    for (std::size_t i = 0; i < h_; ++i) z += params_[w2(k, i)] * fw.hidden[i];
    logits[k] = z;
  }
  fw.probs = softmax(std::move(logits));
  return fw;
}

double Mlp::loss(const Dataset& data) const {
  if (data.examples.empty()) return 0.0;
  double total = 0;
  for (const Example& ex : data.examples) {
    const auto fw = forward(ex.x);
    total += -std::log(std::max(fw.probs[static_cast<std::size_t>(ex.label)], 1e-15));
  }
  return total / static_cast<double>(data.size());
}

std::vector<double> Mlp::gradient(const Dataset& data,
                                  const std::vector<std::size_t>& batch) const {
  std::vector<double> grad(params_.size(), 0.0);
  const std::size_t n = effective_count(data, batch);
  if (n == 0) return grad;
  for_each_example(data, batch, [&](const Example& ex) {
    const auto fw = forward(ex.x);
    std::vector<double> dz2(fw.probs);
    dz2[static_cast<std::size_t>(ex.label)] -= 1.0;
    // Output layer.
    for (std::size_t k = 0; k < static_cast<std::size_t>(c_); ++k) {
      for (std::size_t i = 0; i < h_; ++i) grad[w2(k, i)] += dz2[k] * fw.hidden[i];
      grad[b2(k)] += dz2[k];
    }
    // Hidden layer: dh = W2^T dz2, dz1 = dh * (1 - h^2).
    for (std::size_t i = 0; i < h_; ++i) {
      double dh = 0;
      for (std::size_t k = 0; k < static_cast<std::size_t>(c_); ++k) {
        dh += params_[w2(k, i)] * dz2[k];
      }
      const double dz1 = dh * (1.0 - fw.hidden[i] * fw.hidden[i]);
      for (std::size_t j = 0; j < f_; ++j) grad[w1(i, j)] += dz1 * ex.x[j];
      grad[b1(i)] += dz1;
    }
  });
  for (double& g : grad) g /= static_cast<double>(n);
  return grad;
}

int Mlp::predict(const std::vector<double>& x) const {
  const auto fw = forward(x);
  return static_cast<int>(std::max_element(fw.probs.begin(), fw.probs.end()) -
                          fw.probs.begin());
}

std::unique_ptr<Model> Mlp::clone() const { return std::make_unique<Mlp>(*this); }

}  // namespace dfl::ml
