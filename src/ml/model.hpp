// Small differentiable models with flat parameter vectors — the FL payload.
// Parameters live in one contiguous std::vector<double> so the IPLS layer
// can slice them into partitions without knowing model structure.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace dfl::ml {

class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual std::size_t num_params() const = 0;
  [[nodiscard]] virtual const std::vector<double>& params() const = 0;
  virtual void set_params(std::vector<double> p) = 0;

  /// Mean cross-entropy loss over the examples.
  [[nodiscard]] virtual double loss(const Dataset& data) const = 0;

  /// Gradient of the mean loss at the current parameters, flat layout
  /// matching params(). `batch` optionally restricts to given indices.
  [[nodiscard]] virtual std::vector<double> gradient(
      const Dataset& data, const std::vector<std::size_t>& batch = {}) const = 0;

  [[nodiscard]] virtual int predict(const std::vector<double>& x) const = 0;

  /// Fraction of correctly classified examples.
  [[nodiscard]] double accuracy(const Dataset& data) const;

  /// In-place SGD update: params -= lr * grad.
  void apply_gradient(const std::vector<double>& grad, double lr);

  /// Deep copy (same architecture and parameters).
  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;
};

/// Multiclass softmax regression: W (C x F) and b (C), C*(F+1) parameters.
class LogisticRegression final : public Model {
 public:
  LogisticRegression(std::size_t num_features, int num_classes, Rng& rng);

  [[nodiscard]] std::size_t num_params() const override { return params_.size(); }
  [[nodiscard]] const std::vector<double>& params() const override { return params_; }
  void set_params(std::vector<double> p) override;
  [[nodiscard]] double loss(const Dataset& data) const override;
  [[nodiscard]] std::vector<double> gradient(
      const Dataset& data, const std::vector<std::size_t>& batch = {}) const override;
  [[nodiscard]] int predict(const std::vector<double>& x) const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  [[nodiscard]] std::vector<double> logits(const std::vector<double>& x) const;

  std::size_t f_;
  int c_;
  std::vector<double> params_;  // [W row-major (c*f), then b (c)]
};

/// One-hidden-layer tanh MLP with softmax output.
class Mlp final : public Model {
 public:
  Mlp(std::size_t num_features, std::size_t hidden, int num_classes, Rng& rng);

  [[nodiscard]] std::size_t num_params() const override { return params_.size(); }
  [[nodiscard]] const std::vector<double>& params() const override { return params_; }
  void set_params(std::vector<double> p) override;
  [[nodiscard]] double loss(const Dataset& data) const override;
  [[nodiscard]] std::vector<double> gradient(
      const Dataset& data, const std::vector<std::size_t>& batch = {}) const override;
  [[nodiscard]] int predict(const std::vector<double>& x) const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

 private:
  struct Forward {
    std::vector<double> hidden;  // tanh activations
    std::vector<double> probs;   // softmax outputs
  };
  [[nodiscard]] Forward forward(const std::vector<double>& x) const;

  // Flat layout: W1 (h*f), b1 (h), W2 (c*h), b2 (c).
  std::size_t f_, h_;
  int c_;
  std::vector<double> params_;
  [[nodiscard]] std::size_t w1(std::size_t i, std::size_t j) const { return i * f_ + j; }
  [[nodiscard]] std::size_t b1(std::size_t i) const { return h_ * f_ + i; }
  [[nodiscard]] std::size_t w2(std::size_t k, std::size_t i) const {
    return h_ * f_ + h_ + k * h_ + i;
  }
  [[nodiscard]] std::size_t b2(std::size_t k) const {
    return h_ * f_ + h_ + static_cast<std::size_t>(c_) * h_ + k;
  }
};

/// Softmax of logits, numerically stabilized.
std::vector<double> softmax(std::vector<double> logits);

}  // namespace dfl::ml
