#include "ml/dataset.hpp"

#include <cmath>
#include <numbers>

namespace dfl::ml {

Dataset make_gaussian_blobs(Rng& rng, std::size_t n, std::size_t num_features, int num_classes,
                            double separation) {
  Dataset ds;
  ds.num_features = num_features;
  ds.num_classes = num_classes;
  ds.examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(num_classes)));
    const double angle = 2.0 * std::numbers::pi * label / num_classes;
    Example ex;
    ex.label = label;
    ex.x.resize(num_features);
    for (std::size_t f = 0; f < num_features; ++f) ex.x[f] = rng.normal(0.0, 1.0);
    if (num_features >= 1) ex.x[0] += separation * std::cos(angle);
    if (num_features >= 2) ex.x[1] += separation * std::sin(angle);
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

Dataset make_two_spirals(Rng& rng, std::size_t n, double noise, double turns) {
  Dataset ds;
  ds.num_features = 2;
  ds.num_classes = 2;
  ds.examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform(2));
    const double t = 0.25 + 2.0 * rng.uniform01();  // radial parameter
    const double angle =
        t * turns * std::numbers::pi + (label == 0 ? 0.0 : std::numbers::pi);
    Example ex;
    ex.label = label;
    ex.x = {t * std::cos(angle) + rng.normal(0.0, noise),
            t * std::sin(angle) + rng.normal(0.0, noise)};
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

Dataset make_linear_teacher(Rng& rng, std::size_t n, std::size_t num_features,
                            double label_noise) {
  std::vector<double> w(num_features);
  for (auto& wi : w) wi = rng.normal(0.0, 1.0);
  Dataset ds;
  ds.num_features = num_features;
  ds.num_classes = 2;
  ds.examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Example ex;
    ex.x.resize(num_features);
    double dot = 0;
    for (std::size_t f = 0; f < num_features; ++f) {
      ex.x[f] = rng.normal(0.0, 1.0);
      dot += ex.x[f] * w[f];
    }
    ex.label = dot >= 0 ? 1 : 0;
    if (label_noise > 0 && rng.uniform01() < label_noise) ex.label = 1 - ex.label;
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

}  // namespace dfl::ml
