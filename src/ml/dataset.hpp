// Synthetic labelled datasets for exercising the FL pipeline end-to-end.
// The paper omits accuracy measurements (aggregation is exact, so
// convergence equals centralized FL); we generate data so that equivalence
// can be demonstrated rather than asserted.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace dfl::ml {

struct Example {
  std::vector<double> x;
  int label = 0;
};

struct Dataset {
  std::vector<Example> examples;
  std::size_t num_features = 0;
  int num_classes = 0;

  [[nodiscard]] std::size_t size() const { return examples.size(); }
};

/// Two Gaussian blobs per class, `num_classes` classes placed on a ring of
/// radius `separation` in the first two dimensions (rest is noise).
Dataset make_gaussian_blobs(Rng& rng, std::size_t n, std::size_t num_features, int num_classes,
                            double separation = 3.0);

/// Two interleaved spirals (2 features, 2 classes) — not linearly separable,
/// exercises the MLP. `turns` controls difficulty (arms wind turns×2π).
Dataset make_two_spirals(Rng& rng, std::size_t n, double noise = 0.1, double turns = 1.0);

/// Linear teacher: labels from a random hyperplane with label noise.
Dataset make_linear_teacher(Rng& rng, std::size_t n, std::size_t num_features,
                            double label_noise = 0.0);

}  // namespace dfl::ml
