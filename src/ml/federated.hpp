// Federated data partitioning and round-level helpers: IID and label-skewed
// (non-IID) splits across trainers, plus centralized SGD used by the
// centralized-FL baseline.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace dfl::ml {

/// Uniformly random assignment of examples to `num_parts` shards.
std::vector<Dataset> split_iid(const Dataset& data, std::size_t num_parts, Rng& rng);

/// Label-skewed split: each shard draws from a Dirichlet-like preference
/// over classes controlled by `alpha` (smaller = more skewed; alpha >= 100
/// approaches IID).
std::vector<Dataset> split_label_skew(const Dataset& data, std::size_t num_parts, double alpha,
                                      Rng& rng);

struct SgdConfig {
  double learning_rate = 0.5;
  std::size_t batch_size = 0;  // 0 = full batch
  int rounds = 50;
};

/// Plain centralized SGD (the convergence-equivalence reference).
void train_sgd(Model& model, const Dataset& data, const SgdConfig& config, Rng& rng);

/// Draws a minibatch of indices (or empty = full batch if batch_size == 0).
std::vector<std::size_t> draw_batch(std::size_t dataset_size, std::size_t batch_size, Rng& rng);

/// sum_i w_i * grads_i / sum_i w_i — the FedSGD aggregation rule the
/// protocol computes in a distributed fashion.
std::vector<double> weighted_average(const std::vector<std::vector<double>>& grads,
                                     const std::vector<double>& weights);

}  // namespace dfl::ml
