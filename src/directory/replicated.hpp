// Replicated directory: N DirectoryService replicas on independent hosts.
// Writes fan out to every live replica; reads go to the first live one
// (failover on the next). This removes the directory single point of
// failure — a lightweight stand-in for the blockchain-based directory
// Section VI points at [24] — at the cost of write amplification, which
// is measurable through the per-replica stats.
//
// Consistency model: each writer's announcements reach the replicas in
// the same order (the writer awaits each replica in turn), so any replica
// a reader fails over to is at most "a write in flight" behind — safe for
// this protocol, where readers poll until the row appears anyway.
#pragma once

#include <memory>
#include <vector>

#include "directory/directory.hpp"

namespace dfl::directory {

class ReplicatedDirectory final : public Directory {
 public:
  /// `hosts` become the replica endpoints (one DirectoryService each).
  ReplicatedDirectory(sim::Network& net, const std::vector<sim::Host*>& hosts,
                      ipfs::Swarm& swarm, DirectoryConfig config,
                      const crypto::PedersenKey* key = nullptr,
                      const UpdateVerifier* verifier = nullptr);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] DirectoryService& replica(std::size_t i) { return *replicas_.at(i); }

  void set_assignment(std::uint32_t partition_id, std::uint32_t aggregator_id,
                      std::uint32_t trainer_id) override;

  [[nodiscard]] sim::Task<bool> announce(
      sim::Host& caller, Addr addr, ipfs::Cid cid,
      std::optional<crypto::Commitment> commitment = {}) override;

  [[nodiscard]] sim::Task<bool> announce_batch(sim::Host& caller,
                                               std::vector<BatchItem> items) override;

  [[nodiscard]] sim::Task<std::vector<Entry>> poll(sim::Host& caller,
                                                   std::uint32_t partition_id,
                                                   std::uint32_t iter,
                                                   EntryType type) override;

  [[nodiscard]] sim::Task<std::optional<ipfs::Cid>> lookup(sim::Host& caller,
                                                           Addr addr) override;

  [[nodiscard]] sim::Task<crypto::Commitment> partition_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t iter) override;

  [[nodiscard]] sim::Task<crypto::Commitment> aggregator_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t aggregator_id,
      std::uint32_t iter) override;

  [[nodiscard]] sim::Task<std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
  gradient_commitments(sim::Host& caller, std::uint32_t partition_id,
                       std::uint32_t iter) override;

  [[nodiscard]] std::vector<Entry> rows(std::uint32_t partition_id, std::uint32_t iter,
                                        EntryType type) const override;
  [[nodiscard]] std::optional<ipfs::Cid> find(const Addr& addr) const override;

  void gc_before(std::uint32_t iter) override;

  /// Stats of the first live replica (aggregate accessors are on replica(i)).
  [[nodiscard]] const DirectoryStats& stats() const override;
  void reset_stats() override;

 private:
  /// Index of the first replica whose host is up; throws if none.
  [[nodiscard]] std::size_t first_live() const;

  std::vector<std::unique_ptr<DirectoryService>> replicas_;
  std::vector<sim::Host*> hosts_;
};

}  // namespace dfl::directory
