#include "directory/replicated.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace dfl::directory {

ReplicatedDirectory::ReplicatedDirectory(sim::Network& net,
                                         const std::vector<sim::Host*>& hosts,
                                         ipfs::Swarm& swarm, DirectoryConfig config,
                                         const crypto::PedersenKey* key,
                                         const UpdateVerifier* verifier)
    : hosts_(hosts) {
  if (hosts.empty()) {
    throw std::invalid_argument("ReplicatedDirectory: need at least one replica host");
  }
  for (sim::Host* h : hosts) {
    replicas_.push_back(
        std::make_unique<DirectoryService>(net, *h, swarm, config, key, verifier));
  }
}

std::size_t ReplicatedDirectory::first_live() const {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->is_up()) return i;
  }
  throw std::runtime_error("ReplicatedDirectory: every replica is down");
}

void ReplicatedDirectory::set_assignment(std::uint32_t partition_id,
                                         std::uint32_t aggregator_id,
                                         std::uint32_t trainer_id) {
  for (auto& r : replicas_) r->set_assignment(partition_id, aggregator_id, trainer_id);
}

sim::Task<bool> ReplicatedDirectory::announce(sim::Host& caller, Addr addr, ipfs::Cid cid,
                                              std::optional<crypto::Commitment> commitment) {
  // Write to every live replica; the caller's result is the first live
  // replica's verdict (replicas are deterministic, so verdicts agree).
  bool result = false;
  bool have_result = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!hosts_[i]->is_up()) continue;
    bool ok = false;
    bool reachable = true;
    try {
      ok = co_await replicas_[i]->announce(caller, addr, cid, commitment);
    } catch (const std::exception& e) {
      reachable = false;
      DFL_WARN("replicated-dir") << "announce to replica " << i << " failed: " << e.what();
    }
    if (reachable && !have_result) {
      result = ok;
      have_result = true;
    }
  }
  if (!have_result) {
    throw std::runtime_error("ReplicatedDirectory: announce reached no replica");
  }
  co_return result;
}

sim::Task<bool> ReplicatedDirectory::announce_batch(sim::Host& caller,
                                                    std::vector<BatchItem> items) {
  bool result = false;
  bool have_result = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!hosts_[i]->is_up()) continue;
    bool ok = false;
    bool reachable = true;
    try {
      ok = co_await replicas_[i]->announce_batch(caller, items);
    } catch (const std::exception& e) {
      reachable = false;
      DFL_WARN("replicated-dir") << "batch announce to replica " << i
                                 << " failed: " << e.what();
    }
    if (reachable && !have_result) {
      result = ok;
      have_result = true;
    }
  }
  if (!have_result) {
    throw std::runtime_error("ReplicatedDirectory: batch announce reached no replica");
  }
  co_return result;
}

sim::Task<std::vector<Entry>> ReplicatedDirectory::poll(sim::Host& caller,
                                                        std::uint32_t partition_id,
                                                        std::uint32_t iter, EntryType type) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!hosts_[i]->is_up()) continue;
    bool reachable = true;
    std::vector<Entry> result;
    try {
      result = co_await replicas_[i]->poll(caller, partition_id, iter, type);
    } catch (const std::exception&) {
      reachable = false;
    }
    if (reachable) co_return result;
  }
  throw std::runtime_error("ReplicatedDirectory: poll reached no replica");
}

sim::Task<std::optional<ipfs::Cid>> ReplicatedDirectory::lookup(sim::Host& caller, Addr addr) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!hosts_[i]->is_up()) continue;
    bool reachable = true;
    std::optional<ipfs::Cid> result;
    try {
      result = co_await replicas_[i]->lookup(caller, addr);
    } catch (const std::exception&) {
      reachable = false;
    }
    if (reachable) co_return result;
  }
  throw std::runtime_error("ReplicatedDirectory: lookup reached no replica");
}

sim::Task<crypto::Commitment> ReplicatedDirectory::partition_commitment(
    sim::Host& caller, std::uint32_t partition_id, std::uint32_t iter) {
  co_return co_await replicas_[first_live()]->partition_commitment(caller, partition_id, iter);
}

sim::Task<crypto::Commitment> ReplicatedDirectory::aggregator_commitment(
    sim::Host& caller, std::uint32_t partition_id, std::uint32_t aggregator_id,
    std::uint32_t iter) {
  co_return co_await replicas_[first_live()]->aggregator_commitment(caller, partition_id,
                                                                    aggregator_id, iter);
}

sim::Task<std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
ReplicatedDirectory::gradient_commitments(sim::Host& caller, std::uint32_t partition_id,
                                          std::uint32_t iter) {
  co_return co_await replicas_[first_live()]->gradient_commitments(caller, partition_id, iter);
}

std::vector<Entry> ReplicatedDirectory::rows(std::uint32_t partition_id, std::uint32_t iter,
                                             EntryType type) const {
  return replicas_[first_live()]->rows(partition_id, iter, type);
}

std::optional<ipfs::Cid> ReplicatedDirectory::find(const Addr& addr) const {
  return replicas_[first_live()]->find(addr);
}

void ReplicatedDirectory::gc_before(std::uint32_t iter) {
  for (auto& r : replicas_) r->gc_before(iter);
}

const DirectoryStats& ReplicatedDirectory::stats() const {
  return replicas_[first_live()]->stats();
}

void ReplicatedDirectory::reset_stats() {
  for (auto& r : replicas_) r->reset_stats();
}

}  // namespace dfl::directory
