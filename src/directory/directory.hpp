// The directory service (Section III-C): maps addressing tuples
// (uploader, partition, iteration, type) to IPFS CIDs, and — in verifiable
// mode (Section IV) — accumulates Pedersen commitments per partition and
// per aggregator, and verifies registered global updates against them.
//
// It is run by the (trusted) bootstrapper on its own host; every operation
// is an RPC paying small-message network costs, so the directory's load
// (ablation A4 in DESIGN.md) is measurable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "crypto/pedersen.hpp"
#include "directory/iface.hpp"
#include "ipfs/cid.hpp"
#include "ipfs/swarm.hpp"
#include "sim/net.hpp"

namespace dfl::directory {

/// Application hook that checks a global-update payload against the
/// accumulated commitment. Supplied by the FL layer (the directory does
/// not know the payload encoding).
class UpdateVerifier {
 public:
  virtual ~UpdateVerifier() = default;
  [[nodiscard]] virtual bool verify(BytesView payload,
                                    const crypto::Commitment& accumulated) const = 0;
};

struct DirectoryConfig {
  bool verifiable = false;  // Section IV modifications on/off
  /// Wire size estimates for control messages.
  std::uint64_t addr_bytes = 16;
  std::uint64_t cid_bytes = 32;
  std::uint64_t commitment_bytes = 33;
};

class DirectoryService final : public Directory {
 public:
  /// `key` may be null when verifiable mode is off.
  DirectoryService(sim::Network& net, sim::Host& host, ipfs::Swarm& swarm,
                   DirectoryConfig config, const crypto::PedersenKey* key = nullptr,
                   const UpdateVerifier* verifier = nullptr);

  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] const DirectoryStats& stats() const override { return stats_; }
  void reset_stats() override { stats_ = DirectoryStats{}; }

  /// Declares that trainer `trainer_id`'s partition-`partition_id` gradients
  /// are handled by aggregator `aggregator_id` (maintains the T_ij sets, so
  /// per-aggregator accumulated commitments can be formed).
  void set_assignment(std::uint32_t partition_id, std::uint32_t aggregator_id,
                      std::uint32_t trainer_id) override;

  /// Registers an uploaded object. For gradient entries in verifiable mode
  /// the commitment is mandatory and is folded into the per-partition and
  /// per-aggregator accumulations. For global updates in verifiable mode
  /// the directory fetches the payload from IPFS, verifies it opens the
  /// accumulated partition commitment, and REJECTS the registration (the
  /// row stays absent) if verification fails.
  [[nodiscard]] sim::Task<bool> announce(
      sim::Host& caller, Addr addr, ipfs::Cid cid,
      std::optional<crypto::Commitment> commitment = {}) override;

  /// Registers many gradient entries in one network message — the
  /// Section VI load reduction. Only kGradient entries may be batched
  /// (update registrations need individual verification). Returns false
  /// if any item was rejected.
  [[nodiscard]] sim::Task<bool> announce_batch(sim::Host& caller,
                                               std::vector<BatchItem> items) override;

  /// Returns all rows of the given (partition, iter, type). Callers filter
  /// out uploaders they have already fetched (Algorithm 1's poll loops).
  [[nodiscard]] sim::Task<std::vector<Entry>> poll(sim::Host& caller,
                                                   std::uint32_t partition_id,
                                                   std::uint32_t iter,
                                                   EntryType type) override;

  /// Single-row lookup (trainers waiting for the global update).
  [[nodiscard]] sim::Task<std::optional<ipfs::Cid>> lookup(sim::Host& caller,
                                                           Addr addr) override;

  /// Accumulated commitment over all gradients of (partition, iter).
  [[nodiscard]] sim::Task<crypto::Commitment> partition_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t iter) override;

  /// Accumulated commitment over the gradients assigned to one aggregator.
  [[nodiscard]] sim::Task<crypto::Commitment> aggregator_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t aggregator_id,
      std::uint32_t iter) override;

  /// Individual gradient commitments of (partition, iter) — used by
  /// aggregators to check merge-and-download results against the product
  /// of the commitments the merged blocks claim to represent.
  [[nodiscard]] sim::Task<std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
  gradient_commitments(sim::Host& caller, std::uint32_t partition_id,
                       std::uint32_t iter) override;

  /// Local (no-network) views, for tests and for the bootstrapper itself.
  [[nodiscard]] std::vector<Entry> rows(std::uint32_t partition_id, std::uint32_t iter,
                                        EntryType type) const override;
  [[nodiscard]] std::optional<ipfs::Cid> find(const Addr& addr) const override;

  /// Drops all rows of iterations older than `iter` (bounded state).
  void gc_before(std::uint32_t iter) override;

 private:
  struct RoundKey {
    std::uint32_t partition_id;
    std::uint32_t iter;
    EntryType type;
    friend auto operator<=>(const RoundKey&, const RoundKey&) = default;
  };

  [[nodiscard]] crypto::Commitment fold(const std::optional<crypto::Commitment>& acc,
                                        const crypto::Commitment& c) const;

  /// Registers one gradient entry (no network); false if rejected.
  bool register_gradient(const Addr& addr, const ipfs::Cid& cid,
                         const std::optional<crypto::Commitment>& commitment);
  void upsert_row(const Addr& addr, const ipfs::Cid& cid);

  sim::Network& net_;
  sim::Host& host_;
  ipfs::Swarm& swarm_;
  DirectoryConfig config_;
  const crypto::PedersenKey* key_;
  const UpdateVerifier* verifier_;
  DirectoryStats stats_;

  std::map<RoundKey, std::vector<Entry>> rows_;
  // (partition, iter) -> accumulated commitment over all trainer gradients.
  std::map<std::pair<std::uint32_t, std::uint32_t>, crypto::Commitment> partition_acc_;
  // (partition, aggregator, iter) -> accumulated commitment over T_ij.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, crypto::Commitment>
      aggregator_acc_;
  // (partition, iter) -> per-trainer gradient commitments, announce order.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
      gradient_commitments_;
  // partition -> trainer -> aggregator (the T_ij assignment).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> assignment_;
};

}  // namespace dfl::directory
