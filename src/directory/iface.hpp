// Abstract directory interface. The paper assumes the (trusted)
// bootstrapper runs the directory, but Section VI points at distributed
// alternatives (a blockchain-based directory [24]); protocol actors
// therefore program against this interface so the backend can be swapped:
// DirectoryService (single host) or ReplicatedDirectory (no single point
// of failure).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/pedersen.hpp"
#include "ipfs/cid.hpp"
#include "sim/net.hpp"
#include "sim/task.hpp"

namespace dfl::directory {

enum class EntryType : std::uint8_t { kGradient = 0, kPartialUpdate = 1, kGlobalUpdate = 2 };

/// Addressing meta-information for a stored object.
struct Addr {
  std::uint32_t uploader_id = 0;
  std::uint32_t partition_id = 0;
  std::uint32_t iter = 0;
  EntryType type = EntryType::kGradient;

  friend auto operator<=>(const Addr&, const Addr&) = default;
};

/// One directory row returned by polls.
struct Entry {
  std::uint32_t uploader_id = 0;
  ipfs::Cid cid;
};

/// One entry of a batched gradient announcement.
struct BatchItem {
  Addr addr;
  ipfs::Cid cid;
  std::optional<crypto::Commitment> commitment;
};

/// Aggregate load counters (Section VI asks how to minimize these).
struct DirectoryStats {
  std::uint64_t announcements = 0;      // registered entries
  std::uint64_t announce_messages = 0;  // network messages carrying them
  std::uint64_t polls = 0;
  std::uint64_t lookups = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t verifications = 0;
  std::uint64_t verifications_failed = 0;
};

class Directory {
 public:
  virtual ~Directory() = default;

  /// Declares trainer->aggregator ownership for a partition (T_ij sets).
  virtual void set_assignment(std::uint32_t partition_id, std::uint32_t aggregator_id,
                              std::uint32_t trainer_id) = 0;

  /// Registers an uploaded object (gradient / partial / global update).
  [[nodiscard]] virtual sim::Task<bool> announce(
      sim::Host& caller, Addr addr, ipfs::Cid cid,
      std::optional<crypto::Commitment> commitment = {}) = 0;

  /// Registers many gradient entries in one message (Section VI).
  [[nodiscard]] virtual sim::Task<bool> announce_batch(sim::Host& caller,
                                                       std::vector<BatchItem> items) = 0;

  [[nodiscard]] virtual sim::Task<std::vector<Entry>> poll(sim::Host& caller,
                                                           std::uint32_t partition_id,
                                                           std::uint32_t iter,
                                                           EntryType type) = 0;

  [[nodiscard]] virtual sim::Task<std::optional<ipfs::Cid>> lookup(sim::Host& caller,
                                                                   Addr addr) = 0;

  [[nodiscard]] virtual sim::Task<crypto::Commitment> partition_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t iter) = 0;

  [[nodiscard]] virtual sim::Task<crypto::Commitment> aggregator_commitment(
      sim::Host& caller, std::uint32_t partition_id, std::uint32_t aggregator_id,
      std::uint32_t iter) = 0;

  [[nodiscard]] virtual sim::Task<std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
  gradient_commitments(sim::Host& caller, std::uint32_t partition_id, std::uint32_t iter) = 0;

  /// Local (no-network) views, for tests and the bootstrapper itself.
  [[nodiscard]] virtual std::vector<Entry> rows(std::uint32_t partition_id, std::uint32_t iter,
                                                EntryType type) const = 0;
  [[nodiscard]] virtual std::optional<ipfs::Cid> find(const Addr& addr) const = 0;

  virtual void gc_before(std::uint32_t iter) = 0;

  [[nodiscard]] virtual const DirectoryStats& stats() const = 0;
  virtual void reset_stats() = 0;
};

}  // namespace dfl::directory
