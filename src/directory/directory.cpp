#include "directory/directory.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace dfl::directory {

DirectoryService::DirectoryService(sim::Network& net, sim::Host& host, ipfs::Swarm& swarm,
                                   DirectoryConfig config, const crypto::PedersenKey* key,
                                   const UpdateVerifier* verifier)
    : net_(net), host_(host), swarm_(swarm), config_(config), key_(key), verifier_(verifier) {
  if (config_.verifiable && (key_ == nullptr || verifier_ == nullptr)) {
    throw std::invalid_argument(
        "DirectoryService: verifiable mode requires a commitment key and verifier");
  }
}

void DirectoryService::set_assignment(std::uint32_t partition_id, std::uint32_t aggregator_id,
                                      std::uint32_t trainer_id) {
  assignment_[{partition_id, trainer_id}] = aggregator_id;
}

crypto::Commitment DirectoryService::fold(const std::optional<crypto::Commitment>& acc,
                                          const crypto::Commitment& c) const {
  return acc ? key_->add(*acc, c) : c;
}

bool DirectoryService::register_gradient(const Addr& addr, const ipfs::Cid& cid,
                                         const std::optional<crypto::Commitment>& commitment) {
  if (config_.verifiable) {
    if (!commitment) {
      DFL_WARN("directory") << "gradient announce without commitment rejected (trainer "
                            << addr.uploader_id << ")";
      return false;
    }
    const auto pkey = std::make_pair(addr.partition_id, addr.iter);
    auto pit = partition_acc_.find(pkey);
    partition_acc_.insert_or_assign(
        pkey, fold(pit == partition_acc_.end() ? std::nullopt
                                               : std::optional<crypto::Commitment>(pit->second),
                   *commitment));
    gradient_commitments_[{addr.partition_id, addr.iter}].emplace_back(addr.uploader_id,
                                                                       *commitment);
    const auto ait = assignment_.find({addr.partition_id, addr.uploader_id});
    if (ait != assignment_.end()) {
      const auto akey = std::make_tuple(addr.partition_id, ait->second, addr.iter);
      auto cur = aggregator_acc_.find(akey);
      aggregator_acc_.insert_or_assign(
          akey,
          fold(cur == aggregator_acc_.end() ? std::nullopt
                                            : std::optional<crypto::Commitment>(cur->second),
               *commitment));
    }
  }
  upsert_row(addr, cid);
  return true;
}

void DirectoryService::upsert_row(const Addr& addr, const ipfs::Cid& cid) {
  auto& list = rows_[RoundKey{addr.partition_id, addr.iter, addr.type}];
  for (auto& e : list) {
    if (e.uploader_id == addr.uploader_id) {
      e.cid = cid;
      return;
    }
  }
  list.push_back(Entry{addr.uploader_id, cid});
}

sim::Task<bool> DirectoryService::announce(sim::Host& caller, Addr addr, ipfs::Cid cid,
                                           std::optional<crypto::Commitment> commitment) {
  const obs::SpanId parent = obs::take_ambient_span();
  std::uint64_t msg = config_.addr_bytes + config_.cid_bytes;
  if (commitment) msg += config_.commitment_bytes;
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, msg);
  ++stats_.announcements;
  ++stats_.announce_messages;
  stats_.bytes_in += msg;

  if (addr.type == EntryType::kGradient) {
    const bool ok = register_gradient(addr, cid, commitment);
    obs::set_ambient_span(parent);
    co_await net_.transfer(host_, caller, 1);
    co_return ok;
  }

  if (config_.verifiable) {
    if (addr.type == EntryType::kGlobalUpdate) {
      // Fetch the claimed update from storage and verify it opens the
      // accumulated commitment for this (partition, iter).
      ++stats_.verifications;
      const auto pkey = std::make_pair(addr.partition_id, addr.iter);
      const auto accit = partition_acc_.find(pkey);
      bool ok = accit != partition_acc_.end();
      if (ok) {
        try {
          obs::set_ambient_span(parent);
          const Block payload = co_await swarm_.fetch(host_, cid);
          ok = verifier_->verify(payload, accit->second);
        } catch (const std::exception& e) {
          DFL_WARN("directory") << "global update fetch failed: " << e.what();
          ok = false;
        }
      }
      if (!ok) {
        ++stats_.verifications_failed;
        DFL_WARN("directory") << "REJECTED global update for partition " << addr.partition_id
                              << " iter " << addr.iter << " from aggregator "
                              << addr.uploader_id;
        obs::set_ambient_span(parent);
        co_await net_.transfer(host_, caller, 1);
        co_return false;
      }
    }
  }

  upsert_row(addr, cid);
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, 1);  // ack
  co_return true;
}

sim::Task<bool> DirectoryService::announce_batch(sim::Host& caller,
                                                 std::vector<BatchItem> items) {
  const obs::SpanId parent = obs::take_ambient_span();
  std::uint64_t msg = 4;  // count prefix
  for (const BatchItem& item : items) {
    if (item.addr.type != EntryType::kGradient) {
      throw std::invalid_argument("announce_batch: only gradient entries may be batched");
    }
    msg += config_.addr_bytes + config_.cid_bytes;
    if (item.commitment) msg += config_.commitment_bytes;
  }
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, msg);
  stats_.announcements += items.size();
  ++stats_.announce_messages;
  stats_.bytes_in += msg;

  bool all_ok = true;
  for (const BatchItem& item : items) {
    all_ok = register_gradient(item.addr, item.cid, item.commitment) && all_ok;
  }
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, 1);  // ack
  co_return all_ok;
}

sim::Task<std::vector<Entry>> DirectoryService::poll(sim::Host& caller,
                                                     std::uint32_t partition_id,
                                                     std::uint32_t iter, EntryType type) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, config_.addr_bytes);
  ++stats_.polls;
  stats_.bytes_in += config_.addr_bytes;
  const auto result = rows(partition_id, iter, type);
  const std::uint64_t reply =
      result.size() * (config_.cid_bytes + 4) + 4;  // uploader ids + count
  stats_.bytes_out += reply;
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, reply);
  co_return result;
}

sim::Task<std::optional<ipfs::Cid>> DirectoryService::lookup(sim::Host& caller, Addr addr) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, config_.addr_bytes);
  ++stats_.lookups;
  stats_.bytes_in += config_.addr_bytes;
  const auto result = find(addr);
  const std::uint64_t reply = result ? config_.cid_bytes : 1;
  stats_.bytes_out += reply;
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, reply);
  co_return result;
}

sim::Task<crypto::Commitment> DirectoryService::partition_commitment(sim::Host& caller,
                                                                     std::uint32_t partition_id,
                                                                     std::uint32_t iter) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, config_.addr_bytes);
  ++stats_.lookups;
  const auto it = partition_acc_.find({partition_id, iter});
  if (it == partition_acc_.end()) {
    throw std::runtime_error("directory: no accumulated commitment for partition");
  }
  stats_.bytes_out += config_.commitment_bytes;
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, config_.commitment_bytes);
  co_return it->second;
}

sim::Task<crypto::Commitment> DirectoryService::aggregator_commitment(
    sim::Host& caller, std::uint32_t partition_id, std::uint32_t aggregator_id,
    std::uint32_t iter) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, config_.addr_bytes);
  ++stats_.lookups;
  const auto it = aggregator_acc_.find(std::make_tuple(partition_id, aggregator_id, iter));
  if (it == aggregator_acc_.end()) {
    throw std::runtime_error("directory: no accumulated commitment for aggregator");
  }
  stats_.bytes_out += config_.commitment_bytes;
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, config_.commitment_bytes);
  co_return it->second;
}

sim::Task<std::vector<std::pair<std::uint32_t, crypto::Commitment>>>
DirectoryService::gradient_commitments(sim::Host& caller, std::uint32_t partition_id,
                                       std::uint32_t iter) {
  const obs::SpanId parent = obs::take_ambient_span();
  obs::set_ambient_span(parent);
  co_await net_.transfer(caller, host_, config_.addr_bytes);
  ++stats_.lookups;
  std::vector<std::pair<std::uint32_t, crypto::Commitment>> result;
  const auto it = gradient_commitments_.find({partition_id, iter});
  if (it != gradient_commitments_.end()) result = it->second;
  const std::uint64_t reply = result.size() * (config_.commitment_bytes + 4) + 4;
  stats_.bytes_out += reply;
  obs::set_ambient_span(parent);
  co_await net_.transfer(host_, caller, reply);
  co_return result;
}

std::vector<Entry> DirectoryService::rows(std::uint32_t partition_id, std::uint32_t iter,
                                          EntryType type) const {
  const auto it = rows_.find(RoundKey{partition_id, iter, type});
  if (it == rows_.end()) return {};
  return it->second;
}

std::optional<ipfs::Cid> DirectoryService::find(const Addr& addr) const {
  const auto it = rows_.find(RoundKey{addr.partition_id, addr.iter, addr.type});
  if (it == rows_.end()) return std::nullopt;
  for (const auto& e : it->second) {
    if (e.uploader_id == addr.uploader_id) return e.cid;
  }
  return std::nullopt;
}

void DirectoryService::gc_before(std::uint32_t iter) {
  for (auto it = rows_.begin(); it != rows_.end();) {
    it = it->first.iter < iter ? rows_.erase(it) : std::next(it);
  }
  for (auto it = partition_acc_.begin(); it != partition_acc_.end();) {
    it = it->first.second < iter ? partition_acc_.erase(it) : std::next(it);
  }
  for (auto it = aggregator_acc_.begin(); it != aggregator_acc_.end();) {
    it = std::get<2>(it->first) < iter ? aggregator_acc_.erase(it) : std::next(it);
  }
  for (auto it = gradient_commitments_.begin(); it != gradient_commitments_.end();) {
    it = it->first.second < iter ? gradient_commitments_.erase(it) : std::next(it);
  }
}

}  // namespace dfl::directory
