// Streaming time-series telemetry: grows the registry from "one snapshot
// at the end" into plottable timelines.
//
// A TimeSeriesWriter appends one JSON line per sample to a stream:
//
//   {"t_ms":4000,"sample":3,
//    "counters":{"dfl.net.bytes_total":123, ...},      absolute values
//    "deltas":{"dfl.net.bytes_total":40, ...},         change vs previous
//    "gauges":{"dfl.sim.shards":2.0, ...},
//    "histograms":{"dfl.round.duration_ms":{"count":4,"p50":...}, ...}}
//
// Sampling is driven on the *simulated* clock by the deployment driver
// (`--metrics-period`): the runner advances the engine in segments and
// samples at each period boundary after every event before it has run and
// none at/after it has — so enabling the sampler never perturbs event
// order, simulated time, or results (bit-identical aggregates either way).
//
// `write_prometheus` renders a snapshot in the Prometheus text exposition
// format (counters, gauges, histograms as summaries with quantile labels)
// for scraping or CI artifacts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace dfl::obs {

class TimeSeriesWriter {
 public:
  /// Samples `reg` (the global registry by default); lines go to `os`,
  /// which must outlive the writer.
  explicit TimeSeriesWriter(std::ostream& os, Registry& reg = Registry::global());

  /// Takes a registry snapshot (running collectors) and appends one JSONL
  /// line stamped at `sim_now_ns`. Counter deltas are vs the previous
  /// sample (first sample: delta == absolute). Must be called at a
  /// quiescent instant, like Registry::snapshot().
  void sample(std::int64_t sim_now_ns);

  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  std::ostream& os_;
  Registry& reg_;
  std::size_t samples_ = 0;
  std::map<std::string, std::uint64_t> prev_counters_;
};

/// Prometheus text exposition (version 0.0.4): '.' in metric names becomes
/// '_', counters get a _total-less TYPE counter line, histograms render as
/// summaries ({quantile="0.5"|"0.9"|"0.99"} plus _sum/_count).
void write_prometheus(std::ostream& os, const MetricsSnapshot& snap);

}  // namespace dfl::obs
