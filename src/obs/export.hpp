// Exporters: Chrome/Perfetto `trace_event` JSON for spans + wire slices,
// and JSONL metrics snapshots.
//
// Track layout in the JSON (see DESIGN.md "observability"):
//  - pid 1 "sim" — simulated-time tracks. Each obs track (one per host,
//    plus the process track) becomes one or more tids: protocol spans
//    overlap arbitrarily in a coroutine world, and Chrome's JSON format
//    requires synchronous slices on a tid to nest, so each track is split
//    greedily into the minimum number of *lanes* where every slice either
//    nests or is disjoint. Wire slices (network transfers) get their own
//    "<host> wire" lanes under the sending host.
//  - pid 2 "wall" — wall-clock tracks, one per OS thread that recorded
//    wall spans (crypto engine work).
//  - Flow arrows (`ph:"s"/"f"`) connect each wire slice to the protocol
//    span that issued it, keyed by transfer id.
//
// The exporter is layering-clean: it knows obs types only. Converting
// sim::TransferRecord to WireSlice lives in core (trace_export.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfl::obs {

/// One network transfer to draw on a wire lane and link to its parent
/// protocol span via a flow arrow.
struct WireSlice {
  std::uint64_t id = 0;        // transfer id; also the flow id
  SpanId parent = 0;           // issuing protocol span (0 = unattributed)
  std::uint32_t track = 0;     // sending host's track
  const char* name = "xfer";   // "chunk_xfer" for DAG-tagged transfers
  std::int64_t issued_ns = 0;  // queued (flow departure point)
  std::int64_t start_ns = 0;   // first byte on the wire
  std::int64_t end_ns = 0;     // delivered
  std::vector<SpanAttr> attrs;
};

/// Writes a complete Chrome trace_event JSON document. Spans still open
/// (end_ns < start_ns) are exported as zero-duration slices. The document
/// carries an "otherData" object with the truncation counters
/// (dropped_spans from the snapshot, dropped_wires from the caller's
/// transfer ring) so validators can refuse truncated traces.
void write_perfetto(std::ostream& os, const Tracer::Snapshot& snap,
                    const std::vector<WireSlice>& wires,
                    std::uint64_t dropped_wires = 0);

/// Writes one JSON object (single line + '\n') with every counter, gauge
/// and histogram in the snapshot; `extra` fields (e.g. {"round", 3})
/// come first. Append one line per round for a JSONL metrics log.
void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snap,
                         const std::vector<std::pair<std::string, std::int64_t>>& extra = {});

/// JSON string escaping (exposed for the other writers/tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dfl::obs
