// Process-wide metrics registry: named counters, gauges, and HDR-style
// log-bucket histograms behind one registration/snapshot API, in the
// Prometheus mold.
//
// Two ways to get numbers in:
//  - Own a metric: `registry.counter("dfl.rpc.retries")` returns a stable
//    reference; bump it from the hot path (relaxed atomic add).
//  - Keep existing counters where they are and register a *collector* —
//    a callback run at snapshot() time that reads whatever stats struct
//    already exists (DataPathStats, crypto::EngineStats, RetryStats
//    aggregates) and publishes gauges/counters into the snapshot. This is
//    how the scattered per-subsystem stats are subsumed without rewriting
//    their hot paths or disturbing the per-round deltas that flow into
//    RoundMetrics.
//
// Counters and gauges are thread-safe (single atomic each). Histograms
// are single-writer (the simulator thread); record() is not atomic.
// snapshot() must not race with histogram writers — call it while the
// simulation is quiescent, like Tracer::snapshot().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace dfl::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// For mirroring an externally maintained monotonic total.
  void set(std::uint64_t value) { v_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double value) { v_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Thin wrapper over dfl::LogHistogram; single-writer, see file comment.
class Histogram {
 public:
  explicit Histogram(int sub_bucket_bits = 3) : h_(sub_bucket_bits) {}
  void record(std::uint64_t value, std::uint64_t count = 1) { h_.record(value, count); }
  void reset() { h_.reset(); }
  [[nodiscard]] const LogHistogram& data() const { return h_; }

 private:
  LogHistogram h_;
};

struct MetricsSnapshot {
  struct HistView {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };
  // Sorted by name for deterministic iteration/export.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistView>> histograms;

  /// Value lookup helpers (0 / not-found => fallback). For tests.
  [[nodiscard]] std::uint64_t counter_or(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] double gauge_or(const std::string& name, double fallback) const;
};

class Registry {
 public:
  /// Returns the metric with this name, creating it on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, int sub_bucket_bits = 3);

  /// Registers (or replaces) a named collector invoked at snapshot()
  /// time; it may create/update any metrics on the registry it is given.
  void register_collector(const std::string& name, std::function<void(Registry&)> fn);
  void unregister_collector(const std::string& name);

  /// Runs collectors, then returns a sorted copy of every metric.
  [[nodiscard]] MetricsSnapshot snapshot();

  /// Drops all metrics and collectors (tests; references go stale).
  void clear();

  static Registry& global();

 private:
  std::mutex mu_;  // guards the maps; metric objects are stable via unique_ptr
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<void(Registry&)>> collectors_;
};

}  // namespace dfl::obs
