#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace dfl::obs {

namespace detail {

// Per-thread append-only span log. Registered with the tracer once (under
// its mutex) on the thread's first begin(); appends after that are plain
// vector push_backs — no locks, no atomics. Slot order is registration
// order, so the simulator thread (which always traces first) gets slot 0
// and deterministic span ids.
struct ThreadLog {
  std::uint32_t slot = 0;
  std::uint64_t next_index = 0;  // survives clear() so ids never repeat
  std::vector<Span> spans;
};

namespace {
thread_local ThreadLog* t_log = nullptr;

SpanId make_id(std::uint32_t slot, std::uint64_t index) {
  // (slot+1, index+1) so id 0 stays "no span".
  return (static_cast<std::uint64_t>(slot + 1) << 40) | (index + 1);
}
}  // namespace

}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Tracer::Tracer() {
  wall_epoch_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
}

std::int64_t Tracer::wall_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         wall_epoch_;
}

void Tracer::set_enabled(bool on) {
#if !defined(DFL_OBS_DISABLED)
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void set_tracing(bool on) { Tracer::instance().set_enabled(on); }

detail::ThreadLog& Tracer::local_log() {
  if (detail::t_log == nullptr) {
    auto* log = new detail::ThreadLog();  // lives for the process; thread
    std::lock_guard<std::mutex> lk(mu_);  // logs are never deregistered
    log->slot = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(log);
    detail::t_log = log;
  }
  return *detail::t_log;
}

SpanToken Tracer::begin(const char* name, std::uint32_t track, std::int64_t start_ns,
                        SpanId parent, SpanClock clock) {
  if (!enabled()) return {};
  // Process-wide cap: counts are approximate under concurrent wall-span
  // recording (relaxed), exact on the single simulator thread. A dropped
  // span yields an inert token, so end()/attr() on it are no-ops and its
  // children simply dangle (the analysis skips unreachable spans).
  if (recorded_spans_.load(std::memory_order_relaxed) >=
      span_limit_.load(std::memory_order_relaxed)) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  recorded_spans_.fetch_add(1, std::memory_order_relaxed);
  detail::ThreadLog& log = local_log();
  Span s;
  s.id = detail::make_id(log.slot, log.next_index++);
  s.parent = parent;
  s.name = name;
  s.track = track;
  s.clock = clock;
  s.start_ns = start_ns;
  const auto index = static_cast<std::uint32_t>(log.spans.size());
  log.spans.push_back(std::move(s));
  return SpanToken{&log, index, log.spans[index].id};
}

SpanToken Tracer::begin_wall(const char* name, SpanId parent) {
  if (!enabled()) return {};
  detail::ThreadLog& log = local_log();
  const std::uint32_t track = kWallTrackBase + log.slot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (track_names_.find(track) == track_names_.end()) {
      track_names_[track] = "wall-thread-" + std::to_string(log.slot);
    }
  }
  return begin(name, track, wall_now(), parent, SpanClock::kWall);
}

void Tracer::instant(const char* name, std::uint32_t track, std::int64_t ts_ns, SpanId parent,
                     SpanClock clock) {
  SpanToken t = begin(name, track, ts_ns, parent, clock);
  if (!t) return;
  t.log->spans[t.index].end_ns = ts_ns;
  t.log->spans[t.index].instant = true;
}

void Tracer::end(SpanToken t, std::int64_t end_ns) {
  if (!t) return;
  // Tokens from before a clear() point at truncated logs; drop them.
  if (t.index >= t.log->spans.size() || t.log->spans[t.index].id != t.id) return;
  t.log->spans[t.index].end_ns = end_ns;
}

void Tracer::end_wall(SpanToken t) { end(t, wall_now()); }

void Tracer::make_instant(SpanToken t) {
  if (!t) return;
  if (t.index >= t.log->spans.size() || t.log->spans[t.index].id != t.id) return;
  Span& s = t.log->spans[t.index];
  s.end_ns = s.start_ns;
  s.instant = true;
}

void Tracer::attr(SpanToken t, const char* key, std::int64_t value) {
  if (!t) return;
  if (t.index >= t.log->spans.size() || t.log->spans[t.index].id != t.id) return;
  SpanAttr a;
  a.key = key;
  a.num = value;
  a.is_num = true;
  t.log->spans[t.index].attrs.push_back(std::move(a));
}

void Tracer::attr(SpanToken t, const char* key, std::string value) {
  if (!t) return;
  if (t.index >= t.log->spans.size() || t.log->spans[t.index].id != t.id) return;
  SpanAttr a;
  a.key = key;
  a.str = std::move(value);
  t.log->spans[t.index].attrs.push_back(std::move(a));
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  track_names_[track] = std::move(name);
}

Tracer::Snapshot Tracer::snapshot() const {
  Snapshot out;
  out.dropped_spans = dropped_spans_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto* log : logs_) {
      out.spans.insert(out.spans.end(), log->spans.begin(), log->spans.end());
    }
    out.tracks = track_names_;
  }
  std::sort(out.spans.begin(), out.spans.end(), [](const Span& a, const Span& b) {
    if (a.clock != b.clock) return a.clock < b.clock;
    if (a.track != b.track) return a.track < b.track;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.id < b.id;
  });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto* log : logs_) log->spans.clear();
  recorded_spans_.store(0, std::memory_order_relaxed);
  dropped_spans_.store(0, std::memory_order_relaxed);
}

void Tracer::set_span_limit(std::size_t limit) {
  span_limit_.store(limit == 0 ? 1 : limit, std::memory_order_relaxed);
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto* log : logs_) n += log->spans.size();
  return n;
}

}  // namespace dfl::obs
