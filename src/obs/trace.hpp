// Span tracer for the simulator and the wall-clock compute underneath it.
//
// Spans are nestable intervals — `round`, `train`, `upload`, `gather`,
// `merge_get`, `sync`, `global_write`, `dag_fetch` — recorded on a *track*
// (one per simulated host, plus a process track for rounds and one
// wall-time track per OS thread that does crypto work). Each span carries
// a parent link and key-value attributes, so chunk-level wire activity in
// `sim::Network::trace()` can be causally attributed to the protocol phase
// that issued it (see `set_ambient_span` below).
//
// Recording is lock-free on the hot path: every thread appends to its own
// `ThreadLog` (registered once under a mutex on first use); span ids are
// composed from (thread slot, per-thread index) so a single-threaded
// simulation produces bit-identical ids run over run. `snapshot()`
// stitches the per-thread logs into one deterministically ordered list.
//
// Cost model: when tracing is disabled (the default), `begin()` is a
// single relaxed atomic load and an early return — benchmarked in
// bench/abl_obs. Defining `DFL_OBS_DISABLED` at compile time removes even
// that load. Instrumentation sites therefore never need their own guards,
// but may use `DFL_OBS_ENABLED()` to skip attribute formatting work.
//
// Threading contract: a SpanToken must be used (attr/end) only on the
// thread that created it. `snapshot()` / `clear()` must not race with
// active instrumentation — call them while the system is quiescent
// (between rounds, after the simulator returned and pool work joined).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dfl::obs {

/// 0 is "no span" everywhere (parent links, ambient context).
using SpanId = std::uint64_t;

/// Which clock a span's timestamps come from: the simulator's virtual
/// nanoseconds or the host's steady clock (ns since tracer start).
enum class SpanClock : std::uint8_t { kSim = 0, kWall = 1 };

/// One key-value attribute. Either a string or an int64, tagged.
struct SpanAttr {
  const char* key = "";
  std::string str;
  std::int64_t num = 0;
  bool is_num = false;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  const char* name = "";
  std::uint32_t track = 0;
  SpanClock clock = SpanClock::kSim;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = -1;  // -1 until end() is called
  bool instant = false;      // zero-duration marker (crash/restart/drop)
  std::vector<SpanAttr> attrs;
};

namespace detail {
struct ThreadLog;
#if !defined(DFL_OBS_DISABLED)
inline std::atomic<bool> g_enabled{false};
#endif
}  // namespace detail

/// Fast global check, safe from any thread.
[[nodiscard]] inline bool enabled() {
#if defined(DFL_OBS_DISABLED)
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

#define DFL_OBS_ENABLED() ::dfl::obs::enabled()

/// Handle to an open span; cheap to copy, valid until clear().
/// A default-constructed token is inert: attr()/end() on it are no-ops.
struct SpanToken {
  detail::ThreadLog* log = nullptr;
  std::uint32_t index = 0;
  SpanId id = 0;
  explicit operator bool() const { return log != nullptr; }
};

/// Track id for the process-wide track (round spans live here).
inline constexpr std::uint32_t kProcessTrack = 0xFFFFFFFFu;
/// Wall-clock tracks are kWallTrackBase + thread slot.
inline constexpr std::uint32_t kWallTrackBase = 0xFFFF0000u;

/// Default cap on retained spans (64Ki, mirroring the network's transfer
/// trace ring). begin() past the cap returns an inert token and bumps
/// dropped_spans() instead of growing without bound; exports surface the
/// drop count so a truncated trace is never silently analyzed.
inline constexpr std::size_t kDefaultSpanLimit = 64 * 1024;

class Tracer {
 public:
  static Tracer& instance();

  /// Flips the global enabled flag. Spans opened while enabled can still
  /// be ended after disabling (tokens stay valid until clear()).
  void set_enabled(bool on);

  /// Opens a span. Returns an inert token when tracing is disabled.
  SpanToken begin(const char* name, std::uint32_t track, std::int64_t start_ns,
                  SpanId parent = 0, SpanClock clock = SpanClock::kSim);

  /// Opens a wall-clock span on this thread's wall track, timestamped
  /// with wall_now(). Pairs with end_wall().
  SpanToken begin_wall(const char* name, SpanId parent = 0);

  /// Records a zero-duration instant event (exported as Perfetto ph:"i")
  /// — fault markers like crash/restart/drop/corrupt that have a moment
  /// but no extent. No-op while tracing is disabled.
  void instant(const char* name, std::uint32_t track, std::int64_t ts_ns, SpanId parent = 0,
               SpanClock clock = SpanClock::kSim);

  void end(SpanToken t, std::int64_t end_ns);
  void end_wall(SpanToken t);

  /// Collapses an open span into an instant marker at its start time.
  /// For instants that need attributes (instant() cannot attach any):
  /// begin() + attr()... + make_instant().
  void make_instant(SpanToken t);

  void attr(SpanToken t, const char* key, std::int64_t value);
  void attr(SpanToken t, const char* key, std::string value);

  /// Names a track in the export (host names, "rounds", "pool-worker-N").
  /// Wall tracks self-register a default name on first use.
  void set_track_name(std::uint32_t track, std::string name);

  /// Wall-clock ns since tracer construction (the kWall span timebase).
  [[nodiscard]] std::int64_t wall_now() const;

  struct Snapshot {
    std::vector<Span> spans;                       // deterministic order
    std::map<std::uint32_t, std::string> tracks;   // explicit track names
    std::uint64_t dropped_spans = 0;               // lost to the span cap
  };

  /// Stitches all thread logs. Spans are ordered by (clock, track,
  /// start, id) so single-threaded sim output is stable run over run.
  /// Must not race with active instrumentation.
  [[nodiscard]] Snapshot snapshot() const;

  /// Drops all recorded spans and invalidates outstanding tokens.
  /// Track names and thread registrations survive.
  void clear();

  /// Total spans recorded since the last clear().
  [[nodiscard]] std::size_t span_count() const;

  /// Caps retained spans process-wide (default kDefaultSpanLimit). Spans
  /// begun past the cap are dropped (inert token) and counted. Multi-round
  /// trace consumers (dfltrace) raise this before long runs.
  void set_span_limit(std::size_t limit);
  [[nodiscard]] std::size_t span_limit() const {
    return span_limit_.load(std::memory_order_relaxed);
  }
  /// Spans dropped by the cap since the last clear(). Nonzero means every
  /// downstream analysis of this trace is incomplete — exported into the
  /// Perfetto document and the dfl.obs.dropped_spans counter.
  [[nodiscard]] std::uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

 private:
  Tracer();
  detail::ThreadLog& local_log();

  mutable std::mutex mu_;  // guards logs_ registration and track names
  std::vector<detail::ThreadLog*> logs_;
  std::map<std::uint32_t, std::string> track_names_;
  std::int64_t wall_epoch_ = 0;
  std::atomic<std::size_t> span_limit_{kDefaultSpanLimit};
  std::atomic<std::uint64_t> recorded_spans_{0};
  std::atomic<std::uint64_t> dropped_spans_{0};
};

/// Enables/disables span collection process-wide (clears nothing).
void set_tracing(bool on);

// ---------------------------------------------------------------------------
// Ambient span context.
//
// The simulator runs protocol coroutines on one thread, and sim::Task is
// lazy: a callee's body runs synchronously inside co_await until its first
// suspension. That gives a cheap, race-free way to attribute network
// transfers to the protocol span that caused them without threading a
// span id through every RPC signature: the caller calls
// `set_ambient_span(id)` immediately before the co_await, and the *first
// consumer* — either the callee capturing its parent at entry, or
// `sim::Network::transfer` stamping a TransferRecord — calls
// `take_ambient_span()`, which reads and clears it. Consume-once keeps
// the ambient empty across suspension points, so concurrent coroutines
// can never observe each other's context. Helpers that are spawned (not
// awaited) take an explicit parent parameter instead.
// ---------------------------------------------------------------------------

namespace detail {
inline thread_local SpanId g_ambient_span = 0;
}

inline void set_ambient_span(SpanId s) { detail::g_ambient_span = s; }

/// Reads and clears the ambient span (consume-once).
[[nodiscard]] inline SpanId take_ambient_span() {
  SpanId s = detail::g_ambient_span;
  detail::g_ambient_span = 0;
  return s;
}

}  // namespace dfl::obs
