#include "obs/metrics.hpp"

namespace dfl::obs {

std::uint64_t MetricsSnapshot::counter_or(const std::string& name, std::uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

double MetricsSnapshot::gauge_or(const std::string& name, double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, int sub_bucket_bits) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(sub_bucket_bits);
  return *slot;
}

void Registry::register_collector(const std::string& name, std::function<void(Registry&)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  collectors_[name] = std::move(fn);
}

void Registry::unregister_collector(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  collectors_.erase(name);
}

MetricsSnapshot Registry::snapshot() {
  // Run collectors outside the lock: they call back into counter()/gauge().
  std::vector<std::function<void(Registry&)>> collectors;
  {
    std::lock_guard<std::mutex> lk(mu_);
    collectors.reserve(collectors_.size());
    for (const auto& [name, fn] : collectors_) collectors.push_back(fn);
  }
  for (const auto& fn : collectors) fn(*this);

  MetricsSnapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    const LogHistogram& d = h->data();
    MetricsSnapshot::HistView v;
    v.count = d.count();
    v.sum = d.sum();
    v.min = d.min();
    v.max = d.max();
    v.p50 = d.percentile(50.0);
    v.p90 = d.percentile(90.0);
    v.p99 = d.percentile(99.0);
    out.histograms.emplace_back(name, v);
  }
  return out;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  collectors_.clear();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace dfl::obs
