// Critical-path analysis over the span log: the "why was this round slow"
// layer on top of the PR 5 tracer.
//
// At round quiescence the span snapshot plus the network's wire slices
// form a DAG per round: the round frame (the process-track "round" span in
// sync mode, or the per-host "round" spans grouped by their `iter`
// attribute in async mode) parents the per-actor spans, which parent the
// protocol-phase spans, which parent the wire transfers via the ambient
// span links. `analyze_critical_paths` walks that DAG *backwards* from the
// round's end and, at every instant, blames the innermost activity that
// was determining progress — in the spirit of Coz-style causal profiling,
// but exact rather than sampled because simulated time is discrete and
// fully recorded.
//
// The walk produces a sequence of segments that partitions the round
// interval exactly: category durations always sum to the round span's
// duration, by construction (the acceptance property CI gates on). Each
// segment carries a blame category:
//
//   train      — inside a "train" span (local compute)
//   crypto     — inside a sim-clock commit/verify/audit span
//   wire       — a network transfer was the innermost activity
//   queue-wait — self-time of structural spans (upload/gather/sync/...):
//                waiting on pipes, polls, acks, peer progress
//   stale-wait — async staleness handling (async_fold / stale_update)
//   merge      — merge-and-download assembly (merge_get self-time)
//
// Determinism: the input snapshot is deterministically ordered, ids are
// stable run over run, and every tie in the backward walk breaks on
// (clamped end, start, wire-ness, id) — so two identical runs produce
// byte-identical analyses (hash-compared in CI).
//
// Layering: this file knows obs types only (Span, WireSlice, track names).
// Converting sim::TransferRecord to WireSlice and invoking the analysis at
// quiescence lives in core (trace_export.cpp / runner.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace dfl::obs {

/// Blame categories, in export order.
enum class Blame : std::uint8_t {
  kTrain = 0,
  kCrypto = 1,
  kWire = 2,
  kQueueWait = 3,
  kStaleWait = 4,
  kMerge = 5,
};
inline constexpr std::size_t kBlameCount = 6;

/// Stable short name ("train", "crypto", "wire", "queue-wait",
/// "stale-wait", "merge") for reports and JSON keys.
[[nodiscard]] const char* blame_name(Blame b);

/// The category a span's *self-time* (time not covered by any child
/// activity) is charged to, from its name.
[[nodiscard]] Blame blame_of_span(const char* name);

/// One maximal critical-path interval with a single blame.
struct CriticalSegment {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  Blame blame = Blame::kQueueWait;
  std::uint32_t track = 0;     // host track owning the blamed activity
  const char* name = "";       // span or wire name ("train", "chunk_xfer", ...)
  std::uint64_t source = 0;    // span id, or transfer id for wires
  bool wire = false;
  [[nodiscard]] std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Critical path of one round: segments partition [start_ns, end_ns].
struct RoundCriticalPath {
  std::uint32_t iter = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// Chronological; adjacent segments share endpoints (exact partition).
  std::vector<CriticalSegment> segments;
  /// Per-category totals; sums to total_ns() exactly.
  std::array<std::int64_t, kBlameCount> blame_ns{};
  /// Critical-path time per host track name, descending — the "top-k
  /// bottleneck hosts" list. Process-track self-time reports as "rounds".
  std::vector<std::pair<std::string, std::int64_t>> host_ns;

  [[nodiscard]] std::int64_t total_ns() const { return end_ns - start_ns; }
  [[nodiscard]] Blame dominant_blame() const;
  /// Empty string when the path is empty.
  [[nodiscard]] const std::string& dominant_host() const;
  [[nodiscard]] std::int64_t dominant_host_ns() const;
};

struct Analysis {
  /// Rounds in ascending iter order (only rounds present in the trace).
  std::vector<RoundCriticalPath> rounds;
};

/// Reconstructs each round's DAG from the snapshot's sim-clock spans plus
/// the wire slices' parent links, extracts the critical path, and
/// attributes every nanosecond of the round interval to a blame category.
/// Wall-clock spans are ignored (different timebase; the sim-clock crypto
/// spans carry the modeled cost). Spans with unresolvable parents are
/// unreachable from a round frame and silently excluded — export
/// truncation is surfaced separately (Tracer::dropped_spans).
[[nodiscard]] Analysis analyze_critical_paths(const Tracer::Snapshot& snap,
                                              const std::vector<WireSlice>& wires);

}  // namespace dfl::obs
