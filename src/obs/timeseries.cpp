#include "obs/timeseries.hpp"

#include <cstdio>
#include <ostream>

#include "obs/export.hpp"

namespace dfl::obs {

TimeSeriesWriter::TimeSeriesWriter(std::ostream& os, Registry& reg) : os_(os), reg_(reg) {}

void TimeSeriesWriter::sample(std::int64_t sim_now_ns) {
  const MetricsSnapshot snap = reg_.snapshot();
  std::string out = "{\"t_ms\":";
  out += std::to_string(sim_now_ns / 1000000);
  out += ",\"sample\":";
  out += std::to_string(samples_);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(v);
  }
  out += "},\"deltas\":{";
  first = true;
  for (const auto& [name, v] : snap.counters) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    // Counters are monotonic; a reset (clear() between runs) would show as
    // a huge wrap, so clamp the delta at zero instead.
    const std::uint64_t delta = v >= prev ? v - prev : 0;
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(delta);
    prev_counters_[name] = v;
  }
  out += "},\"gauges\":{";
  first = true;
  char buf[64];
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += "\"" + json_escape(name) + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"p50\":" + std::to_string(h.p50);
    out += ",\"p90\":" + std::to_string(h.p90);
    out += ",\"p99\":" + std::to_string(h.p99);
    out += "}";
  }
  out += "}}\n";
  os_ << out;
  ++samples_;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(1 << 14);
  char buf[64];
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + buf + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + std::to_string(h.p50) + "\n";
    out += n + "{quantile=\"0.9\"} " + std::to_string(h.p90) + "\n";
    out += n + "{quantile=\"0.99\"} " + std::to_string(h.p99) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  os << out;
}

}  // namespace dfl::obs
