#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>

namespace dfl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Chrome trace timestamps are microseconds; keep ns precision as decimals.
void append_ts(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

void append_args(std::string& out, const std::vector<SpanAttr>& attrs) {
  out += "{";
  bool first = true;
  for (const auto& a : attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(a.key);
    out += "\":";
    if (a.is_num) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, a.num);
      out += buf;
    } else {
      out += "\"";
      out += json_escape(a.str);
      out += "\"";
    }
  }
  out += "}";
}

struct Interval {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::size_t item = 0;  // index into the source list
};

// Splits intervals into the minimum-ish number of lanes such that any two
// intervals sharing a lane either nest or are disjoint — the invariant
// Chrome's JSON importer needs for synchronous slices on one tid.
// Greedy first-fit: process in (start asc, longer first) order; a lane
// accepts an interval when, after closing everything that ended, its
// innermost open interval fully contains the candidate (or none is open).
std::vector<std::vector<Interval>> assign_lanes(std::vector<Interval> items) {
  std::sort(items.begin(), items.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end > b.end;  // longer (outer) first
    return a.item < b.item;
  });
  std::vector<std::vector<Interval>> lanes;       // accepted intervals per lane
  std::vector<std::vector<std::int64_t>> open;    // per-lane stack of open ends
  for (const Interval& iv : items) {
    bool placed = false;
    for (std::size_t l = 0; l < lanes.size() && !placed; ++l) {
      auto& stack = open[l];
      while (!stack.empty() && stack.back() <= iv.start) stack.pop_back();
      if (stack.empty() || stack.back() >= iv.end) {
        stack.push_back(iv.end);
        lanes[l].push_back(iv);
        placed = true;
      }
    }
    if (!placed) {
      lanes.emplace_back(1, iv);
      open.emplace_back(1, iv.end);
    }
  }
  return lanes;
}

std::string track_display_name(const Tracer::Snapshot& snap, std::uint32_t track) {
  auto it = snap.tracks.find(track);
  if (it != snap.tracks.end()) return it->second;
  if (track == kProcessTrack) return "rounds";
  if (track >= kWallTrackBase) return "wall-thread-" + std::to_string(track - kWallTrackBase);
  return "track-" + std::to_string(track);
}

}  // namespace

void write_perfetto(std::ostream& os, const Tracer::Snapshot& snap,
                    const std::vector<WireSlice>& wires, std::uint64_t dropped_wires) {
  std::string out;
  out.reserve(1 << 20);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":";
  out += std::to_string(snap.dropped_spans);
  out += ",\"dropped_wires\":";
  out += std::to_string(dropped_wires);
  out += "},\"traceEvents\":[\n";
  bool first_event = true;
  auto emit = [&](const std::string& ev) {
    if (!first_event) out += ",\n";
    first_event = false;
    out += ev;
  };

  // --- group spans and wires by track ------------------------------------
  std::map<std::uint32_t, std::vector<Interval>> span_tracks;   // sim + wall
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const Span& s = snap.spans[i];
    const std::int64_t end = s.end_ns < s.start_ns ? s.start_ns : s.end_ns;
    span_tracks[s.track].push_back(Interval{s.start_ns, end, i});
  }
  std::map<std::uint32_t, std::vector<Interval>> wire_tracks;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const WireSlice& w = wires[i];
    const std::int64_t end = w.end_ns < w.start_ns ? w.start_ns : w.end_ns;
    wire_tracks[w.track].push_back(Interval{w.start_ns, end, i});
  }

  // --- assign tids: tracks in ascending order, proto lanes then wire -----
  struct TidInfo {
    int pid = 1;
    int tid = 0;
  };
  std::map<SpanId, TidInfo> span_tid;  // for flow arrow sources
  int next_tid = 1;
  int sort_index = 0;
  char buf[256];

  auto emit_thread_meta = [&](int pid, int tid, const std::string& name, int sort) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, tid, json_escape(name).c_str());
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_sort_index\","
                  "\"args\":{\"sort_index\":%d}}",
                  pid, tid, sort);
    emit(buf);
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
       "\"args\":{\"name\":\"sim (simulated time)\"}}");
  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":0}}");
  emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
       "\"args\":{\"name\":\"host (wall time)\"}}");
  emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":1}}");

  auto emit_span = [&](const Span& s, int pid, int tid) {
    const std::int64_t end = s.end_ns < s.start_ns ? s.start_ns : s.end_ns;
    std::string ev;
    if (s.instant) {
      // Thread-scoped instant marker: a moment, not an extent.
      ev = "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
    } else {
      ev = "{\"ph\":\"X\",\"pid\":";
    }
    ev += std::to_string(pid);
    ev += ",\"tid\":";
    ev += std::to_string(tid);
    ev += ",\"name\":\"";
    ev += json_escape(s.name);
    ev += "\",\"cat\":\"";
    ev += s.instant ? "fault" : "span";
    ev += "\",\"ts\":";
    append_ts(ev, s.start_ns);
    if (!s.instant) {
      ev += ",\"dur\":";
      append_ts(ev, end - s.start_ns);
    }
    ev += ",\"args\":";
    std::vector<SpanAttr> attrs = s.attrs;
    SpanAttr id_attr;
    id_attr.key = "span_id";
    id_attr.num = static_cast<std::int64_t>(s.id);
    id_attr.is_num = true;
    attrs.push_back(id_attr);
    if (s.parent != 0) {
      SpanAttr p;
      p.key = "parent_span";
      p.num = static_cast<std::int64_t>(s.parent);
      p.is_num = true;
      attrs.push_back(p);
    }
    append_args(ev, attrs);
    ev += "}";
    emit(ev);
  };

  // Ordered union of all track ids (sim tracks, then process, then wall —
  // numeric order already gives hosts < kWallTrackBase < kProcessTrack).
  std::vector<std::uint32_t> all_tracks;
  for (const auto& [t, v] : span_tracks) all_tracks.push_back(t);
  for (const auto& [t, v] : wire_tracks) {
    if (span_tracks.find(t) == span_tracks.end()) all_tracks.push_back(t);
  }
  std::sort(all_tracks.begin(), all_tracks.end());

  std::map<std::size_t, TidInfo> wire_tid;  // wire index -> tid
  for (std::uint32_t track : all_tracks) {
    const bool is_wall = track >= kWallTrackBase && track != kProcessTrack;
    const int pid = is_wall ? 2 : 1;
    const std::string base = track_display_name(snap, track);
    auto sit = span_tracks.find(track);
    if (sit != span_tracks.end()) {
      auto lanes = assign_lanes(sit->second);
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        const int tid = next_tid++;
        std::string name = base;
        if (l > 0) name += " #" + std::to_string(l + 1);
        emit_thread_meta(pid, tid, name, sort_index++);
        for (const Interval& iv : lanes[l]) {
          const Span& s = snap.spans[iv.item];
          span_tid[s.id] = TidInfo{pid, tid};
          emit_span(s, pid, tid);
        }
      }
    }
    auto wit = wire_tracks.find(track);
    if (wit != wire_tracks.end()) {
      auto lanes = assign_lanes(wit->second);
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        const int tid = next_tid++;
        std::string name = base + " wire";
        if (l > 0) name += " #" + std::to_string(l + 1);
        emit_thread_meta(pid, tid, name, sort_index++);
        for (const Interval& iv : lanes[l]) {
          const WireSlice& w = wires[iv.item];
          wire_tid[iv.item] = TidInfo{pid, tid};
          std::string ev = "{\"ph\":\"X\",\"pid\":";
          ev += std::to_string(pid);
          ev += ",\"tid\":";
          ev += std::to_string(tid);
          ev += ",\"name\":\"";
          ev += json_escape(w.name);
          ev += "\",\"cat\":\"wire\",\"ts\":";
          append_ts(ev, w.start_ns);
          ev += ",\"dur\":";
          append_ts(ev, (w.end_ns < w.start_ns ? w.start_ns : w.end_ns) - w.start_ns);
          ev += ",\"args\":";
          std::vector<SpanAttr> attrs = w.attrs;
          SpanAttr id_attr;
          id_attr.key = "transfer_id";
          id_attr.num = static_cast<std::int64_t>(w.id);
          id_attr.is_num = true;
          attrs.push_back(id_attr);
          SpanAttr p;
          p.key = "parent_span";
          p.num = static_cast<std::int64_t>(w.parent);
          p.is_num = true;
          attrs.push_back(p);
          append_args(ev, attrs);
          ev += "}";
          emit(ev);
        }
      }
    }
  }

  // --- flow arrows: parent span -> wire slice ----------------------------
  std::map<SpanId, const Span*> span_by_id;
  for (const Span& s : snap.spans) span_by_id[s.id] = &s;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const WireSlice& w = wires[i];
    if (w.parent == 0) continue;
    auto pit = span_by_id.find(w.parent);
    auto tit = span_tid.find(w.parent);
    if (pit == span_by_id.end() || tit == span_tid.end()) continue;
    const Span& parent = *pit->second;
    // The departure point must sit inside the parent slice.
    const std::int64_t pend = parent.end_ns < parent.start_ns ? parent.start_ns : parent.end_ns;
    std::int64_t dep = w.issued_ns;
    if (dep < parent.start_ns) dep = parent.start_ns;
    if (dep > pend) dep = pend;
    std::string ev = "{\"ph\":\"s\",\"id\":";
    ev += std::to_string(w.id);
    ev += ",\"pid\":";
    ev += std::to_string(tit->second.pid);
    ev += ",\"tid\":";
    ev += std::to_string(tit->second.tid);
    ev += ",\"name\":\"wire\",\"cat\":\"wire\",\"ts\":";
    append_ts(ev, dep);
    ev += "}";
    emit(ev);
    const TidInfo wt = wire_tid[i];
    ev = "{\"ph\":\"f\",\"bp\":\"e\",\"id\":";
    ev += std::to_string(w.id);
    ev += ",\"pid\":";
    ev += std::to_string(wt.pid);
    ev += ",\"tid\":";
    ev += std::to_string(wt.tid);
    ev += ",\"name\":\"wire\",\"cat\":\"wire\",\"ts\":";
    append_ts(ev, w.start_ns);
    ev += "}";
    emit(ev);
  }

  out += "\n]}\n";
  os << out;
}

void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snap,
                         const std::vector<std::pair<std::string, std::int64_t>>& extra) {
  std::string out = "{";
  bool first = true;
  auto key = [&](const std::string& k) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":";
  };
  for (const auto& [k, v] : extra) {
    key(k);
    out += std::to_string(v);
  }
  key("counters");
  out += "{";
  bool f2 = true;
  for (const auto& [name, v] : snap.counters) {
    if (!f2) out += ",";
    f2 = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += std::to_string(v);
  }
  out += "}";
  key("gauges");
  out += "{";
  f2 = true;
  char buf[64];
  for (const auto& [name, v] : snap.gauges) {
    if (!f2) out += ",";
    f2 = false;
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += buf;
  }
  out += "}";
  key("histograms");
  out += "{";
  f2 = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!f2) out += ",";
    f2 = false;
    out += "\"";
    out += json_escape(name);
    out += "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + std::to_string(h.p50);
    out += ",\"p90\":" + std::to_string(h.p90);
    out += ",\"p99\":" + std::to_string(h.p99);
    out += "}";
  }
  out += "}";
  out += "}\n";
  os << out;
}

}  // namespace dfl::obs
