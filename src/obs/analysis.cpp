#include "obs/analysis.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

namespace dfl::obs {

const char* blame_name(Blame b) {
  switch (b) {
    case Blame::kTrain: return "train";
    case Blame::kCrypto: return "crypto";
    case Blame::kWire: return "wire";
    case Blame::kQueueWait: return "queue-wait";
    case Blame::kStaleWait: return "stale-wait";
    case Blame::kMerge: return "merge";
  }
  return "queue-wait";
}

Blame blame_of_span(const char* name) {
  if (std::strcmp(name, "train") == 0) return Blame::kTrain;
  if (std::strcmp(name, "commit") == 0 || std::strcmp(name, "verify") == 0 ||
      std::strcmp(name, "verify_batch") == 0 || std::strcmp(name, "audit") == 0) {
    return Blame::kCrypto;
  }
  if (std::strcmp(name, "merge_get") == 0) return Blame::kMerge;
  if (std::strcmp(name, "async_fold") == 0 || std::strcmp(name, "stale_update") == 0) {
    return Blame::kStaleWait;
  }
  // round / upload / download / gather / sync / global_write / dag_fetch /
  // async_run and anything future: self-time is waiting on something.
  return Blame::kQueueWait;
}

Blame RoundCriticalPath::dominant_blame() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kBlameCount; ++i) {
    if (blame_ns[i] > blame_ns[best]) best = i;
  }
  return static_cast<Blame>(best);
}

const std::string& RoundCriticalPath::dominant_host() const {
  static const std::string empty;
  return host_ns.empty() ? empty : host_ns.front().first;
}

std::int64_t RoundCriticalPath::dominant_host_ns() const {
  return host_ns.empty() ? 0 : host_ns.front().second;
}

namespace {

/// One schedulable interval in the DAG: a sim-clock span or a wire slice.
struct Activity {
  std::int64_t start = 0;
  std::int64_t end = 0;  // clamped to >= start
  Blame self_blame = Blame::kQueueWait;
  std::uint32_t track = 0;
  const char* name = "";
  std::uint64_t source = 0;
  bool wire = false;
};

std::string track_label(const Tracer::Snapshot& snap, std::uint32_t track) {
  auto it = snap.tracks.find(track);
  if (it != snap.tracks.end()) return it->second;
  if (track == kProcessTrack) return "rounds";
  return "track-" + std::to_string(track);
}

class Walker {
 public:
  Walker(const std::vector<Activity>& acts,
         const std::vector<std::vector<std::uint32_t>>& children)
      : acts_(acts), children_(children) {}

  /// Backward walk over [lo, hi]: at each instant blame the child activity
  /// that finished last (the one progress was waiting on); gaps no child
  /// covers are `self`'s own time. Emits segments in reverse order.
  void walk(const std::vector<std::uint32_t>& kids, const Activity& self, std::int64_t lo,
            std::int64_t hi) {
    std::int64_t t = hi;
    while (t > lo) {
      const std::uint32_t kNone = 0xFFFFFFFFu;
      std::uint32_t best = kNone;
      std::int64_t best_ce = 0;
      for (const std::uint32_t k : kids) {
        const Activity& c = acts_[k];
        if (c.start >= t || c.end <= lo) continue;
        const std::int64_t ce = std::min(c.end, t);
        if (best == kNone || better(c, ce, acts_[best], best_ce)) {
          best = k;
          best_ce = ce;
        }
      }
      if (best == kNone) {
        emit(self, lo, t);
        return;
      }
      const Activity& c = acts_[best];
      if (best_ce < t) emit(self, best_ce, t);  // nothing ran in (ce, t]: self-time
      const std::int64_t clo = std::max(c.start, lo);
      walk(children_[best], c, clo, best_ce);
      t = clo;
    }
  }

  std::vector<CriticalSegment> take() {
    std::reverse(segments_.begin(), segments_.end());
    return std::move(segments_);
  }

 private:
  static bool better(const Activity& a, std::int64_t a_ce, const Activity& b,
                     std::int64_t b_ce) {
    if (a_ce != b_ce) return a_ce > b_ce;          // later finisher wins
    if (a.start != b.start) return a.start > b.start;  // then the inner one
    if (a.wire != b.wire) return a.wire;           // wires are leaves: innermost
    return a.source > b.source;                    // deterministic tiebreak
  }

  void emit(const Activity& who, std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return;
    CriticalSegment s;
    s.start_ns = lo;
    s.end_ns = hi;
    s.blame = who.wire ? Blame::kWire : who.self_blame;
    s.track = who.track;
    s.name = who.name;
    s.source = who.source;
    s.wire = who.wire;
    segments_.push_back(s);
  }

  const std::vector<Activity>& acts_;
  const std::vector<std::vector<std::uint32_t>>& children_;
  std::vector<CriticalSegment> segments_;
};

std::int64_t span_iter_attr(const Span& s) {
  for (const SpanAttr& a : s.attrs) {
    if (a.is_num && std::strcmp(a.key, "iter") == 0) return a.num;
  }
  return -1;
}

RoundCriticalPath summarize(std::uint32_t iter, std::int64_t lo, std::int64_t hi,
                            std::vector<CriticalSegment> segs,
                            const Tracer::Snapshot& snap) {
  RoundCriticalPath rcp;
  rcp.iter = iter;
  rcp.start_ns = lo;
  rcp.end_ns = hi;
  rcp.segments = std::move(segs);
  std::map<std::uint32_t, std::int64_t> per_track;
  for (const CriticalSegment& s : rcp.segments) {
    rcp.blame_ns[static_cast<std::size_t>(s.blame)] += s.duration_ns();
    per_track[s.track] += s.duration_ns();
  }
  for (const auto& [track, ns] : per_track) {
    rcp.host_ns.emplace_back(track_label(snap, track), ns);
  }
  std::stable_sort(rcp.host_ns.begin(), rcp.host_ns.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return rcp;
}

}  // namespace

Analysis analyze_critical_paths(const Tracer::Snapshot& snap,
                                const std::vector<WireSlice>& wires) {
  Analysis out;

  // --- flatten spans + wires into one activity table ----------------------
  std::vector<Activity> acts;
  acts.reserve(snap.spans.size() + wires.size());
  std::unordered_map<SpanId, std::uint32_t> span_act;  // span id -> activity
  std::vector<std::pair<SpanId, std::uint32_t>> links;  // (parent, child act)
  std::vector<std::pair<std::uint32_t, std::int64_t>> roots;  // (act, iter)
  // Async mode has no per-round process span: group per-host round spans
  // by their iter attribute instead. (iter, member activities.)
  std::map<std::int64_t, std::vector<std::uint32_t>> iter_groups;

  for (const Span& s : snap.spans) {
    if (s.clock != SpanClock::kSim || s.instant) continue;
    Activity a;
    a.start = s.start_ns;
    a.end = std::max(s.end_ns, s.start_ns);
    a.self_blame = blame_of_span(s.name);
    a.track = s.track;
    a.name = s.name;
    a.source = s.id;
    const auto idx = static_cast<std::uint32_t>(acts.size());
    acts.push_back(a);
    span_act.emplace(s.id, idx);
    if (s.parent != 0) links.emplace_back(s.parent, idx);
    if (std::strcmp(s.name, "round") == 0) {
      if (s.track == kProcessTrack) {
        roots.emplace_back(idx, span_iter_attr(s));
      } else if (const std::int64_t iter = span_iter_attr(s); iter >= 0) {
        iter_groups[iter].push_back(idx);
      }
    }
  }
  for (const WireSlice& w : wires) {
    Activity a;
    a.start = w.start_ns;
    a.end = std::max(w.end_ns, w.start_ns);
    a.self_blame = Blame::kWire;
    a.track = w.track;
    a.name = w.name;
    a.source = w.id;
    a.wire = true;
    const auto idx = static_cast<std::uint32_t>(acts.size());
    acts.push_back(a);
    if (w.parent != 0) links.emplace_back(w.parent, idx);
  }

  std::vector<std::vector<std::uint32_t>> children(acts.size());
  for (const auto& [parent, child] : links) {
    auto it = span_act.find(parent);
    if (it != span_act.end()) children[it->second].push_back(child);
  }

  // --- sync mode: one process-track "round" span frames each round --------
  if (!roots.empty()) {
    std::sort(roots.begin(), roots.end(), [&](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second < b.second;
      return acts[a.first].start < acts[b.first].start;
    });
    for (const auto& [r, iter] : roots) {
      const Activity& frame = acts[r];
      Walker w(acts, children);
      w.walk(children[r], frame, frame.start, frame.end);
      out.rounds.push_back(summarize(iter < 0 ? 0 : static_cast<std::uint32_t>(iter),
                                     frame.start, frame.end, w.take(), snap));
    }
    return out;
  }

  // --- async mode: synthesize a frame per iter over the actor spans -------
  for (const auto& [iter, members] : iter_groups) {
    std::int64_t lo = acts[members.front()].start;
    std::int64_t hi = acts[members.front()].end;
    for (const std::uint32_t m : members) {
      lo = std::min(lo, acts[m].start);
      hi = std::max(hi, acts[m].end);
    }
    Activity frame;
    frame.start = lo;
    frame.end = hi;
    frame.self_blame = Blame::kQueueWait;
    frame.track = kProcessTrack;
    frame.name = "round";
    Walker w(acts, children);
    w.walk(members, frame, lo, hi);
    out.rounds.push_back(
        summarize(static_cast<std::uint32_t>(iter), lo, hi, w.take(), snap));
  }
  return out;
}

}  // namespace dfl::obs
