#include "core/task_spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfl::core {

TaskSpec::TaskSpec(std::size_t num_params, std::size_t num_partitions, std::size_t num_trainers)
    : num_params_(num_params), num_trainers_(num_trainers), partitions_(num_partitions) {
  if (num_partitions == 0 || num_params < num_partitions) {
    throw std::invalid_argument("TaskSpec: need at least one parameter per partition");
  }
  // Equal-size chunks; the remainder spreads over the first partitions.
  const std::size_t base = num_params / num_partitions;
  const std::size_t extra = num_params % num_partitions;
  offsets_.push_back(0);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    offsets_.push_back(offsets_.back() + base + (p < extra ? 1 : 0));
  }
}

std::pair<std::size_t, std::size_t> TaskSpec::partition_range(std::size_t p) const {
  return {offsets_.at(p), offsets_.at(p + 1)};
}

std::size_t TaskSpec::partition_size(std::size_t p) const {
  return offsets_.at(p + 1) - offsets_.at(p);
}

std::size_t TaskSpec::max_partition_size() const {
  std::size_t mx = 0;
  for (std::size_t p = 0; p < num_partitions(); ++p) mx = std::max(mx, partition_size(p));
  return mx;
}

std::uint32_t TaskSpec::aggregator_of(std::size_t p, std::uint32_t trainer) const {
  const PartitionAssignment& pa = partitions_.at(p);
  for (std::size_t j = 0; j < pa.trainers.size(); ++j) {
    const auto& ts = pa.trainers[j];
    if (std::find(ts.begin(), ts.end(), trainer) != ts.end()) {
      return static_cast<std::uint32_t>(j);
    }
  }
  throw std::out_of_range("TaskSpec::aggregator_of: trainer not assigned for partition");
}

namespace {

// splitmix64 finalizer — a cheap deterministic spread for kHashed.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint32_t TaskSpec::provider_for(std::size_t p, std::uint32_t trainer) const {
  const PartitionAssignment& pa = partitions_.at(p);
  const std::uint32_t j = aggregator_of(p, trainer);
  const auto& provs = pa.providers.at(j);
  if (provs.empty()) {
    throw std::logic_error("TaskSpec::provider_for: aggregator has no providers");
  }
  if (options.provider_policy == ProviderPolicy::kHashed) {
    const std::uint64_t h = mix((static_cast<std::uint64_t>(p) << 32) | trainer);
    return provs[h % provs.size()];
  }
  return provs[trainer % provs.size()];
}

std::vector<std::uint32_t> TaskSpec::upload_targets(std::size_t p, std::uint32_t trainer,
                                                    std::size_t replicas) const {
  const PartitionAssignment& pa = partitions_.at(p);
  const auto& provs = pa.providers.at(aggregator_of(p, trainer));
  const std::uint32_t primary = provider_for(p, trainer);
  std::size_t start = 0;
  while (start < provs.size() && provs[start] != primary) ++start;
  std::vector<std::uint32_t> out{primary};
  for (std::size_t k = 1; k < provs.size() && out.size() < replicas; ++k) {
    const std::uint32_t candidate = provs[(start + k) % provs.size()];
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  return out;
}

void TaskSpec::build_round_robin(std::size_t aggs_per_partition, std::size_t providers_per_agg,
                                 std::size_t num_nodes) {
  if (aggs_per_partition == 0 || providers_per_agg == 0 || num_nodes == 0) {
    throw std::invalid_argument("build_round_robin: zero-sized role set");
  }
  std::uint32_t next_agg_id = 0;
  std::size_t next_provider = 0;
  for (std::size_t p = 0; p < num_partitions(); ++p) {
    PartitionAssignment pa;
    pa.aggregators.resize(aggs_per_partition);
    pa.trainers.assign(aggs_per_partition, {});
    pa.providers.assign(aggs_per_partition, {});
    for (std::size_t j = 0; j < aggs_per_partition; ++j) {
      pa.aggregators[j] = next_agg_id++;
      for (std::size_t k = 0; k < providers_per_agg; ++k) {
        pa.providers[j].push_back(static_cast<std::uint32_t>(next_provider % num_nodes));
        ++next_provider;
      }
    }
    // Deal every trainer to exactly one aggregator of this partition
    // (the paper's invariant: the T_ij partition the trainer set T).
    for (std::uint32_t t = 0; t < num_trainers_; ++t) {
      pa.trainers[t % aggs_per_partition].push_back(t);
    }
    partitions_[p] = std::move(pa);
  }
}

}  // namespace dfl::core
