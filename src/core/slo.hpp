// In-engine SLO evaluation: the scenario's [slo] clauses, checked per
// round as the simulation runs instead of post-hoc by check_scenario.py
// (which stays as the independent CI gate — same keys, same semantics at
// end of run).
//
// Clause semantics (matching tools/check_scenario.py):
//   completion_rate_min      — per-round: the round's own completion rate;
//                              finalize: the mean over all rounds
//   rounds_complete_min      — finalize: rounds with every partition done
//   round_p50_ms_max         — per-round: running p50 of round durations
//   round_p99_ms_max         — per-round: running p99 of round durations
//   crashes_min              — finalize: total injected crashes (a chaos
//                              scenario that failed to inject is itself
//                              a broken experiment)
//   transfers_dropped_max    — per-round: running total
//   payloads_corrupted_max   — per-round: running total
//
// Every breach emits a Perfetto instant event ("slo_breach" on the
// process track), bumps dfl.slo.breaches_total plus a per-key
// dfl.slo.breach.<key> counter, and — when the round carries a
// critical-path record — is attributed against it ("round 12 breached
// round_p99_ms_max: 78% wire on s2/trainer7").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"

namespace dfl::core {

class SloEvaluator {
 public:
  /// `clauses` in file order (sim::ScenarioSpec::slo). Unknown keys are
  /// ignored here (check_scenario.py warns on them).
  explicit SloEvaluator(std::vector<std::pair<std::string, double>> clauses);

  [[nodiscard]] bool active() const { return !clauses_.empty(); }

  /// Folds round `m` into the running stats and returns the clauses this
  /// round breached (emitting instants + counters). `now_ns` stamps the
  /// instant events (the quiescent sim time the round was evaluated at).
  std::vector<SloBreach> on_round(const RoundMetrics& m, std::int64_t now_ns);

  /// End-of-run clauses (mins and aggregate rates). Call once after the
  /// last round; also emits instants + counters.
  std::vector<SloBreach> finalize(std::int64_t now_ns);

  [[nodiscard]] std::uint64_t breaches_total() const { return breaches_total_; }

 private:
  void emit(SloBreach breach, const RoundMetrics* m, std::int64_t now_ns,
            std::vector<SloBreach>& out);
  [[nodiscard]] double running_percentile(double q) const;

  std::vector<std::pair<std::string, double>> clauses_;
  std::vector<double> round_ms_;  // completed-round durations, insert order
  std::uint64_t rounds_seen_ = 0;
  std::uint64_t rounds_complete_ = 0;
  double completion_sum_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t transfers_dropped_ = 0;
  std::uint64_t payloads_corrupted_ = 0;
  std::uint64_t breaches_total_ = 0;
};

}  // namespace dfl::core
