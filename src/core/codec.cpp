#include "core/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "core/payload.hpp"

namespace dfl::core {

namespace {

// Wire magics: a dense payload starts with its u32 element count, so a
// count would have to reach ~3.7e9 elements to collide with either magic.
constexpr std::uint32_t kQuantMagic = 0xDF1C0DE1u;
constexpr std::uint32_t kTopkMagic = 0xDF1C0DE2u;

constexpr int kQuantBitsMin = 2;
constexpr int kQuantBitsMax = 16;

void check_quant_bits(int bits) {
  if (bits < kQuantBitsMin || bits > kQuantBitsMax) {
    throw CodecError("codec: quant_bits out of range [2, 16]");
  }
}

void check_topk_frac(double frac) {
  if (!(frac > 0.0) || frac > 1.0) {
    throw CodecError("codec: topk_frac out of range (0, 1]");
  }
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t u = 0;
  for (std::size_t i = 0; i < 4; ++i) u |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return u;
}

std::int64_t load_i64(const std::uint8_t* p) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return static_cast<std::int64_t>(u);
}

/// Bounds-checked little-endian cursor; throws CodecError instead of
/// running off the end, so truncated buffers surface as typed errors.
class Cursor {
 public:
  explicit Cursor(BytesView data) : data_(data) {}

  std::uint32_t u32() { return load_u32(need(4)); }
  std::int64_t i64() { return load_i64(need(8)); }

  const std::uint8_t* need(std::size_t n) {
    if (data_.size() - pos_ < n) throw CodecError("codec: truncated payload");
    const std::uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

void expect_done(const Cursor& c) {
  if (c.remaining() != 0) throw CodecError("codec: trailing bytes after payload");
}

/// LSB-first bit packer for k-bit two's-complement values (k ≤ 16).
class BitWriter {
 public:
  void put(std::uint32_t v, int bits) {
    acc_ |= static_cast<std::uint64_t>(v & ((1u << bits) - 1u)) << nbits_;
    nbits_ += bits;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xffu));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  void flush(Writer& w) {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xffu));
      acc_ = 0;
      nbits_ = 0;
    }
    w.put_raw(out_);
  }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  /// Reads a k-bit two's-complement value, sign-extended to int64.
  std::int64_t get_signed(int bits) {
    while (nbits_ < bits) {
      if (pos_ >= size_) throw CodecError("codec: truncated quantized stream");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    const std::uint64_t raw = acc_ & ((1ull << bits) - 1ull);
    acc_ >>= bits;
    nbits_ -= bits;
    const std::uint64_t sign = 1ull << (bits - 1);
    return static_cast<std::int64_t>((raw ^ sign)) - static_cast<std::int64_t>(sign);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// floor(t / s) with s > 0, plus the nonnegative remainder in [0, s).
std::int64_t floor_div(__int128 t, std::int64_t s, std::int64_t* rem) {
  __int128 q = t / s;  // truncates toward zero
  if (t % s != 0 && t < 0) --q;
  *rem = static_cast<std::int64_t>(t - q * s);
  return static_cast<std::int64_t>(q);
}

/// round((q * s) / qmax), ties away from zero — exact integer arithmetic so
/// every receiver reconstructs the identical fixed-point value.
std::int64_t dequantize(std::int64_t q, std::int64_t s, std::int64_t qmax) {
  const __int128 t = static_cast<__int128>(q) * s;
  const __int128 r =
      t >= 0 ? (t + qmax / 2) / qmax : -((-t + qmax / 2) / qmax);
  return static_cast<std::int64_t>(r);
}

std::size_t topk_kept(std::size_t n, double frac) {
  if (n == 0) return 0;
  const auto want = static_cast<std::size_t>(std::ceil(frac * static_cast<double>(n)));
  return std::min(n, std::max<std::size_t>(1, want));
}

Bytes encode_quant(const Payload& p, int bits, std::uint64_t seed, EncodeStats* stats) {
  check_quant_bits(bits);
  if (p.values.empty()) throw CodecError("codec: cannot quantize an empty payload");
  const std::size_t n = p.values.size() - 1;  // gradient elements, weight excluded
  const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;

  std::int64_t scale = 0;  // max |v| over the gradient elements
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = p.values[i] < 0 ? -p.values[i] : p.values[i];
    scale = std::max(scale, a);
  }

  Writer w;
  w.put<std::uint32_t>(kQuantMagic);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(bits));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.values.size()));
  w.put<std::int64_t>(p.values.back());  // weight, exact
  w.put<std::int64_t>(scale);

  Rng rng(seed);
  double error_sq = 0;
  BitWriter bw;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t q = 0;
    if (scale > 0) {
      // q = v·qmax/scale with stochastic rounding: round up with
      // probability rem/scale so the quantizer is unbiased.
      std::int64_t rem = 0;
      q = floor_div(static_cast<__int128>(p.values[i]) * qmax, scale, &rem);
      if (rem != 0 && rng.uniform(static_cast<std::uint64_t>(scale)) <
                          static_cast<std::uint64_t>(rem)) {
        ++q;
      }
    }
    bw.put(static_cast<std::uint32_t>(static_cast<std::uint64_t>(q)), bits);
    const double err = static_cast<double>(dequantize(q, scale, qmax) - p.values[i]);
    error_sq += err * err;
  }
  bw.flush(w);

  Bytes out = w.take();
  if (stats != nullptr) {
    stats->raw_bytes = Payload::wire_size(p.values.size());
    stats->encoded_bytes = out.size();
    stats->error_sq = error_sq;
  }
  return out;
}

Payload decode_quant(BytesView data, int bits) {
  check_quant_bits(bits);
  Cursor c(data);
  if (c.u32() != kQuantMagic) throw CodecError("codec: bad quant magic");
  const std::uint32_t wire_bits = c.u32();
  if (wire_bits != static_cast<std::uint32_t>(bits)) {
    throw CodecError("codec: quant_bits mismatch");
  }
  const std::uint32_t count = c.u32();
  if (count == 0) throw CodecError("codec: empty quantized payload");
  const std::int64_t weight = c.i64();
  const std::int64_t scale = c.i64();
  if (scale < 0) throw CodecError("codec: negative quant scale");
  const std::size_t n = count - 1;
  const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
  const std::size_t packed = (n * static_cast<std::size_t>(bits) + 7) / 8;
  BitReader br(c.need(packed), packed);
  expect_done(c);

  Payload p;
  p.values.reserve(count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t q = br.get_signed(bits);
    if (q < -qmax || q > qmax) throw CodecError("codec: quantized value out of range");
    p.values.push_back(dequantize(q, scale, qmax));
  }
  p.values.push_back(weight);
  return p;
}

Bytes encode_topk(const Payload& p, double frac, EncodeStats* stats) {
  check_topk_frac(frac);
  if (p.values.empty()) throw CodecError("codec: cannot sparsify an empty payload");
  const std::size_t n = p.values.size() - 1;
  const std::size_t kept = topk_kept(n, frac);

  // Deterministic selection: magnitude descending, index ascending on ties.
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  const auto louder = [&](std::uint32_t a, std::uint32_t b) {
    const std::int64_t va = p.values[a] < 0 ? -p.values[a] : p.values[a];
    const std::int64_t vb = p.values[b] < 0 ? -p.values[b] : p.values[b];
    return va != vb ? va > vb : a < b;
  };
  if (kept < n) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kept) - 1,
                     idx.end(), louder);
  }
  std::vector<std::uint8_t> bitmap((n + 7) / 8, 0);
  for (std::size_t i = 0; i < kept; ++i) {
    bitmap[idx[i] / 8] |= static_cast<std::uint8_t>(1u << (idx[i] % 8));
  }

  Writer w;
  w.put<std::uint32_t>(kTopkMagic);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(p.values.size()));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(kept));
  w.put<std::int64_t>(p.values.back());  // weight, exact
  w.put_raw(bitmap);
  double error_sq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1u) {
      w.put<std::int64_t>(p.values[i]);
    } else {
      const double err = static_cast<double>(p.values[i]);
      error_sq += err * err;
    }
  }

  Bytes out = w.take();
  if (stats != nullptr) {
    stats->raw_bytes = Payload::wire_size(p.values.size());
    stats->encoded_bytes = out.size();
    stats->error_sq = error_sq;
  }
  return out;
}

Payload decode_topk(BytesView data, double frac) {
  check_topk_frac(frac);
  Cursor c(data);
  if (c.u32() != kTopkMagic) throw CodecError("codec: bad topk magic");
  const std::uint32_t count = c.u32();
  if (count == 0) throw CodecError("codec: empty sparsified payload");
  const std::uint32_t kept = c.u32();
  const std::int64_t weight = c.i64();
  const std::size_t n = count - 1;
  if (kept > n || kept != topk_kept(n, frac)) {
    throw CodecError("codec: topk kept-count mismatch");
  }
  const std::uint8_t* bitmap = c.need((n + 7) / 8);
  std::size_t marked = 0;
  for (std::size_t i = 0; i < n; ++i) marked += (bitmap[i / 8] >> (i % 8)) & 1u;
  if (marked != kept) throw CodecError("codec: topk bitmap/kept mismatch");

  Payload p;
  p.values.assign(count, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1u) p.values[i] = c.i64();
  }
  p.values.back() = weight;
  expect_done(c);
  return p;
}

}  // namespace

const char* codec_name(Codec c) {
  switch (c) {
    case Codec::kDense:
      return "dense";
    case Codec::kQuant:
      return "quant";
    case Codec::kTopK:
      return "topk";
  }
  return "unknown";
}

Bytes encode_payload(const Payload& p, const CodecConfig& cfg, std::uint64_t seed,
                     EncodeStats* stats) {
  switch (cfg.codec) {
    case Codec::kQuant:
      return encode_quant(p, cfg.quant_bits, seed, stats);
    case Codec::kTopK:
      return encode_topk(p, cfg.topk_frac, stats);
    case Codec::kDense:
      break;
  }
  Bytes out = p.serialize();
  if (stats != nullptr) {
    stats->raw_bytes = out.size();
    stats->encoded_bytes = out.size();
    stats->error_sq = 0;
  }
  return out;
}

Payload decode_payload(BytesView data, const CodecConfig& cfg) {
  switch (cfg.codec) {
    case Codec::kQuant:
      return decode_quant(data, cfg.quant_bits);
    case Codec::kTopK:
      return decode_topk(data, cfg.topk_frac);
    case Codec::kDense:
      break;
  }
  return Payload::deserialize(data);
}

Payload reconstruct_payload(const Payload& p, const CodecConfig& cfg, std::uint64_t seed) {
  if (cfg.codec == Codec::kDense) return p;
  const Bytes wire = encode_payload(p, cfg, seed);
  return decode_payload(wire, cfg);
}

std::uint64_t codec_seed(std::uint32_t trainer, std::uint32_t iter, std::uint32_t partition) {
  // splitmix64 finalizer over a fixed-salt pack of the upload identity.
  std::uint64_t x = 0xC0DEC5EEDULL;
  x ^= (static_cast<std::uint64_t>(trainer) << 40) ^ (static_cast<std::uint64_t>(iter) << 16) ^
       partition;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace dfl::core
