// Where trainers' gradients come from. The delay experiments (Figures 1-2)
// use synthetic byte payloads of a chosen size; the convergence
// demonstration plugs in real model training.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

class GradientSource {
 public:
  virtual ~GradientSource() = default;

  /// Fixed-point encoded gradient vector (num_params elements, no weight).
  [[nodiscard]] virtual std::vector<std::int64_t> gradient(std::uint32_t trainer,
                                                           std::uint32_t iter) = 0;

  /// Simulated local training time for this round.
  [[nodiscard]] virtual sim::TimeNs train_time(std::uint32_t trainer, std::uint32_t iter) = 0;

  /// Called once per round by the runner with the decoded average gradient
  /// (the semantics every trainer derives from the downloaded updates).
  virtual void apply_global_update(const std::vector<double>& avg_gradient,
                                   std::uint32_t iter) = 0;
};

/// Random small-magnitude gradients of a fixed dimension; deterministic in
/// (seed, trainer, iter) so repeated runs are identical.
class SyntheticGradientSource final : public GradientSource {
 public:
  SyntheticGradientSource(std::size_t num_params, sim::TimeNs train_time,
                          std::uint64_t seed = 1, int frac_bits = 16);

  [[nodiscard]] std::vector<std::int64_t> gradient(std::uint32_t trainer,
                                                   std::uint32_t iter) override;
  [[nodiscard]] sim::TimeNs train_time(std::uint32_t trainer, std::uint32_t iter) override;
  void apply_global_update(const std::vector<double>& avg_gradient, std::uint32_t iter) override;

  /// The average gradient applied after the latest completed round.
  [[nodiscard]] const std::vector<double>& last_update() const { return last_update_; }

 private:
  std::size_t num_params_;
  sim::TimeNs train_time_;
  std::uint64_t seed_;
  int frac_bits_;
  std::vector<double> last_update_;
};

/// Real federated training: one shared model replica (all trainers hold
/// identical parameters — aggregation is exact) and per-trainer shards.
class MlGradientSource final : public GradientSource {
 public:
  MlGradientSource(std::unique_ptr<ml::Model> model, std::vector<ml::Dataset> shards,
                   double learning_rate, sim::TimeNs train_time, int frac_bits = 16,
                   std::size_t batch_size = 0, std::uint64_t seed = 7);

  [[nodiscard]] std::vector<std::int64_t> gradient(std::uint32_t trainer,
                                                   std::uint32_t iter) override;
  [[nodiscard]] sim::TimeNs train_time(std::uint32_t trainer, std::uint32_t iter) override;
  void apply_global_update(const std::vector<double>& avg_gradient, std::uint32_t iter) override;

  [[nodiscard]] ml::Model& model() { return *model_; }
  [[nodiscard]] const ml::Model& model() const { return *model_; }
  [[nodiscard]] const std::vector<ml::Dataset>& shards() const { return shards_; }

 private:
  std::unique_ptr<ml::Model> model_;
  std::vector<ml::Dataset> shards_;
  double learning_rate_;
  sim::TimeNs train_time_;
  int frac_bits_;
  std::size_t batch_size_;
  Rng rng_;
};

}  // namespace dfl::core
