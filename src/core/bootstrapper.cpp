#include "core/bootstrapper.hpp"

#include <stdexcept>

#include "directory/replicated.hpp"

namespace dfl::core {

Bootstrapper::Bootstrapper(sim::Network& net, std::vector<sim::Host*> hosts, ipfs::Swarm& swarm,
                           TaskSpec spec, std::string task_domain)
    : hosts_(std::move(hosts)), spec_(std::move(spec)) {
  if (hosts_.empty()) {
    throw std::invalid_argument("Bootstrapper: need at least one directory host");
  }
  if (spec_.options.verifiable) {
    // One generator per element of the largest partition, plus the weight.
    key_ = std::make_unique<crypto::PedersenKey>(crypto::Curve::get(spec_.options.curve),
                                                 task_domain, spec_.max_partition_size() + 1,
                                                 spec_.options.msm_mode);
    verifier_ = std::make_unique<PayloadVerifier>(*key_);
  }
  directory::DirectoryConfig dir_config;
  dir_config.verifiable = spec_.options.verifiable;
  if (hosts_.size() == 1) {
    directory_ = std::make_unique<directory::DirectoryService>(net, *hosts_.front(), swarm,
                                                               dir_config, key_.get(),
                                                               verifier_.get());
  } else {
    directory_ = std::make_unique<directory::ReplicatedDirectory>(net, hosts_, swarm,
                                                                  dir_config, key_.get(),
                                                                  verifier_.get());
  }
  publish_assignment();
}

void Bootstrapper::publish_assignment() {
  for (std::size_t p = 0; p < spec_.num_partitions(); ++p) {
    const PartitionAssignment& pa = spec_.assignment(p);
    for (std::size_t j = 0; j < pa.aggregators.size(); ++j) {
      for (const std::uint32_t t : pa.trainers[j]) {
        directory_->set_assignment(static_cast<std::uint32_t>(p), pa.aggregators[j], t);
      }
    }
  }
}

}  // namespace dfl::core
