// Bridges the simulation's observability data into the obs exporters:
// converts sim::Network transfer records into obs::WireSlice rows (naming
// chunked-plane traffic "chunk_xfer", small control frames "ctl", bulk
// monolithic moves "xfer") and names each host's track after the host, so
// the Perfetto export shows per-host protocol lanes with the wire activity
// underneath. Lives in core because obs must not depend on sim types.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/export.hpp"
#include "sim/net.hpp"

namespace dfl::core {

/// Converts the network's retained transfer trace (net.trace()) into wire
/// slices for obs::write_perfetto. Requires net.set_tracing(true) during
/// the run; an empty trace yields an empty vector.
[[nodiscard]] std::vector<obs::WireSlice> wire_slices(const sim::Network& net);

/// Registers every host's name as its obs track name (track id == host id)
/// plus the process track ("rounds"), so the export is human-readable.
void name_host_tracks(sim::Network& net);

/// One-call export: names tracks, snapshots the tracer, converts the
/// network trace, and writes the complete Chrome trace_event document.
void write_trace(std::ostream& os, sim::Network& net);

}  // namespace dfl::core
