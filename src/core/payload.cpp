#include "core/payload.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serde.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {

Bytes Payload::serialize() const {
  Writer w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(values.size()));
  for (const std::int64_t v : values) w.put<std::int64_t>(v);
  return w.take();
}

std::size_t Payload::serialized_size(BytesView data) {
  if (data.size() < 4) throw PayloadError("Payload: truncated header");
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  return wire_size(n);
}

Payload Payload::deserialize(BytesView data) {
  const std::size_t declared = serialized_size(data);
  if (data.size() < declared) throw PayloadError("Payload: truncated elements");
  if (data.size() > declared) throw PayloadError("Payload: trailing bytes");
  Reader r(data);
  const auto n = r.get<std::uint32_t>();
  Payload p;
  p.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.values.push_back(r.get<std::int64_t>());
  return p;
}

Payload Payload::add(const Payload& a, const Payload& b) {
  if (a.values.size() != b.values.size()) {
    throw std::invalid_argument("Payload::add: size mismatch");
  }
  Payload out;
  out.values.resize(a.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    out.values[i] = a.values[i] + b.values[i];
  }
  return out;
}

std::vector<double> Payload::average(int frac_bits) const {
  if (values.size() < 2 || weight() <= 0) {
    throw std::logic_error("Payload::average: missing or nonpositive weight");
  }
  const double w = static_cast<double>(weight());
  std::vector<double> out;
  out.reserve(values.size() - 1);
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    out.push_back(crypto::decode_fixed(values[i], frac_bits) / w);
  }
  return out;
}

Bytes PayloadMerger::merge(const std::vector<BytesView>& blocks) const {
  if (blocks.empty()) return Payload{}.serialize();
  if (codec_.codec != Codec::kDense) {
    Payload acc = decode_payload(blocks.front(), codec_);
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      acc = Payload::add(acc, decode_payload(blocks[i], codec_));
    }
    return acc.serialize();
  }
  Payload acc = Payload::deserialize(blocks.front());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    acc = Payload::add(acc, Payload::deserialize(blocks[i]));
  }
  return acc.serialize();
}

namespace {

constexpr std::uint64_t kHeader = 4;  // uint32 element count

std::int64_t load_i64(const std::uint8_t* p) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return static_cast<std::int64_t>(u);
}

void append_i64(Bytes& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (std::size_t i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

}  // namespace

std::uint64_t PayloadMerger::merge_boundary(std::uint64_t limit, std::uint64_t total) const {
  if (limit >= total) return total;
  // Encoded blocks are opaque until complete: no partial boundary exists.
  if (codec_.codec != Codec::kDense) return 0;
  if (limit < kHeader) return 0;
  return std::min(total, kHeader + 8 * ((limit - kHeader) / 8));
}

Bytes PayloadMerger::merge_range(const std::vector<BytesView>& parts, std::uint64_t from,
                                 std::uint64_t to) const {
  if (parts.empty() || to <= from) return {};
  if (codec_.codec != Codec::kDense) {
    // merge_boundary only ever returns 0 or total for encoded blocks, so
    // the one legal range is the whole block: decode-and-fold it.
    if (from != 0) {
      throw std::logic_error("PayloadMerger: encoded payloads merge whole blocks only");
    }
    std::vector<BytesView> whole;
    whole.reserve(parts.size());
    for (const BytesView& p : parts) whole.push_back(p.first(to));
    return merge(whole);
  }
  Bytes out;
  out.reserve(to - from);
  // Header range: all inputs must agree on the element count; emit it once.
  for (std::uint64_t pos = from; pos < std::min(to, kHeader); ++pos) {
    const std::uint8_t b = parts.front()[pos];
    for (const BytesView& p : parts) {
      if (p[pos] != b) throw PayloadError("PayloadMerger: header mismatch");
    }
    out.push_back(b);
  }
  // Element range: position-aligned int64 sums, exactly Payload::add.
  for (std::uint64_t pos = std::max(from, kHeader); pos < to; pos += 8) {
    std::int64_t sum = 0;
    for (const BytesView& p : parts) sum += load_i64(p.data() + pos);
    append_i64(out, sum);
  }
  return out;
}

}  // namespace dfl::core
