#include "core/payload.hpp"

#include <stdexcept>

#include "common/serde.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {

Bytes Payload::serialize() const {
  Writer w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(values.size()));
  for (const std::int64_t v : values) w.put<std::int64_t>(v);
  return w.take();
}

Payload Payload::deserialize(BytesView data) {
  Reader r(data);
  const auto n = r.get<std::uint32_t>();
  Payload p;
  p.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.values.push_back(r.get<std::int64_t>());
  return p;
}

Payload Payload::add(const Payload& a, const Payload& b) {
  if (a.values.size() != b.values.size()) {
    throw std::invalid_argument("Payload::add: size mismatch");
  }
  Payload out;
  out.values.resize(a.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    out.values[i] = a.values[i] + b.values[i];
  }
  return out;
}

std::vector<double> Payload::average(int frac_bits) const {
  if (values.size() < 2 || weight() <= 0) {
    throw std::logic_error("Payload::average: missing or nonpositive weight");
  }
  const double w = static_cast<double>(weight());
  std::vector<double> out;
  out.reserve(values.size() - 1);
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    out.push_back(crypto::decode_fixed(values[i], frac_bits) / w);
  }
  return out;
}

Bytes PayloadMerger::merge(const std::vector<BytesView>& blocks) const {
  if (blocks.empty()) return Payload{}.serialize();
  Payload acc = Payload::deserialize(blocks.front());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    acc = Payload::add(acc, Payload::deserialize(blocks[i]));
  }
  return acc.serialize();
}

}  // namespace dfl::core
