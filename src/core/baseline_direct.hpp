// The original IPLS baseline [17]: direct peer-to-peer communication.
// Trainers send each gradient partition straight to its aggregator over a
// point-to-point link, aggregators synchronize directly with each other,
// and broadcast the updated partition back to every trainer. This is the
// "direct" series of Figure 1 — the assumption the paper relaxes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/payload.hpp"
#include "sim/net.hpp"
#include "sim/sync.hpp"

namespace dfl::core {

struct DirectConfig {
  std::size_t num_trainers = 16;
  std::size_t num_partitions = 1;
  std::size_t partition_elements = 16 * 1024;
  std::size_t aggs_per_partition = 1;
  double participant_mbps = 10.0;
  sim::TimeNs link_latency = sim::from_millis(5);
  sim::TimeNs train_time = sim::from_seconds(1);
};

struct DirectRoundResult {
  /// First gradient send start -> all gradients at the aggregators.
  double aggregation_delay_s = 0;
  /// Aggregator-to-aggregator partial exchange time (0 when |A_i| == 1).
  double sync_delay_s = 0;
  /// Until every trainer holds the full updated model.
  double round_time_s = 0;
  std::uint64_t bytes_per_aggregator = 0;
};

/// Self-contained single-round simulation of direct IPLS.
class DirectIplsBaseline {
 public:
  explicit DirectIplsBaseline(DirectConfig config);
  ~DirectIplsBaseline();

  DirectRoundResult run_round();

 private:
  DirectConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::Host*> trainers_;
  std::vector<sim::Host*> aggregators_;  // [partition * aggs_per_partition + slot]
};

}  // namespace dfl::core
