// Deployment: wires the whole system together — simulator, network,
// storage swarm, pub/sub, bootstrapper/directory, trainers and aggregators
// — and drives FL rounds, collecting the metrics the paper plots.
//
// This is the main entry point of the library:
//
//   core::DeploymentConfig cfg;
//   cfg.num_trainers = 16; ...
//   core::Deployment d(cfg);
//   auto rounds = d.run(5);
//   std::cout << rounds[0].mean_aggregation_delay_s();
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/aggregator.hpp"
#include "core/bootstrapper.hpp"
#include "core/context.hpp"
#include "core/slo.hpp"
#include "core/trainer.hpp"
#include "ml/dataset.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"

namespace dfl::obs {
class TimeSeriesWriter;
struct RoundCriticalPath;
}  // namespace dfl::obs

namespace dfl::core {

struct DeploymentConfig {
  // Scale.
  std::size_t num_trainers = 16;
  std::size_t num_partitions = 1;
  /// Gradient elements per partition (excluding the weight element).
  /// Wire size of one partition ≈ 8 bytes × (elements + 1).
  std::size_t partition_elements = 16 * 1024;
  std::size_t aggs_per_partition = 1;
  std::size_t num_ipfs_nodes = 4;
  /// |P_ij|: providers per aggregator (merge-and-download placement).
  std::size_t providers_per_agg = 1;

  // Links (the paper uses symmetric 10 or 20 Mbps).
  double participant_mbps = 10.0;
  double node_mbps = 10.0;
  double directory_mbps = 100.0;
  sim::TimeNs link_latency = sim::from_millis(5);

  Schedule schedule{sim::from_seconds(600), sim::from_seconds(1200), sim::from_millis(100)};
  ProtocolOptions options;

  /// Local training compute time per round.
  sim::TimeNs train_time = sim::from_seconds(1);

  /// Malicious/faulty aggregators: global aggregator id -> behaviour.
  std::map<std::uint32_t, AggBehavior> behaviors;
  /// Unreliable trainers: trainer id -> behaviour.
  std::map<std::uint32_t, TrainerBehavior> trainer_behaviors;

  /// Event-engine shards (K). 0 = auto: $DFL_SHARDS when set, else 1.
  /// K = 1 runs the serial engine exactly as before. K > 1 drives the
  /// round through conservative lookahead windows (sequenced mode: one
  /// window at a time in deterministic order, so results are bit-identical
  /// to K = 1), switches the event queue to window-calendar buckets, and
  /// fills RoundMetrics::sharding with window/locality counters.
  std::uint32_t shards = 0;

  std::uint64_t seed = 1;
  std::string task_domain = "dfl/task/v1";
  /// Chaos schedule applied to the deployment (leave empty for a fault-free
  /// run). Host ids are raw network ids; storage nodes are created first,
  /// so storage node i is host id i (0 <= i < num_ipfs_nodes). Identical
  /// (config, plan) pairs reproduce bit-identical runs.
  sim::FaultPlan fault_plan;
  /// Directory replicas (>1 uses ReplicatedDirectory: no single point of
  /// failure, at the cost of write amplification).
  std::size_t directory_replicas = 1;

  /// Declarative chaos scenario (inactive when name is empty; see
  /// sim/scenario.hpp and core::apply_scenario). When active, the
  /// deployment samples per-role link configs from scenario.links,
  /// expands the generators into fault_plan at construction, enables
  /// provider-record expiry/republish, and arms chaos *incrementally*
  /// per round so long horizons never fast-forward the clock.
  sim::ScenarioSpec scenario;
};

/// Applies `spec`'s [deployment] overrides and seed/rounds suggestions
/// onto `cfg` and attaches the scenario (cfg.scenario = spec). Returns the
/// scenario's suggested round count (0 = caller decides). CLI flags that
/// should win over the file must be applied to `cfg` *after* this call;
/// the fault plan itself is built inside the Deployment constructor from
/// the final config, so a later seed override still reshapes the chaos.
/// Throws sim::ScenarioError on an unknown [deployment] key.
int apply_scenario(const sim::ScenarioSpec& spec, DeploymentConfig& cfg);

/// Role -> host-id map for a config, mirroring the Deployment's host
/// creation order: "nodes" (storage, ids 0..), then "directory",
/// "trainers", "aggregators".
[[nodiscard]] sim::RoleMap deployment_roles(const DeploymentConfig& cfg);

struct RunSummary {
  std::vector<RoundMetrics> rounds;
  /// Accuracy after each round (ML source only; empty otherwise).
  std::vector<double> accuracy;
  std::vector<double> loss;
  /// Per-round decoded global updates (async driver only; the sync path
  /// exposes last_global_update() after each run_round instead). An empty
  /// entry marks a round whose global update was incomplete.
  std::vector<std::vector<double>> updates;
};

class Deployment {
 public:
  /// If `source` is null a SyntheticGradientSource of the right size is
  /// created. Pass an MlGradientSource for real training.
  explicit Deployment(DeploymentConfig config,
                      std::unique_ptr<GradientSource> source = nullptr);
  ~Deployment();
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Runs one FL iteration to quiescence and returns its metrics.
  RoundMetrics run_round(std::uint32_t iter);

  /// Runs `rounds` iterations; evaluates on `eval` after each when given.
  /// Dispatches to the barrier-free driver when options.async_rounds is on.
  RunSummary run(int rounds, const ml::Dataset* eval = nullptr);

  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] Context& context() { return *ctx_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] ipfs::Swarm& swarm() { return *swarm_; }
  [[nodiscard]] directory::Directory& directory() { return boot_->directory(); }
  /// The directory replica hosts (size = config().directory_replicas).
  [[nodiscard]] const std::vector<sim::Host*>& directory_hosts() const {
    return directory_hosts_;
  }
  [[nodiscard]] GradientSource& source() { return *source_; }
  /// Null unless options.verifiable.
  [[nodiscard]] crypto::Engine* engine() { return engine_.get(); }
  /// Calibration result (zeros unless options.calibrate_crypto ran).
  [[nodiscard]] const crypto::Calibration& calibration() const { return calibration_; }
  /// Null when no fault plan was configured.
  [[nodiscard]] const sim::FaultInjector* fault_injector() const { return fault_.get(); }
  [[nodiscard]] Trainer& trainer(std::size_t i) { return *trainers_.at(i); }
  [[nodiscard]] Aggregator& aggregator(std::size_t i) { return *aggregators_.at(i); }
  [[nodiscard]] std::size_t num_aggregators() const { return aggregators_.size(); }

  /// Resolved shard count (config.shards, or $DFL_SHARDS when that is 0).
  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  /// Host -> shard assignment (every host on shard 0 when shards() == 1).
  [[nodiscard]] const sim::ShardPlacement& shard_placement() const { return placement_; }
  /// The conservative window width of the current round, ns (0 at K = 1).
  [[nodiscard]] sim::TimeNs lookahead() const { return lookahead_; }

  /// The decoded average gradient assembled by the directory's view after
  /// run_round (empty if any partition's update is missing).
  [[nodiscard]] const std::vector<double>& last_global_update() const {
    return last_global_update_;
  }

  /// Streams windowed registry samples on the *simulated* clock: while
  /// rounds run, the driver samples `writer` at every `period` boundary —
  /// after all events before the boundary, before any at/after it — so
  /// enabling sampling never changes event order, simulated time, or
  /// results. `writer` must outlive the deployment's runs.
  void enable_metrics_sampling(obs::TimeSeriesWriter& writer, sim::TimeNs period);

  /// In-engine SLO evaluator (null unless the scenario has [slo] clauses).
  /// run_round / the async driver evaluate round-scoped clauses per round
  /// into RoundMetrics::slo_breaches.
  [[nodiscard]] SloEvaluator* slo() { return slo_.get(); }
  /// Evaluates the end-of-run [slo] clauses (completion-rate mean,
  /// rounds_complete_min, crashes_min). Call once after the last round;
  /// returns {} when no evaluator is active.
  std::vector<SloBreach> finalize_slos();

 private:
  /// Returns the number of partitions whose global update was assembled.
  std::size_t collect_global_update(std::uint32_t iter);
  /// Re-derives the conservative window width from the network's
  /// cross-shard latency floor plus the fault plan's jitter floor.
  [[nodiscard]] sim::TimeNs derive_lookahead() const;
  /// Barrier-free driver (options.async_rounds): spawns every round's
  /// actors up front on a fixed launch cadence, then drives the engine in
  /// round-deadline segments — each boundary collects and applies that
  /// round's global update while later rounds keep training/uploading.
  RunSummary run_async(int rounds, const ml::Dataset* eval);
  /// Advances the engine to time `end` (serial run_before at K = 1;
  /// sequenced lookahead windows at K > 1 — the windows only partition the
  /// same total event order, so results are bit-identical at any K).
  /// `end == kNoEvent` drives to quiescence.
  void advance(sim::TimeNs end, ShardingRecord& rec);
  /// advance(), interleaving metrics samples at period boundaries when
  /// sampling is enabled (samples only read state, never schedule events).
  void drive_until(sim::TimeNs end, ShardingRecord& rec);
  /// Fills m.critical_path from a fresh trace analysis (tracing runs only).
  void attach_critical_path(RoundMetrics& m);
  static void fill_critical_path(RoundMetrics& m, const obs::RoundCriticalPath& rcp);

  DeploymentConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::FaultInjector> fault_;
  std::unique_ptr<ipfs::Swarm> swarm_;
  std::unique_ptr<ipfs::PubSub> pubsub_;
  std::unique_ptr<GradientSource> source_;
  std::unique_ptr<Bootstrapper> boot_;
  std::unique_ptr<Context> ctx_;
  std::unique_ptr<crypto::Engine> engine_;
  crypto::Calibration calibration_;
  std::vector<std::unique_ptr<Trainer>> trainers_;
  std::vector<std::unique_ptr<Aggregator>> aggregators_;
  std::vector<sim::Host*> directory_hosts_;
  std::vector<double> last_global_update_;
  std::uint32_t shards_ = 1;
  sim::ShardPlacement placement_;
  sim::TimeNs lookahead_ = 0;
  /// Lifetime total of lookahead windows executed (the registry collector
  /// reads this; per-round deltas live in RoundMetrics::sharding).
  std::uint64_t windows_total_ = 0;
  /// Scenario mode: chaos is armed per round (arm_until) instead of all
  /// at once, so end-of-round drains never fast-forward the clock.
  bool incremental_chaos_ = false;
  /// In-engine [slo] evaluation (null when the scenario has no clauses).
  std::unique_ptr<SloEvaluator> slo_;
  /// Simulated-clock metrics sampling (enable_metrics_sampling).
  obs::TimeSeriesWriter* sampler_ = nullptr;
  sim::TimeNs sample_period_ = 0;
  sim::TimeNs next_sample_ = 0;
};

}  // namespace dfl::core
