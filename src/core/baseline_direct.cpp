#include "core/baseline_direct.hpp"

#include <algorithm>

namespace dfl::core {

namespace {

struct RoundState {
  std::size_t gradients_expected = 0;
  std::size_t gradients_arrived = 0;
  sim::TimeNs first_send = -1;
  sim::TimeNs gather_done = -1;
  sim::TimeNs sync_done = -1;
  sim::TimeNs all_models_done = -1;
  std::size_t trainers_done = 0;
  std::uint64_t bytes_per_aggregator = 0;
};

}  // namespace

DirectIplsBaseline::DirectIplsBaseline(DirectConfig config) : config_(config) {
  sim_ = std::make_unique<sim::Simulator>();
  net_ = std::make_unique<sim::Network>(*sim_);
  const sim::HostConfig link{config_.participant_mbps * 1e6, config_.participant_mbps * 1e6,
                             config_.link_latency};
  for (std::size_t t = 0; t < config_.num_trainers; ++t) {
    trainers_.push_back(&net_->add_host("t" + std::to_string(t), link));
  }
  for (std::size_t a = 0; a < config_.num_partitions * config_.aggs_per_partition; ++a) {
    aggregators_.push_back(&net_->add_host("a" + std::to_string(a), link));
  }
}

DirectIplsBaseline::~DirectIplsBaseline() = default;

DirectRoundResult DirectIplsBaseline::run_round() {
  const std::uint64_t partition_bytes = Payload::wire_size(config_.partition_elements + 1);
  RoundState st;
  st.gradients_expected = config_.num_trainers * config_.num_partitions;

  sim::SyncEvent gather_done_ev(*sim_);

  // Trainers: train, then push each partition directly to its aggregator
  // (trainer t's aggregator for partition p is slot t % A, like the
  // round-robin assignment of the main protocol).
  auto trainer_proc = [this, &st, partition_bytes, &gather_done_ev](std::size_t t)
      -> sim::Task<void> {
    co_await sim_->sleep(config_.train_time);
    if (st.first_send < 0) st.first_send = sim_->now();
    for (std::size_t p = 0; p < config_.num_partitions; ++p) {
      sim::Host& agg =
          *aggregators_[p * config_.aggs_per_partition + (t % config_.aggs_per_partition)];
      co_await net_->transfer(*trainers_[t], agg, partition_bytes);
      ++st.gradients_arrived;
      st.bytes_per_aggregator += partition_bytes;
      if (st.gradients_arrived == st.gradients_expected) {
        st.gather_done = sim_->now();
        gather_done_ev.set();
      }
    }
  };
  for (std::size_t t = 0; t < config_.num_trainers; ++t) {
    sim_->spawn(trainer_proc(t));
  }

  // Aggregators: once gathering finishes, exchange partials all-to-all
  // within each partition, then broadcast the updated partition to all
  // trainers.
  auto agg_proc = [this, &st, partition_bytes, &gather_done_ev](std::size_t p, std::size_t j)
      -> sim::Task<void> {
    co_await gather_done_ev.wait();
    const std::size_t a_index = p * config_.aggs_per_partition + j;
    sim::Host& me = *aggregators_[a_index];
    if (config_.aggs_per_partition > 1) {
      for (std::size_t other = 0; other < config_.aggs_per_partition; ++other) {
        if (other == j) continue;
        co_await net_->transfer(me, *aggregators_[p * config_.aggs_per_partition + other],
                                partition_bytes);
        st.bytes_per_aggregator += partition_bytes;
      }
      st.sync_done = std::max(st.sync_done, sim_->now());
    }
    // Broadcast the updated partition to every trainer. Only aggregator
    // slot 0 of each partition broadcasts (it holds the global partition).
    if (j == 0) {
      for (sim::Host* t : trainers_) {
        co_await net_->transfer(me, *t, partition_bytes);
      }
      st.all_models_done = std::max(st.all_models_done, sim_->now());
    }
  };
  for (std::size_t p = 0; p < config_.num_partitions; ++p) {
    for (std::size_t j = 0; j < config_.aggs_per_partition; ++j) {
      sim_->spawn(agg_proc(p, j));
    }
  }

  sim_->run();

  DirectRoundResult result;
  if (st.first_send >= 0 && st.gather_done >= 0) {
    result.aggregation_delay_s = sim::to_seconds(st.gather_done - st.first_send);
  }
  if (st.sync_done >= 0 && st.gather_done >= 0) {
    result.sync_delay_s = sim::to_seconds(st.sync_done - st.gather_done);
  }
  if (st.all_models_done >= 0 && st.first_send >= 0) {
    result.round_time_s = sim::to_seconds(st.all_models_done - st.first_send);
  }
  const std::size_t n_aggs = aggregators_.size();
  result.bytes_per_aggregator = n_aggs == 0 ? 0 : st.bytes_per_aggregator / n_aggs;
  return result;
}

}  // namespace dfl::core
