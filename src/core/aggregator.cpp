#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.hpp"
#include "common/serde.hpp"
#include "sim/span.hpp"

namespace dfl::core {

namespace {

/// Async folds are integer-scaled so the staleness-weighted mean stays
/// exact: a fresh gradient carries factor 256, one s iterations old carries
/// round(256/(1+s)^α). The weight element scales along with the values, so
/// Payload::average divides by the exact factor sum — no floating-point in
/// the accumulation domain.
constexpr std::int64_t kAsyncWeightOne = 256;
/// How many prior iterations the staleness cover looks back through.
constexpr std::uint32_t kStaleDepth = 2;

std::int64_t stale_factor(std::uint32_t staleness, double alpha) {
  const double f = static_cast<double>(kAsyncWeightOne) /
                   std::pow(1.0 + static_cast<double>(staleness), alpha);
  return std::max<std::int64_t>(1, std::llround(f));
}

/// Zero payload of the right shape (used when nothing was gathered).
Payload zero_payload(std::size_t elements) {
  Payload p;
  p.values.assign(elements + 1, 0);
  return p;
}

Bytes encode_sync_message(std::uint32_t agg_id, const ipfs::Cid& cid) {
  Writer w;
  w.put<std::uint32_t>(agg_id);
  w.put_raw(BytesView(cid.digest().data(), cid.digest().size()));
  return w.take();
}

std::pair<std::uint32_t, ipfs::Cid> decode_sync_message(BytesView msg) {
  Reader r(msg);
  const auto agg_id = r.get<std::uint32_t>();
  Bytes digest(32);
  for (auto& b : digest) b = r.get<std::uint8_t>();
  return {agg_id, ipfs::Cid::from_digest(digest)};
}

}  // namespace

std::string Aggregator::sync_topic(std::uint32_t iter) const {
  return "sync/" + std::to_string(partition_) + "/" + std::to_string(iter);
}

sim::Task<void> Aggregator::run_round(std::uint32_t iter, sim::TimeNs round_start,
                                      RoundMetrics& metrics) {
  co_await ctx_.sim.sleep_until(round_start);
  if (behavior_ == AggBehavior::kOffline) {
    co_return;  // never shows up this round; peers must cover
  }
  AggregatorRecord& rec = metrics.aggregators.at(global_id_);
  rec.partition = partition_;
  sim::ScopedSpan round_span(ctx_.sim, "round", host_.id(), ctx_.round_span);
  round_span.attr("aggregator", static_cast<std::int64_t>(global_id_));
  round_span.attr("partition", static_cast<std::int64_t>(partition_));
  round_span.attr("iter", static_cast<std::int64_t>(iter));

  const PartitionAssignment& pa = ctx_.spec.assignment(partition_);
  const bool multi = pa.aggregators.size() > 1;
  // Subscribe before gathering so no sync announcement can be missed.
  if (multi) {
    (void)ctx_.pubsub.subscribe(sync_topic(iter), host_);
  }

  const sim::TimeNs t_train_abs = round_start + ctx_.spec.schedule.t_train;
  const sim::TimeNs t_sync_abs = round_start + ctx_.spec.schedule.t_sync;
  const sim::TimeNs gather_deadline = t_train_abs + (t_sync_abs - t_train_abs) / 4;

  // A malicious "dropping" aggregator simply never requests one of its
  // trainers' gradients.
  std::vector<std::uint32_t> wanted = pa.trainers.at(slot_);
  if (behavior_ == AggBehavior::kDropsGradients && !wanted.empty()) {
    wanted.erase(wanted.begin());
  }

  GatherResult g;
  {
    sim::ScopedSpan gather_span(ctx_.sim, "gather", host_.id(), round_span.id());
    g = co_await gather(iter, wanted, gather_deadline, rec, gather_span.id());
    gather_span.attr("gradients", static_cast<std::int64_t>(g.received.size()));
  }
  Payload partial =
      g.sum ? std::move(*g.sum) : zero_payload(ctx_.spec.partition_size(partition_));
  corrupt(partial, wanted, iter);
  rec.gather_done_at = ctx_.sim.now();
  rec.gradients_aggregated = g.received.size();

  std::optional<Payload> global;
  if (multi) {
    global = co_await synchronize(iter, round_start, std::move(partial), metrics, rec,
                                  round_span.id());
    rec.sync_done_at = ctx_.sim.now();
  } else {
    global = std::move(partial);
    rec.sync_done_at = rec.gather_done_at;
  }
  if (!global) co_return;
  // Nothing aggregated this round (e.g. every trainer offline): there is
  // no meaningful update to publish.
  if (global->weight() <= 0) {
    DFL_WARN("aggregator") << "a" << global_id_ << " has no contributions for partition "
                           << partition_ << "; not publishing";
    co_return;
  }

  // Only the first aggregator to register the (verified) global update
  // writes back; later slots back off progressively so the common case has
  // exactly one writer, while a failed writer is still covered.
  sim::ScopedSpan write_span(ctx_.sim, "global_write", host_.id(), round_span.id());
  if (multi) {
    co_await ctx_.sim.sleep(static_cast<sim::TimeNs>(slot_) * sim::from_seconds(2));
    obs::set_ambient_span(write_span.id());
    const auto existing = co_await ctx_.dir.poll(host_, partition_, iter,
                                                 directory::EntryType::kGlobalUpdate);
    if (!existing.empty()) co_return;
  }
  const bool ok = co_await upload_and_announce(iter, *global,
                                               directory::EntryType::kGlobalUpdate, rec, nullptr,
                                               write_span.id());
  if (ok) {
    rec.global_written_at = ctx_.sim.now();
  } else {
    rec.rejected_by_directory = true;
    ++metrics.rejected_updates;
  }
}

sim::Task<Aggregator::GatherResult> Aggregator::gather(
    std::uint32_t iter, const std::vector<std::uint32_t>& trainers, sim::TimeNs deadline,
    AggregatorRecord& rec, obs::SpanId span) {
  GatherResult g;
  const std::set<std::uint32_t> expected(trainers.begin(), trainers.end());
  if (expected.empty()) co_return g;

  const bool merge_mode = ctx_.spec.options.merge_and_download;
  const bool async = ctx_.spec.options.async_rounds;
  const CodecConfig cc = codec_config(ctx_.spec.options);

  // Individual gradient blocks arrive codec-encoded; merged pre-aggregates
  // always come back dense (the storage-node merger decodes before folding).
  auto decode_wire = [&](const Block& data) {
    return cc.codec == Codec::kDense ? Payload::deserialize(data) : decode_payload(data, cc);
  };

  // provider node -> expected trainers stored there (deterministic rule).
  std::map<std::uint32_t, std::set<std::uint32_t>> groups;
  for (const std::uint32_t t : trainers) {
    groups[ctx_.spec.provider_for(partition_, t)].insert(t);
  }
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, ipfs::Cid>>> ready;
  std::set<std::uint32_t> seen;
  std::set<std::uint32_t> merged_providers;

  // Individual-gradient commitments, fetched lazily once (verifiable merge).
  std::optional<std::map<std::uint32_t, crypto::Commitment>> grad_commitments;

  auto absorb = [&](const Payload& p, const std::set<std::uint32_t>& from,
                    std::int64_t factor) {
    if (async) {
      if (factor == kAsyncWeightOne) {
        rec.fresh_folds += from.size();
      } else {
        rec.stale_folds += from.size();
      }
      Payload scaled = p;
      for (std::int64_t& v : scaled.values) v *= factor;
      g.sum = g.sum ? Payload::add(*g.sum, scaled) : std::move(scaled);
    } else {
      g.sum = g.sum ? Payload::add(*g.sum, p) : p;
    }
    g.received.insert(from.begin(), from.end());
  };

  // One gradient through the routing layer, absorbed on arrival. Both
  // degradation paths below fan these out concurrently — a dead replica's
  // retries overlap the healthy downloads instead of serializing after
  // them. Integer sums are order-independent, so concurrent completion
  // order cannot change the aggregate.
  auto fetch_gradient = [&](std::uint32_t t, ipfs::Cid cid) -> sim::Task<void> {
    try {
      // Spawned: re-arm the gather span explicitly for each attempt.
      obs::set_ambient_span(span);
      const Block data = co_await ctx_.swarm.fetch_with_retry(host_, cid, ctx_.spec.options.retry,
                                                              deadline, &rec.rpc);
      rec.bytes_received += data.size();
      absorb(decode_wire(data), {t}, kAsyncWeightOne);
    } catch (const std::exception&) {
      DFL_WARN("aggregator") << "a" << global_id_ << " gradient of t" << t
                             << " unavailable on every replica";
    }
  };

  auto merge_group = [&](std::uint32_t provider_id)
      -> sim::Task<void> {
    auto& list = ready[provider_id];
    if (list.empty()) co_return;
    sim::ScopedSpan merge_span(ctx_.sim, "merge_get", host_.id(), span);
    merge_span.attr("provider", static_cast<std::int64_t>(provider_id));
    merge_span.attr("gradients", static_cast<std::int64_t>(list.size()));
    std::vector<ipfs::Cid> cids;
    std::set<std::uint32_t> from;
    for (const auto& [t, cid] : list) {
      cids.push_back(cid);
      from.insert(t);
    }
    obs::set_ambient_span(merge_span.id());
    const auto merged = co_await ctx_.swarm.merge_get_with_retry(
        provider_id, host_, cids, ctx_.merger, ctx_.spec.options.retry, deadline, &rec.rpc);
    if (!merged) {
      // Provider down or block missing after retries: degrade gracefully to
      // fetching each gradient through the routing layer (replicas on other
      // nodes still serve it).
      DFL_WARN("aggregator") << "a" << global_id_ << " merge at node " << provider_id
                             << " failed; fetching individually";
      ++rec.merge_fallbacks;
      sim::TaskGroup fetches(ctx_.sim);
      for (const auto& [t, cid] : list) fetches.spawn(fetch_gradient(t, cid));
      co_await fetches.join();
      list.clear();
      merged_providers.insert(provider_id);
      co_return;
    }
    ++rec.merge_requests;
    rec.bytes_received += merged->size();
    Payload payload = Payload::deserialize(*merged);

    bool accept = true;
    if (ctx_.spec.options.verifiable) {
      // Check the pre-aggregation against the product of the commitments
      // of the gradients it claims to contain (Section IV-B, last ¶).
      // Groups merge concurrently, so the cached commitment list may have
      // been fetched before this group's trainers registered theirs:
      // refetch whenever a needed commitment is absent.
      bool have_all = grad_commitments.has_value();
      if (have_all) {
        for (const std::uint32_t t : from) {
          if (!grad_commitments->contains(t)) {
            have_all = false;
            break;
          }
        }
      }
      if (!have_all) {
        obs::set_ambient_span(merge_span.id());
        const auto list2 = co_await ctx_.dir.gradient_commitments(host_, partition_, iter);
        grad_commitments.emplace();
        for (const auto& [t, c] : list2) grad_commitments->emplace(t, c);
      }
      std::vector<crypto::Commitment> parts;
      for (const std::uint32_t t : from) {
        const auto it = grad_commitments->find(t);
        if (it == grad_commitments->end()) {
          accept = false;
          break;
        }
        parts.push_back(it->second);
      }
      co_await ctx_.sim.sleep(ctx_.commit_cost(payload.values.size()));
      accept = accept && ctx_.verify(ctx_.key->add_all(parts), payload.values);
      if (!accept) {
        DFL_WARN("aggregator") << "a" << global_id_
                               << " merge result failed verification; falling back to "
                                  "individual downloads from node "
                               << provider_id;
        // Un-merged fallback: fetch each gradient directly, concurrently.
        ++rec.merge_fallbacks;
        sim::TaskGroup fetches(ctx_.sim);
        for (const auto& [t, cid] : list) fetches.spawn(fetch_gradient(t, cid));
        co_await fetches.join();
      }
    }
    if (accept) absorb(payload, from, kAsyncWeightOne);
    list.clear();
    merged_providers.insert(provider_id);
  };

  // Merge groups (and plain-path downloads under the DAG plane) run
  // concurrently with the polling loop: a slow provider's merge overlaps
  // the next group's announcement instead of serializing behind it. The
  // group is always joined before gather returns — the lambdas above live
  // in this frame.
  sim::TaskGroup inflight(ctx_.sim);
  std::exception_ptr gather_error;
  try {
    for (;;) {
      obs::set_ambient_span(span);
      const auto entries =
          co_await ctx_.dir.poll(host_, partition_, iter, directory::EntryType::kGradient);
      for (const auto& e : entries) {
        if (!expected.contains(e.uploader_id) || seen.contains(e.uploader_id)) continue;
        seen.insert(e.uploader_id);
        if (merge_mode) {
          ready[ctx_.spec.provider_for(partition_, e.uploader_id)].emplace_back(e.uploader_id,
                                                                                e.cid);
        } else {
          // Plain path: download each gradient as it appears, bounded by the
          // gather deadline (straggler tolerance: a dead provider costs
          // retries, never the whole round). Concurrent: the next announced
          // gradient starts downloading while this one is still in flight.
          inflight.spawn(fetch_gradient(e.uploader_id, e.cid));
        }
      }
      if (merge_mode) {
        // Merge a provider's batch as soon as all its trainers have announced.
        for (auto& [prov, group] : groups) {
          if (merged_providers.contains(prov)) continue;
          if (ready[prov].size() == group.size()) {
            merged_providers.insert(prov);
            inflight.spawn(merge_group(prov));
          }
        }
      }
      if (g.received.size() == expected.size()) break;
      if (ctx_.sim.now() > deadline) {
        if (merge_mode) {
          // Deadline: merge whatever partial groups are available.
          for (auto& [prov, list] : ready) {
            if (!merged_providers.contains(prov) && !list.empty()) {
              merged_providers.insert(prov);
              inflight.spawn(merge_group(prov));
            }
          }
        }
        break;
      }
      co_await ctx_.sim.sleep(ctx_.spec.schedule.poll_interval);
    }
  } catch (...) {
    // co_await is illegal inside a catch block: capture, drain, rethrow.
    gather_error = std::current_exception();
  }
  // Async staleness cover: a trainer that missed this iteration's gather
  // deadline is represented by its most recent prior-iteration gradient,
  // folded with weight round(256/(1+s)^α). Runs only after the fresh folds
  // settle, so it never races an upload that would still have made it.
  if (async && gather_error == nullptr && iter > 0) {
    co_await inflight.join();
    if (g.received.size() < expected.size()) {
      sim::ScopedSpan fold_span(ctx_.sim, "async_fold", host_.id(), span);
      fold_span.attr("iter", static_cast<std::int64_t>(iter));
      const sim::TimeNs stale_deadline =
          ctx_.sim.now() + (ctx_.spec.schedule.t_sync - ctx_.spec.schedule.t_train) / 4;
      auto fetch_stale = [&](std::uint32_t t, ipfs::Cid cid,
                             std::uint32_t staleness) -> sim::Task<void> {
        sim::ScopedSpan stale_span(ctx_.sim, "stale_update", host_.id(), fold_span.id());
        stale_span.attr("trainer", static_cast<std::int64_t>(t));
        stale_span.attr("staleness", static_cast<std::int64_t>(staleness));
        const std::int64_t factor = stale_factor(staleness, ctx_.spec.options.staleness_alpha);
        stale_span.attr("factor", factor);
        try {
          obs::set_ambient_span(stale_span.id());
          const Block data = co_await ctx_.swarm.fetch_with_retry(
              host_, cid, ctx_.spec.options.retry, stale_deadline, &rec.rpc);
          rec.bytes_received += data.size();
          absorb(decode_wire(data), {t}, factor);
        } catch (const std::exception&) {
          DFL_WARN("aggregator") << "a" << global_id_ << " stale gradient of t" << t
                                 << " unavailable on every replica";
        }
      };
      sim::TaskGroup stale_fetches(ctx_.sim);
      std::set<std::uint32_t> covered;
      std::exception_ptr stale_error;
      try {
        // Freshest first: a trainer found at staleness s is not re-fetched
        // at s+1.
        for (std::uint32_t s = 1; s <= kStaleDepth && s <= iter; ++s) {
          if (g.received.size() + covered.size() >= expected.size()) break;
          obs::set_ambient_span(fold_span.id());
          const auto entries = co_await ctx_.dir.poll(host_, partition_, iter - s,
                                                      directory::EntryType::kGradient);
          for (const auto& e : entries) {
            if (!expected.contains(e.uploader_id) || g.received.contains(e.uploader_id) ||
                covered.contains(e.uploader_id)) {
              continue;
            }
            covered.insert(e.uploader_id);
            stale_fetches.spawn(fetch_stale(e.uploader_id, e.cid, s));
          }
        }
      } catch (...) {
        stale_error = std::current_exception();
      }
      co_await stale_fetches.join();
      fold_span.attr("stale", static_cast<std::int64_t>(covered.size()));
      if (stale_error != nullptr) std::rethrow_exception(stale_error);
    }
  }
  co_await inflight.join();
  if (gather_error != nullptr) std::rethrow_exception(gather_error);
  co_return g;
}

sim::Task<std::optional<Payload>> Aggregator::synchronize(std::uint32_t iter,
                                                          sim::TimeNs round_start,
                                                          Payload own_partial,
                                                          RoundMetrics& metrics,
                                                          AggregatorRecord& rec,
                                                          obs::SpanId parent_span) {
  const PartitionAssignment& pa = ctx_.spec.assignment(partition_);
  const sim::TimeNs t_sync_abs = round_start + ctx_.spec.schedule.t_sync;
  auto& mailbox = ctx_.pubsub.subscribe(sync_topic(iter), host_);
  sim::ScopedSpan sync_span(ctx_.sim, "sync", host_.id(), parent_span);

  // Upload own partial, register it, and announce the hash over pub/sub.
  ipfs::Cid own_cid;
  (void)co_await upload_and_announce(iter, own_partial, directory::EntryType::kPartialUpdate,
                                     rec, &own_cid, sync_span.id());
  obs::set_ambient_span(sync_span.id());
  co_await ctx_.pubsub.publish(host_, sync_topic(iter), encode_sync_message(global_id_, own_cid));

  std::map<std::uint32_t, Payload> partials;  // by aggregator global id
  partials.emplace(global_id_, std::move(own_partial));

  // Batched verification (options.batch_verify): peer partials are accepted
  // provisionally and the whole round is checked in one random-linear-
  // combination MSM after the gather loop; only on failure do we pay for
  // per-partial checks to identify the culprits.
  const bool batched = ctx_.spec.options.verifiable && ctx_.spec.options.batch_verify &&
                       ctx_.engine != nullptr;
  std::vector<std::uint32_t> pending_ids;
  std::vector<crypto::Commitment> pending_cs;

  while (partials.size() < pa.aggregators.size() && ctx_.sim.now() < t_sync_abs) {
    if (mailbox.empty()) {
      co_await ctx_.sim.sleep(ctx_.spec.schedule.poll_interval);
      continue;
    }
    const Block msg = co_await mailbox.receive();
    const auto [peer_id, cid] = decode_sync_message(msg);
    if (partials.contains(peer_id)) continue;
    Block data;
    try {
      obs::set_ambient_span(sync_span.id());
      data = co_await ctx_.swarm.fetch_with_retry(host_, cid, ctx_.spec.options.retry,
                                                  t_sync_abs, &rec.rpc);
    } catch (const std::exception& e) {
      DFL_WARN("aggregator") << "a" << global_id_ << " failed to fetch partial of a" << peer_id
                             << ": " << e.what();
      continue;
    }
    rec.bytes_received += data.size();
    Payload payload = Payload::deserialize(data);
    if (ctx_.spec.options.verifiable) {
      // A partial must open the accumulated commitment of that peer's T_ij.
      obs::set_ambient_span(sync_span.id());
      const crypto::Commitment acc =
          co_await ctx_.dir.aggregator_commitment(host_, partition_, peer_id, iter);
      if (batched) {
        pending_ids.push_back(peer_id);
        pending_cs.push_back(acc);
      } else {
        co_await ctx_.sim.sleep(ctx_.commit_cost(payload.values.size()));
        if (!ctx_.verify(acc, payload.values)) {
          ++metrics.rejected_updates;
          DFL_WARN("aggregator") << "a" << global_id_ << " REJECTED partial from a" << peer_id
                                 << " (commitment mismatch)";
          continue;  // treat as missing; covered below if we are responsible
        }
      }
    }
    partials.emplace(peer_id, std::move(payload));
  }

  if (batched && !pending_ids.empty()) {
    std::vector<std::vector<std::int64_t>> openings;
    openings.reserve(pending_ids.size());
    std::size_t batch_elements = 0;
    for (const std::uint32_t peer : pending_ids) {
      openings.push_back(partials.at(peer).values);
      batch_elements = std::max(batch_elements, openings.back().size());
    }
    // Simulated cost of the folded check: one generator MSM over the
    // largest opening plus one small per-commitment MSM — against k full
    // verifications on the per-partial path.
    co_await ctx_.sim.sleep(ctx_.commit_cost(batch_elements + pending_ids.size()));
    if (!ctx_.engine->verify_batch(pending_cs, openings)) {
      // Someone cheated: identify the culprits individually and drop them.
      for (std::size_t i = 0; i < pending_ids.size(); ++i) {
        co_await ctx_.sim.sleep(ctx_.commit_cost(openings[i].size()));
        if (!ctx_.verify(pending_cs[i], openings[i])) {
          partials.erase(pending_ids[i]);
          ++metrics.rejected_updates;
          DFL_WARN("aggregator") << "a" << global_id_ << " REJECTED partial from a"
                                 << pending_ids[i] << " (batched commitment mismatch)";
        }
      }
    }
  }

  // Cover for peers whose (valid) partial never arrived: the live
  // aggregator with the smallest id among contributors downloads the
  // missing trainers' gradients itself.
  if (partials.size() < pa.aggregators.size()) {
    const std::uint32_t coverer = partials.begin()->first;  // smallest id present
    if (coverer == global_id_) {
      for (std::size_t j = 0; j < pa.aggregators.size(); ++j) {
        const std::uint32_t peer = pa.aggregators[j];
        if (partials.contains(peer)) continue;
        DFL_INFO("aggregator") << "a" << global_id_ << " covering for a" << peer;
        rec.covered_for_peer = true;
        GatherResult g = co_await gather(iter, pa.trainers[j], t_sync_abs, rec, sync_span.id());
        if (g.sum) partials.emplace(peer, std::move(*g.sum));
      }
    } else {
      // Give the coverer time; poll the directory for its replacement
      // partial registrations is out of scope — the coverer folds the
      // recovered gradients into the global update itself.
      co_return std::nullopt;
    }
  }

  Payload global = zero_payload(ctx_.spec.partition_size(partition_));
  for (auto& [id, p] : partials) global = Payload::add(global, p);
  co_return global;
}

sim::Task<bool> Aggregator::upload_and_announce(std::uint32_t iter, const Payload& payload,
                                                directory::EntryType type,
                                                AggregatorRecord& rec, ipfs::Cid* out_cid,
                                                obs::SpanId span) {
  const PartitionAssignment& pa = ctx_.spec.assignment(partition_);
  // Spread update uploads across this aggregator's provider set so partial
  // exchange in the sync phase doesn't funnel through one storage node.
  // Dead providers are retried, then skipped (failover to the next in the
  // set). Not bounded by t_sync: publishing a late global update still
  // beats losing the round.
  const auto& provs = pa.providers.at(slot_);
  // Serialize once; replicas and retries below share the buffer.
  const Block data(payload.serialize());
  const std::size_t want_copies =
      type == directory::EntryType::kGlobalUpdate
          ? std::min(ctx_.spec.options.update_replicas, provs.size())
          : 1;  // partial updates are fetched a few times only
  const directory::Addr addr{global_id_, partition_, iter, type};

  if (ctx_.spec.options.chunking == ipfs::ChunkingMode::kDag) {
    // Chunked plane: the root CID is computable locally, so announce FIRST
    // — downloaders discover the update and stream its leaves while the
    // upload is still on our uplink (announce-before-upload overlap). One
    // primary copy goes out synchronously; further replicas spread
    // node-to-node in the background, off this writer's uplink.
    //
    // Exception: a verifiable directory fetches a global update at announce
    // time to check it opens the accumulated commitment, so the announce
    // must wait until a copy is actually fetchable.
    const bool announce_early =
        !(ctx_.spec.options.verifiable && type == directory::EntryType::kGlobalUpdate);
    const ipfs::Cid root = ipfs::Chunker(ctx_.spec.options.chunk_size).root_cid(data);
    if (out_cid != nullptr) *out_cid = root;
    if (announce_early) {
      obs::set_ambient_span(span);
      if (!co_await ctx_.dir.announce(host_, addr, root)) co_return false;
    }
    // All replica uploads launch together: their leaves queue FIFO on our
    // uplink, so the first copy lands exactly as fast as a lone upload and
    // the rest trail right behind it — no idle uplink between replicas, and
    // downloaders stripe across copies as each leaf's record appears.
    std::size_t copies = 0;
    sim::TaskGroup puts(ctx_.sim);
    auto put_replica = [this, &data, &root, &rec, &copies, span](std::uint32_t node_id)
        -> sim::Task<void> {
      // Spawned: re-arm the enclosing span explicitly.
      obs::set_ambient_span(span);
      const auto got = co_await ctx_.swarm.put_with_retry(node_id, host_, data,
                                                          ctx_.spec.options.retry, -1, &rec.rpc);
      if (!got) {
        DFL_WARN("aggregator") << "a" << global_id_ << " update upload to node " << node_id
                               << " failed after retries";
        ++rec.rpc.failovers;
        co_return;
      }
      if (*got != root) {
        DFL_WARN("aggregator") << "a" << global_id_
                               << " announced root does not match stored root";
      }
      ++copies;
    };
    for (std::size_t k = 0; k < provs.size() && k < want_copies; ++k) {
      puts.spawn(put_replica(provs[(global_id_ + k) % provs.size()]));
    }
    co_await puts.join();
    if (copies == 0) {
      DFL_WARN("aggregator") << "a" << global_id_ << " could not store its update anywhere";
      co_return false;
    }
    // A failed target leaves us short a replica: spread node-to-node.
    if (copies < want_copies) ctx_.swarm.replicate_background(root, want_copies);
    if (!announce_early) {
      obs::set_ambient_span(span);
      co_return co_await ctx_.dir.announce(host_, addr, root);
    }
    co_return true;
  }

  ipfs::Cid cid;
  std::size_t copies = 0;
  for (std::size_t k = 0; k < provs.size() && copies < want_copies; ++k) {
    const std::uint32_t node_id = provs[(global_id_ + k) % provs.size()];
    obs::set_ambient_span(span);
    const auto got = co_await ctx_.swarm.put_with_retry(node_id, host_, data,
                                                        ctx_.spec.options.retry, -1, &rec.rpc);
    if (!got) {
      DFL_WARN("aggregator") << "a" << global_id_ << " update upload to node " << node_id
                             << " failed after retries";
      if (copies == 0) ++rec.rpc.failovers;
      continue;
    }
    cid = *got;
    ++copies;
  }
  if (copies == 0) {
    DFL_WARN("aggregator") << "a" << global_id_ << " could not store its update anywhere";
    co_return false;
  }
  if (out_cid != nullptr) *out_cid = cid;
  obs::set_ambient_span(span);
  co_return co_await ctx_.dir.announce(host_, addr, cid);
}

void Aggregator::corrupt(Payload& partial, const std::vector<std::uint32_t>& /*trainers*/,
                         std::uint32_t iter) {
  if (behavior_ == AggBehavior::kAltersGradients && !partial.values.empty()) {
    // Poison a few elements deterministically (reproducible attacks).
    partial.values[0] += 1 << 20;
    partial.values[partial.values.size() / 2] -= static_cast<std::int64_t>(iter + 1) << 16;
  }
}

}  // namespace dfl::core
