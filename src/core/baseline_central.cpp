#include "core/baseline_central.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/payload.hpp"
#include "crypto/encoding.hpp"

namespace dfl::core {

CentralizedFl::CentralizedFl(CentralConfig config, std::shared_ptr<GradientSource> source)
    : config_(config), source_(std::move(source)) {
  if (source_ == nullptr) {
    source_ = std::make_shared<SyntheticGradientSource>(config_.num_params,
                                                        config_.train_time);
  }
  sim_ = std::make_unique<sim::Simulator>();
  net_ = std::make_unique<sim::Network>(*sim_);
  const sim::HostConfig link{config_.participant_mbps * 1e6, config_.participant_mbps * 1e6,
                             config_.link_latency};
  for (std::size_t t = 0; t < config_.num_trainers; ++t) {
    trainers_.push_back(&net_->add_host("t" + std::to_string(t), link));
  }
  server_ = &net_->add_host("server", sim::HostConfig{config_.server_mbps * 1e6,
                                                      config_.server_mbps * 1e6,
                                                      config_.link_latency});
}

CentralizedFl::~CentralizedFl() = default;

CentralRoundResult CentralizedFl::run_round(std::uint32_t iter) {
  const std::uint64_t grad_bytes = Payload::wire_size(config_.num_params + 1);
  CentralRoundResult result;

  struct State {
    sim::TimeNs first_send = -1;
    sim::TimeNs gather_done = -1;
    sim::TimeNs round_done = -1;
    std::size_t arrived = 0;
    std::vector<std::int64_t> sum;
    std::int64_t weight = 0;
  } st;
  st.sum.assign(config_.num_params, 0);

  auto trainer_proc = [this, &st, grad_bytes, iter](std::size_t t) -> sim::Task<void> {
    const auto grad = source_->gradient(static_cast<std::uint32_t>(t), iter);
    co_await sim_->sleep(source_->train_time(static_cast<std::uint32_t>(t), iter));
    if (st.first_send < 0) st.first_send = sim_->now();
    co_await net_->transfer(*trainers_[t], *server_, grad_bytes);
    for (std::size_t i = 0; i < st.sum.size(); ++i) st.sum[i] += grad[i];
    st.weight += 1;
    if (++st.arrived == config_.num_trainers) st.gather_done = sim_->now();
  };
  for (std::size_t t = 0; t < config_.num_trainers; ++t) sim_->spawn(trainer_proc(t));
  sim_->run();
  if (st.gather_done < 0) {
    throw std::logic_error("CentralizedFl: gather never completed");
  }

  // Server pushes the averaged update back to every trainer.
  auto broadcast = [this, &st, grad_bytes]() -> sim::Task<void> {
    for (sim::Host* t : trainers_) {
      co_await net_->transfer(*server_, *t, grad_bytes);
    }
    st.round_done = sim_->now();
  };
  sim_->spawn(broadcast());
  sim_->run();

  // Semantics: identical averaging rule as the decentralized protocol.
  std::vector<double> avg(st.sum.size());
  for (std::size_t i = 0; i < avg.size(); ++i) {
    avg[i] = crypto::decode_fixed(st.sum[i], config_.frac_bits) /
             static_cast<double>(st.weight);
  }
  source_->apply_global_update(avg, iter);

  result.aggregation_delay_s = sim::to_seconds(st.gather_done - st.first_send);
  result.round_time_s = sim::to_seconds(st.round_done - st.first_send);
  result.server_bytes_received = config_.num_trainers * grad_bytes;
  return result;
}

}  // namespace dfl::core
