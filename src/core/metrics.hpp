// Per-round measurement records — the quantities the paper's evaluation
// plots: aggregation delay, synchronization delay, upload delay, and bytes
// received per aggregator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipfs/retry.hpp"
#include "sim/datapath.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

struct TrainerRecord {
  double upload_delay_total_s = 0;  // sum over partition uploads this round
  int uploads = 0;
  sim::TimeNs model_ready_at = -1;  // when the full updated model was assembled
  bool aborted = false;             // missed t_train
  bool offline = false;             // skipped the round entirely
  bool update_missing = false;      // some partition never appeared by deadline
  bool audit_failed = false;        // downloaded update did not open its commitment
  ipfs::RetryStats rpc;             // storage-RPC attempts/retries/timeouts/failovers
};

struct AggregatorRecord {
  std::uint32_t partition = 0;
  sim::TimeNs gather_done_at = -1;     // all assigned gradients aggregated
  sim::TimeNs sync_done_at = -1;       // global partition update formed
  sim::TimeNs global_written_at = -1;  // directory accepted the global update
  std::uint64_t bytes_received = 0;    // gradient + partial-update payload bytes
  std::uint64_t gradients_aggregated = 0;
  std::uint64_t merge_requests = 0;
  std::uint64_t merge_fallbacks = 0;  // merge_get degraded to individual fetches
  std::uint64_t fresh_folds = 0;      // async: gradients folded at their own iter
  std::uint64_t stale_folds = 0;      // async: prior-iter gradients folded late
  bool covered_for_peer = false;  // downloaded an offline peer's gradients
  bool rejected_by_directory = false;
  ipfs::RetryStats rpc;  // storage-RPC attempts/retries/timeouts/failovers
};

/// Crypto-engine activity during one round (delta of the engine's
/// monotonic counters). Wall times are real (measurement) ns, not simulated
/// time; `calibrated_ns_per_element` is nonzero only when calibration ran.
struct CryptoRecord {
  std::uint64_t commits = 0;
  std::uint64_t verifies = 0;
  std::uint64_t batch_verifies = 0;
  std::uint64_t committed_elements = 0;
  std::uint64_t commit_wall_ns = 0;
  std::uint64_t verify_wall_ns = 0;
  std::size_t threads = 0;
  double calibrated_ns_per_element = 0;
  double parallel_speedup = 0;
  // Dispatch the round's crypto ran on (static storage, safe to copy).
  const char* backend = "scalar";
  const char* isa = "scalar";
};

/// Host-side data-plane activity during one round: the delta of the
/// process-wide sim::DataPathStats counters plus simulator throughput.
/// Measurement only — none of this feeds back into simulated time.
struct DataPathRecord {
  sim::DataPathStats stats;             // copies vs shares, hashes vs cache hits
  std::uint64_t sim_events = 0;         // simulator events this round
  std::uint64_t wall_ns = 0;            // real time spent running the round
  [[nodiscard]] double events_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(sim_events) /
                              (static_cast<double>(wall_ns) * 1e-9);
  }
};

/// One round's view of the sharded-engine driver (zeros at K = 1, where
/// the serial fast path runs and no windows exist).
struct ShardingRecord {
  std::uint32_t shards = 1;
  sim::TimeNs lookahead_ns = 0;        // conservative window width this round
  std::uint64_t windows = 0;           // lookahead windows executed
  std::uint64_t max_window_events = 0; // densest window (parallelism ceiling)
  std::uint64_t cross_shard_transfers = 0;  // deliveries crossing a barrier
  std::uint64_t local_shard_transfers = 0;  // deliveries kept shard-local
  /// Fraction of deliveries that stayed inside their shard — the placement
  /// quality signal (1.0 = no barrier traffic at all).
  [[nodiscard]] double locality() const {
    const auto total = cross_shard_transfers + local_shard_transfers;
    return total == 0 ? 1.0
                      : static_cast<double>(local_shard_transfers) /
                            static_cast<double>(total);
  }
};

/// Payload-codec activity during one round: raw vs encoded gradient bytes
/// and the reconstruction error the lossy codecs introduced. All zeros for
/// the dense identity codec.
struct CodecRecord {
  std::uint64_t encodes = 0;        // gradient partitions encoded
  std::uint64_t raw_bytes = 0;      // dense wire bytes the uploads would be
  std::uint64_t encoded_bytes = 0;  // bytes actually shipped
  double error_sq = 0;  // summed squared reconstruction error, fixed-point units
  /// Encoded-vs-raw byte ratio (1.0 for dense / no uploads).
  [[nodiscard]] double compression() const {
    return encoded_bytes == 0 ? 1.0
                              : static_cast<double>(raw_bytes) /
                                    static_cast<double>(encoded_bytes);
  }
  /// L2 norm of the round's reconstruction error, fixed-point LSB units.
  [[nodiscard]] double error_norm() const;
};

/// Critical-path blame breakdown of one round, filled at quiescence from
/// obs::analyze_critical_paths when tracing is enabled (analyzed == false
/// otherwise — all-zero categories, no trace cost). The six category
/// durations partition [round span start, end] exactly, so they sum to
/// total_ns by construction; "dominant" names the single host and category
/// that owned the most critical-path time ("78% wire on s2/trainer7").
struct CriticalPathRecord {
  bool analyzed = false;
  sim::TimeNs total_ns = 0;
  sim::TimeNs train_ns = 0;
  sim::TimeNs crypto_ns = 0;
  sim::TimeNs wire_ns = 0;
  sim::TimeNs queue_ns = 0;   // queue-wait: pipes, polls, acks, peer progress
  sim::TimeNs stale_ns = 0;   // stale-wait: async_fold / stale_update
  sim::TimeNs merge_ns = 0;
  std::size_t segments = 0;   // path hops (maximal same-blame intervals)
  std::string dominant_host;  // most critical-path time ("s2/trainer7")
  sim::TimeNs dominant_host_ns = 0;
  std::string dominant_category;  // blame name with the largest share

  [[nodiscard]] sim::TimeNs category_sum() const {
    return train_ns + crypto_ns + wire_ns + queue_ns + stale_ns + merge_ns;
  }
  /// Share of the dominant category, in [0, 1] (0 when not analyzed).
  [[nodiscard]] double dominant_fraction() const;
};

/// One violated [slo] clause, evaluated in-engine (core::SloEvaluator).
struct SloBreach {
  std::string key;          // clause name, e.g. "round_p99_ms_max"
  double actual = 0;        // observed value at breach time
  double bound = 0;         // the clause's threshold
  /// Critical-path attribution of the breached round when available,
  /// e.g. "78% wire on s2/trainer7" (empty without tracing).
  std::string attribution;
};

struct RoundMetrics {
  std::uint32_t iter = 0;
  sim::TimeNs round_start = 0;
  sim::TimeNs first_gradient_announce = -1;  // directory write of the first hash
  sim::TimeNs round_done = -1;               // all trainers assembled the model
  std::vector<TrainerRecord> trainers;
  std::vector<AggregatorRecord> aggregators;
  int rejected_updates = 0;  // directory refusals (verifiable mode)
  double post_round_accuracy = -1;
  double post_round_loss = -1;
  CryptoRecord crypto;      // zeros when not verifiable
  CodecRecord codec;        // payload-codec bytes/error (zeros for dense)
  DataPathRecord datapath;  // host-side data-plane observability
  ShardingRecord sharding;  // sharded-engine window/locality counters
  /// Injector activity during this round (delta; zeros without chaos).
  sim::FaultStats faults;
  /// Partitions whose accepted global update was assembled post-round,
  /// and the total — the graceful-degradation signal scenario SLOs gate
  /// on (completion_rate()).
  std::size_t partitions_complete = 0;
  std::size_t partitions_total = 0;
  bool global_update_complete = false;
  /// Why the round took as long as it did (tracing runs only).
  CriticalPathRecord critical_path;
  /// [slo] clauses this round violated (in-engine evaluation; empty when
  /// the scenario has no [slo] section).
  std::vector<SloBreach> slo_breaches;

  void note_gradient_announce(sim::TimeNs at) {
    if (first_gradient_announce < 0 || at < first_gradient_announce) {
      first_gradient_announce = at;
    }
  }

  /// Mean over per-trainer mean upload delays, seconds.
  [[nodiscard]] double mean_upload_delay_s() const;
  /// Mean of (gather_done - first_announce) over aggregators, seconds.
  [[nodiscard]] double mean_aggregation_delay_s() const;
  /// Max over aggregators of (sync_done - first_announce), seconds: the
  /// "total aggregation delay" of Figure 2.
  [[nodiscard]] double total_aggregation_delay_s() const;
  /// Mean synchronization overhead (sync_done - gather_done), seconds.
  [[nodiscard]] double mean_sync_delay_s() const;
  /// Mean bytes received per aggregator.
  [[nodiscard]] double mean_aggregator_bytes() const;
  /// Storage-RPC resilience counters summed over every trainer and
  /// aggregator this round (chaos observability).
  [[nodiscard]] ipfs::RetryStats rpc_totals() const;
  /// Fraction of partitions with an accepted global update (1.0 when the
  /// round fully converged; 0 when partitions_total is unset).
  [[nodiscard]] double completion_rate() const {
    return partitions_total == 0
               ? 0.0
               : static_cast<double>(partitions_complete) /
                     static_cast<double>(partitions_total);
  }
};

}  // namespace dfl::core
