#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace dfl::core {

double CodecRecord::error_norm() const { return std::sqrt(error_sq); }

double CriticalPathRecord::dominant_fraction() const {
  if (!analyzed || total_ns <= 0) return 0.0;
  const sim::TimeNs mx = std::max({train_ns, crypto_ns, wire_ns, queue_ns, stale_ns, merge_ns});
  return static_cast<double>(mx) / static_cast<double>(total_ns);
}

double RoundMetrics::mean_upload_delay_s() const {
  double total = 0;
  int n = 0;
  for (const TrainerRecord& t : trainers) {
    if (t.uploads > 0) {
      total += t.upload_delay_total_s / t.uploads;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / n;
}

double RoundMetrics::mean_aggregation_delay_s() const {
  if (first_gradient_announce < 0) return 0.0;
  double total = 0;
  int n = 0;
  for (const AggregatorRecord& a : aggregators) {
    if (a.gather_done_at >= 0) {
      total += sim::to_seconds(a.gather_done_at - first_gradient_announce);
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / n;
}

double RoundMetrics::total_aggregation_delay_s() const {
  if (first_gradient_announce < 0) return 0.0;
  double mx = 0;
  for (const AggregatorRecord& a : aggregators) {
    const sim::TimeNs done = a.sync_done_at >= 0 ? a.sync_done_at : a.gather_done_at;
    if (done >= 0) {
      mx = std::max(mx, sim::to_seconds(done - first_gradient_announce));
    }
  }
  return mx;
}

double RoundMetrics::mean_sync_delay_s() const {
  double total = 0;
  int n = 0;
  for (const AggregatorRecord& a : aggregators) {
    if (a.sync_done_at >= 0 && a.gather_done_at >= 0) {
      total += sim::to_seconds(a.sync_done_at - a.gather_done_at);
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / n;
}

ipfs::RetryStats RoundMetrics::rpc_totals() const {
  ipfs::RetryStats total;
  for (const TrainerRecord& t : trainers) total += t.rpc;
  for (const AggregatorRecord& a : aggregators) total += a.rpc;
  return total;
}

double RoundMetrics::mean_aggregator_bytes() const {
  if (aggregators.empty()) return 0.0;
  double total = 0;
  for (const AggregatorRecord& a : aggregators) {
    total += static_cast<double>(a.bytes_received);
  }
  return total / static_cast<double>(aggregators.size());
}

}  // namespace dfl::core
