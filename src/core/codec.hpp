// Pluggable wire encodings for gradient payloads. Trainers encode each
// partition payload before storing it; aggregators (and the storage-node
// merger) decode before folding, so partial sums always accumulate in the
// exact int64 fixed-point domain regardless of what traveled on the wire
// (decode-on-fold). Three codecs:
//
//   kDense — the identity codec: the legacy `Payload` wire format,
//            byte-for-byte. Zero overhead, bit-identical behavior.
//   kQuant — uniform k-bit quantization against the payload's max
//            magnitude, with deterministic stochastic rounding (unbiased in
//            expectation; the rounding stream is seeded from the upload's
//            (trainer, iter, partition) identity so reruns are identical).
//   kTopK  — top-k magnitude sparsification: a presence bitmap plus the
//            kept elements verbatim, dropped elements decode to zero.
//
// The averaging weight (last element) is never quantized or dropped — sums
// of weights must stay exact for Payload::average.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/bytes.hpp"

namespace dfl::core {

struct Payload;

enum class Codec : std::uint8_t {
  kDense = 0,
  kQuant = 1,
  kTopK = 2,
};

/// Stable lowercase name ("dense", "quant", "topk") for flags/bench rows.
[[nodiscard]] const char* codec_name(Codec c);

struct CodecConfig {
  Codec codec = Codec::kDense;
  /// Bits per quantized element for kQuant, in [2, 16].
  int quant_bits = 8;
  /// Fraction of gradient elements kept by kTopK, in (0, 1].
  double topk_frac = 0.1;
};

/// Malformed encoded payload: truncated buffer, wrong magic, codec
/// mismatch, or an out-of-range codec parameter.
struct CodecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What one encode cost and lost (lossy codecs; dense reports equal byte
/// counts and zero error).
struct EncodeStats {
  std::size_t raw_bytes = 0;      // dense wire size of the input payload
  std::size_t encoded_bytes = 0;  // bytes actually shipped
  double error_sq = 0;  // squared reconstruction error, fixed-point units
};

/// Encodes `p` under `cfg`. Dense is the identity (`p.serialize()`).
/// `seed` drives kQuant's stochastic rounding; kDense/kTopK ignore it.
/// Throws CodecError on out-of-range codec parameters.
[[nodiscard]] Bytes encode_payload(const Payload& p, const CodecConfig& cfg, std::uint64_t seed,
                                   EncodeStats* stats = nullptr);

/// Decodes an encoded buffer back to the exact fixed-point payload the
/// receiver folds. Dense delegates to Payload::deserialize. Throws
/// CodecError (or PayloadError for dense) on malformed input.
[[nodiscard]] Payload decode_payload(BytesView data, const CodecConfig& cfg);

/// decode(encode(p)): the payload a receiver reconstructs. Verifiable mode
/// commits to this — the commitment must open what actually ships.
[[nodiscard]] Payload reconstruct_payload(const Payload& p, const CodecConfig& cfg,
                                          std::uint64_t seed);

/// Deterministic stochastic-rounding stream seed for one gradient upload:
/// a fixed-salt mix of (trainer, iter, partition), so every rerun rounds
/// identically and no two uploads share a stream.
[[nodiscard]] std::uint64_t codec_seed(std::uint32_t trainer, std::uint32_t iter,
                                       std::uint32_t partition);

}  // namespace dfl::core
