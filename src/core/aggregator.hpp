// The aggregator actor of Algorithm 1: gathers its trainers' gradient
// partitions from storage (optionally via merge-and-download), forms the
// partial update, synchronizes with the other aggregators of the same
// partition (pub/sub hash announcements + verification of partials in
// verifiable mode), forms the global partition update, and registers it
// with the directory. Supports the Section III-A malicious behaviours and
// covering for offline peers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/context.hpp"
#include "core/metrics.hpp"
#include "sim/task.hpp"

namespace dfl::core {

class Aggregator {
 public:
  /// `global_id` indexes metrics.aggregators and names this participant in
  /// directory announcements; `partition`/`slot` locate it in the spec
  /// (slot j within A_i).
  Aggregator(Context& ctx, std::uint32_t global_id, std::uint32_t partition, std::uint32_t slot,
             sim::Host& host, AggBehavior behavior = AggBehavior::kHonest)
      : ctx_(ctx),
        global_id_(global_id),
        partition_(partition),
        slot_(slot),
        host_(host),
        behavior_(behavior) {}

  [[nodiscard]] std::uint32_t global_id() const { return global_id_; }
  [[nodiscard]] std::uint32_t partition() const { return partition_; }
  [[nodiscard]] AggBehavior behavior() const { return behavior_; }
  void set_behavior(AggBehavior b) { behavior_ = b; }

  [[nodiscard]] sim::Task<void> run_round(std::uint32_t iter, sim::TimeNs round_start,
                                          RoundMetrics& metrics);

 private:
  struct GatherResult {
    std::optional<Payload> sum;        // sum of received gradient payloads
    std::set<std::uint32_t> received;  // trainers included
  };

  /// Phase 1: collect gradients of the given trainer set. Used both for our
  /// own T_ij and for covering an offline peer's set. `span` is the obs span
  /// the phase's transfers attribute to (explicit because the fetch/merge
  /// helpers are spawned, and ambient span context cannot cross a spawn).
  [[nodiscard]] sim::Task<GatherResult> gather(std::uint32_t iter,
                                               const std::vector<std::uint32_t>& trainers,
                                               sim::TimeNs deadline, AggregatorRecord& rec,
                                               obs::SpanId span);

  /// Phase 2: multi-aggregator synchronization; returns the global payload.
  [[nodiscard]] sim::Task<std::optional<Payload>> synchronize(std::uint32_t iter,
                                                              sim::TimeNs round_start,
                                                              Payload own_partial,
                                                              RoundMetrics& metrics,
                                                              AggregatorRecord& rec,
                                                              obs::SpanId parent_span);

  /// Uploads `payload` to our first provider and announces it; stores the
  /// resulting CID through `out_cid` when non-null. Retries/failovers are
  /// recorded in `rec.rpc`.
  [[nodiscard]] sim::Task<bool> upload_and_announce(std::uint32_t iter, const Payload& payload,
                                                    directory::EntryType type,
                                                    AggregatorRecord& rec, ipfs::Cid* out_cid,
                                                    obs::SpanId span);

  /// Applies this aggregator's malicious behaviour to a formed partial.
  void corrupt(Payload& partial, const std::vector<std::uint32_t>& trainers,
               std::uint32_t iter);

  [[nodiscard]] std::string sync_topic(std::uint32_t iter) const;

  Context& ctx_;
  std::uint32_t global_id_;
  std::uint32_t partition_;
  std::uint32_t slot_;
  sim::Host& host_;
  AggBehavior behavior_;
};

}  // namespace dfl::core
