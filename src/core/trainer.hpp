// The trainer actor of Algorithm 1: trains locally, splits the gradient
// into partitions, appends the averaging weight, uploads each partition to
// its designated IPFS provider, registers the hashes (and commitments in
// verifiable mode) with the directory, then polls for the globally updated
// partitions and reassembles the model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/context.hpp"
#include "core/metrics.hpp"
#include "sim/task.hpp"

namespace dfl::core {

class Trainer {
 public:
  Trainer(Context& ctx, std::uint32_t id, sim::Host& host,
          TrainerBehavior behavior = TrainerBehavior::kHonest)
      : ctx_(ctx), id_(id), host_(host), behavior_(behavior) {}

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] TrainerBehavior behavior() const { return behavior_; }
  void set_behavior(TrainerBehavior b) { behavior_ = b; }

  /// One full FL iteration (Algorithm 1, TRAINER). Fills metrics.trainers[id].
  [[nodiscard]] sim::Task<void> run_round(std::uint32_t iter, sim::TimeNs round_start,
                                          RoundMetrics& metrics);

  /// The averaged update this trainer assembled in its last completed round
  /// (empty if the round failed). Element count == spec.num_params().
  [[nodiscard]] const std::vector<double>& last_model_update() const { return last_update_; }

 private:
  [[nodiscard]] sim::Task<void> upload_gradients(std::uint32_t iter,
                                                 const std::vector<std::int64_t>& grad,
                                                 sim::TimeNs deadline, RoundMetrics& metrics,
                                                 TrainerRecord& rec, obs::SpanId span);
  [[nodiscard]] sim::Task<void> download_updates(std::uint32_t iter, sim::TimeNs deadline,
                                                 TrainerRecord& rec, obs::SpanId span);

  Context& ctx_;
  std::uint32_t id_;
  sim::Host& host_;
  TrainerBehavior behavior_;
  std::vector<double> last_update_;
};

}  // namespace dfl::core
