#include "core/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

SloEvaluator::SloEvaluator(std::vector<std::pair<std::string, double>> clauses)
    : clauses_(std::move(clauses)) {}

double SloEvaluator::running_percentile(double q) const {
  if (round_ms_.empty()) return 0.0;
  std::vector<double> ordered = round_ms_;
  std::sort(ordered.begin(), ordered.end());
  // Same nearest-rank rounding as tools/check_scenario.py, so the
  // in-engine verdict and the post-hoc gate can never disagree on the
  // full-run data. Python's round() is round-half-even, which is exactly
  // nearbyint() under the default FE_TONEAREST mode — llround() would
  // diverge at .5 midpoints.
  const auto n = static_cast<double>(ordered.size() - 1);
  auto idx = static_cast<std::size_t>(std::nearbyint(q / 100.0 * n));
  idx = std::min(idx, ordered.size() - 1);
  return ordered[idx];
}

void SloEvaluator::emit(SloBreach breach, const RoundMetrics* m, std::int64_t now_ns,
                        std::vector<SloBreach>& out) {
  if (m != nullptr && m->critical_path.analyzed && m->critical_path.total_ns > 0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.0f%% %s on %s",
                  100.0 * m->critical_path.dominant_fraction(),
                  m->critical_path.dominant_category.c_str(),
                  m->critical_path.dominant_host.c_str());
    breach.attribution = buf;
  }
  ++breaches_total_;
  obs::Registry& reg = obs::Registry::global();
  reg.counter("dfl.slo.breaches_total").add(1);
  reg.counter("dfl.slo.breach." + breach.key).add(1);
  obs::Tracer& tracer = obs::Tracer::instance();
  const obs::SpanToken t =
      tracer.begin("slo_breach", obs::kProcessTrack, now_ns, /*parent=*/0);
  if (t) {
    tracer.attr(t, "slo", breach.key);
    tracer.attr(t, "actual_x1000", static_cast<std::int64_t>(breach.actual * 1000.0));
    tracer.attr(t, "bound_x1000", static_cast<std::int64_t>(breach.bound * 1000.0));
    if (m != nullptr) tracer.attr(t, "iter", static_cast<std::int64_t>(m->iter));
    if (!breach.attribution.empty()) tracer.attr(t, "blame", breach.attribution);
    tracer.make_instant(t);
  }
  out.push_back(std::move(breach));
}

std::vector<SloBreach> SloEvaluator::on_round(const RoundMetrics& m, std::int64_t now_ns) {
  std::vector<SloBreach> out;
  ++rounds_seen_;
  if (m.partitions_total > 0) completion_sum_ += m.completion_rate();
  // "round complete" matches the JSONL field check_scenario.py counts: an
  // accepted global update covering every partition.
  if (m.global_update_complete) ++rounds_complete_;
  if (m.round_done >= 0) {
    round_ms_.push_back(sim::to_seconds(m.round_done - m.round_start) * 1e3);
  }
  crashes_ += m.faults.crashes;
  transfers_dropped_ += m.faults.transfers_dropped;
  payloads_corrupted_ += m.faults.payloads_corrupted;

  if (clauses_.empty()) return out;
  for (const auto& [key, bound] : clauses_) {
    if (key == "completion_rate_min") {
      if (m.partitions_total > 0 && m.completion_rate() < bound) {
        emit(SloBreach{key, m.completion_rate(), bound, {}}, &m, now_ns, out);
      }
    } else if (key == "round_p50_ms_max") {
      const double p = running_percentile(50);
      if (!round_ms_.empty() && p > bound) {
        emit(SloBreach{key, p, bound, {}}, &m, now_ns, out);
      }
    } else if (key == "round_p99_ms_max") {
      const double p = running_percentile(99);
      if (!round_ms_.empty() && p > bound) {
        emit(SloBreach{key, p, bound, {}}, &m, now_ns, out);
      }
    } else if (key == "transfers_dropped_max") {
      if (static_cast<double>(transfers_dropped_) > bound) {
        emit(SloBreach{key, static_cast<double>(transfers_dropped_), bound, {}}, &m,
             now_ns, out);
      }
    } else if (key == "payloads_corrupted_max") {
      if (static_cast<double>(payloads_corrupted_) > bound) {
        emit(SloBreach{key, static_cast<double>(payloads_corrupted_), bound, {}}, &m,
             now_ns, out);
      }
    }
    // completion-mean / rounds_complete_min / crashes_min are end-of-run
    // quantities: a breach mid-run would be noise, not signal.
  }
  return out;
}

std::vector<SloBreach> SloEvaluator::finalize(std::int64_t now_ns) {
  std::vector<SloBreach> out;
  if (clauses_.empty() || rounds_seen_ == 0) return out;
  const double mean_completion =
      completion_sum_ / static_cast<double>(rounds_seen_);
  for (const auto& [key, bound] : clauses_) {
    if (key == "completion_rate_min") {
      if (mean_completion < bound) {
        emit(SloBreach{key, mean_completion, bound, {}}, nullptr, now_ns, out);
      }
    } else if (key == "rounds_complete_min") {
      if (static_cast<double>(rounds_complete_) < bound) {
        emit(SloBreach{key, static_cast<double>(rounds_complete_), bound, {}}, nullptr,
             now_ns, out);
      }
    } else if (key == "crashes_min") {
      if (static_cast<double>(crashes_) < bound) {
        emit(SloBreach{key, static_cast<double>(crashes_), bound, {}}, nullptr, now_ns,
             out);
      }
    }
  }
  return out;
}

}  // namespace dfl::core
