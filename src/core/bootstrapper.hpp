// The bootstrapper: the FL task owner. It constructs the TaskSpec (role
// assignment and schedule), derives the Pedersen commitment key for the
// task domain, runs the directory service on its own host, and provides
// the payload-aware verifier hook the directory uses in verifiable mode.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/payload.hpp"
#include "core/task_spec.hpp"
#include "directory/directory.hpp"
#include "ipfs/swarm.hpp"

namespace dfl::core {

/// Directory-side verification: decode the payload, check the opening.
class PayloadVerifier final : public directory::UpdateVerifier {
 public:
  explicit PayloadVerifier(const crypto::PedersenKey& key) : key_(key) {}

  [[nodiscard]] bool verify(BytesView payload,
                            const crypto::Commitment& accumulated) const override {
    try {
      return key_.verify(accumulated, Payload::deserialize(payload).values);
    } catch (const std::exception&) {
      return false;  // malformed payload can never open a commitment
    }
  }

 private:
  const crypto::PedersenKey& key_;
};

class Bootstrapper {
 public:
  /// Builds the task: spec (already configured by the caller), the
  /// commitment key (iff spec.options.verifiable), and the directory — a
  /// single DirectoryService on hosts[0], or a ReplicatedDirectory across
  /// all given hosts (no single point of failure) when hosts.size() > 1.
  Bootstrapper(sim::Network& net, std::vector<sim::Host*> hosts, ipfs::Swarm& swarm,
               TaskSpec spec, std::string task_domain = "dfl/task/v1");

  [[nodiscard]] const TaskSpec& spec() const { return spec_; }
  [[nodiscard]] TaskSpec& spec() { return spec_; }
  [[nodiscard]] directory::Directory& directory() { return *directory_; }
  [[nodiscard]] const crypto::PedersenKey* key() const { return key_.get(); }
  /// Mutable access for the crypto engine, which attaches its thread pool
  /// and fixed-base configuration to the key (null unless verifiable).
  [[nodiscard]] crypto::PedersenKey* mutable_key() { return key_.get(); }
  [[nodiscard]] sim::Host& host() { return *hosts_.front(); }

  /// Registers the T_ij assignment with the directory (required before
  /// verifiable rounds so per-aggregator accumulations form correctly).
  void publish_assignment();

 private:
  std::vector<sim::Host*> hosts_;
  TaskSpec spec_;
  std::unique_ptr<crypto::PedersenKey> key_;
  std::unique_ptr<PayloadVerifier> verifier_;
  std::unique_ptr<directory::Directory> directory_;
};

}  // namespace dfl::core
