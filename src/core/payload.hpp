// Wire format of every FL object stored in IPFS: a vector of fixed-point
// encoded values whose LAST element is the averaging weight (Algorithm 1
// line 14 appends 1 to each gradient partition; sums of k contributions
// carry weight k, and trainers divide by it on download, lines 20-21).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"
#include "core/codec.hpp"
#include "ipfs/node.hpp"

namespace dfl::core {

/// Malformed dense payload buffer: truncated header, truncated elements,
/// or trailing bytes beyond the declared element count.
struct PayloadError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Payload {
  /// Fixed-point encoded gradient elements, then the weight element.
  std::vector<std::int64_t> values;

  [[nodiscard]] Bytes serialize() const;

  /// Strict framing: `data` must be exactly the declared element count —
  /// truncated or over-long buffers throw PayloadError, never a silent
  /// short read.
  static Payload deserialize(BytesView data);

  /// Element-wise sum; sizes must match.
  static Payload add(const Payload& a, const Payload& b);

  /// The averaging weight (last element).
  [[nodiscard]] std::int64_t weight() const { return values.empty() ? 0 : values.back(); }

  /// Gradient elements without the weight, divided by the weight.
  [[nodiscard]] std::vector<double> average(int frac_bits) const;

  /// Serialized size in bytes for a payload of `elements` values
  /// (including the weight element).
  static std::size_t wire_size(std::size_t elements) { return 4 + elements * 8; }

  /// Wire size this payload serializes to.
  [[nodiscard]] std::size_t serialized_size() const { return wire_size(values.size()); }

  /// Total size a serialized buffer declares in its count header, without
  /// deserializing it. Throws PayloadError if `data` cannot even hold the
  /// header.
  static std::size_t serialized_size(BytesView data);

  friend bool operator==(const Payload&, const Payload&) = default;
};

/// Sums payload blocks on a storage node — the merge-and-download merger.
///
/// Dense codec: streaming-capable. The wire format is a 4-byte count header
/// followed by little-endian int64 elements, so any prefix ending on an
/// element boundary (offset 4 + 8k) merges independently of the rest — that
/// is what lets merge_get ship partial sums while later chunks are still
/// downloading. Concatenating merge_range over those boundaries is
/// bit-identical to merge() on the whole blocks.
///
/// Lossy codecs (quant/topk): blocks are opaque until complete, so
/// merge_boundary only fires at `total` and the single whole-block
/// merge_range decodes each input and folds in the exact int64 domain
/// (decode-on-fold). Merged output is always dense.
class PayloadMerger final : public ipfs::BlockMerger {
 public:
  PayloadMerger() = default;
  explicit PayloadMerger(CodecConfig codec) : codec_(codec) {}

  [[nodiscard]] Bytes merge(const std::vector<BytesView>& blocks) const override;
  [[nodiscard]] std::uint64_t merge_boundary(std::uint64_t limit,
                                             std::uint64_t total) const override;
  [[nodiscard]] Bytes merge_range(const std::vector<BytesView>& parts, std::uint64_t from,
                                  std::uint64_t to) const override;

 private:
  CodecConfig codec_;
};

}  // namespace dfl::core
