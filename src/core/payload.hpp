// Wire format of every FL object stored in IPFS: a vector of fixed-point
// encoded values whose LAST element is the averaging weight (Algorithm 1
// line 14 appends 1 to each gradient partition; sums of k contributions
// carry weight k, and trainers divide by it on download, lines 20-21).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "ipfs/node.hpp"

namespace dfl::core {

struct Payload {
  /// Fixed-point encoded gradient elements, then the weight element.
  std::vector<std::int64_t> values;

  [[nodiscard]] Bytes serialize() const;
  static Payload deserialize(BytesView data);

  /// Element-wise sum; sizes must match.
  static Payload add(const Payload& a, const Payload& b);

  /// The averaging weight (last element).
  [[nodiscard]] std::int64_t weight() const { return values.empty() ? 0 : values.back(); }

  /// Gradient elements without the weight, divided by the weight.
  [[nodiscard]] std::vector<double> average(int frac_bits) const;

  /// Serialized size in bytes for a payload of `elements` values
  /// (including the weight element).
  static std::size_t wire_size(std::size_t elements) { return 4 + elements * 8; }

  friend bool operator==(const Payload&, const Payload&) = default;
};

/// Sums payload blocks on a storage node — the merge-and-download merger.
///
/// Streaming-capable: the wire format is a 4-byte count header followed by
/// little-endian int64 elements, so any prefix ending on an element
/// boundary (offset 4 + 8k) merges independently of the rest — that is
/// what lets merge_get ship partial sums while later chunks are still
/// downloading. Concatenating merge_range over those boundaries is
/// bit-identical to merge() on the whole blocks.
class PayloadMerger final : public ipfs::BlockMerger {
 public:
  [[nodiscard]] Bytes merge(const std::vector<BytesView>& blocks) const override;
  [[nodiscard]] std::uint64_t merge_boundary(std::uint64_t limit,
                                             std::uint64_t total) const override;
  [[nodiscard]] Bytes merge_range(const std::vector<BytesView>& parts, std::uint64_t from,
                                  std::uint64_t to) const override;
};

}  // namespace dfl::core
