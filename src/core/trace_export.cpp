#include "core/trace_export.hpp"

#include <ostream>

namespace dfl::core {

namespace {

/// Payload bytes below which an untagged transfer is drawn as a control
/// frame ("ctl": directory RPCs, acks, pub/sub hashes) rather than a bulk
/// payload move. Chosen comfortably above every fixed-size control message
/// in the protocol and far below any gradient partition.
constexpr std::uint64_t kCtlPayloadBytes = 1024;

}  // namespace

std::vector<obs::WireSlice> wire_slices(const sim::Network& net) {
  std::vector<obs::WireSlice> out;
  out.reserve(net.trace().size());
  const std::uint64_t overhead = net.per_message_overhead();
  for (const sim::TransferRecord& r : net.trace()) {
    obs::WireSlice w;
    w.id = r.id;
    w.parent = r.parent_span;
    w.track = r.from;
    w.issued_ns = r.issued_at;
    w.start_ns = r.start;
    w.end_ns = r.delivered;
    const std::uint64_t payload = r.wire_bytes > overhead ? r.wire_bytes - overhead : 0;
    if (r.dag_root != 0) {
      w.name = "chunk_xfer";
      w.attrs.push_back(obs::SpanAttr{"leaf", {}, r.dag_leaf, true});
    } else {
      w.name = payload <= kCtlPayloadBytes ? "ctl" : "xfer";
    }
    w.attrs.push_back(obs::SpanAttr{"bytes", {}, static_cast<std::int64_t>(r.wire_bytes), true});
    w.attrs.push_back(obs::SpanAttr{"to", {}, static_cast<std::int64_t>(r.to), true});
    if (const sim::ShardPlacement* p = net.shard_placement();
        p != nullptr && p->shards > 1 && p->shard(r.from) != p->shard(r.to)) {
      w.attrs.push_back(
          obs::SpanAttr{"xshard", {}, static_cast<std::int64_t>(p->shard(r.to)), true});
    }
    out.push_back(std::move(w));
  }
  return out;
}

void name_host_tracks(sim::Network& net) {
  obs::Tracer& tracer = obs::Tracer::instance();
  // With a sharded engine the placement prefixes each host track with its
  // shard ("s2/trainer7"), so Perfetto's track sort groups hosts by shard
  // and barrier traffic reads as lines between track groups.
  const sim::ShardPlacement* placement = net.shard_placement();
  for (std::uint32_t id = 0; id < net.host_count(); ++id) {
    if (placement != nullptr && placement->shards > 1) {
      tracer.set_track_name(id, "s" + std::to_string(placement->shard(id)) + "/" +
                                    net.host(id).name());
    } else {
      tracer.set_track_name(id, net.host(id).name());
    }
  }
  tracer.set_track_name(obs::kProcessTrack, "rounds");
}

void write_trace(std::ostream& os, sim::Network& net) {
  name_host_tracks(net);
  obs::write_perfetto(os, obs::Tracer::instance().snapshot(), wire_slices(net),
                      net.trace().dropped());
}

}  // namespace dfl::core
