#include "core/gradient_source.hpp"

#include <stdexcept>

#include "crypto/encoding.hpp"
#include "ml/federated.hpp"

namespace dfl::core {

SyntheticGradientSource::SyntheticGradientSource(std::size_t num_params, sim::TimeNs train_time,
                                                 std::uint64_t seed, int frac_bits)
    : num_params_(num_params), train_time_(train_time), seed_(seed), frac_bits_(frac_bits) {}

std::vector<std::int64_t> SyntheticGradientSource::gradient(std::uint32_t trainer,
                                                            std::uint32_t iter) {
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(trainer) << 32) ^ iter);
  std::vector<std::int64_t> out;
  out.reserve(num_params_);
  for (std::size_t i = 0; i < num_params_; ++i) {
    out.push_back(crypto::encode_fixed(rng.uniform_real(-1.0, 1.0), frac_bits_));
  }
  return out;
}

sim::TimeNs SyntheticGradientSource::train_time(std::uint32_t /*trainer*/,
                                                std::uint32_t /*iter*/) {
  return train_time_;
}

void SyntheticGradientSource::apply_global_update(const std::vector<double>& avg_gradient,
                                                  std::uint32_t /*iter*/) {
  last_update_ = avg_gradient;
}

MlGradientSource::MlGradientSource(std::unique_ptr<ml::Model> model,
                                   std::vector<ml::Dataset> shards, double learning_rate,
                                   sim::TimeNs train_time, int frac_bits,
                                   std::size_t batch_size, std::uint64_t seed)
    : model_(std::move(model)),
      shards_(std::move(shards)),
      learning_rate_(learning_rate),
      train_time_(train_time),
      frac_bits_(frac_bits),
      batch_size_(batch_size),
      rng_(seed) {
  if (model_ == nullptr) throw std::invalid_argument("MlGradientSource: null model");
}

std::vector<std::int64_t> MlGradientSource::gradient(std::uint32_t trainer,
                                                     std::uint32_t /*iter*/) {
  const ml::Dataset& shard = shards_.at(trainer);
  const auto batch = ml::draw_batch(shard.size(), batch_size_, rng_);
  return crypto::encode_fixed_vec(model_->gradient(shard, batch), frac_bits_);
}

sim::TimeNs MlGradientSource::train_time(std::uint32_t /*trainer*/, std::uint32_t /*iter*/) {
  return train_time_;
}

void MlGradientSource::apply_global_update(const std::vector<double>& avg_gradient,
                                           std::uint32_t /*iter*/) {
  model_->apply_gradient(avg_gradient, learning_rate_);
}

}  // namespace dfl::core
