#include "core/trainer.hpp"

#include <algorithm>
#include <optional>

#include "common/log.hpp"
#include "sim/span.hpp"

namespace dfl::core {

sim::Task<void> Trainer::run_round(std::uint32_t iter, sim::TimeNs round_start,
                                   RoundMetrics& metrics) {
  co_await ctx_.sim.sleep_until(round_start);
  TrainerRecord& rec = metrics.trainers.at(id_);
  if (behavior_ == TrainerBehavior::kOffline) {
    rec.offline = true;
    rec.update_missing = true;
    co_return;
  }
  sim::ScopedSpan round_span(ctx_.sim, "round", host_.id(), ctx_.round_span);
  round_span.attr("trainer", static_cast<std::int64_t>(id_));
  round_span.attr("iter", static_cast<std::int64_t>(iter));
  const sim::TimeNs t_train_abs = round_start + ctx_.spec.schedule.t_train;
  const sim::TimeNs t_sync_abs = round_start + ctx_.spec.schedule.t_sync;

  // Local training. A slow trainer's compute overruns the training window.
  const std::vector<std::int64_t> grad = ctx_.source.gradient(id_, iter);
  sim::TimeNs train_time = ctx_.source.train_time(id_, iter);
  if (behavior_ == TrainerBehavior::kSlow) {
    train_time = ctx_.spec.schedule.t_train + sim::from_seconds(1);
  }
  {
    sim::ScopedSpan train_span(ctx_.sim, "train", host_.id(), round_span.id());
    co_await ctx_.sim.sleep(train_time);
  }
  if (ctx_.sim.now() > t_train_abs && !ctx_.spec.options.async_rounds) {
    // Algorithm 1 line 10: abort the iteration if training missed t_train.
    // Async mode keeps going: the late upload becomes a staleness-weighted
    // contribution to a later iteration instead of wasted compute.
    rec.aborted = true;
    round_span.attr("aborted", std::int64_t{1});
    DFL_DEBUG("trainer") << "t" << id_ << " aborted iter " << iter << " (missed t_train)";
    co_return;
  }

  {
    sim::ScopedSpan upload_span(ctx_.sim, "upload", host_.id(), round_span.id());
    co_await upload_gradients(iter, grad, t_sync_abs, metrics, rec, upload_span.id());
  }
  {
    sim::ScopedSpan download_span(ctx_.sim, "download", host_.id(), round_span.id());
    co_await download_updates(iter, t_sync_abs, rec, download_span.id());
  }
  if (!rec.update_missing) {
    rec.model_ready_at = ctx_.sim.now();
  }
}

sim::Task<void> Trainer::upload_gradients(std::uint32_t iter,
                                          const std::vector<std::int64_t>& grad,
                                          sim::TimeNs deadline, RoundMetrics& metrics,
                                          TrainerRecord& rec, obs::SpanId span) {
  const bool batched = ctx_.spec.options.batched_announce;
  const CodecConfig cc = codec_config(ctx_.spec.options);
  std::vector<directory::BatchItem> batch;

  for (std::size_t p = 0; p < ctx_.spec.num_partitions(); ++p) {
    const auto [first, last] = ctx_.spec.partition_range(p);
    Payload payload;
    payload.values.assign(grad.begin() + static_cast<std::ptrdiff_t>(first),
                          grad.begin() + static_cast<std::ptrdiff_t>(last));
    payload.values.push_back(1);  // averaging weight (Algorithm 1 line 14)

    // Encode for the wire. Lossy codecs replace `payload` with the decoded
    // reconstruction: receivers fold exactly what shipped, and the
    // commitment below must open that reconstruction, not the original.
    Bytes wire;
    if (cc.codec == Codec::kDense) {
      wire = payload.serialize();
    } else {
      EncodeStats st;
      wire = encode_payload(payload, cc, codec_seed(id_, iter, static_cast<std::uint32_t>(p)),
                            &st);
      payload = decode_payload(wire, cc);
      ++metrics.codec.encodes;
      metrics.codec.raw_bytes += st.raw_bytes;
      metrics.codec.encoded_bytes += st.encoded_bytes;
      metrics.codec.error_sq += st.error_sq;
    }

    std::optional<crypto::Commitment> commitment;
    if (ctx_.spec.options.verifiable) {
      sim::ScopedSpan commit_span(ctx_.sim, "commit", host_.id(), span);
      commit_span.attr("partition", static_cast<std::int64_t>(p));
      commitment = ctx_.commit(payload.values);
      co_await ctx_.sim.sleep(ctx_.commit_cost(payload.values.size()));
    }

    // Upload to the primary provider and (optionally) replicas, so rounds
    // survive storage-node failures (Section VI availability). A dead
    // primary is skipped and the next target becomes the primary copy.
    const auto targets =
        ctx_.spec.upload_targets(p, id_, ctx_.spec.options.gradient_replicas);
    // One allocation per logical payload: every target and every retry
    // below shares this immutable buffer.
    const Block data(std::move(wire));
    const directory::Addr addr{id_, static_cast<std::uint32_t>(p), iter,
                               directory::EntryType::kGradient};
    const bool dag = ctx_.spec.options.chunking == ipfs::ChunkingMode::kDag;
    ipfs::Cid cid;
    bool announced_early = false;
    if (dag) {
      // Chunked plane: the root CID is computable before a single byte moves,
      // so announce FIRST — the aggregator discovers the gradient and starts
      // streaming leaves off the provider while the tail of the upload is
      // still on our uplink. This supersedes batched_announce for gradients
      // (per-partition early announces buy overlap that batching can't).
      cid = ipfs::Chunker(ctx_.spec.options.chunk_size).root_cid(data);
      obs::set_ambient_span(span);
      announced_early = co_await ctx_.dir.announce(host_, addr, cid, commitment);
      if (announced_early) {
        metrics.note_gradient_announce(ctx_.sim.now());
      } else {
        DFL_WARN("trainer") << "t" << id_ << " announce rejected for partition " << p;
      }
    }
    bool stored = false;
    const sim::TimeNs upload_start = ctx_.sim.now();
    for (const std::uint32_t target : targets) {
      obs::set_ambient_span(span);
      const auto got = co_await ctx_.swarm.put_with_retry(target, host_, data,
                                                          ctx_.spec.options.retry, deadline,
                                                          &rec.rpc);
      if (!got) {
        DFL_WARN("trainer") << "t" << id_ << " upload to node " << target
                            << " failed after retries";
        // A failed primary target means the next replica becomes primary.
        if (!stored) ++rec.rpc.failovers;
        continue;
      }
      cid = *got;
      if (!stored) {
        stored = true;
        rec.upload_delay_total_s += sim::to_seconds(ctx_.sim.now() - upload_start);
        ++rec.uploads;
        if (dag) break;  // replicas spread node-to-node, off our uplink
      }
    }
    if (!stored) {
      DFL_WARN("trainer") << "t" << id_ << " could not store partition " << p
                          << " on any provider";
      continue;  // this contribution is lost; the round proceeds without it
    }
    if (dag) {
      if (ctx_.spec.options.gradient_replicas > 1) {
        ctx_.swarm.replicate_background(cid, ctx_.spec.options.gradient_replicas);
      }
      continue;  // announced before the upload (or rejected — final either way)
    }

    if (batched) {
      batch.push_back(directory::BatchItem{addr, cid, commitment});
      continue;
    }
    obs::set_ambient_span(span);
    const bool accepted = co_await ctx_.dir.announce(host_, addr, cid, commitment);
    if (accepted) {
      metrics.note_gradient_announce(ctx_.sim.now());
    } else {
      DFL_WARN("trainer") << "t" << id_ << " announce rejected for partition " << p;
    }
  }

  if (batched && !batch.empty()) {
    obs::set_ambient_span(span);
    const bool accepted = co_await ctx_.dir.announce_batch(host_, std::move(batch));
    if (accepted) {
      metrics.note_gradient_announce(ctx_.sim.now());
    } else {
      DFL_WARN("trainer") << "t" << id_ << " batched announce (partially) rejected";
    }
  }
}

sim::Task<void> Trainer::download_updates(std::uint32_t iter, sim::TimeNs deadline,
                                          TrainerRecord& rec, obs::SpanId span) {
  last_update_.assign(ctx_.spec.num_params(), 0.0);
  const sim::TimeNs grace = ctx_.spec.schedule.t_sync / 2;
  const sim::TimeNs cutoff = deadline + grace;
  const bool audit = ctx_.spec.options.verifiable && ctx_.spec.options.audit_updates;
  // Audit trail: the downloaded openings and the commitments the directory
  // accumulated for them, checked after the fetch loop (in one batched MSM
  // when batch_verify is on).
  std::vector<crypto::Commitment> audit_cs;
  std::vector<std::vector<std::int64_t>> audit_values;
  for (std::size_t p = 0; p < ctx_.spec.num_partitions(); ++p) {
    bool got = false;
    // Algorithm 1 lines 16-22: poll the directory until the CID appears.
    // Every download is bounded by the round cutoff: a straggling or dead
    // provider costs retries, never a hung round.
    while (!got) {
      obs::set_ambient_span(span);
      const auto entries = co_await ctx_.dir.poll(host_, static_cast<std::uint32_t>(p), iter,
                                                  directory::EntryType::kGlobalUpdate);
      if (!entries.empty()) {
        // Only the first (verified, in verifiable mode) global update counts.
        Block data;
        bool fetched = false;
        try {
          obs::set_ambient_span(span);
          data = co_await ctx_.swarm.fetch_with_retry(host_, entries.front().cid,
                                                      ctx_.spec.options.retry, cutoff,
                                                      &rec.rpc);
          fetched = true;
        } catch (const std::exception& e) {
          DFL_WARN("trainer") << "t" << id_ << " failed to fetch global update of partition "
                              << p << ": " << e.what();
        }
        if (fetched) {
          Payload payload = Payload::deserialize(data);
          const auto avg = payload.average(ctx_.spec.options.frac_bits);
          const auto [first, last] = ctx_.spec.partition_range(p);
          if (avg.size() != last - first) {
            throw std::runtime_error("trainer: global update has wrong partition size");
          }
          std::copy(avg.begin(), avg.end(),
                    last_update_.begin() + static_cast<std::ptrdiff_t>(first));
          if (audit) {
            // Don't take the directory's word for it: re-check the payload
            // against the accumulated partition commitment locally.
            obs::set_ambient_span(span);
            audit_cs.push_back(co_await ctx_.dir.partition_commitment(
                host_, static_cast<std::uint32_t>(p), iter));
            audit_values.push_back(std::move(payload.values));
            co_await ctx_.sim.sleep(ctx_.commit_cost(audit_values.back().size()));
          }
          got = true;
          break;
        }
        // Fetch failed for now; keep polling — a replica may come back or a
        // covering aggregator may re-publish before the cutoff.
      }
      if (ctx_.sim.now() > cutoff) break;
      co_await ctx_.sim.sleep(ctx_.spec.schedule.poll_interval);
    }
    if (!got) {
      rec.update_missing = true;
      last_update_.clear();
      DFL_DEBUG("trainer") << "t" << id_ << " missing update for partition " << p << " iter "
                           << iter;
      co_return;
    }
  }
  if (audit && !audit_cs.empty()) {
    bool ok = true;
    if (ctx_.spec.options.batch_verify && ctx_.engine != nullptr && audit_cs.size() > 1) {
      // All partitions in one random-linear-combination MSM.
      ok = ctx_.engine->verify_batch(audit_cs, audit_values);
    } else {
      for (std::size_t i = 0; i < audit_cs.size(); ++i) {
        if (!ctx_.verify(audit_cs[i], audit_values[i])) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      rec.audit_failed = true;
      rec.update_missing = true;  // a bad opening is no usable update
      last_update_.clear();
      DFL_WARN("trainer") << "t" << id_ << " update audit FAILED at iter " << iter;
    }
  }
}

}  // namespace dfl::core
