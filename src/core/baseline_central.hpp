// Centralized federated learning baseline: a single aggregation server.
// Used (a) as the convergence reference — the paper argues the
// decentralized protocol computes the exact same averages, and (b) as a
// delay comparison point with one server link doing all the work.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gradient_source.hpp"
#include "sim/net.hpp"

namespace dfl::core {

struct CentralConfig {
  std::size_t num_trainers = 16;
  std::size_t num_params = 16 * 1024;
  double participant_mbps = 10.0;
  double server_mbps = 10.0;
  sim::TimeNs link_latency = sim::from_millis(5);
  sim::TimeNs train_time = sim::from_seconds(1);
  int frac_bits = 16;
};

struct CentralRoundResult {
  /// First gradient send start -> all gradients at the server.
  double aggregation_delay_s = 0;
  /// Until every trainer holds the updated model.
  double round_time_s = 0;
  std::uint64_t server_bytes_received = 0;
};

/// Single-server FL over the simulated network, driven by a GradientSource
/// so its learning trajectory can be compared against the decentralized
/// deployment bit-for-bit.
class CentralizedFl {
 public:
  CentralizedFl(CentralConfig config, std::shared_ptr<GradientSource> source);
  ~CentralizedFl();

  CentralRoundResult run_round(std::uint32_t iter);

  [[nodiscard]] GradientSource& source() { return *source_; }

 private:
  CentralConfig config_;
  std::shared_ptr<GradientSource> source_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::Host*> trainers_;
  sim::Host* server_ = nullptr;
};

}  // namespace dfl::core
