#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"
#include "core/trace_export.hpp"
#include "crypto/encoding.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/datapath.hpp"
#include "sim/span.hpp"

namespace dfl::core {

namespace {

sim::HostConfig participant_link(const DeploymentConfig& cfg) {
  return sim::HostConfig{cfg.participant_mbps * 1e6, cfg.participant_mbps * 1e6,
                         cfg.link_latency};
}

double scenario_num(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    throw sim::ScenarioError("scenario: [deployment] " + key + ": not a number: '" + value +
                             "'");
  }
  return v;
}

/// Folds `built` (the expanded scenario generators) into `plan` (any
/// chaos the caller configured directly): windows append, probabilistic
/// fields take the stronger of the two, jitter from the scenario wins
/// when it sets one.
void merge_fault_plan(sim::FaultPlan& plan, sim::FaultPlan&& built) {
  plan.crashes.insert(plan.crashes.end(), built.crashes.begin(), built.crashes.end());
  plan.degradations.insert(plan.degradations.end(), built.degradations.begin(),
                           built.degradations.end());
  plan.transfer_failure_prob = std::max(plan.transfer_failure_prob, built.transfer_failure_prob);
  plan.corruption_prob = std::max(plan.corruption_prob, built.corruption_prob);
  if (!built.latency_jitter_ms.is_zero()) {
    plan.latency_jitter_ms = built.latency_jitter_ms;
    plan.latency_jitter_prob = built.latency_jitter_prob;
  }
  plan.seed = built.seed;
}

/// Publishes the process-wide data-plane counters into the global registry.
/// Registered once: the stats are process-global, not per-deployment.
void register_datapath_collector() {
  static const bool once = [] {
    obs::Registry::global().register_collector("datapath", [](obs::Registry& r) {
      const sim::DataPathStats& s = sim::datapath_stats();
      r.counter("dfl.datapath.bytes_copied").set(s.bytes_copied);
      r.counter("dfl.datapath.bytes_shared").set(s.bytes_shared);
      r.counter("dfl.datapath.blocks_hashed").set(s.blocks_hashed);
      r.counter("dfl.datapath.cid_cache_hits").set(s.cid_cache_hits);
      r.counter("dfl.datapath.blocks_created").set(s.blocks_created);
      r.counter("dfl.datapath.chunked_transfers").set(s.chunked_transfers);
      r.counter("dfl.datapath.chunks_delivered").set(s.chunks_delivered);
      r.gauge("dfl.datapath.resident_block_bytes")
          .set(static_cast<double>(s.resident_block_bytes));
      r.gauge("dfl.datapath.peak_resident_block_bytes")
          .set(static_cast<double>(s.peak_resident_block_bytes));
      r.gauge("dfl.datapath.copy_reduction_factor").set(s.copy_reduction_factor());
    });
    return true;
  }();
  (void)once;
}

/// Publishes the tracer's health into the registry. Registered once (the
/// tracer is process-global): dfl.obs.dropped_spans > 0 means the span cap
/// truncated the trace and every downstream analysis of it is incomplete.
void register_obs_collector() {
  static const bool once = [] {
    obs::Registry::global().register_collector("obs", [](obs::Registry& r) {
      const obs::Tracer& t = obs::Tracer::instance();
      r.counter("dfl.obs.spans").set(t.span_count());
      r.counter("dfl.obs.dropped_spans").set(t.dropped_spans());
    });
    return true;
  }();
  (void)once;
}

/// Folds one finished round into the global registry: resilience counters
/// accumulate, per-phase delays land in log-bucket histograms (millisecond
/// resolution — ≤12.5% bucket error at sub_bucket_bits=3).
void publish_round_metrics(const RoundMetrics& m) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("dfl.rounds_total").add(1);
  reg.counter("dfl.rejected_updates_total").add(static_cast<std::uint64_t>(m.rejected_updates));
  const ipfs::RetryStats rpc = m.rpc_totals();
  reg.counter("dfl.rpc.attempts_total").add(rpc.attempts);
  reg.counter("dfl.rpc.retries_total").add(rpc.retries);
  reg.counter("dfl.rpc.timeouts_total").add(rpc.timeouts);
  reg.counter("dfl.rpc.failovers_total").add(rpc.failovers);
  reg.counter("dfl.rpc.giveups_total").add(rpc.giveups);
  reg.counter("dfl.sim.events_total").add(m.datapath.sim_events);
  if (m.crypto.commits + m.crypto.verifies + m.crypto.batch_verifies > 0) {
    reg.counter("dfl.crypto.commits_total").add(m.crypto.commits);
    reg.counter("dfl.crypto.verifies_total").add(m.crypto.verifies + m.crypto.batch_verifies);
    // Dispatch tier as an ordinal gauge (0 = scalar, 1 = avx2): snapshots
    // record which backend produced the wall times alongside them. The
    // ISA string itself rides in RoundMetrics/CryptoRecord.
    reg.gauge("dfl.crypto.backend").set(std::strcmp(m.crypto.backend, "scalar") == 0 ? 0 : 1);
  }

  auto record_ms = [&reg](const char* name, double seconds) {
    if (seconds < 0) return;  // -1 sentinel: phase never completed
    reg.histogram(name).record(static_cast<std::uint64_t>(seconds * 1e3));
  };
  record_ms("dfl.round.upload_delay_ms", m.mean_upload_delay_s());
  record_ms("dfl.round.aggregation_delay_ms", m.mean_aggregation_delay_s());
  record_ms("dfl.round.total_aggregation_delay_ms", m.total_aggregation_delay_s());
  record_ms("dfl.round.sync_delay_ms", m.mean_sync_delay_s());
  if (m.round_done >= 0) {
    record_ms("dfl.round.duration_ms", sim::to_seconds(m.round_done - m.round_start));
  }
  reg.histogram("dfl.round.wall_ms").record(m.datapath.wall_ns / 1000000);
}

}  // namespace

sim::RoleMap deployment_roles(const DeploymentConfig& cfg) {
  sim::RoleMap roles;
  std::uint32_t next = 0;
  auto add = [&](const char* name, std::size_t count) {
    auto& ids = roles[name];
    for (std::size_t i = 0; i < count; ++i) ids.push_back(next++);
  };
  // Mirrors the constructor's host creation order exactly.
  add("nodes", cfg.num_ipfs_nodes);
  add("directory", std::max<std::size_t>(1, cfg.directory_replicas));
  add("trainers", cfg.num_trainers);
  add("aggregators", cfg.num_partitions * cfg.aggs_per_partition);
  return roles;
}

int apply_scenario(const sim::ScenarioSpec& spec, DeploymentConfig& cfg) {
  for (const auto& [key, value] : spec.deployment) {
    const double v = scenario_num(key, value);
    const auto count = static_cast<std::size_t>(v);
    if (key == "trainers") {
      cfg.num_trainers = count;
    } else if (key == "partitions") {
      cfg.num_partitions = count;
    } else if (key == "elements") {
      cfg.partition_elements = count;
    } else if (key == "aggs_per_partition") {
      cfg.aggs_per_partition = count;
    } else if (key == "nodes") {
      cfg.num_ipfs_nodes = count;
    } else if (key == "providers") {
      cfg.providers_per_agg = count;
    } else if (key == "directory_replicas") {
      cfg.directory_replicas = count;
    } else if (key == "participant_mbps") {
      cfg.participant_mbps = v;
    } else if (key == "node_mbps") {
      cfg.node_mbps = v;
    } else if (key == "directory_mbps") {
      cfg.directory_mbps = v;
    } else if (key == "link_latency_ms") {
      cfg.link_latency = sim::from_millis(v);
    } else if (key == "t_train_s") {
      cfg.schedule.t_train = sim::from_seconds(v);
    } else if (key == "t_sync_s") {
      cfg.schedule.t_sync = sim::from_seconds(v);
    } else if (key == "poll_ms") {
      cfg.schedule.poll_interval = sim::from_millis(v);
    } else if (key == "train_time_s") {
      cfg.train_time = sim::from_seconds(v);
    } else if (key == "merge_and_download") {
      cfg.options.merge_and_download = v != 0;
    } else {
      throw sim::ScenarioError("scenario: unknown [deployment] key '" + key + "'");
    }
  }
  if (spec.has_seed) cfg.seed = spec.seed;
  cfg.scenario = spec;
  return spec.rounds;
}

Deployment::Deployment(DeploymentConfig config, std::unique_ptr<GradientSource> source)
    : config_(std::move(config)) {
  if (config_.options.async_rounds && config_.options.verifiable) {
    // Commitments attest one synchronous round's inputs; staleness-weighted
    // folds mix iterations, so no accumulated commitment could open them.
    throw std::invalid_argument(
        "Deployment: async_rounds is incompatible with verifiable aggregation");
  }
  if (config_.options.codec == Codec::kQuant &&
      (config_.options.quant_bits < 2 || config_.options.quant_bits > 16)) {
    throw std::invalid_argument("Deployment: quant_bits out of range [2, 16]");
  }
  if (config_.options.codec == Codec::kTopK &&
      !(config_.options.topk_frac > 0.0 && config_.options.topk_frac <= 1.0)) {
    throw std::invalid_argument("Deployment: topk_frac out of range (0, 1]");
  }
  sim_ = std::make_unique<sim::Simulator>();
  net_ = std::make_unique<sim::Network>(*sim_);
  ipfs::SwarmConfig swarm_cfg;
  swarm_cfg.node_config.chunking.mode = config_.options.chunking;
  swarm_cfg.node_config.chunking.chunk_size = config_.options.chunk_size;
  swarm_cfg.node_config.chunking.pipeline_depth = config_.options.chunk_pipeline;
  swarm_cfg.provider_ttl = config_.scenario.provider_ttl;
  swarm_cfg.provider_republish = config_.scenario.provider_republish;
  swarm_ = std::make_unique<ipfs::Swarm>(*net_, swarm_cfg);
  pubsub_ = std::make_unique<ipfs::PubSub>(*net_);

  // Scenario link heterogeneity: each host of a role draws its own config
  // from the role's model, in host creation order from a private stream —
  // the draw sequence (and so every HostConfig) is bit-stable in seed.
  const bool scenario_active = config_.scenario.active();
  Rng link_rng(config_.seed ^ 0x11ce5ca1ab1e11ceULL);
  auto role_link = [&](const char* role, const sim::HostConfig& base) {
    if (!scenario_active) return base;
    const auto it = config_.scenario.links.find(role);
    return it == config_.scenario.links.end() ? base : it->second.sample(base, link_rng);
  };

  for (std::size_t i = 0; i < config_.num_ipfs_nodes; ++i) {
    swarm_->add_node("ipfs" + std::to_string(i),
                     role_link("nodes",
                               sim::HostConfig{config_.node_mbps * 1e6, config_.node_mbps * 1e6,
                                               config_.link_latency}));
  }

  const std::size_t num_params = config_.partition_elements * config_.num_partitions;
  TaskSpec spec(num_params, config_.num_partitions, config_.num_trainers);
  spec.schedule = config_.schedule;
  spec.options = config_.options;
  spec.build_round_robin(config_.aggs_per_partition, config_.providers_per_agg,
                         config_.num_ipfs_nodes);

  const std::size_t dir_replicas = std::max<std::size_t>(1, config_.directory_replicas);
  for (std::size_t r = 0; r < dir_replicas; ++r) {
    directory_hosts_.push_back(&net_->add_host(
        "directory" + std::to_string(r),
        role_link("directory",
                  sim::HostConfig{config_.directory_mbps * 1e6, config_.directory_mbps * 1e6,
                                  config_.link_latency})));
  }
  boot_ = std::make_unique<Bootstrapper>(*net_, directory_hosts_, *swarm_, std::move(spec),
                                         config_.task_domain);

  source_ = source ? std::move(source)
                   : std::make_unique<SyntheticGradientSource>(num_params, config_.train_time,
                                                               config_.seed,
                                                               config_.options.frac_bits);

  ctx_.reset(new Context{*sim_, *net_, *swarm_, *pubsub_, boot_->directory(), boot_->spec(),
                         *source_, boot_->key(),
                         PayloadMerger{codec_config(config_.options)}});

  if (boot_->mutable_key() != nullptr) {
    crypto::EngineConfig ecfg;
    ecfg.threads = config_.options.crypto_threads;
    ecfg.fixed_base_window = config_.options.fixed_base_window;
    engine_ = std::make_unique<crypto::Engine>(*boot_->mutable_key(), ecfg);
    ctx_->engine = engine_.get();
    if (config_.options.calibrate_crypto) {
      // Ground the modeled per-element commit delay in this machine's
      // measured throughput (opt-in: simulated timings become
      // hardware-dependent, results stay exact).
      calibration_ = engine_->calibrate(0);
      boot_->spec().options.commit_ns_per_element = calibration_.ns_per_element;
    }
  }

  for (std::uint32_t t = 0; t < config_.num_trainers; ++t) {
    sim::Host& h =
        net_->add_host("trainer" + std::to_string(t), role_link("trainers", participant_link(config_)));
    TrainerBehavior behavior = TrainerBehavior::kHonest;
    if (const auto it = config_.trainer_behaviors.find(t);
        it != config_.trainer_behaviors.end()) {
      behavior = it->second;
    }
    trainers_.push_back(std::make_unique<Trainer>(*ctx_, t, h, behavior));
  }
  const std::size_t total_aggs = config_.num_partitions * config_.aggs_per_partition;
  for (std::uint32_t a = 0; a < total_aggs; ++a) {
    sim::Host& h =
        net_->add_host("agg" + std::to_string(a), role_link("aggregators", participant_link(config_)));
    const auto partition = static_cast<std::uint32_t>(a / config_.aggs_per_partition);
    const auto slot = static_cast<std::uint32_t>(a % config_.aggs_per_partition);
    AggBehavior behavior = AggBehavior::kHonest;
    if (const auto it = config_.behaviors.find(a); it != config_.behaviors.end()) {
      behavior = it->second;
    }
    aggregators_.push_back(
        std::make_unique<Aggregator>(*ctx_, a, partition, slot, h, behavior));
  }

  // Arm the chaos schedule last, once every host referenced by the plan
  // exists (storage nodes are hosts 0..num_ipfs_nodes-1, then directory
  // replicas, trainers, and aggregators, in that order).
  if (scenario_active) {
    // Expand the scenario's generators over the planned horizon (one
    // round's slack past the suggested count — rounds that overrun their
    // window still see chaos). Built from the *final* config, so a CLI
    // seed override after apply_scenario reshapes the schedule too.
    const auto planned = static_cast<sim::TimeNs>(std::max(1, config_.scenario.rounds) + 1);
    merge_fault_plan(config_.fault_plan,
                     config_.scenario.build_fault_plan(deployment_roles(config_),
                                                       planned * config_.schedule.t_sync,
                                                       config_.seed));
  }
  if (!config_.fault_plan.empty()) {
    fault_ = std::make_unique<sim::FaultInjector>(*net_, config_.fault_plan);
    // Scenario mode arms incrementally from run_round: scheduling a long
    // horizon up front would let the end-of-round drain fast-forward the
    // clock through every future window.
    if (!scenario_active) fault_->arm();
  }
  incremental_chaos_ = scenario_active;

  // Event-engine sharding: resolve K (config wins; $DFL_SHARDS fills the
  // auto default), place hosts into contiguous blocks over the final
  // roster, and teach the network to classify deliveries. K = 1 leaves
  // the serial engine exactly as before — no placement, no buckets.
  shards_ = config_.shards;
  if (shards_ == 0) {
    shards_ = 1;
    if (const char* env = std::getenv("DFL_SHARDS"); env != nullptr && *env != '\0') {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end == env || *end != '\0' || v == 0 || v > 1024) {
        throw std::invalid_argument(std::string("DFL_SHARDS: malformed shard count '") +
                                    env + "' (want an integer in [1, 1024])");
      }
      shards_ = static_cast<std::uint32_t>(v);
    }
  }
  const auto total_hosts = static_cast<std::uint32_t>(net_->host_count());
  placement_ = sim::ShardPlacement::blocks(total_hosts, std::min(shards_, total_hosts));
  shards_ = placement_.shards;
  if (shards_ > 1) {
    net_->set_shard_placement(&placement_);
    lookahead_ = derive_lookahead();
    sim_->enable_window_buckets(lookahead_);
  }

  // Size the event queue for the round ahead instead of growing through
  // repeated reallocation: one slot per chunk transfer (upload fan-in plus
  // aggregator gather) with headroom for control traffic.
  const std::size_t partition_bytes = 8 * (config_.partition_elements + 1);
  const std::size_t chunks = std::max<std::size_t>(
      1, (partition_bytes + config_.options.chunk_size - 1) / config_.options.chunk_size);
  const std::size_t transfers = config_.num_trainers * config_.num_partitions +
                                total_aggs * config_.num_trainers + total_aggs * 4;
  sim_->reserve_events(transfers * (chunks + 4));

  // Subsume the scattered per-subsystem stats under the metrics registry:
  // collectors read the existing structs at snapshot() time, so the hot
  // paths keep their plain counters and RoundMetrics deltas are untouched.
  // The crypto/net collectors capture `this` and are unregistered in the
  // destructor; with several live Deployments the last one constructed
  // owns the names (snapshot() then reports that deployment).
  register_datapath_collector();
  register_obs_collector();
  if (!config_.scenario.slo.empty()) {
    slo_ = std::make_unique<SloEvaluator>(config_.scenario.slo);
  }
  obs::Registry::global().register_collector("net", [this](obs::Registry& r) {
    r.counter("dfl.net.bytes_total").set(net_->total_bytes_transferred());
    r.counter("dfl.net.mid_transfer_failures").set(net_->mid_transfer_failures());
    r.counter("dfl.net.transfers_dropped").set(net_->transfers_dropped());
    r.counter("dfl.net.trace_records").set(net_->trace().size());
    r.counter("dfl.net.trace_dropped").set(net_->trace().dropped());
    const ipfs::ProviderStats& p = swarm_->provider_stats();
    r.counter("dfl.provider.republish_sweeps").set(p.republish_sweeps);
    r.counter("dfl.provider.records_refreshed").set(p.records_refreshed);
    r.counter("dfl.provider.expired_lookups").set(p.expired_lookups);
  });
  obs::Registry::global().register_collector("fault", [this](obs::Registry& r) {
    if (fault_ == nullptr) return;
    const sim::FaultStats& s = fault_->stats();
    r.counter("dfl.fault.crashes").set(s.crashes);
    r.counter("dfl.fault.restarts").set(s.restarts);
    r.counter("dfl.fault.transfers_dropped").set(s.transfers_dropped);
    r.counter("dfl.fault.payloads_corrupted").set(s.payloads_corrupted);
    r.counter("dfl.fault.transfers_jittered").set(s.transfers_jittered);
  });
  obs::Registry::global().register_collector("crypto", [this](obs::Registry& r) {
    if (!engine_) return;
    const crypto::EngineStats s = engine_->stats();
    r.counter("dfl.crypto.commits").set(s.commits);
    r.counter("dfl.crypto.verifies").set(s.verifies);
    r.counter("dfl.crypto.batch_verifies").set(s.batch_verifies);
    r.counter("dfl.crypto.committed_elements").set(s.committed_elements);
    r.counter("dfl.crypto.commit_wall_ns").set(s.commit_wall_ns);
    r.counter("dfl.crypto.verify_wall_ns").set(s.verify_wall_ns);
  });
  obs::Registry::global().register_collector("sharding", [this](obs::Registry& r) {
    r.gauge("dfl.sim.shards").set(static_cast<double>(shards_));
    r.gauge("dfl.sim.lookahead_ns").set(static_cast<double>(lookahead_));
    r.counter("dfl.sim.windows").set(windows_total_);
    r.counter("dfl.sim.cross_shard_transfers").set(net_->cross_shard_transfers());
    r.counter("dfl.sim.local_shard_transfers").set(net_->local_shard_transfers());
  });
}

Deployment::~Deployment() {
  obs::Registry::global().unregister_collector("net");
  obs::Registry::global().unregister_collector("crypto");
  obs::Registry::global().unregister_collector("fault");
  obs::Registry::global().unregister_collector("sharding");
}

RoundMetrics Deployment::run_round(std::uint32_t iter) {
  RoundMetrics metrics;
  metrics.iter = iter;
  metrics.round_start = sim_->now();
  metrics.trainers.resize(trainers_.size());
  metrics.aggregators.resize(aggregators_.size());
  // A backend flip since the last probe (test override, DFL_NO_SIMD in a
  // forked child) would leave the modeled commit delay priced by code
  // that no longer runs; re-ground it before the round starts.
  if (engine_ && config_.options.calibrate_crypto && engine_->needs_recalibration()) {
    calibration_ = engine_->calibrate(0);
    boot_->spec().options.commit_ns_per_element = calibration_.ns_per_element;
  }
  const crypto::EngineStats crypto_before =
      engine_ ? engine_->stats() : crypto::EngineStats{};
  const sim::FaultStats faults_before = fault_ ? fault_->stats() : sim::FaultStats{};
  const sim::DataPathStats dp_before = sim::datapath_stats();

  // Scenario mode: arm one round's worth of chaos and provider republish
  // sweeps. Cursors are monotonic, so both calls are cheap no-ops for
  // already-covered spans and for legacy fully-armed plans.
  const sim::TimeNs round_horizon = metrics.round_start + boot_->spec().schedule.t_sync;
  if (fault_ != nullptr && incremental_chaos_) fault_->arm_until(round_horizon);
  swarm_->republish_until(round_horizon);
  const std::uint64_t events_before = sim_->events_processed();
  const auto wall_start = std::chrono::steady_clock::now();

  // The round umbrella span lives on the process track; every actor's
  // per-host "round" span parents under it via ctx_->round_span.
  sim::ScopedSpan round_span(*sim_, "round", obs::kProcessTrack);
  round_span.attr("iter", static_cast<std::int64_t>(iter));
  ctx_->round_span = round_span.id();

  for (auto& t : trainers_) {
    sim_->spawn(t->run_round(iter, metrics.round_start, metrics));
  }
  for (auto& a : aggregators_) {
    sim_->spawn(a->run_round(iter, metrics.round_start, metrics));
  }
  if (shards_ > 1) {
    // Chaos armed this round may have tightened the jitter floor; re-derive
    // the window width (enable_window_buckets re-buckets only on change).
    lookahead_ = derive_lookahead();
    sim_->enable_window_buckets(lookahead_);
  }
  // Run to quiescence: every actor either finished or timed out by t_sync.
  // drive_until(kNoEvent) is the serial run() at K = 1 and the sequenced
  // window driver at K > 1, interleaving metrics samples when enabled.
  drive_until(sim::Simulator::kNoEvent, metrics.sharding);
  ctx_->round_span = 0;
  round_span.close();

  metrics.datapath.stats = sim::datapath_stats().since(dp_before);
  metrics.datapath.sim_events = sim_->events_processed() - events_before;
  metrics.datapath.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  sim::TimeNs done = -1;
  for (const TrainerRecord& t : metrics.trainers) {
    done = std::max(done, t.model_ready_at);
  }
  metrics.round_done = done;

  if (engine_) {
    const crypto::EngineStats after = engine_->stats();
    metrics.crypto.commits = after.commits - crypto_before.commits;
    metrics.crypto.verifies = after.verifies - crypto_before.verifies;
    metrics.crypto.batch_verifies = after.batch_verifies - crypto_before.batch_verifies;
    metrics.crypto.committed_elements =
        after.committed_elements - crypto_before.committed_elements;
    metrics.crypto.commit_wall_ns = after.commit_wall_ns - crypto_before.commit_wall_ns;
    metrics.crypto.verify_wall_ns = after.verify_wall_ns - crypto_before.verify_wall_ns;
    metrics.crypto.threads = engine_->threads();
    metrics.crypto.calibrated_ns_per_element = calibration_.ns_per_element;
    metrics.crypto.parallel_speedup = calibration_.parallel_speedup;
    metrics.crypto.backend = crypto::backend_name(after.backend);
    metrics.crypto.isa = after.isa;
  }

  metrics.partitions_total = boot_->spec().num_partitions();
  metrics.partitions_complete = collect_global_update(iter);
  metrics.global_update_complete = !last_global_update_.empty();
  if (fault_) metrics.faults = fault_->stats().since(faults_before);
  if (!last_global_update_.empty()) {
    source_->apply_global_update(last_global_update_, iter);
  }
  attach_critical_path(metrics);
  if (slo_) metrics.slo_breaches = slo_->on_round(metrics, sim_->now());
  publish_round_metrics(metrics);
  return metrics;
}

sim::TimeNs Deployment::derive_lookahead() const {
  if (shards_ <= 1) return 0;
  // Conservative bound on how far ahead any shard may run: the smallest
  // latency a cross-shard delivery can possibly have. Jitter can only add
  // delay except when it fires with certainty and its distribution has a
  // positive floor — then that floor raises the bound too.
  sim::TimeNs base = net_->min_cross_shard_latency(placement_);
  if (base == sim::Simulator::kNoEvent) base = net_->min_path_latency();
  if (base == sim::Simulator::kNoEvent) base = config_.link_latency;
  const sim::TimeNs floor = config_.fault_plan.latency_floor_ns();
  if (base <= sim::Simulator::kNoEvent - floor) base += floor;
  return std::max<sim::TimeNs>(base, 1);
}


std::size_t Deployment::collect_global_update(std::uint32_t iter) {
  // Omniscient post-round read: assemble the accepted global updates
  // directly out of the directory rows and node block stores (no network
  // cost — this is measurement bookkeeping, not protocol). Expired
  // provider records are deliberately included: the data plane pays for
  // staleness, the measurement does not.
  last_global_update_.assign(boot_->spec().num_params(), 0.0);
  std::size_t complete = 0;
  for (std::size_t p = 0; p < boot_->spec().num_partitions(); ++p) {
    const auto rows = boot_->directory().rows(static_cast<std::uint32_t>(p), iter,
                                              directory::EntryType::kGlobalUpdate);
    if (rows.empty()) continue;
    Block data;
    bool found = false;
    for (const std::uint32_t node_id :
         swarm_->providers(rows.front().cid, /*include_expired=*/true)) {
      // peek: measurement read, kept out of the data-plane accounting.
      // peek_content reassembles DAG roots from their stored leaves.
      if (auto block = swarm_->node(node_id).peek_content(rows.front().cid)) {
        data = std::move(*block);
        found = true;
        break;
      }
    }
    if (!found) continue;
    const Payload payload = Payload::deserialize(data);
    const auto avg = payload.average(boot_->spec().options.frac_bits);
    const auto [first, last] = boot_->spec().partition_range(p);
    if (avg.size() != last - first) {
      throw std::runtime_error("Deployment: global update size mismatch");
    }
    std::copy(avg.begin(), avg.end(),
              last_global_update_.begin() + static_cast<std::ptrdiff_t>(first));
    ++complete;
  }
  if (complete != boot_->spec().num_partitions()) last_global_update_.clear();
  return complete;
}

void Deployment::advance(sim::TimeNs end, ShardingRecord& rec) {
  if (shards_ <= 1) {
    // run_before(kNoEvent) is exactly run(): every real event's timestamp
    // is below the sentinel, so the serial quiescent drive falls out.
    sim_->run_before(end);
    return;
  }
  rec.shards = shards_;
  rec.lookahead_ns = lookahead_;
  const std::uint64_t windows_before = rec.windows;
  const std::uint64_t cross_before = net_->cross_shard_transfers();
  const std::uint64_t local_before = net_->local_shard_transfers();
  // Sequenced window driver, capped at `end`: place each half-open window
  // [W, W + lookahead) at the globally earliest pending event and drain it
  // before moving on. One window at a time keeps execution order identical
  // to the serial engine (the windows only partition the same total event
  // order), so state at `end` is bit-identical to run_before(end) at any K,
  // while exposing the barrier cadence the parallel shards would see.
  for (;;) {
    const sim::TimeNs next = sim_->next_event_time();
    if (next == sim::Simulator::kNoEvent || next >= end) break;
    sim::TimeNs wend = next > sim::Simulator::kNoEvent - lookahead_
                           ? sim::Simulator::kNoEvent
                           : next + lookahead_;
    wend = std::min(wend, end);
    const std::uint64_t before = sim_->events_processed();
    sim_->run_before(wend);
    ++rec.windows;
    rec.max_window_events =
        std::max(rec.max_window_events, sim_->events_processed() - before);
  }
  windows_total_ += rec.windows - windows_before;
  rec.cross_shard_transfers += net_->cross_shard_transfers() - cross_before;
  rec.local_shard_transfers += net_->local_shard_transfers() - local_before;
}

void Deployment::drive_until(sim::TimeNs end, ShardingRecord& rec) {
  if (sampler_ == nullptr) {
    advance(end, rec);
    return;
  }
  // Segmented drive with sample boundaries: a sample at boundary T is taken
  // after every event with ts < T and before any event at ts >= T, so the
  // engine's event order — and therefore every simulated result — is
  // untouched by sampling. Samples only read registry state.
  for (;;) {
    const sim::TimeNs next = sim_->next_event_time();
    if (next == sim::Simulator::kNoEvent || next >= end) break;
    if (next_sample_ <= next) {
      sampler_->sample(next_sample_);
      next_sample_ += sample_period_;
      continue;
    }
    advance(std::min(end, next_sample_), rec);
  }
  // Flush the boundaries this drive covered but no event forced: up to
  // `end` for a deadline drive, up to the quiescent clock for a full drain
  // (every remaining boundary would just repeat the final state).
  const sim::TimeNs limit = end == sim::Simulator::kNoEvent ? sim_->now() : end;
  while (next_sample_ <= limit) {
    sampler_->sample(next_sample_);
    next_sample_ += sample_period_;
  }
}

void Deployment::enable_metrics_sampling(obs::TimeSeriesWriter& writer,
                                         sim::TimeNs period) {
  sampler_ = &writer;
  sample_period_ = std::max<sim::TimeNs>(period, 1);
  next_sample_ = sim_->now() + sample_period_;
}

std::vector<SloBreach> Deployment::finalize_slos() {
  if (!slo_) return {};
  return slo_->finalize(sim_->now());
}

void Deployment::fill_critical_path(RoundMetrics& m, const obs::RoundCriticalPath& rcp) {
  CriticalPathRecord& cp = m.critical_path;
  auto ns = [&rcp](obs::Blame b) {
    return rcp.blame_ns[static_cast<std::size_t>(b)];
  };
  cp.analyzed = true;
  cp.total_ns = rcp.total_ns();
  cp.train_ns = ns(obs::Blame::kTrain);
  cp.crypto_ns = ns(obs::Blame::kCrypto);
  cp.wire_ns = ns(obs::Blame::kWire);
  cp.queue_ns = ns(obs::Blame::kQueueWait);
  cp.stale_ns = ns(obs::Blame::kStaleWait);
  cp.merge_ns = ns(obs::Blame::kMerge);
  cp.segments = rcp.segments.size();
  cp.dominant_host = rcp.dominant_host();
  cp.dominant_host_ns = rcp.dominant_host_ns();
  cp.dominant_category = obs::blame_name(rcp.dominant_blame());
}

void Deployment::attach_critical_path(RoundMetrics& m) {
  if (!obs::enabled()) return;
  // Re-analyzing the full snapshot each round is O(rounds × spans) over a
  // run, but the trace itself is capped (span limit / transfer ring) and
  // rounds that aged out of it simply don't match — acceptable for the
  // smoke scales tracing targets.
  name_host_tracks(*net_);
  const obs::Analysis analysis =
      obs::analyze_critical_paths(obs::Tracer::instance().snapshot(), wire_slices(*net_));
  for (const obs::RoundCriticalPath& rcp : analysis.rounds) {
    if (rcp.iter == m.iter) {
      fill_critical_path(m, rcp);
      break;
    }
  }
}

RunSummary Deployment::run_async(int rounds, const ml::Dataset* eval) {
  RunSummary summary;
  if (rounds <= 0) return summary;
  auto* ml_source = dynamic_cast<MlGradientSource*>(source_.get());
  const Schedule& sched = boot_->spec().schedule;
  const sim::TimeNs period =
      config_.options.async_period > 0 ? config_.options.async_period : sched.t_train;
  const sim::TimeNs t0 = sim_->now();

  // Per-round metrics behind stable addresses: every actor coroutine holds
  // a reference to its round's record for the whole overlapped run.
  std::vector<std::unique_ptr<RoundMetrics>> rms;
  rms.reserve(static_cast<std::size_t>(rounds));

  const sim::FaultStats faults_before = fault_ ? fault_->stats() : sim::FaultStats{};
  const sim::DataPathStats dp_before = sim::datapath_stats();
  const std::uint64_t events_before = sim_->events_processed();
  const auto wall_start = std::chrono::steady_clock::now();

  if (shards_ > 1) {
    lookahead_ = derive_lookahead();
    sim_->enable_window_buckets(lookahead_);
  }

  // One umbrella span for the whole overlapped run: rounds coexist in
  // time, so a per-round ctx_->round_span would race. Actor round spans
  // carry their iter as an attribute.
  sim::ScopedSpan run_span(*sim_, "async_run", obs::kProcessTrack);
  run_span.attr("rounds", static_cast<std::int64_t>(rounds));
  run_span.attr("period_ms", static_cast<std::int64_t>(period / 1000000));
  ctx_->round_span = run_span.id();

  // Launch every round up front on the fixed cadence: round r trains while
  // round r-1 uploads and aggregates — the barrier-free overlap.
  for (int r = 0; r < rounds; ++r) {
    auto m = std::make_unique<RoundMetrics>();
    m->iter = static_cast<std::uint32_t>(r);
    m->round_start = t0 + static_cast<sim::TimeNs>(r) * period;
    m->trainers.resize(trainers_.size());
    m->aggregators.resize(aggregators_.size());
    for (auto& t : trainers_) sim_->spawn(t->run_round(m->iter, m->round_start, *m));
    for (auto& a : aggregators_) sim_->spawn(a->run_round(m->iter, m->round_start, *m));
    rms.push_back(std::move(m));
  }

  // Chaos and provider-republish cover the whole overlapped horizon.
  const sim::TimeNs horizon =
      t0 + static_cast<sim::TimeNs>(rounds - 1) * period + sched.t_sync;
  if (fault_ != nullptr && incremental_chaos_) fault_->arm_until(horizon);
  swarm_->republish_until(horizon);

  // Drive in round-deadline segments: each boundary collects round r's
  // global update and applies it, so rounds launched later train on it —
  // one or more rounds stale, which is exactly async FL's contract.
  for (int r = 0; r < rounds; ++r) {
    RoundMetrics& m = *rms[static_cast<std::size_t>(r)];
    drive_until(m.round_start + sched.t_sync, m.sharding);
    m.partitions_total = boot_->spec().num_partitions();
    m.partitions_complete = collect_global_update(m.iter);
    m.global_update_complete = !last_global_update_.empty();
    if (!last_global_update_.empty()) {
      source_->apply_global_update(last_global_update_, m.iter);
    }
    summary.updates.push_back(last_global_update_);
    if (ml_source != nullptr && eval != nullptr) {
      m.post_round_accuracy = ml_source->model().accuracy(*eval);
      m.post_round_loss = ml_source->model().loss(*eval);
      summary.accuracy.push_back(m.post_round_accuracy);
      summary.loss.push_back(m.post_round_loss);
    }
    // GC lags the staleness window: aggregators read gradients up to two
    // iterations back when covering stragglers.
    if (r >= 3) boot_->directory().gc_before(static_cast<std::uint32_t>(r - 2));
  }
  // Drain the tail: the last round's downloads run past its t_sync grace.
  drive_until(sim::Simulator::kNoEvent, rms.back()->sharding);
  ctx_->round_span = 0;
  run_span.close();

  // One analysis over the whole overlapped trace: async rounds interleave,
  // so per-round snapshots would re-walk the same spans; the per-host
  // "round" spans' iter attributes slice the DAG into round frames.
  obs::Analysis analysis;
  if (obs::enabled()) {
    name_host_tracks(*net_);
    analysis = obs::analyze_critical_paths(obs::Tracer::instance().snapshot(),
                                           wire_slices(*net_));
  }

  // Wall clock and engine throughput are properties of the overlapped run;
  // split them evenly across rounds for per-round reporting. The datapath
  // stats and fault deltas (not divisible) land on round 0.
  const std::uint64_t total_events = sim_->events_processed() - events_before;
  const auto total_wall = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  const auto n = static_cast<std::uint64_t>(rounds);
  rms.front()->datapath.stats = sim::datapath_stats().since(dp_before);
  if (fault_) rms.front()->faults = fault_->stats().since(faults_before);
  for (auto& mp : rms) {
    RoundMetrics& m = *mp;
    m.datapath.sim_events = total_events / n;
    m.datapath.wall_ns = total_wall / n;
    sim::TimeNs done = -1;
    for (const TrainerRecord& t : m.trainers) done = std::max(done, t.model_ready_at);
    m.round_done = done;
    for (const obs::RoundCriticalPath& rcp : analysis.rounds) {
      if (rcp.iter == m.iter) {
        fill_critical_path(m, rcp);
        break;
      }
    }
    if (slo_) m.slo_breaches = slo_->on_round(m, sim_->now());
    publish_round_metrics(m);
    summary.rounds.push_back(std::move(m));
  }
  return summary;
}

RunSummary Deployment::run(int rounds, const ml::Dataset* eval) {
  if (config_.options.async_rounds) return run_async(rounds, eval);
  RunSummary summary;
  auto* ml_source = dynamic_cast<MlGradientSource*>(source_.get());
  for (int r = 0; r < rounds; ++r) {
    RoundMetrics m = run_round(static_cast<std::uint32_t>(r));
    if (ml_source != nullptr && eval != nullptr) {
      m.post_round_accuracy = ml_source->model().accuracy(*eval);
      m.post_round_loss = ml_source->model().loss(*eval);
      summary.accuracy.push_back(m.post_round_accuracy);
      summary.loss.push_back(m.post_round_loss);
    }
    summary.rounds.push_back(std::move(m));
    // Bound directory state like a real deployment would (Section VI).
    boot_->directory().gc_before(static_cast<std::uint32_t>(r));
  }
  return summary;
}

}  // namespace dfl::core
