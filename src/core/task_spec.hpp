// Static description of one federated-learning deployment: the model
// partitioning, the role assignment (A_i aggregator sets, T_ij trainer
// sets, P_ij provider sets), the per-round schedule, and protocol options.
// Built once by the bootstrapper and shared read-only by every actor.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/codec.hpp"
#include "crypto/pedersen.hpp"
#include "ipfs/chunker.hpp"
#include "ipfs/retry.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

/// What a malicious or faulty aggregator does (Section III-A threat model).
enum class AggBehavior {
  kHonest,
  kDropsGradients,   // omits one trainer's gradient from its aggregation
  kAltersGradients,  // perturbs the aggregated values
  kOffline,          // never shows up; peers must cover for it
};

/// Faulty trainer profiles (trainers are honest-but-unreliable; malicious
/// trainers are out of scope, as in the paper).
enum class TrainerBehavior {
  kHonest,
  kSlow,     // training exceeds t_train -> aborts the iteration (Alg. 1 l.10)
  kOffline,  // intermittent connectivity: skips the round entirely
};

/// How trainers pick the storage node for a gradient partition within
/// their aggregator's provider set P_ij.
enum class ProviderPolicy {
  kRoundRobin,  // providers[trainer % |P_ij|]
  kHashed,      // pseudo-random uniform spread keyed on (partition, trainer)
                // — the Section VI suggestion to frustrate collusion between
                // malicious participants and specific storage nodes
};

struct Schedule {
  sim::TimeNs t_train = sim::from_seconds(60);   // gradients must be uploaded by then
  sim::TimeNs t_sync = sim::from_seconds(120);   // iteration hard deadline
  sim::TimeNs poll_interval = sim::from_millis(100);
};

struct ProtocolOptions {
  bool merge_and_download = false;
  bool verifiable = false;
  crypto::CurveId curve = crypto::CurveId::kSecp256k1;
  crypto::MsmMode msm_mode = crypto::MsmMode::kAuto;
  int frac_bits = 16;
  /// Simulated compute cost of commitment/verification per vector element
  /// (0 = free; set from measured Figure 3 rates for end-to-end realism).
  double commit_ns_per_element = 0.0;
  /// Crypto engine concurrency (counting the calling thread); 0 = all
  /// hardware cores, 1 = no worker threads. Commitments and verdicts are
  /// bit-identical at any setting — only real wall-clock changes.
  std::size_t crypto_threads = 1;
  /// Fixed-base precomputation for the Pedersen generators: 0 = off,
  /// 1 = auto-pick the window width from the cost model, 2..16 = forced
  /// window width. Tables build lazily on the first commit.
  int fixed_base_window = 0;
  /// Aggregators accept trainer commitments provisionally and check the
  /// whole round in one random-linear-combination MSM during synchronize;
  /// on failure they fall back to per-commitment checks to identify the
  /// culprits. Requires `verifiable`.
  bool batch_verify = false;
  /// Trainers audit the aggregator outputs they download against the
  /// directory's announced commitments (batched when batch_verify is on).
  /// Requires `verifiable`.
  bool audit_updates = false;
  /// Measure real commit throughput at startup and overwrite
  /// commit_ns_per_element with the calibrated rate, grounding the
  /// simulated compute delay in this machine's measured speed. Opt-in:
  /// makes simulated timings hardware-dependent (results stay exact).
  bool calibrate_crypto = false;
  /// How many storage nodes each global update is uploaded to. Hot objects
  /// (every trainer downloads them) need replicas or the single holder's
  /// uplink becomes the bottleneck — the availability knob Section VI
  /// suggests ("replicate through a predetermined number of IPFS nodes").
  std::size_t update_replicas = 2;
  /// How many providers each gradient partition is uploaded to (>1 keeps
  /// rounds alive through storage-node failures; Section VI availability).
  std::size_t gradient_replicas = 1;
  /// Trainers register all their partition hashes with the directory in a
  /// single batched message instead of one per partition (the Section VI
  /// "minimize the query load of the directory service" direction).
  bool batched_announce = false;
  /// Provider selection within P_ij.
  ProviderPolicy provider_policy = ProviderPolicy::kRoundRobin;
  /// Transfer plane: kDag chunks every stored object into a Merkle DAG of
  /// `chunk_size` leaves — uploads pipeline hop-to-hop per chunk, fetches
  /// stripe leaves across providers, and merge-and-download streams partial
  /// sums while later chunks are still arriving. kMonolithic is the legacy
  /// whole-blob plane (same binary, A/B comparable, bit-identical results).
  ipfs::ChunkingMode chunking = ipfs::ChunkingMode::kMonolithic;
  /// Leaf payload size in bytes for the kDag plane.
  std::size_t chunk_size = ipfs::kDefaultChunkSize;
  /// Pipe reservation horizon of one bulk DAG operation, in leaves
  /// (0 = unbounded; see ChunkingConfig::pipeline_depth).
  std::size_t chunk_pipeline = 1;
  /// Storage-RPC resilience: per-attempt deadlines, bounded retries,
  /// exponential backoff with deterministic jitter. All trainer and
  /// aggregator put/get/merge_get/fetch traffic goes through this policy;
  /// downloads are additionally bounded by the round's t_sync deadline
  /// (straggler tolerance: proceed with whatever arrived).
  ipfs::RetryPolicy retry;
  /// Gradient-upload wire codec. Trainers encode each partition payload
  /// before storing it; receivers decode before folding, so partial sums
  /// stay exact in the int64 accumulation domain (decode-on-fold). Merged
  /// pre-aggregates, partial updates, and global updates always ship
  /// dense. kDense is the identity: byte-identical to the legacy format.
  Codec codec = Codec::kDense;
  /// Bits per element for Codec::kQuant, in [2, 16].
  int quant_bits = 8;
  /// Fraction of gradient elements kept by Codec::kTopK, in (0, 1].
  double topk_frac = 0.1;
  /// Barrier-free asynchronous rounds: every round launches on a fixed
  /// cadence (`async_period`) instead of waiting for the previous round to
  /// quiesce, trainers keep uploading even when training overruns t_train,
  /// and aggregators cover trainers that miss the gather deadline by
  /// folding their most recent prior-iteration gradient with staleness
  /// weight 1/(1+s)^staleness_alpha. Incompatible with `verifiable`
  /// (commitments attest a single synchronous round's inputs).
  bool async_rounds = false;
  /// Staleness decay exponent α for async folds.
  double staleness_alpha = 0.5;
  /// Round launch cadence for async mode (0 = schedule.t_train).
  sim::TimeNs async_period = 0;
};

/// The wire-codec negotiation the options describe.
[[nodiscard]] inline CodecConfig codec_config(const ProtocolOptions& o) {
  return CodecConfig{o.codec, o.quant_bits, o.topk_frac};
}

/// Role assignment for one partition.
struct PartitionAssignment {
  /// Aggregator indices responsible for this partition (the set A_i).
  std::vector<std::uint32_t> aggregators;
  /// For each aggregator (parallel to `aggregators`): its trainers T_ij.
  std::vector<std::vector<std::uint32_t>> trainers;
  /// For each aggregator: its IPFS provider node ids P_ij.
  std::vector<std::vector<std::uint32_t>> providers;
};

class TaskSpec {
 public:
  TaskSpec(std::size_t num_params, std::size_t num_partitions, std::size_t num_trainers);

  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] std::size_t num_partitions() const { return partitions_.size(); }
  [[nodiscard]] std::size_t num_trainers() const { return num_trainers_; }

  /// Element range [first, last) of partition p in the flat parameter vector.
  [[nodiscard]] std::pair<std::size_t, std::size_t> partition_range(std::size_t p) const;
  [[nodiscard]] std::size_t partition_size(std::size_t p) const;
  /// Largest partition length (the Pedersen key needs size + 1 generators).
  [[nodiscard]] std::size_t max_partition_size() const;

  [[nodiscard]] const PartitionAssignment& assignment(std::size_t p) const {
    return partitions_.at(p);
  }
  PartitionAssignment& assignment(std::size_t p) { return partitions_.at(p); }

  /// The aggregator (index into assignment.aggregators) handling trainer t
  /// for partition p; throws if t is not assigned.
  [[nodiscard]] std::uint32_t aggregator_of(std::size_t p, std::uint32_t trainer) const;

  /// The provider node trainer t must upload partition p to: its
  /// aggregator's provider list indexed per options.provider_policy.
  [[nodiscard]] std::uint32_t provider_for(std::size_t p, std::uint32_t trainer) const;

  /// Primary provider plus up to `replicas - 1` distinct fallback nodes
  /// from the same P_ij (gradient replication, Section VI availability).
  [[nodiscard]] std::vector<std::uint32_t> upload_targets(std::size_t p, std::uint32_t trainer,
                                                          std::size_t replicas) const;

  /// Round-robin construction of the standard assignment used by the
  /// paper's experiments: `aggs_per_partition` aggregators per partition
  /// (aggregator indices are global, one participant per (partition, slot)),
  /// trainers dealt round-robin among them, and each aggregator given
  /// `providers_per_agg` storage nodes from a pool of `num_nodes`.
  void build_round_robin(std::size_t aggs_per_partition, std::size_t providers_per_agg,
                         std::size_t num_nodes);

  Schedule schedule;
  ProtocolOptions options;

 private:
  std::size_t num_params_;
  std::size_t num_trainers_;
  std::vector<PartitionAssignment> partitions_;
  std::vector<std::size_t> offsets_;  // partition start offsets, size = P+1
};

}  // namespace dfl::core
