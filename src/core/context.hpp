// Shared wiring handed to every protocol actor: the simulation fabric, the
// storage network, the directory service, the task description, and the
// gradient source. Owned by the Deployment (runner.hpp).
#pragma once

#include "core/gradient_source.hpp"
#include "core/payload.hpp"
#include "core/task_spec.hpp"
#include "crypto/engine.hpp"
#include "directory/directory.hpp"
#include "ipfs/pubsub.hpp"
#include "ipfs/swarm.hpp"
#include "obs/trace.hpp"
#include "sim/net.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

struct Context {
  sim::Simulator& sim;
  sim::Network& net;
  ipfs::Swarm& swarm;
  ipfs::PubSub& pubsub;
  directory::Directory& dir;
  const TaskSpec& spec;
  GradientSource& source;
  /// Non-null iff spec.options.verifiable.
  const crypto::PedersenKey* key = nullptr;
  PayloadMerger merger;
  /// Non-null iff spec.options.verifiable; wraps `key` with the thread
  /// pool, fixed-base tables and deterministic batch verification. Actors
  /// go through the engine so per-round crypto stats are collected in one
  /// place. (Assigned by the Deployment after construction.)
  crypto::Engine* engine = nullptr;
  /// obs span of the round currently executing (0 outside a round /
  /// tracing off). Set by Deployment::run_round; actors parent their
  /// per-host "round" spans under it.
  obs::SpanId round_span = 0;

  /// Simulated compute cost of committing/verifying an `elements`-long
  /// vector. Uses the calibrated rate when calibration ran (the runner
  /// overwrites commit_ns_per_element), otherwise the configured constant.
  [[nodiscard]] sim::TimeNs commit_cost(std::size_t elements) const {
    return static_cast<sim::TimeNs>(spec.options.commit_ns_per_element *
                                    static_cast<double>(elements));
  }

  [[nodiscard]] crypto::Commitment commit(const std::vector<std::int64_t>& values) const {
    return engine != nullptr ? engine->commit(values) : key->commit(values);
  }
  [[nodiscard]] bool verify(const crypto::Commitment& c,
                            const std::vector<std::int64_t>& values) const {
    return engine != nullptr ? engine->verify(c, values) : key->verify(c, values);
  }
};

}  // namespace dfl::core
