// Shared wiring handed to every protocol actor: the simulation fabric, the
// storage network, the directory service, the task description, and the
// gradient source. Owned by the Deployment (runner.hpp).
#pragma once

#include "core/gradient_source.hpp"
#include "core/payload.hpp"
#include "core/task_spec.hpp"
#include "directory/directory.hpp"
#include "ipfs/pubsub.hpp"
#include "ipfs/swarm.hpp"
#include "sim/net.hpp"
#include "sim/simulator.hpp"

namespace dfl::core {

struct Context {
  sim::Simulator& sim;
  sim::Network& net;
  ipfs::Swarm& swarm;
  ipfs::PubSub& pubsub;
  directory::Directory& dir;
  const TaskSpec& spec;
  GradientSource& source;
  /// Non-null iff spec.options.verifiable.
  const crypto::PedersenKey* key = nullptr;
  PayloadMerger merger;

  /// Simulated compute cost of committing/verifying an `elements`-long
  /// vector (spec.options.commit_ns_per_element scaling).
  [[nodiscard]] sim::TimeNs commit_cost(std::size_t elements) const {
    return static_cast<sim::TimeNs>(spec.options.commit_ns_per_element *
                                    static_cast<double>(elements));
  }
};

}  // namespace dfl::core
