// Small-buffer move-only callable for the simulator's event queue.
//
// std::function heap-allocates any capture larger than ~2 pointers; the
// simulator schedules millions of tiny closures per run (a coroutine handle,
// a shared_ptr to an in-flight transfer record), so every event paid a
// malloc/free round trip. InlineFn stores captures up to kInlineBytes in
// place and only falls back to the heap for oversized ones.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dfl {

/// Move-only `void()` callable with inline storage for small captures.
/// Unlike std::function it never copies the target and never allocates for
/// captures of up to `kInlineBytes` (with no stricter alignment than
/// std::max_align_t).
template <std::size_t kInlineBytes = 48>
class InlineFn {
 public:
  InlineFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFn> && std::is_invocable_r_v<void, F&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      on_heap_ = false;
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
      relocate_ = [](void* src, void* dst) {
        auto* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      on_heap_ = true;
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
      relocate_ = nullptr;  // heap targets move by pointer
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(target()); }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the target lives in the inline buffer (observability/tests).
  [[nodiscard]] bool is_inline() const noexcept { return invoke_ != nullptr && !on_heap_; }

 private:
  void* target() noexcept { return on_heap_ ? heap_ : static_cast<void*>(buf_); }

  void reset() noexcept {
    if (invoke_ != nullptr) destroy_(target());
    invoke_ = nullptr;
  }

  void move_from(InlineFn& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    relocate_ = other.relocate_;
    on_heap_ = other.on_heap_;
    if (other.invoke_ != nullptr) {
      if (other.on_heap_) {
        heap_ = other.heap_;
      } else {
        relocate_(other.buf_, buf_);
      }
      other.invoke_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  bool on_heap_ = false;
};

}  // namespace dfl
