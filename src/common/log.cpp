#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dfl {

namespace {

LogLevel startup_level() {
  return parse_log_level(std::getenv("DFL_LOG_LEVEL"), LogLevel::kWarn);
}

std::atomic<LogLevel> g_level{startup_level()};

// Serializes formatted writes: thread-pool workers (crypto engine,
// generator derivation) log concurrently with the single-threaded
// simulator, and interleaved fprintf halves are not acceptable output.
std::mutex g_write_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const char* name, LogLevel fallback) {
  if (name == nullptr) return fallback;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_write_mu);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}

}  // namespace dfl
