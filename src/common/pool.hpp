// Fixed-size thread pool (no work stealing) for CPU-bound crypto fan-out.
//
// Design constraints, in order:
//  - Determinism: `parallel_for` partitions work by a grain that does NOT
//    depend on how many threads happen to exist, so callers that combine
//    per-chunk results in chunk order get bit-identical output at any
//    concurrency (including 1).
//  - No deadlocks under nesting: the calling thread always participates in
//    draining its own chunk queue, so a `parallel_for` issued from inside a
//    worker completes even when every other worker is busy.
//  - Zero threads is a valid configuration: `ThreadPool(1)` spawns no
//    workers and runs everything inline on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dfl {

class ThreadPool {
 public:
  /// `concurrency` counts the caller: a pool of concurrency c spawns c - 1
  /// worker threads. 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t concurrency = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency during parallel_for (workers + the calling thread).
  [[nodiscard]] std::size_t concurrency() const { return workers_.size() + 1; }

  /// Enqueues one task; runs inline when the pool has no workers.
  std::future<void> submit(std::function<void()> fn);

  /// Runs `chunk_fn(chunk_begin, chunk_end)` over [begin, end) split into
  /// grain-sized chunks, blocking until every chunk ran. Chunk boundaries
  /// depend only on (begin, end, grain), never on the thread count; the
  /// calling thread participates. The first exception thrown by a chunk is
  /// rethrown here after all chunks finish or are skipped.
  /// grain == 0 picks one that keeps every thread busy several times over.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                    std::size_t grain = 0);

  /// Process-wide pool at hardware concurrency, created on first use.
  /// Honors DFL_THREADS (>=1) when set in the environment.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dfl
