#include "common/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace dfl {

namespace {

std::size_t resolve_concurrency(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t concurrency) {
  const std::size_t total = resolve_concurrency(concurrency);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (workers_.empty()) {
    (*task)();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
  }
  cv_.notify_one();
  return fut;
}

namespace {

/// Shared state of one parallel_for call. Kept alive by shared_ptr until
/// the last queued helper observed completion; `fn` stays valid because the
/// caller cannot leave parallel_for while any chunk body is running.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::size_t chunks = 0;
  std::size_t begin = 0, end = 0, grain = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

/// Claims and runs chunks until none remain. After a failure, remaining
/// chunks are still claimed and counted (so `done` always reaches `chunks`)
/// but their bodies are skipped.
void drain_chunks(ForState& s) {
  for (;;) {
    const std::size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s.chunks) return;
    if (!s.failed.load(std::memory_order_relaxed)) {
      try {
        const std::size_t lo = s.begin + c * s.grain;
        const std::size_t hi = std::min(s.end, lo + s.grain);
        (*s.fn)(lo, hi);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(s.mu);
          if (!s.error) s.error = std::current_exception();
        }
        s.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.chunks) {
      {
        std::lock_guard<std::mutex> lock(s.mu);  // pairs with the cv wait
      }
      s.cv.notify_all();
      return;
    }
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& chunk_fn,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // ~4 chunks per thread bounds scheduling overhead while keeping the
    // tail balanced. Callers that fold per-chunk results and need the
    // partition itself to be thread-count-independent pass an explicit
    // grain (the chunk *results* of associative folds don't need this).
    grain = std::max<std::size_t>(1, n / (4 * concurrency()));
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) {
    chunk_fn(begin, end);
    return;
  }
  if (workers_.empty()) {
    // Same chunk boundaries as the threaded path — the (begin, end, grain)
    // partition is part of the determinism contract, not a detail of how
    // many threads happen to exist.
    for (std::size_t lo = begin; lo < end; lo += grain) {
      chunk_fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto st = std::make_shared<ForState>();
  st->chunks = chunks;
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->fn = &chunk_fn;

  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([st] { drain_chunks(*st); });
    }
  }
  cv_.notify_all();

  drain_chunks(*st);

  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock,
                [&] { return st->done.load(std::memory_order_acquire) == st->chunks; });
  }
  if (st->error) std::rethrow_exception(st->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    if (const char* v = std::getenv("DFL_THREADS")) {
      const long n = std::strtol(v, nullptr, 10);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace dfl
