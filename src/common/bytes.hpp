// Byte-buffer utilities shared across the project: the canonical `Bytes`
// type, hex encoding/decoding, and small conversion helpers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dfl {

/// Canonical owned byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes (read-only).
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as a lowercase hex string ("deadbeef").
std::string to_hex(BytesView data);

/// Decodes a hex string (with or without "0x" prefix, case-insensitive).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Builds a Bytes buffer from a string's raw characters.
Bytes bytes_of(std::string_view s);

/// Constant-time equality check for secret-adjacent comparisons.
bool equal_constant_time(BytesView a, BytesView b);

}  // namespace dfl
