// Tiny leveled logger. Defaults to WARN so tests and benches stay quiet;
// examples raise the level to narrate protocol progress. The startup
// default can be overridden without recompiling by setting DFL_LOG_LEVEL
// to trace|debug|info|warn|error|off in the environment.
#pragma once

#include <sstream>
#include <string>

namespace dfl {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name ("trace".."off", case-insensitive); returns
/// `fallback` on null/unknown input. Used for DFL_LOG_LEVEL at startup.
LogLevel parse_log_level(const char* name, LogLevel fallback);

/// Emits one formatted line to stderr. Thread-safe: the level check is
/// atomic and the write is serialized by a mutex, so thread-pool workers
/// (crypto engine, generator derivation) can log alongside the simulator
/// without interleaving lines.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

#define DFL_LOG(level, component)                    \
  if (::dfl::log_level() > (level)) {                \
  } else                                             \
    ::dfl::detail::LogStream((level), (component))

#define DFL_TRACE(component) DFL_LOG(::dfl::LogLevel::kTrace, component)
#define DFL_DEBUG(component) DFL_LOG(::dfl::LogLevel::kDebug, component)
#define DFL_INFO(component) DFL_LOG(::dfl::LogLevel::kInfo, component)
#define DFL_WARN(component) DFL_LOG(::dfl::LogLevel::kWarn, component)
#define DFL_ERROR(component) DFL_LOG(::dfl::LogLevel::kError, component)

}  // namespace dfl
