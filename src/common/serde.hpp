// Minimal binary serialization: little-endian fixed-width integers, doubles,
// length-prefixed strings/byte blobs and vectors. Used for everything that
// travels over the simulated network or is hashed into a CID.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"

namespace dfl {

/// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  template <typename T>
    requires std::is_integral_v<T>
  void put(T value) {
    auto u = static_cast<std::make_unsigned_t<T>>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
    }
  }

  void put_double(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    put<std::uint64_t>(bits);
  }

  void put_bytes(BytesView data) {
    put<std::uint32_t>(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_string(std::string_view s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends raw bytes with no length prefix.
  void put_raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  void put_doubles(const std::vector<double>& v) {
    put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
    for (double d : v) put_double(d);
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitive values back; throws std::out_of_range on truncation.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  template <typename T>
    requires std::is_integral_v<T>
  T get() {
    need(sizeof(T));
    std::make_unsigned_t<T> u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u |= static_cast<std::make_unsigned_t<T>>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(u);
  }

  double get_double() {
    const std::uint64_t bits = get<std::uint64_t>();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  Bytes get_bytes() {
    const auto n = get<std::uint32_t>();
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  std::vector<double> get_doubles() {
    const auto n = get<std::uint32_t>();
    std::vector<double> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_double());
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("Reader: truncated buffer");
    }
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace dfl
