#include "common/cpu.hpp"

#include <cstdlib>

namespace dfl {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512ifma = f.avx512f && __builtin_cpu_supports("avx512ifma") != 0 &&
                 __builtin_cpu_supports("avx512vl") != 0 &&
                 __builtin_cpu_supports("avx512dq") != 0 &&
                 __builtin_cpu_supports("avx512bw") != 0;
#endif
  const char* no_simd = std::getenv("DFL_NO_SIMD");
  f.simd_disabled_by_env = no_simd != nullptr && no_simd[0] != '\0' && no_simd[0] != '0';
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  auto append = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (f.avx2) append("avx2");
  if (f.bmi2) append("bmi2");
  if (f.avx512f) append("avx512f");
  if (f.avx512ifma) append("avx512ifma");
  if (s.empty()) s = "none";
  if (f.simd_disabled_by_env) s += "+no-simd-env";
  return s;
}

}  // namespace dfl
