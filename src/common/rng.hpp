// Deterministic, seedable pseudo-random number generation (xoshiro256**).
// All randomness in the simulator, the workload generators and the tests
// flows through this type so runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace dfl {

/// xoshiro256** PRNG seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponentially distributed with the given rate (lambda).
  double exponential(double rate);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Fills a buffer with random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n);

  /// Derives an independent child generator (for per-actor streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace dfl
