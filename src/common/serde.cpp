#include "common/serde.hpp"

// Header-only implementation; this TU exists to give the library a
// compiled anchor and to catch ODR/compile problems early.
namespace dfl {}
