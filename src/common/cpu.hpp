// Runtime CPU feature detection for SIMD dispatch decisions. Detection runs
// once (first call) and is cached; the `DFL_NO_SIMD=1` environment variable
// is captured at the same time so a whole process can be forced onto the
// scalar paths for A/B testing and CI fallback coverage.
#pragma once

#include <string>

namespace dfl {

struct CpuFeatures {
  bool avx2 = false;
  bool bmi2 = false;
  bool avx512f = false;
  /// The full feature set the 52-bit-limb IFMA tier needs (avx512f + ifma
  /// + vl + dq + bw); the avx2 crypto backend silently widens when set.
  bool avx512ifma = false;
  /// DFL_NO_SIMD=1 was set when the process first queried features; SIMD
  /// backends must treat supported features as absent when this is set.
  bool simd_disabled_by_env = false;
};

/// Cached hardware feature probe (thread-safe, detection runs once).
const CpuFeatures& cpu_features();

/// Comma-separated list of detected features ("avx2,bmi2,avx512f"), with
/// "+no-simd-env" appended when DFL_NO_SIMD suppressed them; "none" when
/// nothing relevant was detected. Stable strings meant for bench metadata.
std::string cpu_feature_string();

}  // namespace dfl
