// Running summary statistics and percentile helpers used by the benchmark
// harnesses and by protocol metrics collection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfl {

/// Accumulates samples; computes mean/variance online (Welford) and keeps
/// the raw samples so percentiles can be queried afterwards.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// HDR-style log-bucket histogram over non-negative 64-bit values.
///
/// Values below 2^(sub_bucket_bits+1) land in exact unit buckets; above
/// that, each power-of-two octave is split into 2^sub_bucket_bits
/// sub-buckets, bounding the relative recording error by
/// 2^-sub_bucket_bits (12.5% at the default of 3) while keeping the
/// bucket array small (~500 entries) and O(1) to record into. Unlike
/// `Summary` it never stores samples, so it is safe to feed from hot
/// paths that record millions of values.
class LogHistogram {
 public:
  explicit LogHistogram(int sub_bucket_bits = 3);

  void record(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;

  /// Upper bound of the bucket holding the p-th percentile (p in
  /// [0, 100]), clamped to the recorded max. 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  struct Bucket {
    std::uint64_t lo = 0;     // inclusive
    std::uint64_t hi = 0;     // inclusive
    std::uint64_t count = 0;
  };
  /// Non-empty buckets in ascending value order.
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] int sub_bucket_bits() const { return sub_bits_; }

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t v) const;
  [[nodiscard]] std::uint64_t bucket_lo(std::size_t idx) const;
  [[nodiscard]] std::uint64_t bucket_hi(std::size_t idx) const;

  int sub_bits_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dfl
