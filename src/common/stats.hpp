// Running summary statistics and percentile helpers used by the benchmark
// harnesses and by protocol metrics collection.
#pragma once

#include <cstddef>
#include <vector>

namespace dfl {

/// Accumulates samples; computes mean/variance online (Welford) and keeps
/// the raw samples so percentiles can be queried afterwards.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dfl
