#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace dfl {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (unreachable with splitmix64, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double rate) {
  double u = uniform01();
  while (u <= 1e-300) u = uniform01();
  return -std::log(u) / rate;
}

void Rng::fill_bytes(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t r = next();
    for (int k = 0; k < 8; ++k) out[i + static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(r >> (8 * k));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t r = next();
    for (int k = 0; i < n; ++i, ++k) out[i] = static_cast<std::uint8_t>(r >> (8 * k));
  }
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

}  // namespace dfl
