#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dfl {

void Summary::add(double x) {
  samples_.push_back(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Summary::percentile on empty summary");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace dfl
