#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dfl {

void Summary::add(double x) {
  samples_.push_back(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Summary::percentile on empty summary");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

namespace {
int bit_width_u64(std::uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}
}  // namespace

LogHistogram::LogHistogram(int sub_bucket_bits) : sub_bits_(sub_bucket_bits) {
  if (sub_bits_ < 0 || sub_bits_ > 8) {
    throw std::logic_error("LogHistogram: sub_bucket_bits must be in [0, 8]");
  }
  // Exact buckets cover [0, 2^(sub+1)); each further octave (there are
  // 63 - sub of them) contributes 2^sub sub-buckets.
  const std::size_t exact = std::size_t{1} << (sub_bits_ + 1);
  const std::size_t octaves = static_cast<std::size_t>(63 - sub_bits_);
  buckets_.assign(exact + octaves * (std::size_t{1} << sub_bits_), 0);
}

std::size_t LogHistogram::bucket_index(std::uint64_t v) const {
  const std::uint64_t exact = std::uint64_t{1} << (sub_bits_ + 1);
  if (v < exact) return static_cast<std::size_t>(v);
  const int b = bit_width_u64(v);               // >= sub_bits_ + 2
  const int shift = b - sub_bits_ - 1;          // >= 1
  const std::uint64_t mantissa = v >> shift;    // in [2^sub, 2^(sub+1))
  const std::uint64_t sub_count = std::uint64_t{1} << sub_bits_;
  return static_cast<std::size_t>(exact + static_cast<std::uint64_t>(shift - 1) * sub_count +
                                  (mantissa - sub_count));
}

std::uint64_t LogHistogram::bucket_lo(std::size_t idx) const {
  const std::uint64_t exact = std::uint64_t{1} << (sub_bits_ + 1);
  if (idx < exact) return idx;
  const std::uint64_t sub_count = std::uint64_t{1} << sub_bits_;
  const std::uint64_t rel = idx - exact;
  const int shift = static_cast<int>(rel / sub_count) + 1;
  const std::uint64_t mantissa = sub_count + rel % sub_count;
  return mantissa << shift;
}

std::uint64_t LogHistogram::bucket_hi(std::size_t idx) const {
  const std::uint64_t exact = std::uint64_t{1} << (sub_bits_ + 1);
  if (idx < exact) return idx;
  const std::uint64_t sub_count = std::uint64_t{1} << sub_bits_;
  const std::uint64_t rel = idx - exact;
  const int shift = static_cast<int>(rel / sub_count) + 1;
  const std::uint64_t mantissa = sub_count + rel % sub_count;
  return ((mantissa + 1) << shift) - 1;
}

void LogHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(value)] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
  sum_ += value * count;
}

double LogHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(bucket_hi(i), max_);
    }
  }
  return max_;
}

std::vector<LogHistogram::Bucket> LogHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bucket{bucket_lo(i), bucket_hi(i), buckets_[i]});
  }
  return out;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.sub_bits_ != sub_bits_) {
    throw std::logic_error("LogHistogram::merge: sub_bucket_bits mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ != 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace dfl
