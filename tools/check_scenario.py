#!/usr/bin/env python3
"""Check a dflsim metrics JSONL run against a scenario's [slo] section.

Usage:
  check_scenario.py SCENARIO.scn METRICS.jsonl       # SLO gate
  check_scenario.py --identical A.jsonl B.jsonl      # determinism gate

The SLO gate reads the [slo] section straight out of the .scn file (the
same file dflsim ran), so thresholds live next to the chaos they gate.
Supported keys:

  completion_rate_min    mean of partitions_complete / partitions_total
  rounds_complete_min    rounds with round_complete == 1
  round_p50_ms_max       p50 of round_ms over completed rounds
  round_p99_ms_max       p99 of round_ms over completed rounds
  crashes_min            total injected crashes (asserts chaos fired)
  transfers_dropped_max  total dropped transfers
  payloads_corrupted_max total corrupted payloads

The determinism gate compares the (round, aggregate_hash, fault-counter)
sequences of two runs; same scenario + same seed must be bit-identical.

Exit code 0 = pass, 1 = violation, 2 = usage/parse error.
"""
import json
import sys


def parse_slo(path):
    slo = []
    section = None
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#")[0].split(";")[0].strip()
            if not line:
                continue
            if line.startswith("["):
                section = line.strip("[]").strip()
                continue
            if section != "slo" or "=" not in line:
                continue
            key, _, value = line.partition("=")
            try:
                slo.append((key.strip(), float(value.strip())))
            except ValueError:
                sys.exit(f"{path}:{lineno}: bad [slo] value: {line!r}")
    return slo


def load_rounds(path):
    rounds = []
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                rounds.append(json.loads(raw))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: bad JSONL: {e}")
    if not rounds:
        sys.exit(f"{path}: no rounds recorded")
    return rounds


def percentile(values, p):
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def check_slos(scn_path, jsonl_path):
    slo = parse_slo(scn_path)
    if not slo:
        sys.exit(f"{scn_path}: no [slo] section to check")
    rounds = load_rounds(jsonl_path)

    rates = [
        r["partitions_complete"] / r["partitions_total"]
        for r in rounds
        if r.get("partitions_total", 0) > 0
    ]
    completion_rate = sum(rates) / len(rates) if rates else 0.0
    complete = sum(1 for r in rounds if r.get("round_complete") == 1)
    durations = [r["round_ms"] for r in rounds if r.get("round_ms", -1) >= 0]
    totals = {
        k: sum(r.get(k, 0) for r in rounds)
        for k in ("crashes", "transfers_dropped", "payloads_corrupted")
    }

    failures = []

    def gate(name, actual, bound, is_min):
        ok = actual >= bound if is_min else actual <= bound
        mark = "ok  " if ok else "FAIL"
        op = ">=" if is_min else "<="
        print(f"  {mark} {name} = {actual:g} (want {op} {bound:g})")
        if not ok:
            failures.append(name)

    print(f"{scn_path} vs {jsonl_path}: {len(rounds)} rounds, "
          f"{complete} complete, completion_rate {completion_rate:.3f}")
    for key, bound in slo:
        if key == "completion_rate_min":
            gate(key, completion_rate, bound, True)
        elif key == "rounds_complete_min":
            gate(key, complete, bound, True)
        elif key in ("round_p50_ms_max", "round_p99_ms_max"):
            if not durations:
                print(f"  FAIL {key}: no completed rounds to measure")
                failures.append(key)
                continue
            p = 50 if key == "round_p50_ms_max" else 99
            gate(key, percentile(durations, p), bound, False)
        elif key == "crashes_min":
            gate(key, totals["crashes"], bound, True)
        elif key == "transfers_dropped_max":
            gate(key, totals["transfers_dropped"], bound, False)
        elif key == "payloads_corrupted_max":
            gate(key, totals["payloads_corrupted"], bound, False)
        else:
            sys.exit(f"{scn_path}: unknown [slo] key '{key}'")
    return failures


# cp_* fields only appear on traced runs; untraced pairs compare them as
# None == None, so the fingerprint stays backward-compatible. On traced
# pairs they additionally pin the critical-path analysis to be
# deterministic (byte-identical blame attribution run over run).
FINGERPRINT = ("round", "aggregate_hash", "round_complete", "partitions_complete",
               "crashes", "restarts", "transfers_dropped", "payloads_corrupted",
               "transfers_jittered", "cp_total_ns", "cp_train_ns", "cp_crypto_ns",
               "cp_wire_ns", "cp_queue_ns", "cp_stale_ns", "cp_merge_ns",
               "cp_segments")


def check_identical(a_path, b_path):
    a, b = load_rounds(a_path), load_rounds(b_path)
    if len(a) != len(b):
        print(f"FAIL: {a_path} has {len(a)} rounds, {b_path} has {len(b)}")
        return ["rounds"]
    failures = []
    for ra, rb in zip(a, b):
        fa = tuple(ra.get(k) for k in FINGERPRINT)
        fb = tuple(rb.get(k) for k in FINGERPRINT)
        if fa != fb:
            print(f"FAIL: round {ra.get('round')} diverges:\n  {fa}\n  {fb}")
            failures.append(f"round{ra.get('round')}")
    if not failures:
        print(f"identical: {len(a)} rounds, fingerprints match")
    return failures


def main(argv):
    if len(argv) == 4 and argv[1] == "--identical":
        failures = check_identical(argv[2], argv[3])
    elif len(argv) == 3:
        failures = check_slos(argv[1], argv[2])
    else:
        sys.exit(__doc__)
    if failures:
        print(f"SLO violations: {', '.join(failures)}")
        return 1
    print("all SLOs met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
