#!/usr/bin/env python3
"""Compares two BENCH_*.json files and reports per-cell numeric deltas.

Handles every bench output shape in this repo without per-bench code:

  - cells documents   {"bench": ..., "cells": [{...}, ...]}
  - nested documents  {"baseline": {...}, "zero_copy": {...}, ...}
  - row lists         [{"op": ..., "backend": ..., "ns_per_op": ...}, ...]

Rows/objects are keyed by their non-numeric scalar fields plus a small set
of well-known numeric identity fields (size, threads, shards, providers,
...), so the same logical cell is compared across files even when the
files order cells differently or one file has cells the other lacks.

Every numeric leaf becomes one comparison: old value, new value, delta and
percent change. Rows whose |pct| exceeds --threshold are marked with `!`
(and with --gate make the exit status nonzero — by default the report is
informational, for the non-gating CI step).

  tools/bench_diff.py old/BENCH_sim.json new/BENCH_sim.json
  tools/bench_diff.py --threshold 10 --gate old.json new.json

Exit status: 0 normally; 1 only with --gate and a regression; 2 on bad
input. Stdlib only.
"""

import argparse
import json
import sys

# Numeric fields that identify a cell rather than measure it: they join
# the row key and are excluded from the diff.
IDENTITY_FIELDS = {
    "size", "threads", "shards", "providers", "hosts", "chunk_bytes",
    "window", "rounds", "trainers", "partitions", "round",
}
# Non-numeric fields that are measurements (digests pin determinism):
# report changes, but never as a percent regression.
TEXT_MEASUREMENTS = {"fingerprint", "digest", "agg_hash", "aggregate_hash"}


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def row_key(obj, fallback):
    """A stable label for one dict row: its identifying scalars."""
    parts = []
    for k in sorted(obj):
        v = obj[k]
        if isinstance(v, str) and k not in TEXT_MEASUREMENTS:
            parts.append(f"{k}={v}")
        elif isinstance(v, bool) or (is_num(v) and k in IDENTITY_FIELDS):
            parts.append(f"{k}={v}")
    return ",".join(parts) if parts else fallback


def flatten(node, prefix, out):
    """path -> value for every numeric or text-measurement leaf."""
    if isinstance(node, dict):
        for k in sorted(node):
            v = node[k]
            path = f"{prefix}.{k}" if prefix else k
            if is_num(v) and k not in IDENTITY_FIELDS:
                out[path] = v
            elif isinstance(v, str) and k in TEXT_MEASUREMENTS:
                out[path] = v
            elif isinstance(v, (dict, list)):
                flatten(v, path, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            if isinstance(v, dict):
                label = row_key(v, f"[{i}]")
                flatten(v, f"{prefix}[{label}]", out)
            elif isinstance(v, (dict, list)):
                flatten(v, f"{prefix}[{i}]", out)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    out = {}
    flatten(doc, "", out)
    if not out:
        sys.exit(f"bench_diff: no numeric leaves found in {path}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="mark rows whose |pct change| exceeds this (default 5%%)",
    )
    ap.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when any row exceeds the threshold (default: report only)",
    )
    ap.add_argument(
        "--filter",
        default="",
        help="only show paths containing this substring",
    )
    args = ap.parse_args()

    old, new = load(args.old), load(args.new)
    paths = sorted(set(old) | set(new))
    if args.filter:
        paths = [p for p in paths if args.filter in p]

    flagged = 0
    width = max((len(p) for p in paths), default=4)
    print(f"{'metric':<{width}} {'old':>14} {'new':>14} {'delta':>12} {'pct':>8}")
    for p in paths:
        a, b = old.get(p), new.get(p)
        if a is None or b is None:
            side = "only in new" if a is None else "only in old"
            print(f"{p:<{width}} {side:>14}")
            continue
        if isinstance(a, str) or isinstance(b, str):
            if a != b:
                print(f"{p:<{width}} {str(a):>14} {str(b):>14} {'changed':>12} {'':>8}")
            continue
        delta = b - a
        pct = 100.0 * delta / a if a else (0.0 if not delta else float("inf"))
        mark = " !" if abs(pct) > args.threshold else ""
        if mark:
            flagged += 1
        print(f"{p:<{width}} {a:>14.6g} {b:>14.6g} {delta:>+12.6g} {pct:>+7.1f}%{mark}")

    print(
        f"\n{len(paths)} metrics compared, {flagged} beyond ±{args.threshold:g}%"
        + (" (gating)" if args.gate else " (informational)")
    )
    return 1 if args.gate and flagged else 0


if __name__ == "__main__":
    sys.exit(main())
