// dflsim — command-line experiment runner for the decentralized FL system.
//
// Runs a configurable deployment for N rounds and prints per-round delay,
// traffic, and directory-load metrics. Covers the common knobs so that new
// scenarios don't require writing C++.
//
//   dflsim --trainers 16 --partitions 4 --aggs 2 --nodes 8 --rounds 3
//   dflsim --merge --providers 4 --partition-kb 1300
//   dflsim --verifiable --malicious-agg 0:drop
//   dflsim --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "core/runner.hpp"
#include "core/trace_export.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dfl;

void usage() {
  std::printf(
      "dflsim — decentralized FL experiment runner\n\n"
      "scale:\n"
      "  --trainers N        FL trainers (default 16)\n"
      "  --partitions N      model partitions (default 2)\n"
      "  --aggs N            aggregators per partition, |A_i| (default 1)\n"
      "  --nodes N           IPFS storage nodes (default 4)\n"
      "  --providers N       providers per aggregator, |P_ij| (default = nodes)\n"
      "  --partition-kb K    partition wire size in KB (default 128)\n"
      "  --rounds N          FL iterations to run (default 1)\n"
      "network:\n"
      "  --mbps X            participant & node bandwidth (default 10)\n"
      "  --latency-ms X      one-way link latency (default 5)\n"
      "protocol:\n"
      "  --merge             enable merge-and-download\n"
      "  --verifiable        enable Pedersen-commitment verification\n"
      "  --batch             batch gradient announcements\n"
      "  --hashed-providers  hashed (uniform) provider allocation\n"
      "  --replicas N        global-update replicas (default 2)\n"
      "  --gradient-replicas N  gradient replicas (default 1)\n"
      "  --directory-replicas N directory service replicas (default 1)\n"
      "  --chunking MODE     transfer plane: dag | monolithic (default monolithic)\n"
      "  --chunk-size K      DAG leaf size in KiB (default 256)\n"
      "  --pipeline N        DAG bulk-transfer window, leaves (0 = unbounded, default 1)\n"
      "crypto engine (with --verifiable):\n"
      "  --crypto-threads N  commit/verify worker threads, 0 = all cores (default 1)\n"
      "  --fixed-base W      fixed-base tables, W = window bits, 1 = auto-pick\n"
      "  --batch-verify      fold aggregator checks into one batched verification\n"
      "  --audit             trainers audit downloaded global updates\n"
      "  --calibrate         measure real crypto speed and feed the simulated cost\n"
      "faults:\n"
      "  --malicious-agg I:B aggregator I behaves B in {drop, alter, offline}\n"
      "  --faulty-trainer I:B trainer I behaves B in {slow, offline}\n"
      "observability:\n"
      "  --trace-out FILE    write a Chrome/Perfetto trace_event JSON of the run\n"
      "  --metrics-out FILE  append one JSONL metrics snapshot per round\n"
      "misc:\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --verbose           protocol-level logging\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_behavior_pair(const std::string& arg, std::uint32_t& id, std::string& kind) {
  const auto colon = arg.find(':');
  if (colon == std::string::npos) return false;
  std::uint64_t v;
  if (!parse_u64(arg.substr(0, colon).c_str(), v)) return false;
  id = static_cast<std::uint32_t>(v);
  kind = arg.substr(colon + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 16;
  cfg.num_partitions = 2;
  cfg.num_ipfs_nodes = 4;
  cfg.partition_elements = 128 * 1024 / 8;
  cfg.train_time = sim::from_seconds(1);
  std::size_t providers = 0;  // 0 = all nodes
  int rounds = 1;
  double mbps = 10.0;
  double latency_ms = 5.0;
  std::string trace_out;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--trainers" && parse_u64(next(), v)) {
      cfg.num_trainers = v;
    } else if (a == "--partitions" && parse_u64(next(), v)) {
      cfg.num_partitions = v;
    } else if (a == "--aggs" && parse_u64(next(), v)) {
      cfg.aggs_per_partition = v;
    } else if (a == "--nodes" && parse_u64(next(), v)) {
      cfg.num_ipfs_nodes = v;
    } else if (a == "--providers" && parse_u64(next(), v)) {
      providers = v;
    } else if (a == "--partition-kb" && parse_u64(next(), v)) {
      cfg.partition_elements = v * 1024 / 8;
    } else if (a == "--rounds" && parse_u64(next(), v)) {
      rounds = static_cast<int>(v);
    } else if (a == "--mbps") {
      mbps = std::atof(next());
    } else if (a == "--latency-ms") {
      latency_ms = std::atof(next());
    } else if (a == "--merge") {
      cfg.options.merge_and_download = true;
    } else if (a == "--verifiable") {
      cfg.options.verifiable = true;
    } else if (a == "--batch") {
      cfg.options.batched_announce = true;
    } else if (a == "--hashed-providers") {
      cfg.options.provider_policy = core::ProviderPolicy::kHashed;
    } else if (a == "--replicas" && parse_u64(next(), v)) {
      cfg.options.update_replicas = v;
    } else if (a == "--gradient-replicas" && parse_u64(next(), v)) {
      cfg.options.gradient_replicas = v;
    } else if (a == "--directory-replicas" && parse_u64(next(), v)) {
      cfg.directory_replicas = v;
    } else if (a == "--chunking") {
      const std::string mode = next();
      if (mode == "dag") cfg.options.chunking = ipfs::ChunkingMode::kDag;
      else if (mode == "monolithic") cfg.options.chunking = ipfs::ChunkingMode::kMonolithic;
      else {
        std::fprintf(stderr, "unknown chunking mode '%s' (want dag|monolithic)\n", mode.c_str());
        return 2;
      }
    } else if (a == "--chunk-size" && parse_u64(next(), v)) {
      if (v == 0) {
        std::fprintf(stderr, "--chunk-size must be positive (KiB)\n");
        return 2;
      }
      cfg.options.chunk_size = v * 1024;
    } else if (a == "--pipeline" && parse_u64(next(), v)) {
      cfg.options.chunk_pipeline = v;
    } else if (a == "--crypto-threads" && parse_u64(next(), v)) {
      cfg.options.crypto_threads = v;
    } else if (a == "--fixed-base" && parse_u64(next(), v)) {
      cfg.options.fixed_base_window = static_cast<int>(v);
    } else if (a == "--batch-verify") {
      cfg.options.batch_verify = true;
    } else if (a == "--audit") {
      cfg.options.audit_updates = true;
    } else if (a == "--calibrate") {
      cfg.options.calibrate_crypto = true;
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--seed" && parse_u64(next(), v)) {
      cfg.seed = v;
    } else if (a == "--verbose") {
      set_log_level(LogLevel::kInfo);
    } else if (a == "--malicious-agg") {
      std::uint32_t id;
      std::string kind;
      if (!parse_behavior_pair(next(), id, kind)) {
        std::fprintf(stderr, "bad --malicious-agg value (want I:drop|alter|offline)\n");
        return 2;
      }
      if (kind == "drop") cfg.behaviors[id] = core::AggBehavior::kDropsGradients;
      else if (kind == "alter") cfg.behaviors[id] = core::AggBehavior::kAltersGradients;
      else if (kind == "offline") cfg.behaviors[id] = core::AggBehavior::kOffline;
      else {
        std::fprintf(stderr, "unknown aggregator behaviour '%s'\n", kind.c_str());
        return 2;
      }
    } else if (a == "--faulty-trainer") {
      std::uint32_t id;
      std::string kind;
      if (!parse_behavior_pair(next(), id, kind)) {
        std::fprintf(stderr, "bad --faulty-trainer value (want I:slow|offline)\n");
        return 2;
      }
      if (kind == "slow") cfg.trainer_behaviors[id] = core::TrainerBehavior::kSlow;
      else if (kind == "offline") cfg.trainer_behaviors[id] = core::TrainerBehavior::kOffline;
      else {
        std::fprintf(stderr, "unknown trainer behaviour '%s'\n", kind.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s (try --help)\n", a.c_str());
      return 2;
    }
  }

  cfg.participant_mbps = mbps;
  cfg.node_mbps = mbps;
  cfg.link_latency = sim::from_millis(latency_ms);
  cfg.providers_per_agg = providers == 0 ? cfg.num_ipfs_nodes : providers;

  std::printf("deployment: %zu trainers, %zu partitions x %.0f KB, |A_i|=%zu, %zu nodes, "
              "|P_ij|=%zu, %.0f Mbps%s%s%s\n\n",
              cfg.num_trainers, cfg.num_partitions,
              static_cast<double>(core::Payload::wire_size(cfg.partition_elements + 1)) / 1024,
              cfg.aggs_per_partition, cfg.num_ipfs_nodes, cfg.providers_per_agg, mbps,
              cfg.options.merge_and_download ? ", merge-and-download" : "",
              cfg.options.verifiable ? ", verifiable" : "",
              cfg.options.batched_announce ? ", batched announce" : "");
  if (cfg.options.chunking == ipfs::ChunkingMode::kDag) {
    std::printf("transfer plane: merkle-dag, %zu KiB chunks\n\n", cfg.options.chunk_size / 1024);
  }

  core::Deployment d(cfg);
  if (!trace_out.empty()) {
    obs::set_tracing(true);
    d.context().net.set_tracing(true);
  }
  std::ofstream metrics_stream;
  if (!metrics_out.empty()) {
    metrics_stream.open(metrics_out);
    if (!metrics_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out.c_str());
      return 1;
    }
  }
  std::printf("%-7s %14s %14s %12s %14s %12s %10s\n", "round", "upload_s", "aggregation_s",
              "sync_s", "round_time_s", "agg_MB", "rejected");
  core::CryptoRecord crypto_total;
  for (int r = 0; r < rounds; ++r) {
    const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    const double round_s =
        m.round_done >= 0 ? sim::to_seconds(m.round_done - m.round_start) : -1.0;
    std::printf("%-7d %14.2f %14.2f %12.2f %14.2f %12.2f %10d\n", r, m.mean_upload_delay_s(),
                m.mean_aggregation_delay_s(), m.mean_sync_delay_s(), round_s,
                m.mean_aggregator_bytes() / 1e6, m.rejected_updates);
    crypto_total.commits += m.crypto.commits;
    crypto_total.verifies += m.crypto.verifies;
    crypto_total.batch_verifies += m.crypto.batch_verifies;
    crypto_total.committed_elements += m.crypto.committed_elements;
    if (metrics_stream.is_open()) {
      obs::write_metrics_jsonl(metrics_stream, obs::Registry::global().snapshot(), {{"round", r}});
    }
  }
  if (!trace_out.empty()) {
    std::ofstream trace_stream(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    core::write_trace(trace_stream, d.context().net);
    std::printf("\ntrace: %zu spans, %zu transfers -> %s\n",
                obs::Tracer::instance().span_count(), d.context().net.trace().size(),
                trace_out.c_str());
  }
  if (crypto_total.commits + crypto_total.verifies + crypto_total.batch_verifies > 0) {
    std::printf("\ncrypto engine: %llu commits (%llu elements), %llu verifies, "
                "%llu batched verifications\n",
                static_cast<unsigned long long>(crypto_total.commits),
                static_cast<unsigned long long>(crypto_total.committed_elements),
                static_cast<unsigned long long>(crypto_total.verifies),
                static_cast<unsigned long long>(crypto_total.batch_verifies));
  }

  const auto& s = d.directory().stats();
  std::printf("\ndirectory: %llu entries in %llu messages, %llu polls, %.1f KB in / %.1f KB out",
              static_cast<unsigned long long>(s.announcements),
              static_cast<unsigned long long>(s.announce_messages),
              static_cast<unsigned long long>(s.polls), s.bytes_in / 1e3, s.bytes_out / 1e3);
  if (cfg.options.verifiable) {
    std::printf(", %llu verifications (%llu failed)",
                static_cast<unsigned long long>(s.verifications),
                static_cast<unsigned long long>(s.verifications_failed));
  }
  std::printf("\n");
  return 0;
}
