// dflsim — command-line experiment runner for the decentralized FL system.
//
// Runs a configurable deployment for N rounds and prints per-round delay,
// traffic, and directory-load metrics. Covers the common knobs so that new
// scenarios don't require writing C++.
//
//   dflsim --trainers 16 --partitions 4 --aggs 2 --nodes 8 --rounds 3
//   dflsim --merge --providers 4 --partition-kb 1300
//   dflsim --verifiable --malicious-agg 0:drop
//   dflsim --scenario scenarios/diurnal.scn --metrics-out diurnal.jsonl
//   dflsim --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/log.hpp"
#include "core/runner.hpp"
#include "core/trace_export.hpp"
#include "crypto/sha256.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace dfl;

void usage() {
  std::printf(
      "dflsim — decentralized FL experiment runner\n\n"
      "scale:\n"
      "  --trainers N        FL trainers (default 16)\n"
      "  --partitions N      model partitions (default 2)\n"
      "  --aggs N            aggregators per partition, |A_i| (default 1)\n"
      "  --nodes N           IPFS storage nodes (default 4)\n"
      "  --providers N       providers per aggregator, |P_ij| (default = nodes)\n"
      "  --partition-kb K    partition wire size in KB (default 128)\n"
      "  --rounds N          FL iterations to run (default 1)\n"
      "network:\n"
      "  --mbps X            participant & node bandwidth (default 10)\n"
      "  --latency-ms X      one-way link latency (default 5)\n"
      "protocol:\n"
      "  --merge             enable merge-and-download\n"
      "  --verifiable        enable Pedersen-commitment verification\n"
      "  --batch             batch gradient announcements\n"
      "  --hashed-providers  hashed (uniform) provider allocation\n"
      "  --replicas N        global-update replicas (default 2)\n"
      "  --gradient-replicas N  gradient replicas (default 1)\n"
      "  --directory-replicas N directory service replicas (default 1)\n"
      "  --chunking MODE     transfer plane: dag | monolithic (default monolithic)\n"
      "  --chunk-size K      DAG leaf size in KiB (default 256)\n"
      "  --pipeline N        DAG bulk-transfer window, leaves (0 = unbounded, default 1)\n"
      "payload codec:\n"
      "  --codec MODE        gradient encoding: dense | quant | topk (default dense)\n"
      "  --quant-bits N      quantization bits per element, 2..16 (default 8)\n"
      "  --topk-frac X       top-k kept fraction, (0,1] (default 0.1)\n"
      "async rounds:\n"
      "  --async             barrier-free rounds: trainers publish continuously,\n"
      "                      aggregators fold stale gradients at reduced weight\n"
      "  --alpha X           staleness decay exponent, weight 1/(1+s)^a (default 0.5)\n"
      "  --async-period-s X  round launch cadence in seconds (default: train time)\n"
      "crypto engine (with --verifiable):\n"
      "  --crypto-threads N  commit/verify worker threads, 0 = all cores (default 1)\n"
      "  --fixed-base W      fixed-base tables, W = window bits, 1 = auto-pick\n"
      "  --batch-verify      fold aggregator checks into one batched verification\n"
      "  --audit             trainers audit downloaded global updates\n"
      "  --calibrate         measure real crypto speed and feed the simulated cost\n"
      "faults:\n"
      "  --malicious-agg I:B aggregator I behaves B in {drop, alter, offline}\n"
      "  --faulty-trainer I:B trainer I behaves B in {slow, offline}\n"
      "scenario:\n"
      "  --scenario FILE     load a declarative chaos scenario (scenarios/*.scn):\n"
      "                      heterogeneous links, churn/diurnal/session outages,\n"
      "                      latency jitter, provider-record expiry. File values\n"
      "                      are defaults; explicit CLI flags still win.\n"
      "observability:\n"
      "  --trace-out FILE    write a Chrome/Perfetto trace_event JSON of the run\n"
      "  --metrics-out FILE  append one JSONL metrics snapshot per round\n"
      "                      (with a scenario: adds round_complete, aggregate_hash\n"
      "                      and fault counters for tools/check_scenario.py;\n"
      "                      with --trace-out: adds cp_* critical-path fields)\n"
      "  --metrics-period S  sample the metrics registry every S simulated\n"
      "                      seconds into a time-series JSONL (never perturbs\n"
      "                      the simulation; results stay bit-identical)\n"
      "  --timeseries-out F  time-series JSONL path (default timeseries.jsonl)\n"
      "  --prom-out FILE     write a Prometheus text exposition of the final\n"
      "                      registry state at exit\n"
      "engine:\n"
      "  --shards K          event-engine shards (default $DFL_SHARDS or 1);\n"
      "                      K>1 runs lookahead windows, results bit-identical\n"
      "misc:\n"
      "  --seed N            RNG seed (default 1)\n"
      "  --verbose           protocol-level logging\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

/// First 8 digest bytes of sha256 over the aggregate's raw doubles —
/// the determinism fingerprint check_scenario.py compares across seeds
/// (0 = no aggregate this round).
std::int64_t aggregate_hash(const std::vector<double>& v) {
  if (v.empty()) return 0;
  const Bytes digest = crypto::sha256(
      BytesView{reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * sizeof(double)});
  std::int64_t out = 0;
  std::memcpy(&out, digest.data(), sizeof(out));
  return out;
}

bool parse_behavior_pair(const std::string& arg, std::uint32_t& id, std::string& kind) {
  const auto colon = arg.find(':');
  if (colon == std::string::npos) return false;
  std::uint64_t v;
  if (!parse_u64(arg.substr(0, colon).c_str(), v)) return false;
  id = static_cast<std::uint32_t>(v);
  kind = arg.substr(colon + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 16;
  cfg.num_partitions = 2;
  cfg.num_ipfs_nodes = 4;
  cfg.partition_elements = 128 * 1024 / 8;
  cfg.train_time = sim::from_seconds(1);
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::size_t providers = kUnset;  // 0 = all nodes
  int rounds = -1;                 // -1 = scenario suggestion, else 1
  std::string trace_out;
  std::string metrics_out;
  std::string timeseries_out;
  std::string prom_out;
  double metrics_period_s = 0;

  // Pass 1: the scenario file seeds the config, so every explicit CLI
  // flag parsed afterwards overrides the file.
  int scenario_rounds = 0;
  std::string scenario_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0) scenario_path = argv[i + 1];
  }
  if (!scenario_path.empty()) {
    try {
      scenario_rounds = core::apply_scenario(sim::load_scenario_file(scenario_path), cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Numeric flag values report the offending flag by name instead of
    // falling through to "unknown argument".
    auto next_u64 = [&]() -> std::uint64_t {
      const char* s = next();
      std::uint64_t v = 0;
      if (!parse_u64(s, v)) {
        std::fprintf(stderr, "%s: malformed numeric value '%s'\n", a.c_str(), s);
        std::exit(2);
      }
      return v;
    };
    auto next_double = [&]() -> double {
      const char* s = next();
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0') {
        std::fprintf(stderr, "%s: malformed numeric value '%s'\n", a.c_str(), s);
        std::exit(2);
      }
      return v;
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--scenario") {
      (void)next();  // consumed in pass 1
    } else if (a == "--trainers") {
      cfg.num_trainers = next_u64();
    } else if (a == "--partitions") {
      cfg.num_partitions = next_u64();
    } else if (a == "--aggs") {
      cfg.aggs_per_partition = next_u64();
    } else if (a == "--nodes") {
      cfg.num_ipfs_nodes = next_u64();
    } else if (a == "--providers") {
      providers = next_u64();
    } else if (a == "--partition-kb") {
      cfg.partition_elements = next_u64() * 1024 / 8;
    } else if (a == "--rounds") {
      rounds = static_cast<int>(next_u64());
    } else if (a == "--mbps") {
      const double mbps = next_double();
      cfg.participant_mbps = mbps;
      cfg.node_mbps = mbps;
    } else if (a == "--latency-ms") {
      cfg.link_latency = sim::from_millis(next_double());
    } else if (a == "--merge") {
      cfg.options.merge_and_download = true;
    } else if (a == "--verifiable") {
      cfg.options.verifiable = true;
    } else if (a == "--batch") {
      cfg.options.batched_announce = true;
    } else if (a == "--hashed-providers") {
      cfg.options.provider_policy = core::ProviderPolicy::kHashed;
    } else if (a == "--replicas") {
      cfg.options.update_replicas = next_u64();
    } else if (a == "--gradient-replicas") {
      cfg.options.gradient_replicas = next_u64();
    } else if (a == "--directory-replicas") {
      cfg.directory_replicas = next_u64();
    } else if (a == "--chunking") {
      const std::string mode = next();
      if (mode == "dag") cfg.options.chunking = ipfs::ChunkingMode::kDag;
      else if (mode == "monolithic") cfg.options.chunking = ipfs::ChunkingMode::kMonolithic;
      else {
        std::fprintf(stderr, "unknown chunking mode '%s' (want dag|monolithic)\n", mode.c_str());
        return 2;
      }
    } else if (a == "--chunk-size") {
      const std::uint64_t v = next_u64();
      if (v == 0) {
        std::fprintf(stderr, "--chunk-size must be positive (KiB)\n");
        return 2;
      }
      cfg.options.chunk_size = v * 1024;
    } else if (a == "--pipeline") {
      cfg.options.chunk_pipeline = next_u64();
    } else if (a == "--codec") {
      const std::string mode = next();
      if (mode == "dense") cfg.options.codec = core::Codec::kDense;
      else if (mode == "quant") cfg.options.codec = core::Codec::kQuant;
      else if (mode == "topk") cfg.options.codec = core::Codec::kTopK;
      else {
        std::fprintf(stderr, "unknown codec '%s' (want dense|quant|topk)\n", mode.c_str());
        return 2;
      }
    } else if (a == "--quant-bits") {
      cfg.options.quant_bits = static_cast<int>(next_u64());
    } else if (a == "--topk-frac") {
      cfg.options.topk_frac = next_double();
    } else if (a == "--async") {
      cfg.options.async_rounds = true;
    } else if (a == "--alpha") {
      cfg.options.staleness_alpha = next_double();
    } else if (a == "--async-period-s") {
      cfg.options.async_period = sim::from_seconds(next_double());
    } else if (a == "--shards") {
      const std::uint64_t v = next_u64();
      if (v == 0 || v > 1024) {
        std::fprintf(stderr, "--shards: shard count must be in [1, 1024], got %llu\n",
                     static_cast<unsigned long long>(v));
        return 2;
      }
      cfg.shards = static_cast<std::uint32_t>(v);
    } else if (a == "--crypto-threads") {
      cfg.options.crypto_threads = next_u64();
    } else if (a == "--fixed-base") {
      cfg.options.fixed_base_window = static_cast<int>(next_u64());
    } else if (a == "--batch-verify") {
      cfg.options.batch_verify = true;
    } else if (a == "--audit") {
      cfg.options.audit_updates = true;
    } else if (a == "--calibrate") {
      cfg.options.calibrate_crypto = true;
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--metrics-period") {
      metrics_period_s = next_double();
      if (metrics_period_s <= 0) {
        std::fprintf(stderr, "--metrics-period must be positive (seconds)\n");
        return 2;
      }
    } else if (a == "--timeseries-out") {
      timeseries_out = next();
    } else if (a == "--prom-out") {
      prom_out = next();
    } else if (a == "--seed") {
      cfg.seed = next_u64();
    } else if (a == "--verbose") {
      set_log_level(LogLevel::kInfo);
    } else if (a == "--malicious-agg") {
      std::uint32_t id;
      std::string kind;
      if (!parse_behavior_pair(next(), id, kind)) {
        std::fprintf(stderr, "bad --malicious-agg value (want I:drop|alter|offline)\n");
        return 2;
      }
      if (kind == "drop") cfg.behaviors[id] = core::AggBehavior::kDropsGradients;
      else if (kind == "alter") cfg.behaviors[id] = core::AggBehavior::kAltersGradients;
      else if (kind == "offline") cfg.behaviors[id] = core::AggBehavior::kOffline;
      else {
        std::fprintf(stderr, "unknown aggregator behaviour '%s'\n", kind.c_str());
        return 2;
      }
    } else if (a == "--faulty-trainer") {
      std::uint32_t id;
      std::string kind;
      if (!parse_behavior_pair(next(), id, kind)) {
        std::fprintf(stderr, "bad --faulty-trainer value (want I:slow|offline)\n");
        return 2;
      }
      if (kind == "slow") cfg.trainer_behaviors[id] = core::TrainerBehavior::kSlow;
      else if (kind == "offline") cfg.trainer_behaviors[id] = core::TrainerBehavior::kOffline;
      else {
        std::fprintf(stderr, "unknown trainer behaviour '%s'\n", kind.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s (try --help)\n", a.c_str());
      return 2;
    }
  }

  if (providers != kUnset) {
    cfg.providers_per_agg = providers == 0 ? cfg.num_ipfs_nodes : providers;
  } else if (scenario_path.empty()) {
    cfg.providers_per_agg = cfg.num_ipfs_nodes;  // legacy default: all nodes
  }
  if (rounds < 0) rounds = scenario_rounds > 0 ? scenario_rounds : 1;
  // The scenario's generator horizon must cover the rounds actually run.
  cfg.scenario.rounds = rounds;

  if (cfg.scenario.active()) {
    std::printf("scenario: %s%s%s (seed %llu)\n", cfg.scenario.name.c_str(),
                cfg.scenario.description.empty() ? "" : " — ",
                cfg.scenario.description.c_str(),
                static_cast<unsigned long long>(cfg.seed));
  }
  std::printf("deployment: %zu trainers, %zu partitions x %.0f KB, |A_i|=%zu, %zu nodes, "
              "|P_ij|=%zu, %.0f Mbps%s%s%s\n\n",
              cfg.num_trainers, cfg.num_partitions,
              static_cast<double>(core::Payload::wire_size(cfg.partition_elements + 1)) / 1024,
              cfg.aggs_per_partition, cfg.num_ipfs_nodes, cfg.providers_per_agg,
              cfg.participant_mbps,
              cfg.options.merge_and_download ? ", merge-and-download" : "",
              cfg.options.verifiable ? ", verifiable" : "",
              cfg.options.batched_announce ? ", batched announce" : "");
  if (cfg.options.chunking == ipfs::ChunkingMode::kDag) {
    std::printf("transfer plane: merkle-dag, %zu KiB chunks\n\n", cfg.options.chunk_size / 1024);
  }

  // Construction validates the config (fault plan, $DFL_SHARDS, ...):
  // report a bad value as a diagnostic, not an uncaught exception.
  std::unique_ptr<core::Deployment> deployment;
  try {
    deployment = std::make_unique<core::Deployment>(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  core::Deployment& d = *deployment;
  if (!trace_out.empty()) {
    obs::set_tracing(true);
    d.context().net.set_tracing(true);
  }
  std::ofstream metrics_stream;
  if (!metrics_out.empty()) {
    metrics_stream.open(metrics_out);
    if (!metrics_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out.c_str());
      return 1;
    }
  }
  std::ofstream timeseries_stream;
  std::unique_ptr<obs::TimeSeriesWriter> sampler;
  if (metrics_period_s > 0) {
    if (timeseries_out.empty()) timeseries_out = "timeseries.jsonl";
    timeseries_stream.open(timeseries_out);
    if (!timeseries_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", timeseries_out.c_str());
      return 1;
    }
    sampler = std::make_unique<obs::TimeSeriesWriter>(timeseries_stream);
    d.enable_metrics_sampling(*sampler, sim::from_seconds(metrics_period_s));
  }
  if (cfg.options.codec != core::Codec::kDense || cfg.options.async_rounds) {
    std::printf("payload codec: %s", core::codec_name(cfg.options.codec));
    if (cfg.options.codec == core::Codec::kQuant)
      std::printf(" (%d bits)", cfg.options.quant_bits);
    if (cfg.options.codec == core::Codec::kTopK)
      std::printf(" (keep %.2f)", cfg.options.topk_frac);
    if (cfg.options.async_rounds)
      std::printf(", async rounds (alpha %.2f)", cfg.options.staleness_alpha);
    std::printf("\n\n");
  }
  std::printf("%-7s %14s %14s %12s %14s %12s %10s\n", "round", "upload_s", "aggregation_s",
              "sync_s", "round_time_s", "agg_MB", "rejected");
  core::CryptoRecord crypto_total;
  core::ShardingRecord shard_total;
  auto report = [&](int r, const core::RoundMetrics& m, const std::vector<double>& aggregate) {
    shard_total.shards = m.sharding.shards;
    shard_total.lookahead_ns = m.sharding.lookahead_ns;
    shard_total.windows += m.sharding.windows;
    shard_total.max_window_events =
        std::max(shard_total.max_window_events, m.sharding.max_window_events);
    shard_total.cross_shard_transfers += m.sharding.cross_shard_transfers;
    shard_total.local_shard_transfers += m.sharding.local_shard_transfers;
    const double round_s =
        m.round_done >= 0 ? sim::to_seconds(m.round_done - m.round_start) : -1.0;
    std::printf("%-7d %14.2f %14.2f %12.2f %14.2f %12.2f %10d\n", r, m.mean_upload_delay_s(),
                m.mean_aggregation_delay_s(), m.mean_sync_delay_s(), round_s,
                m.mean_aggregator_bytes() / 1e6, m.rejected_updates);
    crypto_total.commits += m.crypto.commits;
    crypto_total.verifies += m.crypto.verifies;
    crypto_total.batch_verifies += m.crypto.batch_verifies;
    crypto_total.committed_elements += m.crypto.committed_elements;
    if (metrics_stream.is_open()) {
      std::vector<std::pair<std::string, std::int64_t>> extra = {
          {"round", r},
          {"round_start_ms", static_cast<std::int64_t>(m.round_start / 1000000)},
          {"round_complete", m.global_update_complete ? 1 : 0},
          {"partitions_complete", static_cast<std::int64_t>(m.partitions_complete)},
          {"partitions_total", static_cast<std::int64_t>(m.partitions_total)},
          {"round_ms", static_cast<std::int64_t>(round_s >= 0 ? round_s * 1e3 : -1)},
          {"aggregate_hash", aggregate_hash(aggregate)},
          {"crashes", static_cast<std::int64_t>(m.faults.crashes)},
          {"restarts", static_cast<std::int64_t>(m.faults.restarts)},
          {"transfers_dropped", static_cast<std::int64_t>(m.faults.transfers_dropped)},
          {"payloads_corrupted", static_cast<std::int64_t>(m.faults.payloads_corrupted)},
          {"transfers_jittered", static_cast<std::int64_t>(m.faults.transfers_jittered)},
          {"shards", static_cast<std::int64_t>(m.sharding.shards)},
          {"windows", static_cast<std::int64_t>(m.sharding.windows)}};
      if (m.critical_path.analyzed) {
        const core::CriticalPathRecord& cp = m.critical_path;
        extra.insert(extra.end(),
                     {{"cp_total_ns", cp.total_ns},
                      {"cp_train_ns", cp.train_ns},
                      {"cp_crypto_ns", cp.crypto_ns},
                      {"cp_wire_ns", cp.wire_ns},
                      {"cp_queue_ns", cp.queue_ns},
                      {"cp_stale_ns", cp.stale_ns},
                      {"cp_merge_ns", cp.merge_ns},
                      {"cp_segments", static_cast<std::int64_t>(cp.segments)}});
      }
      if (!m.slo_breaches.empty()) {
        extra.emplace_back("slo_breaches",
                           static_cast<std::int64_t>(m.slo_breaches.size()));
      }
      obs::write_metrics_jsonl(metrics_stream, obs::Registry::global().snapshot(), extra);
    }
    for (const core::SloBreach& b : m.slo_breaches) {
      std::printf("        SLO breach: round %d %s (%.3f vs bound %.3f)%s%s\n", r,
                  b.key.c_str(), b.actual, b.bound,
                  b.attribution.empty() ? "" : " — critical path ",
                  b.attribution.c_str());
    }
  };
  if (cfg.options.async_rounds) {
    // The barrier-free driver owns the whole run: every round's actors are
    // spawned up front and overlap, so per-round metrics come back in one
    // summary instead of a run_round loop.
    const core::RunSummary summary = d.run(rounds);
    static const std::vector<double> kNoAggregate;
    for (std::size_t r = 0; r < summary.rounds.size(); ++r) {
      const std::vector<double>& agg =
          r < summary.updates.size() ? summary.updates[r] : kNoAggregate;
      report(static_cast<int>(r), summary.rounds[r], agg);
    }
  } else {
    for (int r = 0; r < rounds; ++r) {
      report(r, d.run_round(static_cast<std::uint32_t>(r)), d.last_global_update());
    }
  }
  // End-of-run SLO clauses (mins and aggregate rates), evaluated in-engine
  // with the same semantics as tools/check_scenario.py.
  for (const core::SloBreach& b : d.finalize_slos()) {
    std::printf("SLO breach: run %s (%.3f vs bound %.3f)\n", b.key.c_str(), b.actual,
                b.bound);
  }
  if (d.slo() != nullptr) {
    std::printf("slo: %llu breach(es) across the run\n",
                static_cast<unsigned long long>(d.slo()->breaches_total()));
  }
  if (!trace_out.empty()) {
    std::ofstream trace_stream(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    core::write_trace(trace_stream, d.context().net);
    std::printf("\ntrace: %zu spans, %zu transfers -> %s\n",
                obs::Tracer::instance().span_count(), d.context().net.trace().size(),
                trace_out.c_str());
  }
  if (crypto_total.commits + crypto_total.verifies + crypto_total.batch_verifies > 0) {
    std::printf("\ncrypto engine: %llu commits (%llu elements), %llu verifies, "
                "%llu batched verifications\n",
                static_cast<unsigned long long>(crypto_total.commits),
                static_cast<unsigned long long>(crypto_total.committed_elements),
                static_cast<unsigned long long>(crypto_total.verifies),
                static_cast<unsigned long long>(crypto_total.batch_verifies));
  }

  if (shard_total.shards > 1) {
    std::printf("\nsharded engine: K=%u, lookahead %.3f ms, %llu windows "
                "(densest %llu events), locality %.3f\n",
                shard_total.shards, shard_total.lookahead_ns / 1e6,
                static_cast<unsigned long long>(shard_total.windows),
                static_cast<unsigned long long>(shard_total.max_window_events),
                shard_total.locality());
  }

  const auto& s = d.directory().stats();
  std::printf("\ndirectory: %llu entries in %llu messages, %llu polls, %.1f KB in / %.1f KB out",
              static_cast<unsigned long long>(s.announcements),
              static_cast<unsigned long long>(s.announce_messages),
              static_cast<unsigned long long>(s.polls), s.bytes_in / 1e3, s.bytes_out / 1e3);
  if (cfg.options.verifiable) {
    std::printf(", %llu verifications (%llu failed)",
                static_cast<unsigned long long>(s.verifications),
                static_cast<unsigned long long>(s.verifications_failed));
  }
  std::printf("\n");

  if (sampler) {
    std::printf("time-series: %zu samples (every %.1f sim-s) -> %s\n", sampler->samples(),
                metrics_period_s, timeseries_out.c_str());
  }
  if (!prom_out.empty()) {
    std::ofstream prom_stream(prom_out);
    if (!prom_stream) {
      std::fprintf(stderr, "cannot open %s for writing\n", prom_out.c_str());
      return 1;
    }
    obs::write_prometheus(prom_stream, obs::Registry::global().snapshot());
    std::printf("prometheus exposition -> %s\n", prom_out.c_str());
  }
  return 0;
}
