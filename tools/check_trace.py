#!/usr/bin/env python3
"""Validates a Chrome/Perfetto trace_event JSON produced by dflsim --trace-out.

Checks structural invariants the Perfetto UI relies on, plus the causal
links this repo's exporter promises:

  - the document parses and has a traceEvents array with process/thread
    metadata for the sim (pid 1) track group;
  - complete events ("ph":"X") on one (pid, tid) strictly nest — the lane
    assignment invariant;
  - required span names are present (--require-names, default "round");
  - every span's parent_span resolves to an exported span;
  - wire slices carry transfer_id args, and every *attributed* wire slice
    (parent_span != 0) resolves to a real span;
  - with --require-chunks: chunk_xfer wire slices exist and a majority are
    attributed to a protocol span (background replication is legitimately
    unattributed);
  - every flow start ("ph":"s") pairs with a flow finish ("ph":"f") of the
    same id, and vice versa;
  - the trace is complete: otherData.dropped_spans / dropped_wires are 0
    (a truncated trace silently breaks every downstream analysis);
  - with --metrics: the round JSONL's cp_* critical-path fields are
    present on every round and the category durations sum exactly to
    cp_total_ns (the analysis partitions the round interval);
  - with --timeseries: the time-series JSONL is well-formed — monotonic
    t_ms, consecutive sample indices, counters/deltas/gauges/histograms
    objects present, and counter deltas consistent between lines.

Exit status 0 = all checks passed. Stdlib only.
"""

import argparse
import json
import sys
from collections import defaultdict

errors = []


def err(msg):
    errors.append(msg)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace_event JSON file")
    ap.add_argument(
        "--require-names",
        default="round",
        help="comma-separated span names that must appear (default: round)",
    )
    ap.add_argument(
        "--require-chunks",
        action="store_true",
        help="require chunk_xfer wire slices attributed to protocol spans",
    )
    ap.add_argument(
        "--metrics",
        help="round JSONL (dflsim --metrics-out) whose cp_* critical-path "
        "fields must be present and internally consistent",
    )
    ap.add_argument(
        "--timeseries",
        help="time-series JSONL (dflsim --metrics-period) to validate",
    )
    args = ap.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"FAIL: not valid JSON: {e}")
            return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("FAIL: no traceEvents array")
        return 1

    # A truncated trace is not a smaller trace — it is a wrong trace:
    # critical-path analysis and attribution checks would silently pass on
    # whatever survived the cap. Refuse it outright.
    other = doc.get("otherData", {})
    for key in ("dropped_spans", "dropped_wires"):
        if other.get(key, 0):
            err(f"trace truncated: otherData.{key} = {other[key]} (raise the cap)")

    spans = []  # ph:X cat:span
    wires = []  # ph:X cat:wire
    meta_pids = set()
    flow_starts = defaultdict(int)
    flow_finishes = defaultdict(int)
    slices_by_tid = defaultdict(list)

    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                meta_pids.add(ev.get("pid"))
            continue
        if ph == "s":
            flow_starts[ev.get("id")] += 1
            continue
        if ph == "f":
            flow_finishes[ev.get("id")] += 1
            if ev.get("bp") != "e":
                err(f"flow finish id={ev.get('id')} missing bp:e")
            continue
        if ph != "X":
            continue
        for field in ("pid", "tid", "name", "ts", "dur"):
            if field not in ev:
                err(f"X event missing {field}: {ev}")
        cat = ev.get("cat")
        if cat == "span":
            spans.append(ev)
        elif cat == "wire":
            wires.append(ev)
        else:
            err(f"X event with unknown cat {cat!r}: name={ev.get('name')}")
        slices_by_tid[(ev.get("pid"), ev.get("tid"))].append(ev)

    if 1 not in meta_pids:
        err("no process_name metadata for pid 1 (sim)")
    if not spans:
        err("no protocol spans exported")

    # Nesting invariant per (pid, tid): sweep slices in start order with a
    # stack of open interval ends; a slice must fit inside the innermost
    # open slice (or none may be open). Timestamps are µs with 3 decimals
    # (exact nanoseconds) — compare as integer ns so float epsilon from
    # ts + dur cannot produce phantom overlaps.
    def ns(x):
        return round(x * 1000)

    for tid, slices in sorted(slices_by_tid.items()):
        slices.sort(key=lambda e: (ns(e["ts"]), -ns(e["dur"])))
        stack = []
        for ev in slices:
            start, end = ns(ev["ts"]), ns(ev["ts"]) + ns(ev["dur"])
            while stack and stack[-1] <= start:
                stack.pop()
            if stack and stack[-1] < end:
                err(
                    f"slices overlap without nesting on pid/tid {tid}: "
                    f"{ev['name']} [{start}, {end}] vs open end {stack[-1]}"
                )
                break
            stack.append(end)

    span_ids = set()
    for ev in spans:
        sid = ev.get("args", {}).get("span_id")
        if sid is None:
            err(f"span {ev['name']} has no span_id arg")
        else:
            span_ids.add(sid)

    names = {ev["name"] for ev in spans}
    for required in filter(None, args.require_names.split(",")):
        if required not in names:
            err(f"required span name {required!r} not present (have: {sorted(names)})")

    for ev in spans:
        parent = ev.get("args", {}).get("parent_span", 0)
        if parent and parent not in span_ids:
            err(f"span {ev['name']} has dangling parent_span {parent}")

    attributed = 0
    chunk_total = 0
    chunk_attributed = 0
    for ev in wires:
        a = ev.get("args", {})
        if "transfer_id" not in a:
            err(f"wire slice {ev['name']} has no transfer_id arg")
        parent = a.get("parent_span", 0)
        if parent:
            attributed += 1
            if parent not in span_ids:
                err(f"wire slice {ev['name']} has dangling parent_span {parent}")
        if ev["name"] == "chunk_xfer":
            chunk_total += 1
            if parent:
                chunk_attributed += 1

    if args.require_chunks:
        if chunk_total == 0:
            err("no chunk_xfer wire slices (expected a DAG-chunked run)")
        elif chunk_attributed * 2 < chunk_total:
            err(
                f"only {chunk_attributed}/{chunk_total} chunk_xfer slices are "
                "attributed to a protocol span"
            )

    for fid, n in flow_starts.items():
        if flow_finishes.get(fid, 0) != n:
            err(f"flow id {fid}: {n} starts vs {flow_finishes.get(fid, 0)} finishes")
    for fid, n in flow_finishes.items():
        if fid not in flow_starts:
            err(f"flow id {fid}: finish without start")

    cp_rounds = 0
    if args.metrics:
        cp_keys = [
            "cp_train_ns",
            "cp_crypto_ns",
            "cp_wire_ns",
            "cp_queue_ns",
            "cp_stale_ns",
            "cp_merge_ns",
        ]
        with open(args.metrics, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if not line.strip():
                    continue
                row = json.loads(line)
                missing = [k for k in ["cp_total_ns"] + cp_keys if k not in row]
                if missing:
                    err(f"{args.metrics}:{lineno}: missing {missing}")
                    continue
                total = row["cp_total_ns"]
                cat_sum = sum(row[k] for k in cp_keys)
                # The analysis partitions the round interval exactly; allow
                # the acceptance bound of 1% for forward compatibility.
                if total > 0 and abs(cat_sum - total) > total * 0.01:
                    err(
                        f"{args.metrics}:{lineno}: cp categories sum to "
                        f"{cat_sum}, round span is {total}"
                    )
                if row.get("cp_segments", 0) <= 0 and total > 0:
                    err(f"{args.metrics}:{lineno}: empty critical path")
                cp_rounds += 1
        if cp_rounds == 0:
            err(f"{args.metrics}: no rounds with critical-path fields")

    ts_samples = 0
    if args.timeseries:
        prev_t = None
        prev_counters = {}
        with open(args.timeseries, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if not line.strip():
                    continue
                row = json.loads(line)
                for key in ("t_ms", "sample", "counters", "deltas", "gauges", "histograms"):
                    if key not in row:
                        err(f"{args.timeseries}:{lineno}: missing {key}")
                if row.get("sample") != ts_samples:
                    err(
                        f"{args.timeseries}:{lineno}: sample index "
                        f"{row.get('sample')} != {ts_samples}"
                    )
                t = row.get("t_ms", 0)
                if prev_t is not None and t <= prev_t:
                    err(f"{args.timeseries}:{lineno}: t_ms not increasing")
                for name, value in row.get("deltas", {}).items():
                    expect = row.get("counters", {}).get(name, 0) - prev_counters.get(name, 0)
                    if expect >= 0 and value != expect:
                        err(
                            f"{args.timeseries}:{lineno}: delta {name}={value} "
                            f"but counters moved by {expect}"
                        )
                for name, h in row.get("histograms", {}).items():
                    for field in ("count", "sum", "p50", "p90", "p99"):
                        if field not in h:
                            err(f"{args.timeseries}:{lineno}: histogram {name} missing {field}")
                prev_t = t
                prev_counters = row.get("counters", {})
                ts_samples += 1
        if ts_samples == 0:
            err(f"{args.timeseries}: no samples")

    if errors:
        for e in errors[:20]:
            print(f"FAIL: {e}")
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        return 1

    extras = ""
    if args.metrics:
        extras += f", {cp_rounds} critical-path rounds"
    if args.timeseries:
        extras += f", {ts_samples} time-series samples"
    print(
        f"OK: {len(spans)} spans ({len(names)} names), {len(wires)} wire slices "
        f"({attributed} attributed, {chunk_total} chunked), "
        f"{sum(flow_starts.values())} flow arrows" + extras
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
