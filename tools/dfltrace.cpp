// dfltrace — runs one FL round with network tracing enabled and prints a
// per-host utilization report: bytes moved, busy time, and utilization of
// each endpoint. Answers "where is the bottleneck?" for any deployment
// shape without touching a debugger.
//
//   dfltrace --trainers 16 --providers 4 --merge
//   dfltrace --rounds 3 --csv        # machine-readable multi-round report
//   dfltrace --critical-path         # per-round blame breakdown: which
//                                    # category (train/crypto/wire/queue/
//                                    # stale/merge) and which host the
//                                    # round's duration was spent on
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/trace_export.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dfl;

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 16;
  cfg.num_partitions = 1;
  cfg.partition_elements = 64 * 1024;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.train_time = sim::from_seconds(1);
  std::string dump_host;
  int rounds = 1;
  bool csv = false;
  bool critical_path = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (a == "--trainers" && parse_u64(next(), v)) cfg.num_trainers = v;
    else if (a == "--partitions" && parse_u64(next(), v)) cfg.num_partitions = v;
    else if (a == "--aggs" && parse_u64(next(), v)) cfg.aggs_per_partition = v;
    else if (a == "--nodes" && parse_u64(next(), v)) cfg.num_ipfs_nodes = v;
    else if (a == "--providers" && parse_u64(next(), v)) cfg.providers_per_agg = v;
    else if (a == "--partition-kb" && parse_u64(next(), v)) cfg.partition_elements = v * 128;
    else if (a == "--merge") cfg.options.merge_and_download = true;
    else if (a == "--verifiable") cfg.options.verifiable = true;
    else if (a == "--chunking") {
      const std::string mode = next();
      if (mode == "dag") cfg.options.chunking = ipfs::ChunkingMode::kDag;
      else if (mode == "monolithic") cfg.options.chunking = ipfs::ChunkingMode::kMonolithic;
      else {
        std::fprintf(stderr, "unknown chunking mode %s\n", mode.c_str());
        return 2;
      }
    } else if (a == "--chunk-size" && parse_u64(next(), v) && v > 0) {
      cfg.options.chunk_size = v * 1024;
    } else if (a == "--rounds" && parse_u64(next(), v) && v > 0) {
      rounds = static_cast<int>(v);
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--critical-path") {
      critical_path = true;
    } else if (a == "--dump") {
      dump_host = next();
    } else {
      std::fprintf(stderr, "unknown argument %s\n", a.c_str());
      return 2;
    }
  }

  core::Deployment d(cfg);
  d.context().net.set_tracing(true);
  // Multi-round runs outgrow the default ring: keep every record so the
  // utilization report covers the whole run, not the newest window.
  d.context().net.set_trace_limit(static_cast<std::size_t>(1) << 20);
  if (critical_path) {
    // The blame analysis walks protocol spans, not just wire records; raise
    // the span cap in step with the transfer ring so multi-round runs never
    // truncate (a truncated trace would silently misattribute).
    obs::set_tracing(true);
    obs::Tracer::instance().set_span_limit(static_cast<std::size_t>(1) << 20);
  }
  for (int r = 0; r < rounds; ++r) {
    (void)d.run_round(static_cast<std::uint32_t>(r));
  }

  obs::Analysis analysis;
  std::map<std::string, std::int64_t> host_cp_ns;  // across all rounds
  if (critical_path) {
    core::name_host_tracks(d.context().net);
    analysis = obs::analyze_critical_paths(obs::Tracer::instance().snapshot(),
                                           core::wire_slices(d.context().net));
    for (const obs::RoundCriticalPath& rcp : analysis.rounds) {
      for (const auto& [host, ns] : rcp.host_ns) host_cp_ns[host] += ns;
    }
  }
  const auto& trace = d.context().net.trace();
  // Utilization denominator: the whole traced window (all rounds).
  const double round_s = sim::to_seconds(d.simulator().now());

  struct HostUse {
    std::uint64_t bytes_out = 0, bytes_in = 0;
    sim::TimeNs busy_out = 0, busy_in = 0;
    std::uint64_t transfers = 0;
  };
  std::map<std::uint32_t, HostUse> use;
  for (const auto& r : trace) {
    auto& from = use[r.from];
    auto& to = use[r.to];
    from.bytes_out += r.wire_bytes;
    to.bytes_in += r.wire_bytes;
    // Pipe occupancy equals the transfer window at both endpoints.
    from.busy_out += r.delivered - r.start;
    to.busy_in += r.delivered - r.start;
    ++from.transfers;
  }

  if (csv) {
    // Machine-readable per-host report; one row per host, stable columns.
    // --critical-path appends each host's share of the rounds' critical
    // paths (ns on the path and percent of total simulated time).
    std::printf("host,out_bytes,in_bytes,up_util_pct,down_util_pct,sends%s\n",
                critical_path ? ",cp_ns,cp_pct" : "");
    for (const auto& [id, u] : use) {
      const std::string& name = d.context().net.host(id).name();
      std::printf("%s,%llu,%llu,%.3f,%.3f,%llu", name.c_str(),
                  static_cast<unsigned long long>(u.bytes_out),
                  static_cast<unsigned long long>(u.bytes_in),
                  100.0 * sim::to_seconds(u.busy_out) / round_s,
                  100.0 * sim::to_seconds(u.busy_in) / round_s,
                  static_cast<unsigned long long>(u.transfers));
      if (critical_path) {
        const auto it = host_cp_ns.find(name);
        const std::int64_t ns = it == host_cp_ns.end() ? 0 : it->second;
        std::printf(",%lld,%.3f", static_cast<long long>(ns),
                    100.0 * sim::to_seconds(ns) / round_s);
      }
      std::printf("\n");
    }
    return 0;
  }

  std::printf("%d round%s: %.2f s simulated, %zu transfers, %.2f MB on the wire\n\n", rounds,
              rounds == 1 ? "" : "s", round_s, trace.size(),
              static_cast<double>(d.context().net.total_bytes_transferred()) / 1e6);
  std::printf("%-14s %10s %10s %10s %10s %8s\n", "host", "out_MB", "in_MB", "up_util%",
              "down_util%", "sends");
  for (const auto& [id, u] : use) {
    std::printf("%-14s %10.2f %10.2f %10.1f %10.1f %8llu\n",
                d.context().net.host(id).name().c_str(),
                static_cast<double>(u.bytes_out) / 1e6, static_cast<double>(u.bytes_in) / 1e6,
                100.0 * sim::to_seconds(u.busy_out) / round_s,
                100.0 * sim::to_seconds(u.busy_in) / round_s,
                static_cast<unsigned long long>(u.transfers));
  }
  // Chunk-level decode: transfers tagged with a DAG root carry the root's
  // CID prefix and leaf index — group them per object and show how the
  // striped plane actually moved each blob.
  struct DagUse {
    std::uint64_t leaf_transfers = 0, manifest_transfers = 0, bytes = 0;
    sim::TimeNs first_start = -1, last_delivered = 0;
    std::int32_t max_leaf = -1;
    std::map<std::uint32_t, std::uint64_t> sources;
  };
  std::map<std::uint64_t, DagUse> dags;
  for (const auto& r : trace) {
    if (r.dag_root == 0) continue;
    auto& du = dags[r.dag_root];
    if (r.dag_leaf == sim::TransferRecord::kManifestLeaf) ++du.manifest_transfers;
    else {
      ++du.leaf_transfers;
      du.max_leaf = std::max(du.max_leaf, r.dag_leaf);
    }
    du.bytes += r.wire_bytes;
    if (du.first_start < 0 || r.start < du.first_start) du.first_start = r.start;
    du.last_delivered = std::max(du.last_delivered, r.delivered);
    ++du.sources[r.from];
  }
  if (!dags.empty()) {
    std::printf("\nchunked objects (%zu DAG roots):\n", dags.size());
    std::printf("%-18s %7s %7s %9s %8s %9s %9s\n", "root", "leaves", "xfers", "bytes_KB",
                "sources", "start_s", "done_s");
    for (const auto& [root, du] : dags) {
      std::printf("%016llx %7d %7llu %9.1f %8zu %9.3f %9.3f\n",
                  static_cast<unsigned long long>(root), du.max_leaf + 1,
                  static_cast<unsigned long long>(du.leaf_transfers + du.manifest_transfers),
                  static_cast<double>(du.bytes) / 1e3, du.sources.size(),
                  sim::to_seconds(du.first_start), sim::to_seconds(du.last_delivered));
    }
  }
  if (!dump_host.empty()) {
    std::printf("\ntransfers touching %s:\n", dump_host.c_str());
    std::printf("%9s %9s %-14s %-14s %10s %-18s %5s\n", "start_s", "done_s", "from", "to",
                "bytes_KB", "root", "leaf");
    for (const auto& r : trace) {
      const std::string& fn = d.context().net.host(r.from).name();
      const std::string& tn = d.context().net.host(r.to).name();
      if (fn != dump_host && tn != dump_host) continue;
      char root[20] = "-";
      if (r.dag_root != 0) {
        std::snprintf(root, sizeof root, "%016llx",
                      static_cast<unsigned long long>(r.dag_root));
      }
      std::printf("%9.3f %9.3f %-14s %-14s %10.1f %-18s %5d\n", sim::to_seconds(r.start),
                  sim::to_seconds(r.delivered), fn.c_str(), tn.c_str(),
                  static_cast<double>(r.wire_bytes) / 1e3, root, r.dag_leaf);
    }
  }
  if (critical_path) {
    const auto& tracks = obs::Tracer::instance().snapshot().tracks;
    auto track_name = [&](std::uint32_t track) -> std::string {
      const auto it = tracks.find(track);
      if (it != tracks.end()) return it->second;
      if (track == obs::kProcessTrack) return "rounds";
      return "track-" + std::to_string(track);
    };
    std::printf("\ncritical path (%zu round%s analyzed):\n", analysis.rounds.size(),
                analysis.rounds.size() == 1 ? "" : "s");
    for (const obs::RoundCriticalPath& rcp : analysis.rounds) {
      const double total = static_cast<double>(rcp.total_ns());
      if (total <= 0) continue;
      std::printf("round %u: %.3f s —", rcp.iter, sim::to_seconds(rcp.total_ns()));
      for (std::size_t b = 0; b < obs::kBlameCount; ++b) {
        std::printf(" %s %.1f%%", obs::blame_name(static_cast<obs::Blame>(b)),
                    100.0 * static_cast<double>(rcp.blame_ns[b]) / total);
      }
      std::printf("\n  top hosts:");
      for (std::size_t h = 0; h < rcp.host_ns.size() && h < 3; ++h) {
        std::printf("%s %s %.3f s (%.0f%%)", h == 0 ? "" : ",",
                    rcp.host_ns[h].first.c_str(), sim::to_seconds(rcp.host_ns[h].second),
                    100.0 * static_cast<double>(rcp.host_ns[h].second) / total);
      }
      // The slowest-edge chain: the path's longest individual segments are
      // the concrete spans/transfers to attack first.
      std::vector<const obs::CriticalSegment*> slowest;
      for (const obs::CriticalSegment& s : rcp.segments) slowest.push_back(&s);
      std::stable_sort(slowest.begin(), slowest.end(),
                       [](const obs::CriticalSegment* a, const obs::CriticalSegment* b) {
                         return a->duration_ns() > b->duration_ns();
                       });
      std::printf("\n  slowest segments:\n");
      for (std::size_t s = 0; s < slowest.size() && s < 5; ++s) {
        std::printf("    %9.3f s  %-10s %-12s on %s\n",
                    sim::to_seconds(slowest[s]->duration_ns()),
                    obs::blame_name(slowest[s]->blame), slowest[s]->name,
                    track_name(slowest[s]->track).c_str());
      }
    }
  }
  std::printf("\nhighest down_util%% marks the bottleneck pipe of this deployment\n");
  return 0;
}
