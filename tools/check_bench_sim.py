#!/usr/bin/env python3
"""Validate a BENCH_sim.json produced by bench/abl_datapath.

Checks the schema (required keys and types) and the invariants the data
plane guarantees regardless of workload size:
  * simulated results are bit-identical across the two modes,
  * the zero-copy plane copies strictly fewer bytes than the baseline,
  * stat counters are internally consistent.

Usage: check_bench_sim.py [path-to-BENCH_sim.json]
Exits non-zero with a message on the first violation.
"""
import json
import sys

MODE_KEYS = {
    "bytes_copied": int,
    "bytes_shared": int,
    "blocks_hashed": int,
    "bytes_hashed": int,
    "cid_cache_hits": int,
    "blocks_created": int,
    "peak_resident_block_bytes": int,
    "wall_seconds": float,
    "sim_events": int,
    "events_per_sec": float,
}

WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "model_bytes": int,
    "rounds": int,
    "smoke": bool,
}


def fail(msg):
    print(f"check_bench_sim: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(obj, spec, where):
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        val = obj[key]
        # ints satisfy float fields, bools must not satisfy int fields
        ok = (
            isinstance(val, bool)
            if typ is bool
            else isinstance(val, (int, float))
            if typ is float
            else isinstance(val, int) and not isinstance(val, bool)
        )
        if not ok:
            fail(f"{where}.{key}: expected {typ.__name__}, got {type(val).__name__}")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if doc.get("bench") != "abl_datapath":
        fail(f"bench != abl_datapath (got {doc.get('bench')!r})")
    check_keys(doc.get("workload", {}), WORKLOAD_KEYS, "workload")
    for mode in ("baseline", "zero_copy"):
        if mode not in doc:
            fail(f"missing '{mode}' block")
        check_keys(doc[mode], MODE_KEYS, mode)

    base, zero = doc["baseline"], doc["zero_copy"]
    if doc.get("sim_time_identical") is not True:
        fail("sim_time_identical is not true: modes diverged in simulated time")
    if base["sim_events"] != zero["sim_events"]:
        fail("sim_events differ between modes")
    if zero["bytes_copied"] >= base["bytes_copied"]:
        fail("zero_copy plane did not reduce copied bytes")
    if zero["bytes_shared"] == 0:
        fail("zero_copy plane shared no bytes (sharing never engaged)")
    # The shared+copied total must equal what the baseline physically copied:
    # bytes_shared counts exactly the bytes the legacy plane memcpy'd.
    if zero["bytes_copied"] + zero["bytes_shared"] != base["bytes_copied"] + base["bytes_shared"]:
        fail("copied+shared totals differ between modes")
    if zero["blocks_hashed"] > base["blocks_hashed"]:
        fail("zero_copy plane hashed more blocks than the baseline")
    if zero["cid_cache_hits"] == 0:
        fail("CID cache never hit in zero_copy mode")
    if not isinstance(doc.get("copy_reduction_factor"), (int, float)):
        fail("copy_reduction_factor missing or non-numeric")
    if doc["copy_reduction_factor"] < 5.0:
        fail(f"copy_reduction_factor {doc['copy_reduction_factor']} < 5.0")
    rounds = doc["workload"]["rounds"]
    times = doc.get("sim_round_done_ns")
    if not isinstance(times, list) or len(times) != rounds:
        fail(f"sim_round_done_ns must list all {rounds} rounds")
    if any(b <= a for a, b in zip(times, times[1:])):
        fail("sim_round_done_ns is not strictly increasing")

    print(
        f"check_bench_sim: OK ({path}): "
        f"copy_reduction={doc['copy_reduction_factor']:.1f}x, "
        f"wall_speedup={doc.get('wall_speedup', 0):.2f}x, sim identical"
    )


if __name__ == "__main__":
    main()
