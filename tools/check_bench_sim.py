#!/usr/bin/env python3
"""Validate a BENCH_sim.json produced by bench/abl_datapath, bench/abl_chunking,
a BENCH_async.json produced by bench/abl_async, a BENCH_scale.json produced
by bench/abl_scale, or a BENCH_crypto.json row list produced by the crypto
benches (bench/fig3_commitment et al.).

Dispatches on the document's "bench" field (row lists dispatch to the
crypto gate) and checks the schema (required keys and types) plus the
invariants each bench guarantees regardless of workload size:

abl_datapath (A9, zero-copy data plane):
  * simulated results are bit-identical across the two modes,
  * the zero-copy plane copies strictly fewer bytes than the baseline,
  * stat counters are internally consistent.

abl_chunking (A10, chunked Merkle-DAG transfer plane):
  * the aggregated global update is bit-identical across chunk settings,
  * the headline cell (256 KiB chunks, 2 providers) is >= 1.5x faster
    than the monolithic plane at the same provider count,
  * chunking at 256 KiB never loses to monolithic at any provider count,
  * the headline cell is deterministic across a full re-run.

abl_async (A15, compressed payloads + barrier-free async rounds):
  * every cell completed all of its rounds (no dropped folds),
  * the headline cell (async + 8-bit quantization) is >= 1.5x faster
    per round than the synchronous dense baseline,
  * async x dense reproduces the sync x dense aggregates bit-exactly
    (the staleness weighting cancels when nothing is stale),
  * quantized/sparsified cells actually compress (ratio floors),
  * the sync baseline is deterministic across a full re-run.

BENCH_crypto.json (A14, vectorized crypto backend):
  * scalar-vs-SIMD exact match: at every size carrying both rows, the
    "simd" commit digest is byte-identical to the "pippenger" (and
    "naive", when present) commit digest,
  * speedup floor: when the simd row's isa shows a vector tier (not
    "scalar"), commit at size 10^4 must be >= MIN_SIMD_SPEEDUP x faster
    than single-thread Pippenger; skipped (with a note) on hosts where
    the AVX2 backend is unavailable or disabled,

abl_scale (A13, sharded-engine scaling curve):
  * hard gate: per host count, agg_hash, sim_round_done_ns and the event
    count are identical across every shard count K (bit-identity),
  * at the largest host count, events/sec never *regresses* from K=1 to
    the best sharded cell (tolerance below), and the best sharded cell at
    scale shows a real speedup,
  * speedup_vs_serial matches the cells it was derived from.

Usage: check_bench_sim.py [path-to-BENCH_sim.json]
Exits non-zero with a message on the first violation.
"""
import json
import sys

MODE_KEYS = {
    "bytes_copied": int,
    "bytes_shared": int,
    "blocks_hashed": int,
    "bytes_hashed": int,
    "cid_cache_hits": int,
    "blocks_created": int,
    "peak_resident_block_bytes": int,
    "wall_seconds": float,
    "sim_events": int,
    "events_per_sec": float,
}

DATAPATH_WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "model_bytes": int,
    "rounds": int,
    "smoke": bool,
}

CHUNKING_WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "partition_bytes": int,
    "train_time_ms": int,
    "smoke": bool,
}

CHUNKING_CELL_KEYS = {
    "providers": int,
    "chunk_bytes": int,
    "round_seconds": float,
    "round_done_ns": int,
    "fingerprint": str,
}

HEADLINE_CHUNK = 262144  # 256 KiB
HEADLINE_PROVIDERS = 2
MIN_HEADLINE_SPEEDUP = 1.5


def fail(msg):
    print(f"check_bench_sim: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(obj, spec, where):
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        val = obj[key]
        # ints satisfy float fields, bools must not satisfy int fields
        if typ is bool:
            ok = isinstance(val, bool)
        elif typ is float:
            ok = isinstance(val, (int, float))
        elif typ is str:
            ok = isinstance(val, str)
        else:
            ok = isinstance(val, int) and not isinstance(val, bool)
        if not ok:
            fail(f"{where}.{key}: expected {typ.__name__}, got {type(val).__name__}")


def check_datapath(doc, path):
    check_keys(doc.get("workload", {}), DATAPATH_WORKLOAD_KEYS, "workload")
    for mode in ("baseline", "zero_copy"):
        if mode not in doc:
            fail(f"missing '{mode}' block")
        check_keys(doc[mode], MODE_KEYS, mode)

    base, zero = doc["baseline"], doc["zero_copy"]
    if doc.get("sim_time_identical") is not True:
        fail("sim_time_identical is not true: modes diverged in simulated time")
    if base["sim_events"] != zero["sim_events"]:
        fail("sim_events differ between modes")
    if zero["bytes_copied"] >= base["bytes_copied"]:
        fail("zero_copy plane did not reduce copied bytes")
    if zero["bytes_shared"] == 0:
        fail("zero_copy plane shared no bytes (sharing never engaged)")
    # The shared+copied total must equal what the baseline physically copied:
    # bytes_shared counts exactly the bytes the legacy plane memcpy'd.
    if zero["bytes_copied"] + zero["bytes_shared"] != base["bytes_copied"] + base["bytes_shared"]:
        fail("copied+shared totals differ between modes")
    if zero["blocks_hashed"] > base["blocks_hashed"]:
        fail("zero_copy plane hashed more blocks than the baseline")
    if zero["cid_cache_hits"] == 0:
        fail("CID cache never hit in zero_copy mode")
    if not isinstance(doc.get("copy_reduction_factor"), (int, float)):
        fail("copy_reduction_factor missing or non-numeric")
    if doc["copy_reduction_factor"] < 5.0:
        fail(f"copy_reduction_factor {doc['copy_reduction_factor']} < 5.0")
    rounds = doc["workload"]["rounds"]
    times = doc.get("sim_round_done_ns")
    if not isinstance(times, list) or len(times) != rounds:
        fail(f"sim_round_done_ns must list all {rounds} rounds")
    if any(b <= a for a, b in zip(times, times[1:])):
        fail("sim_round_done_ns is not strictly increasing")

    print(
        f"check_bench_sim: OK ({path}): "
        f"copy_reduction={doc['copy_reduction_factor']:.1f}x, "
        f"wall_speedup={doc.get('wall_speedup', 0):.2f}x, sim identical"
    )


def check_chunking(doc, path):
    check_keys(doc.get("workload", {}), CHUNKING_WORKLOAD_KEYS, "workload")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    for i, cell in enumerate(cells):
        check_keys(cell, CHUNKING_CELL_KEYS, f"cells[{i}]")
        if cell["round_seconds"] <= 0:
            fail(f"cells[{i}]: non-positive round_seconds")

    def cell_at(providers, chunk_bytes):
        for c in cells:
            if c["providers"] == providers and c["chunk_bytes"] == chunk_bytes:
                return c
        return None

    # Bit-identical aggregates across chunk settings at each provider count.
    if doc.get("fingerprints_identical") is not True:
        fail("fingerprints_identical is not true: aggregates diverged across chunk settings")
    by_providers = {}
    for c in cells:
        by_providers.setdefault(c["providers"], set()).add(c["fingerprint"])
    for p, prints in sorted(by_providers.items()):
        if len(prints) != 1:
            fail(f"cells disagree on the aggregate fingerprint at providers={p}")

    if doc.get("deterministic") is not True:
        fail("deterministic is not true: headline cell diverged across reruns")

    # Headline: 256 KiB chunks with 2 providers beat monolithic >= 1.5x.
    headline = cell_at(HEADLINE_PROVIDERS, HEADLINE_CHUNK)
    baseline = cell_at(HEADLINE_PROVIDERS, 0)
    if headline is None or baseline is None:
        fail("grid is missing the headline (256 KiB, P=2) or monolithic baseline cell")
    speedup = doc.get("speedup_256k_p2")
    if not isinstance(speedup, (int, float)):
        fail("speedup_256k_p2 missing or non-numeric")
    measured = baseline["round_seconds"] / headline["round_seconds"]
    if abs(measured - speedup) > 0.05:
        fail(f"speedup_256k_p2 {speedup} does not match the cells ({measured:.3f})")
    if speedup < MIN_HEADLINE_SPEEDUP:
        fail(f"speedup_256k_p2 {speedup} < {MIN_HEADLINE_SPEEDUP}")

    # 256 KiB chunking must never lose to monolithic at any provider count.
    for p in sorted(by_providers):
        chunked, mono = cell_at(p, HEADLINE_CHUNK), cell_at(p, 0)
        if chunked is None or mono is None:
            continue
        if chunked["round_seconds"] > mono["round_seconds"]:
            fail(f"256 KiB chunking is slower than monolithic at providers={p}")

    print(
        f"check_bench_sim: OK ({path}): "
        f"speedup_256k_p2={speedup:.2f}x over {len(cells)} cells, "
        f"aggregates identical, deterministic"
    )


SCALE_CELL_KEYS = {
    "hosts": int,
    "shards": int,
    "events": int,
    "wall_seconds": float,
    "events_per_sec": float,
    "speedup_vs_serial": float,
    "agg_hash": str,
    "sim_round_done_ns": int,
    "windows": int,
    "cross_shard_events": int,
    "max_window_events": int,
    "stalled_shard_windows": int,
}

# Wall-clock tolerance for the monotonicity gate: K=1 -> best sharded K may
# not regress by more than this factor (timer noise on loaded CI runners).
SCALE_REGRESSION_SLACK = 0.85
# At the largest host count the best sharded cell must show a real
# events/sec speedup. The windowed engine's single-core win comes from the
# bucket queue + small per-shard heaps (~2x on one core); ThreadPool
# parallelism stacks on top on multi-core runners. Gate on the floor that
# must hold everywhere.
MIN_SCALE_SPEEDUP = 1.3


def check_scale(doc, path):
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    for i, cell in enumerate(cells):
        check_keys(cell, SCALE_CELL_KEYS, f"cells[{i}]")
        if cell["wall_seconds"] <= 0:
            fail(f"cells[{i}]: non-positive wall_seconds")
        if cell["shards"] > 1 and cell["windows"] == 0:
            fail(f"cells[{i}]: sharded cell executed zero windows")

    # Hard gate: bit-identity across every K at each host count.
    if doc.get("hash_identical") is not True:
        fail("hash_identical is not true: results diverged across shard counts")
    by_hosts = {}
    for c in cells:
        by_hosts.setdefault(c["hosts"], []).append(c)
    for hosts, group in sorted(by_hosts.items()):
        serial = [c for c in group if c["shards"] == 1]
        if len(serial) != 1:
            fail(f"hosts={hosts}: want exactly one K=1 cell, got {len(serial)}")
        s = serial[0]
        for c in group:
            for key in ("agg_hash", "sim_round_done_ns", "events"):
                if c[key] != s[key]:
                    fail(
                        f"hosts={hosts} K={c['shards']}: {key} {c[key]!r} "
                        f"differs from serial {s[key]!r}"
                    )
            measured = s["wall_seconds"] / c["wall_seconds"]
            if abs(measured - c["speedup_vs_serial"]) > max(0.1, 0.05 * measured):
                fail(
                    f"hosts={hosts} K={c['shards']}: speedup_vs_serial "
                    f"{c['speedup_vs_serial']} does not match the cells ({measured:.3f})"
                )

    # Throughput gates apply at the largest host count of a *full* run only:
    # tiny grids (and the CI smoke mode, which stops at ~10^3 hosts) are
    # dominated by window overhead and prove nothing about scaling.
    if doc.get("mode") == "smoke":
        print(
            f"check_bench_sim: OK ({path}): smoke run, {len(cells)} cells over "
            f"{len(by_hosts)} host counts, hashes identical across K "
            f"(throughput gates skipped)"
        )
        return
    largest = max(by_hosts)
    group = by_hosts[largest]
    serial = next(c for c in group if c["shards"] == 1)
    sharded = [c for c in group if c["shards"] > 1]
    if not sharded:
        fail(f"hosts={largest}: no sharded cells to gate on")
    best = max(sharded, key=lambda c: c["events_per_sec"])
    if best["events_per_sec"] < serial["events_per_sec"] * SCALE_REGRESSION_SLACK:
        fail(
            f"hosts={largest}: best sharded K={best['shards']} regressed to "
            f"{best['events_per_sec']:.0f} ev/s vs serial {serial['events_per_sec']:.0f}"
        )
    best_speedup = best["events_per_sec"] / serial["events_per_sec"]
    if best_speedup < MIN_SCALE_SPEEDUP:
        fail(
            f"hosts={largest}: best sharded speedup {best_speedup:.2f}x "
            f"< {MIN_SCALE_SPEEDUP}x (K={best['shards']})"
        )

    print(
        f"check_bench_sim: OK ({path}): {len(cells)} cells over "
        f"{len(by_hosts)} host counts, hashes identical across K, "
        f"best speedup {best_speedup:.2f}x at N={largest} (K={best['shards']})"
    )


ASYNC_WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "partition_bytes": int,
    "rounds": int,
    "smoke": bool,
}

ASYNC_CELL_KEYS = {
    "cell": str,
    "async": bool,
    "codec": str,
    "period_s": float,
    "round_seconds": float,
    "complete_rounds": int,
    "compression": float,
    "error_norm": float,
    "fingerprint": str,
}

# Per-cell compression-ratio floors: measured ratios are ~8x (quant8),
# ~16x (quant4) and ~8.6x (top-k at 10%); gate at half to tolerate the
# per-payload headers on small smoke workloads.
ASYNC_COMPRESSION_FLOORS = {
    "async_quant8": 4.0,
    "async_quant4": 8.0,
    "async_topk": 4.0,
}


def check_async(doc, path):
    check_keys(doc.get("workload", {}), ASYNC_WORKLOAD_KEYS, "workload")
    rounds = doc["workload"]["rounds"]
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    by_name = {}
    for i, cell in enumerate(cells):
        check_keys(cell, ASYNC_CELL_KEYS, f"cells[{i}]")
        if cell["round_seconds"] <= 0:
            fail(f"cells[{i}]: non-positive round_seconds")
        if cell["complete_rounds"] != rounds:
            fail(
                f"cells[{i}] ({cell['cell']}): only {cell['complete_rounds']} of "
                f"{rounds} rounds completed"
            )
        by_name[cell["cell"]] = cell

    for name in ("sync_dense", "async_dense", "async_quant8"):
        if name not in by_name:
            fail(f"grid is missing the '{name}' cell")

    # Exactness gates: async must not perturb the dense arithmetic, and the
    # sync baseline must be reproducible.
    if doc.get("async_dense_matches_sync") is not True:
        fail("async_dense_matches_sync is not true: async dense diverged from sync")
    if by_name["async_dense"]["fingerprint"] != by_name["sync_dense"]["fingerprint"]:
        fail("async_dense fingerprint differs from sync_dense (cells contradict flag)")
    if doc.get("sync_dense_deterministic") is not True:
        fail("sync_dense_deterministic is not true: baseline diverged across reruns")

    # Headline: async + 8-bit quantization vs the synchronous dense baseline.
    speedup = doc.get("headline_speedup")
    if not isinstance(speedup, (int, float)):
        fail("headline_speedup missing or non-numeric")
    measured = by_name["sync_dense"]["round_seconds"] / by_name["async_quant8"]["round_seconds"]
    if abs(measured - speedup) > 0.05:
        fail(f"headline_speedup {speedup} does not match the cells ({measured:.3f})")
    if speedup < MIN_HEADLINE_SPEEDUP:
        fail(f"headline_speedup {speedup:.2f} < {MIN_HEADLINE_SPEEDUP}")

    # Lossy codecs must actually shrink the wire payloads.
    for name, floor in ASYNC_COMPRESSION_FLOORS.items():
        cell = by_name.get(name)
        if cell is None:
            continue
        if cell["compression"] < floor:
            fail(f"{name}: compression {cell['compression']:.2f}x < {floor}x floor")

    print(
        f"check_bench_sim: OK ({path}): headline {speedup:.2f}x over "
        f"{len(cells)} cells, async dense bit-exact vs sync, deterministic"
    )


CRYPTO_ROW_KEYS = {
    "op": str,
    "size": int,
    "backend": str,
    "threads": int,
    "ns_per_op": float,
}

# Commit at 10^4 elements must beat single-thread Pippenger by at least
# this factor when a vector ISA tier is active. The AVX2 tier alone
# measures ~2.5-3x on noisy hosts and the IFMA tier 4-6x; gate on the
# floor that must hold on any AVX2-capable machine.
MIN_SIMD_SPEEDUP = 2.0
SIMD_SPEEDUP_SIZE = 10_000


def check_crypto(rows, path):
    if not rows:
        fail("crypto row list is empty")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"rows[{i}]: not an object")
        check_keys(row, CRYPTO_ROW_KEYS, f"rows[{i}]")

    def commit_rows(backend):
        return {
            r["size"]: r
            for r in rows
            if r["op"] == "commit" and r["backend"] == backend and r["threads"] == 1
        }

    simd = commit_rows("simd")
    pip = commit_rows("pippenger")
    naive = commit_rows("naive")
    if not simd:
        fail("no single-thread 'simd' commit rows (fig3_commitment not run?)")
    if not pip:
        fail("no single-thread 'pippenger' commit rows to compare against")

    # Exact-match gate: the SIMD engine must produce byte-identical
    # commitments wherever digests were recorded for both backends.
    compared = 0
    for size, srow in sorted(simd.items()):
        for ref_name, ref in (("pippenger", pip.get(size)), ("naive", naive.get(size))):
            if ref is None:
                continue
            sdig, rdig = srow.get("digest", ""), ref.get("digest", "")
            if not sdig or not rdig:
                continue
            if sdig != rdig:
                fail(
                    f"size={size}: simd commitment digest {sdig[:16]}… differs "
                    f"from {ref_name} {rdig[:16]}… (backends are not bit-exact)"
                )
            compared += 1
    if compared == 0:
        fail("no overlapping commit digests to compare (digest fields missing)")

    # Speedup floor, only meaningful when a vector tier actually ran.
    srow = simd.get(SIMD_SPEEDUP_SIZE)
    prow = pip.get(SIMD_SPEEDUP_SIZE)
    isa = (srow or {}).get("isa", "scalar") or "scalar"
    if srow is None or prow is None:
        fail(f"missing size={SIMD_SPEEDUP_SIZE} simd/pippenger commit rows")
    if isa == "scalar":
        print(
            f"check_bench_sim: OK ({path}): {compared} digest pairs identical; "
            f"speedup floor skipped (isa=scalar: AVX2 backend absent or disabled)"
        )
        return
    speedup = prow["ns_per_op"] / srow["ns_per_op"]
    if speedup < MIN_SIMD_SPEEDUP:
        fail(
            f"simd commit at n={SIMD_SPEEDUP_SIZE} is only {speedup:.2f}x faster "
            f"than pippenger (< {MIN_SIMD_SPEEDUP}x floor, isa={isa})"
        )
    print(
        f"check_bench_sim: OK ({path}): {compared} digest pairs identical, "
        f"simd {speedup:.2f}x over pippenger at n={SIMD_SPEEDUP_SIZE} (isa={isa})"
    )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if isinstance(doc, list):
        check_crypto(doc, path)
        return

    bench = doc.get("bench")
    if bench == "abl_datapath":
        check_datapath(doc, path)
    elif bench == "abl_chunking":
        check_chunking(doc, path)
    elif bench == "abl_async":
        check_async(doc, path)
    elif bench == "abl_scale":
        check_scale(doc, path)
    else:
        fail(
            f"unknown bench {bench!r} "
            f"(want abl_datapath, abl_chunking, abl_async or abl_scale)"
        )


if __name__ == "__main__":
    main()
