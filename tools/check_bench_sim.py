#!/usr/bin/env python3
"""Validate a BENCH_sim.json produced by bench/abl_datapath or bench/abl_chunking.

Dispatches on the document's "bench" field and checks the schema (required
keys and types) plus the invariants each bench guarantees regardless of
workload size:

abl_datapath (A9, zero-copy data plane):
  * simulated results are bit-identical across the two modes,
  * the zero-copy plane copies strictly fewer bytes than the baseline,
  * stat counters are internally consistent.

abl_chunking (A10, chunked Merkle-DAG transfer plane):
  * the aggregated global update is bit-identical across chunk settings,
  * the headline cell (256 KiB chunks, 2 providers) is >= 1.5x faster
    than the monolithic plane at the same provider count,
  * chunking at 256 KiB never loses to monolithic at any provider count,
  * the headline cell is deterministic across a full re-run.

Usage: check_bench_sim.py [path-to-BENCH_sim.json]
Exits non-zero with a message on the first violation.
"""
import json
import sys

MODE_KEYS = {
    "bytes_copied": int,
    "bytes_shared": int,
    "blocks_hashed": int,
    "bytes_hashed": int,
    "cid_cache_hits": int,
    "blocks_created": int,
    "peak_resident_block_bytes": int,
    "wall_seconds": float,
    "sim_events": int,
    "events_per_sec": float,
}

DATAPATH_WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "model_bytes": int,
    "rounds": int,
    "smoke": bool,
}

CHUNKING_WORKLOAD_KEYS = {
    "trainers": int,
    "partitions": int,
    "partition_elements": int,
    "partition_bytes": int,
    "train_time_ms": int,
    "smoke": bool,
}

CHUNKING_CELL_KEYS = {
    "providers": int,
    "chunk_bytes": int,
    "round_seconds": float,
    "round_done_ns": int,
    "fingerprint": str,
}

HEADLINE_CHUNK = 262144  # 256 KiB
HEADLINE_PROVIDERS = 2
MIN_HEADLINE_SPEEDUP = 1.5


def fail(msg):
    print(f"check_bench_sim: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_keys(obj, spec, where):
    for key, typ in spec.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        val = obj[key]
        # ints satisfy float fields, bools must not satisfy int fields
        if typ is bool:
            ok = isinstance(val, bool)
        elif typ is float:
            ok = isinstance(val, (int, float))
        elif typ is str:
            ok = isinstance(val, str)
        else:
            ok = isinstance(val, int) and not isinstance(val, bool)
        if not ok:
            fail(f"{where}.{key}: expected {typ.__name__}, got {type(val).__name__}")


def check_datapath(doc, path):
    check_keys(doc.get("workload", {}), DATAPATH_WORKLOAD_KEYS, "workload")
    for mode in ("baseline", "zero_copy"):
        if mode not in doc:
            fail(f"missing '{mode}' block")
        check_keys(doc[mode], MODE_KEYS, mode)

    base, zero = doc["baseline"], doc["zero_copy"]
    if doc.get("sim_time_identical") is not True:
        fail("sim_time_identical is not true: modes diverged in simulated time")
    if base["sim_events"] != zero["sim_events"]:
        fail("sim_events differ between modes")
    if zero["bytes_copied"] >= base["bytes_copied"]:
        fail("zero_copy plane did not reduce copied bytes")
    if zero["bytes_shared"] == 0:
        fail("zero_copy plane shared no bytes (sharing never engaged)")
    # The shared+copied total must equal what the baseline physically copied:
    # bytes_shared counts exactly the bytes the legacy plane memcpy'd.
    if zero["bytes_copied"] + zero["bytes_shared"] != base["bytes_copied"] + base["bytes_shared"]:
        fail("copied+shared totals differ between modes")
    if zero["blocks_hashed"] > base["blocks_hashed"]:
        fail("zero_copy plane hashed more blocks than the baseline")
    if zero["cid_cache_hits"] == 0:
        fail("CID cache never hit in zero_copy mode")
    if not isinstance(doc.get("copy_reduction_factor"), (int, float)):
        fail("copy_reduction_factor missing or non-numeric")
    if doc["copy_reduction_factor"] < 5.0:
        fail(f"copy_reduction_factor {doc['copy_reduction_factor']} < 5.0")
    rounds = doc["workload"]["rounds"]
    times = doc.get("sim_round_done_ns")
    if not isinstance(times, list) or len(times) != rounds:
        fail(f"sim_round_done_ns must list all {rounds} rounds")
    if any(b <= a for a, b in zip(times, times[1:])):
        fail("sim_round_done_ns is not strictly increasing")

    print(
        f"check_bench_sim: OK ({path}): "
        f"copy_reduction={doc['copy_reduction_factor']:.1f}x, "
        f"wall_speedup={doc.get('wall_speedup', 0):.2f}x, sim identical"
    )


def check_chunking(doc, path):
    check_keys(doc.get("workload", {}), CHUNKING_WORKLOAD_KEYS, "workload")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail("cells missing or empty")
    for i, cell in enumerate(cells):
        check_keys(cell, CHUNKING_CELL_KEYS, f"cells[{i}]")
        if cell["round_seconds"] <= 0:
            fail(f"cells[{i}]: non-positive round_seconds")

    def cell_at(providers, chunk_bytes):
        for c in cells:
            if c["providers"] == providers and c["chunk_bytes"] == chunk_bytes:
                return c
        return None

    # Bit-identical aggregates across chunk settings at each provider count.
    if doc.get("fingerprints_identical") is not True:
        fail("fingerprints_identical is not true: aggregates diverged across chunk settings")
    by_providers = {}
    for c in cells:
        by_providers.setdefault(c["providers"], set()).add(c["fingerprint"])
    for p, prints in sorted(by_providers.items()):
        if len(prints) != 1:
            fail(f"cells disagree on the aggregate fingerprint at providers={p}")

    if doc.get("deterministic") is not True:
        fail("deterministic is not true: headline cell diverged across reruns")

    # Headline: 256 KiB chunks with 2 providers beat monolithic >= 1.5x.
    headline = cell_at(HEADLINE_PROVIDERS, HEADLINE_CHUNK)
    baseline = cell_at(HEADLINE_PROVIDERS, 0)
    if headline is None or baseline is None:
        fail("grid is missing the headline (256 KiB, P=2) or monolithic baseline cell")
    speedup = doc.get("speedup_256k_p2")
    if not isinstance(speedup, (int, float)):
        fail("speedup_256k_p2 missing or non-numeric")
    measured = baseline["round_seconds"] / headline["round_seconds"]
    if abs(measured - speedup) > 0.05:
        fail(f"speedup_256k_p2 {speedup} does not match the cells ({measured:.3f})")
    if speedup < MIN_HEADLINE_SPEEDUP:
        fail(f"speedup_256k_p2 {speedup} < {MIN_HEADLINE_SPEEDUP}")

    # 256 KiB chunking must never lose to monolithic at any provider count.
    for p in sorted(by_providers):
        chunked, mono = cell_at(p, HEADLINE_CHUNK), cell_at(p, 0)
        if chunked is None or mono is None:
            continue
        if chunked["round_seconds"] > mono["round_seconds"]:
            fail(f"256 KiB chunking is slower than monolithic at providers={p}")

    print(
        f"check_bench_sim: OK ({path}): "
        f"speedup_256k_p2={speedup:.2f}x over {len(cells)} cells, "
        f"aggregates identical, deterministic"
    )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    bench = doc.get("bench")
    if bench == "abl_datapath":
        check_datapath(doc, path)
    elif bench == "abl_chunking":
        check_chunking(doc, path)
    else:
        fail(f"unknown bench {bench!r} (want abl_datapath or abl_chunking)")


if __name__ == "__main__":
    main()
