// Merge-and-download walk-through (Section III-E): sweeps the number of
// IPFS providers per aggregator and shows the upload/aggregation trade-off
// and the sqrt(T) optimum, then contrasts with the naive indirect protocol.
//
//   ./examples/merge_and_download
#include <cmath>
#include <cstdio>

#include "core/runner.hpp"

int main() {
  using namespace dfl;

  constexpr std::size_t kTrainers = 16;
  std::printf("merge-and-download: %zu trainers, 0.5 MB partition, 10 Mbps links\n\n",
              kTrainers);
  std::printf("%-12s %18s %22s %26s\n", "providers", "upload_delay_s", "aggregation_delay_s",
              "aggregator_traffic_MB");

  double best = 1e18;
  std::size_t best_p = 0;
  for (std::size_t p = 1; p <= kTrainers; p *= 2) {
    core::DeploymentConfig cfg;
    cfg.num_trainers = kTrainers;
    cfg.num_partitions = 1;
    cfg.partition_elements = 62'500;  // 0.5 MB
    cfg.num_ipfs_nodes = p;
    cfg.providers_per_agg = p;
    cfg.options.merge_and_download = true;
    cfg.train_time = sim::from_millis(500);
    core::Deployment d(cfg);
    const core::RoundMetrics m = d.run_round(0);
    std::printf("%-12zu %18.2f %22.2f %26.2f\n", p, m.mean_upload_delay_s(),
                m.mean_aggregation_delay_s(), m.mean_aggregator_bytes() / 1e6);
    if (m.mean_aggregation_delay_s() < best) {
      best = m.mean_aggregation_delay_s();
      best_p = p;
    }
  }
  std::printf("\nbest provider count: %zu (theory: sqrt(%zu) = %.0f)\n", best_p, kTrainers,
              std::sqrt(static_cast<double>(kTrainers)));

  // The same workload without pre-aggregation: the aggregator downloads
  // every gradient individually.
  core::DeploymentConfig naive;
  naive.num_trainers = kTrainers;
  naive.num_partitions = 1;
  naive.partition_elements = 62'500;
  naive.num_ipfs_nodes = best_p;
  naive.providers_per_agg = best_p;
  naive.options.merge_and_download = false;
  naive.train_time = sim::from_millis(500);
  core::Deployment d(naive);
  const core::RoundMetrics m = d.run_round(0);
  std::printf("without merging (same %zu providers): aggregation %.2f s, traffic %.2f MB\n",
              best_p, m.mean_aggregation_delay_s(), m.mean_aggregator_bytes() / 1e6);
  std::printf("-> pre-aggregation on storage nodes cuts both delay and bandwidth\n");
  return 0;
}
