// Availability demo (Section VI, "Guarantee availability of gradients in
// IPFS network"): what happens to a round when a storage node dies, with
// and without gradient replication.
//
//   ./examples/availability_demo
#include <cstdio>

#include "core/runner.hpp"

namespace {

using namespace dfl;

core::DeploymentConfig scenario(std::size_t gradient_replicas) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 2048;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.gradient_replicas = gradient_replicas;
  cfg.options.update_replicas = 2;
  cfg.train_time = sim::from_millis(300);
  cfg.schedule = core::Schedule{sim::from_seconds(20), sim::from_seconds(45),
                                sim::from_millis(50)};
  return cfg;
}

void run_case(const char* label, std::size_t replicas, bool kill_node) {
  core::Deployment d(scenario(replicas));
  if (kill_node) d.swarm().node(0).host().set_up(false);
  const core::RoundMetrics m = d.run_round(0);
  std::uint64_t aggregated = 0;
  for (const auto& a : m.aggregators) aggregated += a.gradients_aggregated;
  std::printf("%-38s gradients aggregated: %2llu/16, update published: %s\n", label,
              static_cast<unsigned long long>(aggregated),
              d.last_global_update().empty() ? "NO" : "yes");
}

}  // namespace

int main() {
  std::printf("8 trainers x 2 partitions over 4 storage nodes; node 0 may be down\n\n");
  run_case("healthy swarm, 1 copy per gradient:", 1, false);
  run_case("node 0 down, 1 copy per gradient:", 1, true);
  run_case("node 0 down, 2 copies per gradient:", 2, true);
  std::printf(
      "\nwith a single copy, gradients routed to the dead node are lost and the\n"
      "round degrades; with one extra replica (Section VI's suggestion) trainers\n"
      "fail over and the round aggregates everything\n");
  return 0;
}
