// Availability demo (Section VI, "Guarantee availability of gradients in
// IPFS network"): what happens to a round when a storage node dies, with
// and without gradient replication.
//
//   ./examples/availability_demo
#include <cstdio>

#include "core/runner.hpp"

namespace {

using namespace dfl;

core::DeploymentConfig scenario(std::size_t gradient_replicas) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 2048;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 4;
  cfg.options.gradient_replicas = gradient_replicas;
  cfg.options.update_replicas = 2;
  cfg.train_time = sim::from_millis(300);
  cfg.schedule = core::Schedule{sim::from_seconds(20), sim::from_seconds(45),
                                sim::from_millis(50)};
  return cfg;
}

void run_case(const char* label, std::size_t replicas, bool kill_node) {
  core::Deployment d(scenario(replicas));
  if (kill_node) d.swarm().node(0).host().set_up(false);
  const core::RoundMetrics m = d.run_round(0);
  std::uint64_t aggregated = 0;
  for (const auto& a : m.aggregators) aggregated += a.gradients_aggregated;
  std::printf("%-38s gradients aggregated: %2llu/16, update published: %s\n", label,
              static_cast<unsigned long long>(aggregated),
              d.last_global_update().empty() ? "NO" : "yes");
}

// Chaos case: instead of a node that is dead from the start, half the
// storage nodes (2 of 4, 50% >= the 25% availability bar) crash *mid-round*
// — after gradients landed on them, before every consumer fetched — and
// restart a few seconds later. In-flight transfers touching them fail at
// crash time; retry/backoff and replica failover must carry the round.
void run_chaos_case() {
  auto cfg = scenario(/*gradient_replicas=*/2);
  cfg.options.retry.max_attempts = 6;
  cfg.options.retry.attempt_timeout = sim::from_seconds(10);
  cfg.options.retry.base_backoff = sim::from_millis(200);
  cfg.fault_plan.crashes = {
      sim::CrashWindow{0, sim::from_millis(400), sim::from_seconds(5)},
      sim::CrashWindow{1, sim::from_millis(450), sim::from_seconds(6)},
  };
  core::Deployment d(cfg);
  const core::RoundMetrics m = d.run_round(0);
  std::uint64_t aggregated = 0;
  for (const auto& a : m.aggregators) aggregated += a.gradients_aggregated;
  const ipfs::RetryStats rpc = m.rpc_totals();
  const auto* inj = d.fault_injector();
  std::printf("%-38s gradients aggregated: %2llu/16, update published: %s\n",
              "nodes 0+1 crash mid-round, restart:", static_cast<unsigned long long>(aggregated),
              d.last_global_update().empty() ? "NO" : "yes");
  std::printf(
      "  chaos: %llu crashes, %llu restarts, %llu transfers failed mid-flight\n"
      "  recovery: %llu RPC attempts, %llu retries, %llu timeouts, %llu failovers\n",
      static_cast<unsigned long long>(inj->stats().crashes),
      static_cast<unsigned long long>(inj->stats().restarts),
      static_cast<unsigned long long>(d.context().net.mid_transfer_failures()),
      static_cast<unsigned long long>(rpc.attempts), static_cast<unsigned long long>(rpc.retries),
      static_cast<unsigned long long>(rpc.timeouts),
      static_cast<unsigned long long>(rpc.failovers));
}

}  // namespace

int main() {
  std::printf("8 trainers x 2 partitions over 4 storage nodes; node 0 may be down\n\n");
  run_case("healthy swarm, 1 copy per gradient:", 1, false);
  run_case("node 0 down, 1 copy per gradient:", 1, true);
  run_case("node 0 down, 2 copies per gradient:", 2, true);
  run_chaos_case();
  std::printf(
      "\nwith a single copy, gradients routed to the dead node are lost and the\n"
      "round degrades; with one extra replica (Section VI's suggestion) trainers\n"
      "fail over and the round aggregates everything — even when half the swarm\n"
      "crashes mid-round and failed transfers must be retried after the restart\n");
  return 0;
}
