// Quickstart: the smallest end-to-end decentralized FL deployment.
//
// 8 trainers train a model whose parameter vector is split into 2
// partitions; 2 aggregators (one per partition) aggregate the gradient
// partitions through a 4-node decentralized storage network, coordinated
// by the bootstrapper's directory service.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/runner.hpp"

int main() {
  using namespace dfl;

  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 16 * 1024;  // ~128 KB per partition on the wire
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 4;
  cfg.participant_mbps = 10.0;
  cfg.train_time = sim::from_millis(500);

  core::Deployment deployment(cfg);

  std::printf("decentralized FL: %zu trainers, %zu partitions, %zu storage nodes\n\n",
              cfg.num_trainers, cfg.num_partitions, cfg.num_ipfs_nodes);
  std::printf("%-8s %18s %20s %16s\n", "round", "upload_delay_s", "aggregation_delay_s",
              "round_time_s");

  for (std::uint32_t round = 0; round < 3; ++round) {
    const core::RoundMetrics m = deployment.run_round(round);
    std::printf("%-8u %18.2f %20.2f %16.2f\n", round, m.mean_upload_delay_s(),
                m.mean_aggregation_delay_s(),
                sim::to_seconds(m.round_done - m.round_start));
    if (deployment.last_global_update().empty()) {
      std::printf("round %u failed!\n", round);
      return 1;
    }
  }

  std::printf("\nall rounds aggregated exactly; directory handled %llu announcements\n",
              static_cast<unsigned long long>(deployment.directory().stats().announcements));
  return 0;
}
