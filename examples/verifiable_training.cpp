// Verifiable aggregation demo (Section IV): a malicious aggregator drops a
// trainer's gradient. Without commitments the poisoned model propagates
// silently; with Pedersen commitments the directory rejects the bogus
// update, and with multiple aggregators per partition an honest peer
// detects the bad partial and covers for the victimized trainers.
//
//   ./examples/verifiable_training
#include <cmath>
#include <algorithm>
#include <cstdio>

#include "core/runner.hpp"
#include "crypto/encoding.hpp"

namespace {

using namespace dfl;

core::DeploymentConfig scenario(bool verifiable, std::size_t aggs_per_partition) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 6;
  cfg.num_partitions = 1;
  cfg.partition_elements = 1024;
  cfg.aggs_per_partition = aggs_per_partition;
  cfg.num_ipfs_nodes = 3;
  cfg.options.verifiable = verifiable;
  cfg.train_time = sim::from_millis(300);
  cfg.behaviors[0] = core::AggBehavior::kDropsGradients;  // aggregator 0 cheats
  return cfg;
}

double max_error_vs_honest(core::Deployment& d) {
  // Recompute the honest average and compare.
  const auto& cfg = d.config();
  const std::size_t n = cfg.partition_elements * cfg.num_partitions;
  std::vector<double> honest(n, 0.0);
  for (std::uint32_t t = 0; t < cfg.num_trainers; ++t) {
    const auto g = d.source().gradient(t, 0);
    for (std::size_t i = 0; i < n; ++i) {
      honest[i] += crypto::decode_fixed(g[i], cfg.options.frac_bits);
    }
  }
  for (double& v : honest) v /= static_cast<double>(cfg.num_trainers);
  const auto& got = d.last_global_update();
  if (got.empty()) return -1;  // round failed (update rejected)
  double mx = 0;
  for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, std::abs(got[i] - honest[i]));
  return mx;
}

}  // namespace

int main() {
  using namespace dfl;

  std::printf("scenario: 6 trainers, 1 partition; aggregator 0 DROPS one gradient\n\n");

  {
    std::printf("[1] plain protocol (no verifiability), single aggregator\n");
    core::Deployment d(scenario(false, 1));
    (void)d.run_round(0);
    std::printf("    round completed; max deviation from honest average: %.4f\n",
                max_error_vs_honest(d));
    std::printf("    -> the poisoned update went UNDETECTED\n\n");
  }

  {
    std::printf("[2] verifiable protocol, single aggregator\n");
    core::Deployment d(scenario(true, 1));
    const core::RoundMetrics m = d.run_round(0);
    std::printf("    directory verifications failed: %llu; update registered: %s\n",
                static_cast<unsigned long long>(d.directory().stats().verifications_failed),
                d.last_global_update().empty() ? "NO (rejected)" : "yes");
    std::printf("    trainers with missing update: %zu/%zu (round aborted, model unharmed)\n\n",
                static_cast<std::size_t>(
                    std::count_if(m.trainers.begin(), m.trainers.end(),
                                  [](const auto& t) { return t.update_missing; })),
                m.trainers.size());
  }

  {
    std::printf("[3] verifiable protocol, TWO aggregators per partition\n");
    core::Deployment d(scenario(true, 2));
    const core::RoundMetrics m = d.run_round(0);
    const double err = max_error_vs_honest(d);
    std::printf("    bad partial rejected by peer: %s; peer covered for it: %s\n",
                m.rejected_updates > 0 ? "yes" : "no",
                m.aggregators[1].covered_for_peer || m.aggregators[0].covered_for_peer ? "yes"
                                                                                       : "no");
    std::printf("    final update deviation from honest average: %.2e\n", err);
    std::printf("    -> attack detected AND the round still completed correctly\n");
  }
  return 0;
}
