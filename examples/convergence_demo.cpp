// Convergence equivalence (Section V, "Convergence and Accuracy"): the
// decentralized protocol computes exactly the same per-round average as a
// centralized FL server, so the learning trajectories coincide. We train a
// real softmax classifier on a synthetic non-IID federated split both ways
// and print the two accuracy curves side by side.
//
//   ./examples/convergence_demo
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/baseline_central.hpp"
#include "core/runner.hpp"
#include "ml/federated.hpp"

int main() {
  using namespace dfl;

  // Data: 3-class blobs, split label-skewed (non-IID) across 6 trainers.
  Rng data_rng(2024);
  const ml::Dataset train_data = ml::make_gaussian_blobs(data_rng, 1200, 4, 3, 3.0);
  const ml::Dataset test_data = ml::make_gaussian_blobs(data_rng, 600, 4, 3, 3.0);
  const auto shards = ml::split_label_skew(train_data, 6, 1.0, data_rng);

  const auto make_source = [&] {
    Rng model_rng(7);
    auto model = std::make_unique<ml::LogisticRegression>(4, 3, model_rng);
    return std::make_unique<core::MlGradientSource>(std::move(model), shards,
                                                    /*learning_rate=*/0.5,
                                                    sim::from_millis(200));
  };

  auto central_source = std::shared_ptr<core::MlGradientSource>(make_source().release());
  core::CentralConfig ccfg;
  ccfg.num_trainers = 6;
  ccfg.num_params = central_source->model().num_params();
  core::CentralizedFl central(ccfg, central_source);

  auto dec_source = make_source();
  auto* dec_model_view = dec_source.get();
  core::DeploymentConfig dcfg;
  dcfg.num_trainers = 6;
  dcfg.num_partitions = 3;
  dcfg.partition_elements = central_source->model().num_params() / 3;
  dcfg.num_ipfs_nodes = 3;
  dcfg.train_time = sim::from_millis(200);
  core::Deployment decentralized(dcfg, std::move(dec_source));

  std::printf("%zu-param softmax model, 6 non-IID trainers, 3 partitions\n\n",
              central_source->model().num_params());
  std::printf("%-8s %22s %24s %12s\n", "round", "centralized_accuracy", "decentralized_accuracy",
              "max|dw|");

  for (std::uint32_t round = 0; round < 15; ++round) {
    (void)central.run_round(round);
    (void)decentralized.run_round(round);
    const auto& wc = central_source->model().params();
    const auto& wd = dec_model_view->model().params();
    double max_dw = 0;
    for (std::size_t i = 0; i < wc.size(); ++i) {
      max_dw = std::max(max_dw, std::abs(wc[i] - wd[i]));
    }
    std::printf("%-8u %22.3f %24.3f %12.2e\n", round,
                central_source->model().accuracy(test_data),
                dec_model_view->model().accuracy(test_data), max_dw);
  }

  std::printf("\nthe trajectories coincide (parameter gap at float precision): the\n");
  std::printf("decentralized deployment inherits centralized FL convergence exactly\n");
  return 0;
}
