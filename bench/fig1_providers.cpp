// Figure 1: aggregation delay (top) and gradient-upload delay (bottom) for
// one FL iteration, vs the number of IPFS providers |P_ij|.
//
// Paper setup (Section V, "Impact of merge-and-download"): 16 trainers,
// partition size 1.3 MB, one aggregator per partition, 10 Mbps links.
// The top panel also compares indirect-without-merging ("8 (naive)") with
// the original IPLS direct communication ("8 (direct)").
#include <cstdio>

#include "bench_util.hpp"
#include "core/baseline_direct.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

// 1.3 MB / 8 bytes per fixed-point element.
constexpr std::size_t kPartitionElements = 162'500;
constexpr std::size_t kTrainers = 16;
constexpr double kMbps = 10.0;

core::DeploymentConfig base_config(std::size_t providers, bool merge) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = kTrainers;
  cfg.num_partitions = 1;
  cfg.partition_elements = kPartitionElements;
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = providers;
  cfg.providers_per_agg = providers;
  cfg.participant_mbps = kMbps;
  cfg.node_mbps = kMbps;
  cfg.options.merge_and_download = merge;
  cfg.train_time = sim::from_seconds(1);
  cfg.schedule =
      core::Schedule{sim::from_seconds(600), sim::from_seconds(1200), sim::from_millis(100)};
  return cfg;
}

struct Point {
  double aggregation_delay_s;
  double upload_delay_s;
};

Point run_point(std::size_t providers, bool merge) {
  core::Deployment d(base_config(providers, merge));
  const core::RoundMetrics m = d.run_round(0);
  return Point{m.mean_aggregation_delay_s(), m.mean_upload_delay_s()};
}

}  // namespace

int main() {
  bench::print_header("Figure 1: merge-and-download, delays vs #providers");
  bench::print_note("16 trainers, 1.3 MB partition, 1 aggregator, 10 Mbps links");
  std::printf("%-12s %22s %18s\n", "providers", "aggregation_delay_s", "upload_delay_s");

  for (const std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    const Point pt = run_point(p, /*merge=*/true);
    std::printf("%-12zu %22.2f %18.2f\n", static_cast<std::size_t>(p), pt.aggregation_delay_s,
                pt.upload_delay_s);
  }

  // Comparison series of the top panel.
  const Point naive = run_point(8, /*merge=*/false);
  std::printf("%-12s %22.2f %18.2f\n", "8 (naive)", naive.aggregation_delay_s,
              naive.upload_delay_s);

  core::DirectConfig direct_cfg;
  direct_cfg.num_trainers = kTrainers;
  direct_cfg.num_partitions = 1;
  direct_cfg.partition_elements = kPartitionElements;
  direct_cfg.participant_mbps = kMbps;
  direct_cfg.train_time = sim::from_seconds(1);
  const core::DirectRoundResult direct = core::DirectIplsBaseline(direct_cfg).run_round();
  std::printf("%-12s %22.2f %18s\n", "8 (direct)", direct.aggregation_delay_s, "n/a");

  bench::print_note("expected shape: upload delay falls with providers; aggregation delay is");
  bench::print_note("U-shaped with the optimum near sqrt(16) = 4 (Section III-E analysis)");
  return 0;
}
