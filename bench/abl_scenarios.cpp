// Ablation A12: graceful degradation across Internet-realistic scenarios.
// Sweeps the checked-in scenarios/*.scn chaos configs against two protocol
// modes (baseline fetch-all vs merge-and-download) and reports, per cell:
// partition completion rate, p50/p99 round latency over completed rounds,
// and the injected-fault totals. Results land in BENCH_scenarios.json
// (override with DFL_SCENARIO_BENCH_JSON) so CI can diff regressions.
//
// Scenario files are resolved against DFL_SCENARIO_DIR (default
// "scenarios", i.e. run from the repo root).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace dfl;

struct Cell {
  std::string scenario;
  std::string mode;
  int rounds = 0;
  int rounds_complete = 0;
  double completion_rate = 0;
  double p50_ms = -1;
  double p99_ms = -1;
  std::uint64_t crashes = 0;
  std::uint64_t transfers_dropped = 0;
  std::uint64_t payloads_corrupted = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return -1;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

Cell run_cell(const sim::ScenarioSpec& spec, const std::string& mode, bool merge) {
  core::DeploymentConfig cfg;
  int rounds = core::apply_scenario(spec, cfg);
  if (rounds <= 0) rounds = 4;
  cfg.scenario.rounds = rounds;
  cfg.options.merge_and_download = merge;

  core::Deployment d(cfg);
  Cell cell;
  cell.scenario = spec.name;
  cell.mode = mode;
  cell.rounds = rounds;
  double rate_sum = 0;
  std::vector<double> durations_ms;
  for (int r = 0; r < rounds; ++r) {
    const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    rate_sum += m.completion_rate();
    if (m.global_update_complete) ++cell.rounds_complete;
    if (m.round_done >= 0) {
      durations_ms.push_back(sim::to_seconds(m.round_done - m.round_start) * 1e3);
    }
    cell.crashes += m.faults.crashes;
    cell.transfers_dropped += m.faults.transfers_dropped;
    cell.payloads_corrupted += m.faults.payloads_corrupted;
  }
  cell.completion_rate = rate_sum / rounds;
  cell.p50_ms = percentile(durations_ms, 50);
  cell.p99_ms = percentile(durations_ms, 99);
  return cell;
}

void write_json(const std::vector<Cell>& cells, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "  {\"scenario\": \"" << c.scenario << "\", \"mode\": \"" << c.mode
        << "\", \"rounds\": " << c.rounds
        << ", \"rounds_complete\": " << c.rounds_complete
        << ", \"completion_rate\": " << c.completion_rate
        << ", \"round_p50_ms\": " << c.p50_ms
        << ", \"round_p99_ms\": " << c.p99_ms
        << ", \"crashes\": " << c.crashes
        << ", \"transfers_dropped\": " << c.transfers_dropped
        << ", \"payloads_corrupted\": " << c.payloads_corrupted << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  bench::print_header("Ablation A12: scenario sweep x protocol mode");
  const char* dir_env = std::getenv("DFL_SCENARIO_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "scenarios";
  const char* out_env = std::getenv("DFL_SCENARIO_BENCH_JSON");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_scenarios.json";

  const std::vector<std::string> names = {"calm",        "diurnal",
                                          "mobile-churn", "flash-crowd",
                                          "degraded-backbone", "partition-heal"};
  std::vector<Cell> cells;
  std::printf("  %-18s %-9s %9s %12s %11s %11s %8s\n", "scenario", "mode", "complete",
              "completion", "p50_ms", "p99_ms", "crashes");
  for (const std::string& name : names) {
    sim::ScenarioSpec spec;
    try {
      spec = sim::load_scenario_file(dir + "/" + name + ".scn");
    } catch (const sim::ScenarioError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    for (const bool merge : {false, true}) {
      const std::string mode = merge ? "merge" : "baseline";
      const Cell c = run_cell(spec, mode, merge);
      std::printf("  %-18s %-9s %6d/%-2d %12.3f %11.1f %11.1f %8llu\n", c.scenario.c_str(),
                  mode.c_str(), c.rounds_complete, c.rounds, c.completion_rate, c.p50_ms,
                  c.p99_ms, static_cast<unsigned long long>(c.crashes));
      cells.push_back(c);
    }
  }
  write_json(cells, out_path);
  std::printf("  -> %s (%zu cells)\n", out_path.c_str(), cells.size());
  return 0;
}
