// Ablation A4: directory-service load per round (the Section VI concern
// "minimize the query load of the directory service"). Sweeps trainers and
// partitions; reports announcements, polls, and bytes handled per round.
#include <cstdio>

#include "bench_util.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

}  // namespace

int main() {
  bench::print_header("Ablation A4: directory load per round");
  std::printf("%-10s %-12s %14s %10s %12s %12s %12s\n", "trainers", "partitions",
              "announcements", "polls", "lookups", "bytes_in", "bytes_out");

  for (const std::size_t trainers : {4u, 8u, 16u, 32u}) {
    for (const std::size_t partitions : {1u, 4u}) {
      core::DeploymentConfig cfg;
      cfg.num_trainers = trainers;
      cfg.num_partitions = partitions;
      cfg.partition_elements = 8'192;
      cfg.num_ipfs_nodes = 4;
      cfg.train_time = sim::from_seconds(1);
      core::Deployment d(cfg);
      (void)d.run_round(0);
      const auto& s = d.directory().stats();
      std::printf("%-10zu %-12zu %14llu %10llu %12llu %12llu %12llu\n",
                  static_cast<std::size_t>(trainers), static_cast<std::size_t>(partitions),
                  static_cast<unsigned long long>(s.announcements),
                  static_cast<unsigned long long>(s.polls),
                  static_cast<unsigned long long>(s.lookups),
                  static_cast<unsigned long long>(s.bytes_in),
                  static_cast<unsigned long long>(s.bytes_out));
    }
  }
  bench::print_note("announcements scale with trainers x partitions; polls additionally with");
  bench::print_note("round duration / poll interval — the load Section VI proposes to shed");
  return 0;
}
