// Ablation A3: naive per-element exponentiation (the paper's
// implementation) vs Pippenger multi-exponentiation (the future-work
// optimization the paper cites [27, 28]), plus the pool-parallel MSM the
// crypto engine uses. Gradient-sized 17-bit scalars.
#include <cstdio>

#include "bench_util.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "crypto/encoding.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/msm.hpp"

namespace {

using namespace dfl;
using crypto::Curve;

}  // namespace

int main() {
  bench::print_header("Ablation A3: naive vs Pippenger vs parallel multi-exponentiation");
  ThreadPool& pool = ThreadPool::shared();
  std::printf("  # %zu threads (DFL_THREADS to override)\n", pool.concurrency());
  std::vector<bench::BenchRecord> records;
  std::printf("%-12s %-12s %12s %14s %10s %12s\n", "curve", "n", "naive_s", "pippenger_s",
              "speedup", "parallel_s");

  for (const auto* curve : {&Curve::secp256k1(), &Curve::secp256r1()}) {
    const std::size_t max_n = 100'000;
    const auto points = crypto::derive_generators(*curve, "abl-msm", max_n);
    Rng rng(11);
    std::vector<crypto::U256> scalars;
    scalars.reserve(max_n);
    for (std::size_t i = 0; i < max_n; ++i) {
      // Gradient-magnitude scalars: |v| <= 2^17 at 16 fractional bits.
      scalars.push_back(
          crypto::U256(static_cast<std::uint64_t>(crypto::encode_fixed(rng.uniform01()))));
    }

    for (std::size_t n = 1'000; n <= max_n; n *= 10) {
      const std::vector<crypto::AffinePoint> pts(points.begin(),
                                                 points.begin() + static_cast<std::ptrdiff_t>(n));
      const std::vector<crypto::U256> sc(scalars.begin(),
                                         scalars.begin() + static_cast<std::ptrdiff_t>(n));
      bench::WallTimer tn;
      const auto a = crypto::msm_naive(*curve, pts, sc);
      const double naive_s = tn.seconds();
      bench::WallTimer tp;
      const auto b = crypto::msm_pippenger(*curve, pts, sc);
      const double pip_s = tp.seconds();
      bench::WallTimer tpar;
      const auto c = crypto::msm_parallel(*curve, pts, sc, pool);
      const double par_s = tpar.seconds();
      if (!curve->eq(a, b) || !curve->eq(a, c)) {
        std::printf("  !! MSM mismatch at n=%zu\n", n);
        return 1;
      }
      std::printf("%-12s %-12zu %12.4f %14.4f %9.1fx %12.4f\n", curve->name().c_str(), n,
                  naive_s, pip_s, naive_s / pip_s, par_s);
      const bool k1 = curve == &Curve::secp256k1();
      if (k1) {
        records.push_back(bench::BenchRecord{"msm", n, "naive", 1, naive_s * 1e9, {}, {}, {}});
        records.push_back(
            bench::BenchRecord{"msm", n, "pippenger", 1, pip_s * 1e9, {}, {}, {}});
        records.push_back(bench::BenchRecord{"msm", n, "parallel", pool.concurrency(),
                                             par_s * 1e9, {}, {}, {}});
      }
    }
  }
  bench::write_bench_json(records);
  bench::print_note("the speedup is what Section VI's 'plenty of room for optimization'");
  bench::print_note("buys: it directly shrinks the Figure 3 bottleneck");
  return 0;
}
