// Ablation A7: round resilience vs storage-node churn.
// The paper's testbed assumes storage nodes stay up for a round; this
// ablation measures what deadline-bounded RPCs with retry/backoff buy when
// they do not. We sweep the per-slot crash probability of a periodic-churn
// fault plan and report, per churn level: recovered-round rate (rounds
// that still published every partition's global update), total aggregation
// delay, and the retry/failover counters the recovery cost.
#include <cstdio>

#include "bench_util.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

constexpr int kRounds = 4;

core::DeploymentConfig churn_config() {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 8;
  cfg.num_partitions = 2;
  cfg.partition_elements = 4096;
  cfg.num_ipfs_nodes = 6;
  cfg.providers_per_agg = 3;
  cfg.options.gradient_replicas = 2;
  cfg.options.update_replicas = 2;
  cfg.options.retry.max_attempts = 6;
  cfg.options.retry.attempt_timeout = sim::from_seconds(10);
  cfg.options.retry.base_backoff = sim::from_millis(200);
  cfg.options.retry.max_backoff = sim::from_seconds(4);
  cfg.schedule = core::Schedule{sim::from_seconds(60), sim::from_seconds(120),
                                sim::from_millis(100)};
  cfg.train_time = sim::from_millis(500);
  return cfg;
}

void run_churn(double churn_prob) {
  auto cfg = churn_config();
  if (churn_prob > 0) {
    std::vector<std::uint32_t> node_ids;
    for (std::uint32_t i = 0; i < cfg.num_ipfs_nodes; ++i) node_ids.push_back(i);
    // Rounds complete in about a second of simulated time and run
    // back-to-back, so churn slots must be on the same scale: one crash
    // decision per node every 2 s, 1.5 s of downtime — long enough to
    // force failovers, short enough that backoff bridges the outage.
    cfg.fault_plan = sim::FaultPlan::periodic_churn(
        node_ids, sim::from_seconds(120), sim::from_seconds(2), sim::from_millis(1500),
        churn_prob, /*seed=*/42);
  }

  core::Deployment d(cfg);
  int recovered = 0;
  double delay_sum = 0;
  ipfs::RetryStats rpc;
  for (int r = 0; r < kRounds; ++r) {
    const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    if (!d.last_global_update().empty()) ++recovered;
    delay_sum += m.total_aggregation_delay_s();
    rpc += m.rpc_totals();
  }

  std::printf(
      "  churn %.2f | recovered %d/%d | total agg delay %6.2f s | "
      "attempts %5llu retries %4llu timeouts %3llu failovers %3llu\n",
      churn_prob, recovered, kRounds, delay_sum / kRounds,
      static_cast<unsigned long long>(rpc.attempts),
      static_cast<unsigned long long>(rpc.retries),
      static_cast<unsigned long long>(rpc.timeouts),
      static_cast<unsigned long long>(rpc.failovers));
}

}  // namespace

int main() {
  bench::print_header("Ablation A7: aggregation delay & recovery vs storage churn");
  bench::print_note("8 trainers, 6 storage nodes, 2x replication, 4 rounds per point");
  bench::print_note("periodic churn: each node crashes per 2s slot w.p. p, down 1.5s");
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    run_churn(p);
  }
  bench::print_note("recovery comes from (a) replica failover on fetch, (b) retry with");
  bench::print_note("backoff bridging restarts, (c) deadline-bounded rounds that accept");
  bench::print_note("partial gathers instead of hanging");
  return 0;
}
