// Ablation A15: barrier-free async rounds x compressed gradient payloads.
// Runs the same fixed-seed workload (8 trainers, one 1 MiB partition,
// Fig-1-style 10 Mbps symmetric links) through five protocol cells:
//
//   sync  x dense   — the legacy barrier'd protocol, the baseline
//   async x dense   — barrier-free launch cadence, uncompressed payloads
//   async x quant8  — async + 8-bit quantized gradients
//   async x quant4  — async + 4-bit quantized gradients
//   async x topk    — async + top-10% sparsified gradients
//
// and reports the per-round wall-clock throughput of each. The async
// cadence (seconds between round launches) is per-cell: uncompressed
// gather saturates the aggregator's 10 Mbps downlink, so async x dense
// needs a loose cadence, while the compressed cells sustain a much
// tighter one — compression is what unlocks the speedup.
// The contract tools/check_bench_sim.py enforces:
//   * headline: async x quant8 completes rounds >= 1.5x faster than
//     sync x dense,
//   * every cell completes every round's global update,
//   * sync x dense is bit-identical across a full re-run,
//   * async x dense reproduces sync x dense's per-round aggregates
//     bit-exactly (the 1/(1+s)^a weights are integer-scaled, and with no
//     stragglers every fold is fresh, so the scaling cancels in the mean),
//   * the compressed cells hit their expected compression ratios.
// Results land in BENCH_async.json ($DFL_BENCH_SIM_JSON overrides).
//
//   abl_async                 # full workload: 1 MiB partitions, 6 rounds
//   DFL_ASYNC_SMOKE=1 abl_async   # CI-sized: 256 KiB partitions, 3 rounds
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

struct Workload {
  std::size_t trainers = 8;
  std::size_t partitions = 1;
  std::size_t partition_elements = 131072;  // 1 MiB partition on the wire
  sim::TimeNs train_time = sim::from_seconds(1);
  int rounds = 6;
  bool smoke = false;
};

/// One protocol cell: a codec under sync or async rounds.
struct CellSpec {
  const char* name;
  bool async;
  core::Codec codec;
  int quant_bits;
  double topk_frac;
  double period_s;  // async launch cadence; 0 for sync
};

struct CellResult {
  CellSpec spec;
  double round_seconds = 0;       // completion time per round, simulated
  int complete_rounds = 0;        // rounds whose global update assembled
  double compression = 1.0;       // raw / encoded gradient bytes
  double error_norm = 0;          // sqrt(sum of per-round error_sq)
  std::uint64_t fingerprint = 0;  // FNV-1a over all rounds' aggregates
  sim::TimeNs last_done = 0;
};

core::DeploymentConfig make_config(const Workload& w, const CellSpec& s) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = w.trainers;
  cfg.num_partitions = w.partitions;
  cfg.partition_elements = w.partition_elements;
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = 1;
  cfg.train_time = w.train_time;
  cfg.seed = 42;
  cfg.options.codec = s.codec;
  cfg.options.quant_bits = s.quant_bits;
  cfg.options.topk_frac = s.topk_frac;
  cfg.options.async_rounds = s.async;
  cfg.options.async_period = sim::from_seconds(s.period_s);
  return cfg;
}

void fnv1a_mix(std::uint64_t& h, const std::vector<double>& v) {
  for (const double d : v) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &d, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
  }
}

CellResult run_cell(const Workload& w, const CellSpec& s) {
  core::Deployment d(make_config(w, s));
  CellResult out;
  out.spec = s;
  out.fingerprint = 14695981039346656037ull;
  sim::TimeNs first_start = 0;
  double error_sq = 0;
  std::uint64_t raw = 0;
  std::uint64_t encoded = 0;
  auto tally = [&](const core::RoundMetrics& m, const std::vector<double>& update) {
    if (m.iter == 0) first_start = m.round_start;
    if (m.global_update_complete) ++out.complete_rounds;
    out.last_done = std::max(out.last_done, m.round_done);
    raw += m.codec.raw_bytes;
    encoded += m.codec.encoded_bytes;
    error_sq += m.codec.error_sq;
    fnv1a_mix(out.fingerprint, update);
  };
  if (s.async) {
    const core::RunSummary summary = d.run(w.rounds);
    for (std::size_t r = 0; r < summary.rounds.size(); ++r) {
      tally(summary.rounds[r], summary.updates[r]);
    }
    // Launch-to-last-model wall clock, averaged: the cadence plus the tail.
    out.round_seconds = sim::to_seconds(out.last_done - first_start) / w.rounds;
  } else {
    // The sync driver exposes the decoded aggregate per round instead of a
    // summary vector; collect it round by round. Its round_seconds is the
    // mean in-round latency (round_done - round_start), NOT the sequential
    // wall clock between rounds — the engine drains latent retry timers to
    // quiescence between sync rounds, and gating the speedup against that
    // drain would flatter async. This is the conservative baseline: async
    // must beat even the barrier'd protocol's pure round latency.
    double latency = 0;
    for (int r = 0; r < w.rounds; ++r) {
      const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
      tally(m, d.last_global_update());
      latency += sim::to_seconds(m.round_done - m.round_start);
    }
    out.round_seconds = latency / w.rounds;
  }
  out.compression = encoded > 0 ? static_cast<double>(raw) / static_cast<double>(encoded) : 1.0;
  out.error_norm = std::sqrt(error_sq);
  return out;
}

}  // namespace

int main() {
  Workload w;
  if (const char* v = std::getenv("DFL_ASYNC_SMOKE"); v != nullptr && std::strcmp(v, "0") != 0) {
    w.smoke = true;
    w.trainers = 4;
    w.partition_elements = 32768;  // 256 KiB partition
    w.rounds = 3;
  }
  // Async cadences are bandwidth-feasibility picks, not tuning: the dense
  // cell must launch no slower than one full gather drains the aggregator
  // downlink (~6.7 s for 8 MiB at 10 Mbps), and every cell is floored by
  // the dense global-update fan-out (~3.4 s). Compression shrinks the
  // upload/gather leg 8-16x, which is what makes the tight cadence feasible.
  const double dense_period = w.smoke ? 2.0 : 10.0;
  const double packed_period = w.smoke ? 1.0 : 4.0;
  const std::vector<CellSpec> specs = {
      {"sync_dense", false, core::Codec::kDense, 8, 0.1, 0.0},
      {"async_dense", true, core::Codec::kDense, 8, 0.1, dense_period},
      {"async_quant8", true, core::Codec::kQuant, 8, 0.1, packed_period},
      {"async_quant4", true, core::Codec::kQuant, 4, 0.1, packed_period},
      {"async_topk", true, core::Codec::kTopK, 8, 0.1, packed_period},
  };
  const std::size_t partition_bytes = (w.partition_elements + 1) * 8;

  bench::print_header("Ablation A15: barrier-free async rounds x compressed payloads");
  std::printf("  workload: %zu trainers, %zu partition(s) x %.0f KiB, %d rounds, 10 Mbps%s\n",
              w.trainers, w.partitions, static_cast<double>(partition_bytes) / 1024.0, w.rounds,
              w.smoke ? " (smoke)" : "");

  const bench::WallTimer timer;
  std::vector<CellResult> cells;
  std::printf("  %-14s %10s %10s %12s %12s %14s\n", "cell", "round_s", "period_s", "complete",
              "compress", "err_norm");
  for (const CellSpec& s : specs) {
    cells.push_back(run_cell(w, s));
    const CellResult& c = cells.back();
    std::printf("  %-14s %10.2f %10.2f %9d/%-2d %11.1fx %14.3g\n", s.name, c.round_seconds,
                s.period_s, c.complete_rounds, w.rounds, c.compression, c.error_norm);
  }

  auto find = [&](const char* name) -> const CellResult* {
    for (const CellResult& c : cells) {
      if (std::strcmp(c.spec.name, name) == 0) return &c;
    }
    return nullptr;
  };
  const CellResult* baseline = find("sync_dense");
  const CellResult* headline = find("async_quant8");
  const double speedup = headline != nullptr && headline->round_seconds > 0
                             ? baseline->round_seconds / headline->round_seconds
                             : 0;

  // Exact-arithmetic cross-check: with every fold fresh, the async integer
  // staleness weights cancel and async x dense reproduces the sync
  // aggregates bit-for-bit.
  const bool async_matches_sync = find("async_dense")->fingerprint == baseline->fingerprint;

  const CellResult rerun = run_cell(w, specs.front());
  const bool deterministic =
      rerun.fingerprint == baseline->fingerprint && rerun.last_done == baseline->last_done;
  const double wall_seconds = timer.seconds();

  std::printf("  headline (async_quant8): %.2fx over sync_dense | async_dense == sync_dense: "
              "%s | deterministic: %s\n",
              speedup, async_matches_sync ? "yes" : "NO", deterministic ? "yes" : "NO");
  bench::print_note("sync_dense runs the legacy barrier'd protocol in the same binary, so the");
  bench::print_note("comparison is apples-to-apples; async_dense pins the fold arithmetic");

  const char* env_path = std::getenv("DFL_BENCH_SIM_JSON");
  const std::string path =
      env_path != nullptr && *env_path != '\0' ? env_path : "BENCH_async.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "abl_async: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"bench\": \"abl_async\",\n"
               "  \"workload\": {\"trainers\": %zu, \"partitions\": %zu, "
               "\"partition_elements\": %zu, \"partition_bytes\": %zu, \"rounds\": %d, "
               "\"smoke\": %s},\n",
               w.trainers, w.partitions, w.partition_elements, partition_bytes, w.rounds,
               w.smoke ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"cell\": \"%s\", \"async\": %s, \"codec\": \"%s\", "
                 "\"period_s\": %.3f, \"round_seconds\": %.6f, \"complete_rounds\": %d, "
                 "\"compression\": %.3f, \"error_norm\": %.6g, \"fingerprint\": \"%016llx\"}%s\n",
                 c.spec.name, c.spec.async ? "true" : "false", core::codec_name(c.spec.codec),
                 c.spec.period_s, c.round_seconds, c.complete_rounds, c.compression,
                 c.error_norm, static_cast<unsigned long long>(c.fingerprint),
                 i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"headline_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"async_dense_matches_sync\": %s,\n", async_matches_sync ? "true" : "false");
  std::fprintf(f, "  \"sync_dense_deterministic\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(f, "  \"wall_seconds\": %.3f\n}\n", wall_seconds);
  std::fclose(f);
  std::printf("  # wrote %s\n", path.c_str());

  bool ok = true;
  for (const CellResult& c : cells) {
    if (c.complete_rounds != w.rounds) {
      std::fprintf(stderr, "abl_async: cell %s completed %d/%d rounds\n", c.spec.name,
                   c.complete_rounds, w.rounds);
      ok = false;
    }
  }
  if (!async_matches_sync) {
    std::fprintf(stderr, "abl_async: async_dense diverged from sync_dense aggregates\n");
    ok = false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "abl_async: sync_dense not deterministic across reruns\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
