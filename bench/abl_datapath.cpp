// Ablation A9: the zero-copy data plane. Runs the same fixed-seed FL
// workload twice — once with sim::DataPathMode::kDeepCopy (faithful
// emulation of the legacy copy-per-hop / hash-per-op plane) and once with
// the zero-copy plane — and reports:
//   * host-side memcpy'd payload bytes in each mode (the headline: the
//     zero-copy plane must cut them by >= 5x on the 4 MB-model workload),
//   * hash work (blocks hashed vs CID cache hits),
//   * wall-clock per mode and the resulting simulator events/sec,
//   * proof that *simulated* results are bit-identical across modes.
// Results land in BENCH_sim.json ($DFL_BENCH_SIM_JSON overrides the path).
//
//   abl_datapath            # full workload: 50 trainers, 5 rounds, 4 MB model
//   DFL_DATAPATH_SMOKE=1 abl_datapath   # CI-sized: 8 trainers, 2 rounds
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "sim/datapath.hpp"

namespace {

using namespace dfl;

struct Workload {
  std::size_t trainers = 50;
  std::size_t partitions = 2;
  std::size_t partition_elements = 262144;  // 2 x 262144 x 8 B ~= 4 MB model
  int rounds = 5;
  bool smoke = false;
};

struct ModeResult {
  sim::DataPathStats stats;
  double wall_seconds = 0;
  std::uint64_t sim_events = 0;
  // Simulated fingerprint: per-round completion time and cumulative wire
  // bytes — these must not depend on the host-side data plane.
  std::vector<sim::TimeNs> round_done;
  std::vector<std::uint64_t> wire_bytes;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(sim_events) / wall_seconds;
  }
};

core::DeploymentConfig make_config(const Workload& w) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = w.trainers;
  cfg.num_partitions = w.partitions;
  cfg.partition_elements = w.partition_elements;
  cfg.aggs_per_partition = 2;
  cfg.num_ipfs_nodes = 8;
  cfg.providers_per_agg = 2;
  cfg.options.gradient_replicas = 2;  // replica puts share one buffer
  cfg.train_time = sim::from_millis(500);
  cfg.seed = 42;
  return cfg;
}

ModeResult run_mode(sim::DataPathMode mode, const Workload& w) {
  sim::set_datapath_mode(mode);
  sim::reset_datapath_stats();
  const sim::DataPathStats before = sim::datapath_stats();

  core::Deployment d(make_config(w));
  ModeResult out;
  const bench::WallTimer timer;
  for (int r = 0; r < w.rounds; ++r) {
    const core::RoundMetrics m = d.run_round(static_cast<std::uint32_t>(r));
    out.sim_events += m.datapath.sim_events;
    out.round_done.push_back(m.round_done);
    out.wire_bytes.push_back(d.context().net.total_bytes_transferred());
  }
  out.wall_seconds = timer.seconds();
  out.stats = sim::datapath_stats().since(before);
  sim::set_datapath_mode(sim::DataPathMode::kZeroCopy);
  return out;
}

const char* mode_json(const char* name, const ModeResult& r, std::string& buf) {
  char line[1024];
  std::snprintf(line, sizeof(line),
                "  \"%s\": {\"bytes_copied\": %llu, \"bytes_shared\": %llu, "
                "\"blocks_hashed\": %llu, \"bytes_hashed\": %llu, \"cid_cache_hits\": %llu, "
                "\"blocks_created\": %llu, \"peak_resident_block_bytes\": %llu, "
                "\"wall_seconds\": %.6f, \"sim_events\": %llu, \"events_per_sec\": %.1f}",
                name, static_cast<unsigned long long>(r.stats.bytes_copied),
                static_cast<unsigned long long>(r.stats.bytes_shared),
                static_cast<unsigned long long>(r.stats.blocks_hashed),
                static_cast<unsigned long long>(r.stats.bytes_hashed),
                static_cast<unsigned long long>(r.stats.cid_cache_hits),
                static_cast<unsigned long long>(r.stats.blocks_created),
                static_cast<unsigned long long>(r.stats.peak_resident_block_bytes),
                r.wall_seconds, static_cast<unsigned long long>(r.sim_events),
                r.events_per_sec());
  buf = line;
  return buf.c_str();
}

}  // namespace

int main() {
  Workload w;
  if (const char* v = std::getenv("DFL_DATAPATH_SMOKE");
      v != nullptr && std::strcmp(v, "0") != 0) {
    w = Workload{8, 2, 8192, 2, true};
  }
  const std::size_t model_bytes = w.partitions * (w.partition_elements + 1) * 8;

  bench::print_header("Ablation A9: zero-copy data plane vs legacy deep-copy plane");
  std::printf("  workload: %zu trainers, %zu partitions, %.1f MB model, %d rounds%s\n",
              w.trainers, w.partitions, static_cast<double>(model_bytes) / 1e6, w.rounds,
              w.smoke ? " (smoke)" : "");

  const ModeResult deep = run_mode(sim::DataPathMode::kDeepCopy, w);
  const ModeResult zero = run_mode(sim::DataPathMode::kZeroCopy, w);

  const bool sim_identical =
      deep.round_done == zero.round_done && deep.wire_bytes == zero.wire_bytes;
  const double copy_reduction =
      static_cast<double>(deep.stats.bytes_copied) /
      static_cast<double>(zero.stats.bytes_copied == 0 ? 1 : zero.stats.bytes_copied);
  const double wall_speedup = zero.wall_seconds <= 0
                                  ? 0
                                  : deep.wall_seconds / zero.wall_seconds;

  std::printf("  %-28s %15s %15s\n", "", "deep_copy", "zero_copy");
  std::printf("  %-28s %15.1f %15.1f\n", "payload MB memcpy'd",
              static_cast<double>(deep.stats.bytes_copied) / 1e6,
              static_cast<double>(zero.stats.bytes_copied) / 1e6);
  std::printf("  %-28s %15llu %15llu\n", "blocks hashed",
              static_cast<unsigned long long>(deep.stats.blocks_hashed),
              static_cast<unsigned long long>(zero.stats.blocks_hashed));
  std::printf("  %-28s %15llu %15llu\n", "CID cache hits",
              static_cast<unsigned long long>(deep.stats.cid_cache_hits),
              static_cast<unsigned long long>(zero.stats.cid_cache_hits));
  std::printf("  %-28s %15.1f %15.1f\n", "peak resident block MB",
              static_cast<double>(deep.stats.peak_resident_block_bytes) / 1e6,
              static_cast<double>(zero.stats.peak_resident_block_bytes) / 1e6);
  std::printf("  %-28s %15.3f %15.3f\n", "wall seconds", deep.wall_seconds,
              zero.wall_seconds);
  std::printf("  %-28s %15.0f %15.0f\n", "events/sec", deep.events_per_sec(),
              zero.events_per_sec());
  std::printf("  copy reduction: %.1fx | wall speedup: %.2fx | sim results identical: %s\n",
              copy_reduction, wall_speedup, sim_identical ? "yes" : "NO");
  bench::print_note("deep_copy emulates the pre-zero-copy plane in the same binary, so the");
  bench::print_note("comparison is apples-to-apples and the bit-identity check is exact");

  const char* env_path = std::getenv("DFL_BENCH_SIM_JSON");
  const std::string path =
      env_path != nullptr && *env_path != '\0' ? env_path : "BENCH_sim.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "abl_datapath: cannot write %s\n", path.c_str());
    return 1;
  }
  std::string deep_buf;
  std::string zero_buf;
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"bench\": \"abl_datapath\",\n"
               "  \"workload\": {\"trainers\": %zu, \"partitions\": %zu, "
               "\"partition_elements\": %zu, \"model_bytes\": %zu, \"rounds\": %d, "
               "\"smoke\": %s},\n",
               w.trainers, w.partitions, w.partition_elements, model_bytes, w.rounds,
               w.smoke ? "true" : "false");
  std::fprintf(f, "%s,\n", mode_json("baseline", deep, deep_buf));
  std::fprintf(f, "%s,\n", mode_json("zero_copy", zero, zero_buf));
  std::fprintf(f, "  \"copy_reduction_factor\": %.2f,\n", copy_reduction);
  std::fprintf(f, "  \"wall_speedup\": %.3f,\n", wall_speedup);
  std::fprintf(f, "  \"sim_time_identical\": %s,\n", sim_identical ? "true" : "false");
  std::fprintf(f, "  \"sim_round_done_ns\": [");
  for (std::size_t i = 0; i < zero.round_done.size(); ++i) {
    std::fprintf(f, "%s%lld", i == 0 ? "" : ", ",
                 static_cast<long long>(zero.round_done[i]));
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("  # wrote %s\n", path.c_str());

  if (!sim_identical) {
    std::fprintf(stderr, "abl_datapath: simulated results diverged between modes\n");
    return 1;
  }
  return 0;
}
