// Ablation A1: validate the Section III-E provider-count analysis.
// The paper derives tau = S*(T/(d*P) + P/b), minimized at P = sqrt(b*T/d).
// With equal node and aggregator bandwidth (b = d) the optimum is sqrt(T).
// We sweep T and P, report the measured optimum and the analytical one.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

double run_delay(std::size_t trainers, std::size_t providers) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = trainers;
  cfg.num_partitions = 1;
  cfg.partition_elements = 81'250;  // 0.65 MB — half the Fig.1 size, faster sweep
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = providers;
  cfg.providers_per_agg = providers;
  cfg.options.merge_and_download = true;
  cfg.train_time = sim::from_seconds(1);
  core::Deployment d(cfg);
  return d.run_round(0).mean_aggregation_delay_s();
}

}  // namespace

int main() {
  bench::print_header("Ablation A1: sqrt(T) provider rule (Section III-E)");
  for (const std::size_t trainers : {4u, 16u, 64u}) {
    std::printf("T = %zu trainers\n", static_cast<std::size_t>(trainers));
    std::printf("  %-10s %20s %22s\n", "providers", "agg_delay_s", "model tau = S(T/dP+P/b)");
    double best_delay = 1e18;
    std::size_t best_p = 0;
    const double size_mbit = 0.65 * 8;
    for (std::size_t p = 1; p <= trainers; p *= 2) {
      const double delay = run_delay(trainers, p);
      const double tau = size_mbit * (static_cast<double>(trainers) / (10.0 * static_cast<double>(p)) +
                                      static_cast<double>(p) / 10.0);
      std::printf("  %-10zu %20.2f %22.2f\n", p, delay, tau);
      if (delay < best_delay) {
        best_delay = delay;
        best_p = p;
      }
    }
    std::printf("  measured optimum: P = %zu ; analytical sqrt(T) = %.1f\n\n", best_p,
                std::sqrt(static_cast<double>(trainers)));
  }
  return 0;
}
