// Figure 3: wall-clock time to compute the SHA-256 hash and the Pedersen
// commitment (secp256k1 and secp256r1) of a trainer's gradients, vs the
// number of model parameters (log-log in the paper).
//
// The naive columns use the per-element exponentiation the paper's
// implementation used ("rather straight-forward", Section V). The pippenger,
// simd and engine columns show the optimization stages this codebase adds:
// bucketed MSM, the batched-affine SIMD engine (AVX2/IFMA batched-limb
// field arithmetic; the speedup column is pippenger/simd), then the crypto
// engine (thread pool + fixed-base tables). Commit and verify are timed
// separately and everything is emitted to BENCH_crypto.json
// (op, size, backend, threads, ns_per_op, isa, cpu, digest).
//
// Default sweep goes to 1M parameters; set DFL_BENCH_FULL=1 to extend to
// 10M (the paper's MobileNet/GoogleNet scale — several minutes). DFL_THREADS
// caps the engine's concurrency.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/encoding.hpp"
#include "crypto/engine.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace dfl;
using crypto::Curve;

std::vector<std::int64_t> gradient_values(std::size_t n) {
  Rng rng(7);
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(crypto::encode_fixed(rng.uniform_real(-1.0, 1.0)));
  }
  return v;
}

double time_sha256(const std::vector<std::int64_t>& values) {
  // Hash the serialized gradient bytes, as IPFS content addressing does.
  Bytes bytes(values.size() * 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto u = static_cast<std::uint64_t>(values[i]);
    for (int k = 0; k < 8; ++k) bytes[i * 8 + static_cast<std::size_t>(k)] =
        static_cast<std::uint8_t>(u >> (8 * k));
  }
  const bench::WallTimer t;
  const auto digest = crypto::Sha256::hash(bytes);
  (void)digest;
  return t.seconds();
}

}  // namespace

int main() {
  bench::print_header("Figure 3: SHA-256 vs Pedersen commitment time by model size");

  std::vector<std::size_t> sizes{1'000, 10'000, 100'000, 1'000'000};
  if (bench::smoke_requested()) {
    // CI gate configuration: just the sizes the crypto checker needs.
    sizes = {1'000, 10'000};
    bench::print_note("DFL_BENCH_SMOKE=1: trimmed sweep for the CI crypto gate");
  } else if (bench::full_sweep_requested()) {
    sizes.push_back(5'000'000);
    sizes.push_back(10'000'000);
  } else {
    bench::print_note("set DFL_BENCH_FULL=1 for the paper's 5M/10M parameter points");
  }
  const std::size_t max_n = sizes.back();

  // Commitment keys are derived once at the largest size; smaller sizes use
  // a prefix of the same generators (index-consistent derivation).
  bench::print_note("deriving commitment keys (one-time setup, parallel hash-to-curve)...");
  bench::WallTimer setup;
  // key_k1 starts in kAuto so the engine's fixed-base table build below sees
  // the fixed-base path enabled; the loop switches modes per column.
  crypto::PedersenKey key_k1(Curve::secp256k1(), "fig3", max_n, crypto::MsmMode::kAuto);
  const crypto::PedersenKey key_r1(Curve::secp256r1(), "fig3", max_n,
                                   crypto::MsmMode::kNaive);
  std::printf("  key setup: %.1f s for 2 x %zu generators\n", setup.seconds(), max_n);

  // The engine shares key_k1's generators: commits switch backend by mode /
  // fixed-base flag, so naive vs pippenger vs engine is measured on the
  // exact same key material.
  crypto::Engine engine(key_k1,
                        crypto::EngineConfig{.threads = 0, .fixed_base_window = 1});
  bench::WallTimer table_timer;
  (void)engine.commit({1});  // force the lazy fixed-base table build
  const crypto::FixedBaseTables* tables = key_k1.fixed_base_tables();
  std::printf("  engine: %zu threads; fixed-base tables built in %.1f s (%.1f MB)\n",
              engine.threads(), table_timer.seconds(),
              tables != nullptr ? static_cast<double>(tables->memory_bytes()) / 1e6 : 0.0);

  // Warm the SIMD engine's cached vector-layout generators too, so the simd
  // column times steady-state commits rather than the one-time layout
  // conversion (same treatment the fixed-base tables get above).
  {
    ThreadPool* pool = key_k1.pool();
    key_k1.set_pool(nullptr);
    key_k1.set_mode(crypto::MsmMode::kAuto);
    bench::WallTimer warm;
    (void)key_k1.commit(std::vector<std::int64_t>(64, 1));
    std::printf("  simd: vector-layout bases cached in %.1f s (isa=%s)\n", warm.seconds(),
                crypto::active_isa());
    key_k1.set_pool(pool);
  }

  std::vector<bench::BenchRecord> records;
  const std::string cpu = dfl::cpu_feature_string();
  auto record = [&](const char* op, std::size_t n, const char* backend, std::size_t threads,
                    double seconds, const std::string& isa = "scalar",
                    const std::string& digest = "") {
    records.push_back(
        bench::BenchRecord{op, n, backend, threads, seconds * 1e9, isa, cpu, digest});
  };

  // The optimized columns finish in milliseconds at the gated sizes, where
  // scheduler noise can dominate a single run; report the best of a few
  // repetitions (the commitment is identical every time). The naive columns
  // cost seconds-to-minutes and stay single-shot.
  auto best_of = [](int reps, auto&& commit_fn) {
    double best_s = 0.0;
    crypto::Commitment c;
    for (int r = 0; r < reps; ++r) {
      const bench::WallTimer t;
      c = commit_fn();
      const double s = t.seconds();
      if (r == 0 || s < best_s) best_s = s;
    }
    return std::pair<double, crypto::Commitment>(best_s, c);
  };

  std::printf("%-10s %10s | %12s %12s %12s %12s %8s | %12s %12s | %12s\n", "params",
              "sha256_s", "naive_k1_s", "pippen_k1_s", "simd_k1_s", "engine_k1_s", "speedup",
              "pippen_vfy_s", "engine_vfy_s", "naive_r1_s");
  for (const std::size_t n : sizes) {
    const auto values = gradient_values(n);
    const double sha_s = time_sha256(values);
    record("sha256", n, "sha256", 1, sha_s);

    key_k1.set_mode(crypto::MsmMode::kNaive);
    ThreadPool* pool = key_k1.pool();
    key_k1.set_pool(nullptr);  // naive and pippenger columns are single-thread
    bench::WallTimer tnaive;
    const crypto::Commitment c_naive = key_k1.commit(values);
    const double naive_s = tnaive.seconds();
    record("commit", n, "naive", 1, naive_s, "scalar", c_naive.to_hex());

    const int reps = n <= 1'000'000 ? 3 : 1;
    key_k1.set_mode(crypto::MsmMode::kPippenger);
    const auto [pip_s, c_pip] = best_of(reps, [&] { return key_k1.commit(values); });
    record("commit", n, "pippenger", 1, pip_s, "scalar", c_pip.to_hex());

    bench::WallTimer tpipv;
    const bool ok_pip = key_k1.verify(c_naive, values);
    const double pip_vfy_s = tpipv.seconds();
    record("verify", n, "pippenger", 1, pip_vfy_s);

    // simd column: single-threaded kAuto routes through the batched-affine
    // SIMD engine (cached vector-layout generators) on capable hosts; on
    // scalar-only hosts it degrades to Pippenger, and the recorded isa
    // says which one was measured. The digest lets the checker assert the
    // commitment is byte-identical to the scalar backends' rows.
    key_k1.set_mode(crypto::MsmMode::kAuto);
    const auto [simd_s, c_simd] = best_of(reps, [&] { return key_k1.commit(values); });
    record("commit", n, "simd", 1, simd_s, crypto::active_isa(), c_simd.to_hex());
    key_k1.set_pool(pool);
    const auto [eng_s, c_eng] = best_of(reps, [&] { return engine.commit(values); });
    record("commit", n, "engine", engine.threads(), eng_s, crypto::active_isa(),
           c_eng.to_hex());

    bench::WallTimer tengv;
    const bool ok_eng = engine.verify(c_naive, values);
    const double eng_vfy_s = tengv.seconds();
    record("verify", n, "engine", engine.threads(), eng_vfy_s, crypto::active_isa());

    if (c_naive != c_pip || c_naive != c_simd || c_naive != c_eng || !ok_pip || !ok_eng) {
      std::printf("  !! backend disagreement at n=%zu\n", n);
      return 1;
    }

    bench::WallTimer tr1;
    (void)key_r1.commit(values);
    const double r1_s = tr1.seconds();
    record("commit", n, "naive_r1", 1, r1_s);

    std::printf("%-10zu %10.4f | %12.3f %12.3f %12.3f %12.3f %7.1fx | %12.3f %12.3f | %12.3f\n",
                n, sha_s, naive_s, pip_s, simd_s, eng_s, pip_s / simd_s, pip_vfy_s, eng_vfy_s,
                r1_s);
  }

  bench::write_bench_json(records);
  bench::print_note("expected shape: all linear in size; naive Pedersen 2-4 orders of");
  bench::print_note("magnitude slower than SHA-256; engine = fixed-base tables + threads");
  return 0;
}
