// Figure 3: wall-clock time to compute the SHA-256 hash and the Pedersen
// commitment (secp256k1 and secp256r1) of a trainer's gradients, vs the
// number of model parameters (log-log in the paper).
//
// The Pedersen columns use the naive per-element exponentiation the paper's
// implementation used ("rather straight-forward", Section V); abl_msm
// benchmarks the Pippenger optimization the paper cites as future work.
//
// Default sweep goes to 1M parameters; set DFL_BENCH_FULL=1 to extend to
// 10M (the paper's MobileNet/GoogleNet scale — several minutes).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/encoding.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/pedersen.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace dfl;
using crypto::Curve;

std::vector<std::int64_t> gradient_values(std::size_t n) {
  Rng rng(7);
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(crypto::encode_fixed(rng.uniform_real(-1.0, 1.0)));
  }
  return v;
}

double time_sha256(const std::vector<std::int64_t>& values) {
  // Hash the serialized gradient bytes, as IPFS content addressing does.
  Bytes bytes(values.size() * 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto u = static_cast<std::uint64_t>(values[i]);
    for (int k = 0; k < 8; ++k) bytes[i * 8 + static_cast<std::size_t>(k)] =
        static_cast<std::uint8_t>(u >> (8 * k));
  }
  const bench::WallTimer t;
  const auto digest = crypto::Sha256::hash(bytes);
  (void)digest;
  return t.seconds();
}

}  // namespace

int main() {
  bench::print_header("Figure 3: SHA-256 vs Pedersen commitment time by model size");

  std::vector<std::size_t> sizes{1'000, 10'000, 100'000, 1'000'000};
  if (bench::full_sweep_requested()) {
    sizes.push_back(5'000'000);
    sizes.push_back(10'000'000);
  } else {
    bench::print_note("set DFL_BENCH_FULL=1 for the paper's 5M/10M parameter points");
  }
  const std::size_t max_n = sizes.back();

  // Commitment keys are derived once at the largest size; smaller sizes use
  // a prefix of the same generators (index-consistent derivation).
  bench::print_note("deriving commitment keys (one-time setup, parallel hash-to-curve)...");
  bench::WallTimer setup;
  const crypto::PedersenKey key_k1(Curve::secp256k1(), "fig3", max_n,
                                   crypto::MsmMode::kNaive);
  const crypto::PedersenKey key_r1(Curve::secp256r1(), "fig3", max_n,
                                   crypto::MsmMode::kNaive);
  std::printf("  key setup: %.1f s for 2 x %zu generators\n", setup.seconds(), max_n);

  std::printf("%-12s %14s %22s %22s\n", "params", "sha256_s", "pedersen_secp256k1_s",
              "pedersen_secp256r1_s");
  for (const std::size_t n : sizes) {
    const auto values = gradient_values(n);
    const double sha_s = time_sha256(values);

    bench::WallTimer tk1;
    (void)key_k1.commit(values);
    const double k1_s = tk1.seconds();

    bench::WallTimer tr1;
    (void)key_r1.commit(values);
    const double r1_s = tr1.seconds();

    std::printf("%-12zu %14.4f %22.3f %22.3f\n", n, sha_s, k1_s, r1_s);
  }

  bench::print_note("expected shape: all linear in size; Pedersen 2-4 orders of magnitude");
  bench::print_note("slower than SHA-256, quickly becoming the protocol bottleneck");
  return 0;
}
