// Ablation A10: the chunked Merkle-DAG transfer plane. Runs the same
// fixed-seed merge-and-download workload (4 trainers, one 1 MiB partition,
// Fig-1-style 10 Mbps symmetric links) over a grid of
//   chunk setting x providers-per-aggregator:
//     {64 KiB, 256 KiB, 1 MiB, monolithic} x P in {1, 2, 4}
// and reports the simulated first-round completion time of every cell.
// The contract the checker enforces:
//   * the headline cell — 256 KiB chunks, P = 2 — finishes the round
//     >= 1.5x faster than the monolithic plane at the same P,
//   * the aggregated global update is bit-identical across every chunk
//     setting (the plane changes *when* bytes move, never *what* they sum
//     to), per provider count,
//   * the headline cell is deterministic across a full re-run.
// Results land in BENCH_sim.json ($DFL_BENCH_SIM_JSON overrides the path).
//
//   abl_chunking            # full grid: 4 chunk settings x 3 provider counts
//   DFL_CHUNKING_SMOKE=1 abl_chunking   # CI-sized: {256 KiB, monolithic} x {1, 2}
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "ipfs/chunker.hpp"

namespace {

using namespace dfl;

struct Workload {
  std::size_t trainers = 4;
  std::size_t partitions = 1;
  std::size_t partition_elements = 131072;  // 1 MiB partition on the wire
  sim::TimeNs train_time = sim::from_millis(200);
  bool smoke = false;
};

/// One grid cell: a chunk setting at a provider count. chunk_size == 0
/// encodes the monolithic (whole-blob) plane.
struct Cell {
  std::size_t providers = 1;
  std::size_t chunk_size = 0;
  double round_seconds = 0;
  std::uint64_t fingerprint = 0;  // FNV-1a over the aggregated update
  sim::TimeNs round_done = 0;
};

core::DeploymentConfig make_config(const Workload& w, std::size_t providers,
                                   std::size_t chunk_size) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = w.trainers;
  cfg.num_partitions = w.partitions;
  cfg.partition_elements = w.partition_elements;
  cfg.aggs_per_partition = 1;
  cfg.num_ipfs_nodes = 4;
  cfg.providers_per_agg = providers;
  cfg.options.merge_and_download = true;
  cfg.options.update_replicas = providers;
  cfg.train_time = w.train_time;
  cfg.seed = 42;
  if (chunk_size != 0) {
    cfg.options.chunking = ipfs::ChunkingMode::kDag;
    cfg.options.chunk_size = chunk_size;
  }
  return cfg;
}

std::uint64_t fnv1a(const std::vector<double>& v) {
  std::uint64_t h = 14695981039346656037ull;
  for (const double d : v) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &d, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
  }
  return h;
}

Cell run_cell(const Workload& w, std::size_t providers, std::size_t chunk_size) {
  core::Deployment d(make_config(w, providers, chunk_size));
  const core::RoundMetrics m = d.run_round(0);
  Cell out;
  out.providers = providers;
  out.chunk_size = chunk_size;
  out.round_done = m.round_done;
  out.round_seconds = static_cast<double>(m.round_done - m.round_start) / 1e9;
  out.fingerprint = fnv1a(d.last_global_update());
  return out;
}

const char* cell_label(std::size_t chunk_size, char* buf, std::size_t n) {
  if (chunk_size == 0) {
    std::snprintf(buf, n, "monolithic");
  } else {
    std::snprintf(buf, n, "%zu KiB", chunk_size / 1024);
  }
  return buf;
}

}  // namespace

int main() {
  Workload w;
  std::vector<std::size_t> chunk_sizes = {64 * 1024, 256 * 1024, 1024 * 1024, 0};
  std::vector<std::size_t> provider_counts = {1, 2, 4};
  if (const char* v = std::getenv("DFL_CHUNKING_SMOKE");
      v != nullptr && std::strcmp(v, "0") != 0) {
    w.smoke = true;
    chunk_sizes = {256 * 1024, 0};
    provider_counts = {1, 2};
  }
  const std::size_t partition_bytes = (w.partition_elements + 1) * 8;

  bench::print_header("Ablation A10: chunked Merkle-DAG plane vs monolithic transfers");
  std::printf("  workload: %zu trainers, %zu partition(s) x %.0f KiB, merge-and-download%s\n",
              w.trainers, w.partitions, static_cast<double>(partition_bytes) / 1024.0,
              w.smoke ? " (smoke)" : "");

  const bench::WallTimer timer;
  std::vector<Cell> cells;
  std::printf("  %-12s", "round s");
  for (const std::size_t p : provider_counts) std::printf(" %9s=%zu", "P", p);
  std::printf("\n");
  for (const std::size_t cs : chunk_sizes) {
    char label[32];
    std::printf("  %-12s", cell_label(cs, label, sizeof(label)));
    for (const std::size_t p : provider_counts) {
      cells.push_back(run_cell(w, p, cs));
      std::printf(" %11.2f", cells.back().round_seconds);
    }
    std::printf("\n");
  }

  // Invariants: bit-identical aggregate across chunk settings (per provider
  // count), a deterministic headline cell, and the >= 1.5x headline speedup.
  auto find_cell = [&](std::size_t providers, std::size_t chunk_size) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.providers == providers && c.chunk_size == chunk_size) return &c;
    }
    return nullptr;
  };

  bool fingerprints_identical = true;
  for (const std::size_t p : provider_counts) {
    const std::uint64_t want = find_cell(p, chunk_sizes.front())->fingerprint;
    for (const std::size_t cs : chunk_sizes) {
      if (find_cell(p, cs)->fingerprint != want) fingerprints_identical = false;
    }
  }

  const Cell* headline = find_cell(2, 256 * 1024);
  const Cell* baseline = find_cell(2, 0);
  const double speedup =
      headline != nullptr && baseline != nullptr && headline->round_seconds > 0
          ? baseline->round_seconds / headline->round_seconds
          : 0;

  const Cell rerun = headline != nullptr ? run_cell(w, 2, 256 * 1024) : Cell{};
  const bool deterministic = headline != nullptr &&
                             rerun.round_done == headline->round_done &&
                             rerun.fingerprint == headline->fingerprint;
  const double wall_seconds = timer.seconds();

  std::printf("  headline (256 KiB, P=2): %.2fx over monolithic | aggregates identical: %s"
              " | deterministic: %s\n",
              speedup, fingerprints_identical ? "yes" : "NO", deterministic ? "yes" : "NO");
  bench::print_note("monolithic runs the legacy whole-blob plane in the same binary, so the");
  bench::print_note("comparison is apples-to-apples and the bit-identity check is exact");

  const char* env_path = std::getenv("DFL_BENCH_SIM_JSON");
  const std::string path =
      env_path != nullptr && *env_path != '\0' ? env_path : "BENCH_sim.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "abl_chunking: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"bench\": \"abl_chunking\",\n"
               "  \"workload\": {\"trainers\": %zu, \"partitions\": %zu, "
               "\"partition_elements\": %zu, \"partition_bytes\": %zu, "
               "\"train_time_ms\": %lld, \"smoke\": %s},\n",
               w.trainers, w.partitions, w.partition_elements, partition_bytes,
               static_cast<long long>(w.train_time / 1000000), w.smoke ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"providers\": %zu, \"chunk_bytes\": %zu, \"round_seconds\": %.6f, "
                 "\"round_done_ns\": %lld, \"fingerprint\": \"%016llx\"}%s\n",
                 c.providers, c.chunk_size, c.round_seconds,
                 static_cast<long long>(c.round_done),
                 static_cast<unsigned long long>(c.fingerprint),
                 i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_256k_p2\": %.3f,\n", speedup);
  std::fprintf(f, "  \"fingerprints_identical\": %s,\n",
               fingerprints_identical ? "true" : "false");
  std::fprintf(f, "  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(f, "  \"wall_seconds\": %.3f\n}\n", wall_seconds);
  std::fclose(f);
  std::printf("  # wrote %s\n", path.c_str());

  if (!fingerprints_identical) {
    std::fprintf(stderr, "abl_chunking: aggregates diverged across chunk settings\n");
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "abl_chunking: headline cell not deterministic across reruns\n");
    return 1;
  }
  return 0;
}
