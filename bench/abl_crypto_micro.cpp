// Ablation A5: crypto micro-operations, via google-benchmark.
// Grounds the Figure 3 macro numbers in per-operation costs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/curve.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace dfl::crypto;

const Curve& curve_of(int64_t idx) {
  return idx == 0 ? Curve::secp256k1() : Curve::secp256r1();
}

U256 random_scalar(dfl::Rng& rng, const Curve& c) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < c.order()) return v;
  }
}

void BM_FieldMul(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(1);
  Fe a = c.fp().to_mont(random_scalar(rng, c));
  const Fe b = c.fp().to_mont(random_scalar(rng, c));
  for (auto _ : state) {
    a = c.fp().mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul)->Arg(0)->Arg(1);

void BM_FieldInv(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(2);
  const Fe a = c.fp().to_mont(random_scalar(rng, c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.fp().inv(a));
  }
}
BENCHMARK(BM_FieldInv)->Arg(0)->Arg(1);

void BM_PointDouble(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  JacobianPoint p = c.to_jacobian(c.generator());
  for (auto _ : state) {
    p = c.dbl(p);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PointDouble)->Arg(0)->Arg(1);

void BM_PointAddMixed(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  JacobianPoint p = c.dbl(c.to_jacobian(c.generator()));
  const AffinePoint g = c.generator();
  for (auto _ : state) {
    p = c.add_mixed(p, g);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PointAddMixed)->Arg(0)->Arg(1);

void BM_ScalarMul256(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(3);
  const U256 k = random_scalar(rng, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.scalar_mul(c.generator(), k));
  }
}
BENCHMARK(BM_ScalarMul256)->Arg(0)->Arg(1);

void BM_ScalarMulGradientSized(benchmark::State& state) {
  // 17-bit scalars — the per-element cost behind naive commitments.
  const Curve& c = curve_of(state.range(0));
  const U256 k(0x1ffff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.scalar_mul(c.generator(), k));
  }
}
BENCHMARK(BM_ScalarMulGradientSized)->Arg(0)->Arg(1);

void BM_HashToCurve(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_to_curve(c, "bench", i++));
  }
}
BENCHMARK(BM_HashToCurve)->Arg(0)->Arg(1);

void BM_Sha256PerMB(benchmark::State& state) {
  dfl::Bytes data(1 << 20);
  dfl::Rng rng(4);
  rng.fill_bytes(data.data(), data.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Sha256PerMB);

}  // namespace

BENCHMARK_MAIN();
