// Ablation A5: crypto micro-operations, via google-benchmark.
// Grounds the Figure 3 macro numbers in per-operation costs. Every run is
// also captured into BENCH_crypto.json (op, size, backend, threads,
// ns_per_op) for machine consumption.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "crypto/curve.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/msm.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace dfl::crypto;

const Curve& curve_of(int64_t idx) {
  return idx == 0 ? Curve::secp256k1() : Curve::secp256r1();
}

U256 random_scalar(dfl::Rng& rng, const Curve& c) {
  for (;;) {
    U256 v{rng.next(), rng.next(), rng.next(), rng.next()};
    if (v < c.order()) return v;
  }
}

void BM_FieldMul(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(1);
  Fe a = c.fp().to_mont(random_scalar(rng, c));
  const Fe b = c.fp().to_mont(random_scalar(rng, c));
  for (auto _ : state) {
    a = c.fp().mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul)->Arg(0)->Arg(1);

void BM_FieldInv(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(2);
  const Fe a = c.fp().to_mont(random_scalar(rng, c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.fp().inv(a));
  }
}
BENCHMARK(BM_FieldInv)->Arg(0)->Arg(1);

void BM_PointDouble(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  JacobianPoint p = c.to_jacobian(c.generator());
  for (auto _ : state) {
    p = c.dbl(p);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PointDouble)->Arg(0)->Arg(1);

void BM_PointAddMixed(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  JacobianPoint p = c.dbl(c.to_jacobian(c.generator()));
  const AffinePoint g = c.generator();
  for (auto _ : state) {
    p = c.add_mixed(p, g);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PointAddMixed)->Arg(0)->Arg(1);

void BM_ScalarMul256(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  dfl::Rng rng(3);
  const U256 k = random_scalar(rng, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.scalar_mul(c.generator(), k));
  }
}
BENCHMARK(BM_ScalarMul256)->Arg(0)->Arg(1);

void BM_ScalarMulGradientSized(benchmark::State& state) {
  // 17-bit scalars — the per-element cost behind naive commitments.
  const Curve& c = curve_of(state.range(0));
  const U256 k(0x1ffff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.scalar_mul(c.generator(), k));
  }
}
BENCHMARK(BM_ScalarMulGradientSized)->Arg(0)->Arg(1);

void BM_HashToCurve(benchmark::State& state) {
  const Curve& c = curve_of(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_to_curve(c, "bench", i++));
  }
}
BENCHMARK(BM_HashToCurve)->Arg(0)->Arg(1);

void BM_Sha256PerMB(benchmark::State& state) {
  dfl::Bytes data(1 << 20);
  dfl::Rng rng(4);
  rng.fill_bytes(data.data(), data.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Sha256PerMB);

/// Shared MSM fixture: n generators, 20-bit gradient-sized scalars.
struct MsmInput {
  std::vector<AffinePoint> points;
  std::vector<U256> scalars;
};

const MsmInput& msm_input(std::size_t n) {
  static std::map<std::size_t, MsmInput> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    MsmInput in;
    in.points = derive_generators(Curve::secp256k1(), "micro-msm", n);
    dfl::Rng rng(5);
    for (std::size_t i = 0; i < n; ++i) in.scalars.push_back(U256(rng.next() & 0xfffff));
    it = cache.emplace(n, std::move(in)).first;
  }
  return it->second;
}

void BM_MsmPippenger(benchmark::State& state) {
  const Curve& c = Curve::secp256k1();
  const MsmInput& in = msm_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(msm_pippenger(c, in.points, in.scalars));
  }
}
BENCHMARK(BM_MsmPippenger)->Arg(1024)->Arg(8192);

void BM_MsmParallel(benchmark::State& state) {
  const Curve& c = Curve::secp256k1();
  const MsmInput& in = msm_input(static_cast<std::size_t>(state.range(0)));
  dfl::ThreadPool& pool = dfl::ThreadPool::shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msm_parallel(c, in.points, in.scalars, pool));
  }
}
BENCHMARK(BM_MsmParallel)->Arg(8192);

void BM_MsmFixedBase(benchmark::State& state) {
  const Curve& c = Curve::secp256k1();
  const auto n = static_cast<std::size_t>(state.range(0));
  const MsmInput& in = msm_input(n);
  const int w = pick_fixed_base_window(n, 20);
  const FixedBaseTables tables = FixedBaseTables::build(c, in.points, w, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msm_fixed_base(c, tables, in.scalars));
  }
}
BENCHMARK(BM_MsmFixedBase)->Arg(1024)->Arg(8192);

void BM_PoolParallelForOverhead(benchmark::State& state) {
  // Fork/join cost of an (empty) parallel_for — the floor under which
  // parallelizing an MSM cannot pay off.
  dfl::ThreadPool& pool = dfl::ThreadPool::shared();
  for (auto _ : state) {
    pool.parallel_for(0, pool.concurrency(), [](std::size_t, std::size_t) {}, 1);
  }
}
BENCHMARK(BM_PoolParallelForOverhead);

/// Console output as usual, plus a BENCH_crypto.json row per run.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      dfl::bench::BenchRecord rec;
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      rec.op = name.substr(0, slash);
      rec.size = 0;
      rec.backend = "micro";
      if (slash != std::string::npos) {
        rec.size = static_cast<std::size_t>(
            std::strtoull(name.substr(slash + 1).c_str(), nullptr, 10));
      }
      rec.threads = run.threads > 0 ? static_cast<std::size_t>(run.threads) : std::size_t{1};
      rec.ns_per_op = run.GetAdjustedRealTime();  // default unit: ns/iteration
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<dfl::bench::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<dfl::bench::BenchRecord> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  dfl::bench::write_bench_json(reporter.records());
  return 0;
}
