// Ablation A6: provider-allocation policy and storage economics.
// Section VI asks for a uniform allocation of gradients to storage nodes
// (to reduce hot-spotting and the value of colluding with any one node).
// We compare round-robin vs hashed allocation on (a) per-node traffic
// balance and (b) credit-ledger earnings imbalance, under a skewed
// trainer population (trainer ids clustered, which round-robin maps to
// clustered nodes).
#include <cstdio>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "ipfs/economics.hpp"

namespace {

using namespace dfl;

void run_policy(const char* label, core::ProviderPolicy policy) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 24;
  cfg.num_partitions = 2;
  cfg.partition_elements = 8192;
  cfg.num_ipfs_nodes = 6;
  cfg.providers_per_agg = 6;
  cfg.options.provider_policy = policy;
  cfg.options.merge_and_download = true;
  cfg.train_time = sim::from_millis(500);
  core::Deployment d(cfg);
  ipfs::CreditLedger ledger(d.swarm());
  const core::RoundMetrics m = d.run_round(0);

  std::printf("%s\n", label);
  std::printf("  per-node bytes ingested: ");
  for (const auto& e : ledger.settle()) {
    std::printf("%6.2fMB ", static_cast<double>(e.bytes_ingested) / 1e6);
  }
  std::printf("\n  earnings imbalance (Gini): %.3f | aggregation delay: %.2f s\n",
              ledger.earnings_imbalance(), m.mean_aggregation_delay_s());
}

}  // namespace

int main() {
  bench::print_header("Ablation A6: provider allocation policy & storage economics");
  bench::print_note("24 trainers, 6 storage nodes, merge-and-download");
  run_policy("round-robin (trainer % |P_ij|):", core::ProviderPolicy::kRoundRobin);
  run_policy("hashed (splitmix64 spread):", core::ProviderPolicy::kHashed);
  bench::print_note("hashed allocation trades a slightly rougher balance in any one round");
  bench::print_note("for unpredictability across rounds/partitions (the anti-collusion");
  bench::print_note("property Section VI asks for)");
  return 0;
}
