// Ablation: fixed-base window size w vs commit speedup over Pippenger.
//
// For a fixed commitment dimension n, sweeps the per-generator window width
// and reports table build time, table memory, commit time, and the speedup
// against the single-thread Pippenger baseline on the same generators and
// scalars. This grounds the cost model behind pick_fixed_base_window():
// lookups shrink as ceil(covered/w) while bucket count grows as 2^(w+1).
//
// Default n is 32768; DFL_BENCH_FULL=1 raises it to 100000 (the acceptance
// scale). Records go to BENCH_crypto.json with backend "fixed_base_w<w>".
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/curve.hpp"
#include "crypto/encoding.hpp"
#include "crypto/hash_to_curve.hpp"
#include "crypto/msm.hpp"

namespace {

using namespace dfl;
using namespace dfl::crypto;

constexpr int kCoveredBits = 34;  // matches PedersenKey::configure_fixed_base

}  // namespace

int main() {
  bench::print_header("Ablation: fixed-base window width vs commit speedup");

  const std::size_t n = bench::full_sweep_requested() ? 100'000 : 32'768;
  if (!bench::full_sweep_requested()) {
    bench::print_note("set DFL_BENCH_FULL=1 for the 100k acceptance scale");
  }

  const Curve& curve = Curve::secp256k1();
  bench::print_note("deriving generators...");
  const std::vector<AffinePoint> bases = derive_generators(curve, "abl-fb", n);

  // Gradient-shaped scalars: fixed-point encodings of values in [-1, 1],
  // signs folded into a negate mask exactly as PedersenKey does.
  Rng rng(11);
  std::vector<U256> scalars;
  std::vector<std::uint8_t> negate(n, 0);
  scalars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v = encode_fixed(rng.uniform_real(-1.0, 1.0));
    if (v < 0) {
      negate[i] = 1;
      scalars.push_back(U256(static_cast<std::uint64_t>(-v)));
    } else {
      scalars.push_back(U256(static_cast<std::uint64_t>(v)));
    }
  }

  // Single-thread Pippenger baseline: fold signs into copied bases.
  std::vector<AffinePoint> signed_bases = bases;
  const FieldCtx& fp = curve.fp();
  for (std::size_t i = 0; i < n; ++i) {
    if (negate[i] != 0) signed_bases[i].y = fp.neg(signed_bases[i].y);
  }
  bench::WallTimer tpip;
  const JacobianPoint ref = msm_pippenger(curve, signed_bases, scalars);
  const double pip_s = tpip.seconds();

  std::vector<bench::BenchRecord> records;
  records.push_back(bench::BenchRecord{"commit", n, "pippenger", 1, pip_s * 1e9, {}, {}, {}});

  const int recommended = pick_fixed_base_window(n, kCoveredBits);
  std::printf("n=%zu  pippenger baseline: %.3f s  (recommended w=%d)\n", n, pip_s, recommended);
  std::printf("%4s %12s %12s %12s %9s\n", "w", "build_s", "table_MB", "commit_s", "speedup");

  for (const int w : {4, 6, 8, 10, 12, 14, 16}) {
    bench::WallTimer tbuild;
    const FixedBaseTables tables = FixedBaseTables::build(curve, bases, w, kCoveredBits);
    const double build_s = tbuild.seconds();

    bench::WallTimer tcommit;
    const JacobianPoint got = msm_fixed_base(curve, tables, scalars, &negate);
    const double commit_s = tcommit.seconds();

    if (!curve.eq(got, ref)) {
      std::printf("  !! w=%d disagrees with Pippenger baseline\n", w);
      return 1;
    }

    const double mb = static_cast<double>(tables.memory_bytes()) / 1e6;
    std::printf("%4d %12.3f %12.1f %12.3f %8.2fx%s\n", w, build_s, mb, commit_s,
                pip_s / commit_s, w == recommended ? "  <- pick" : "");

    const std::string backend = "fixed_base_w" + std::to_string(w);
    records.push_back(bench::BenchRecord{"commit", n, backend, 1, commit_s * 1e9, {}, {}, {}});
    records.push_back(
        bench::BenchRecord{"table_build", n, backend, 1, build_s * 1e9, {}, {}, {}});
  }

  bench::write_bench_json(records);
  bench::print_note("expected shape: commit time falls with w until table build/cache");
  bench::print_note("pressure dominates; pick_fixed_base_window sits near the knee");
  return 0;
}
