// Ablation A13: the sharded event engine's scaling curve. Replicates the
// A9 transfer-plane shape (groups of 50 trainers + 2 aggregators, each
// trainer uploading a 4 MB model as 16 x 256 KiB chunks to its group
// aggregator plus one gradient-replica aggregator half the ring away) at
// N = 10^2..10^5 hosts and runs every N on the ShardedSimulator at
// K in {1, 2, 4, 8}. K = 1 is literally today's serial engine
// (ShardedSimulator::run delegates), so each row is a serial-vs-sharded
// A/B; per cell the bench asserts the order-independent aggregate hash and
// sim_round_done_ns match the K = 1 cell bit-for-bit before reporting
// events/sec. Results land in BENCH_scale.json ($DFL_BENCH_SCALE_JSON
// overrides the path).
//
//   abl_scale                 # full curve: N in {104, 1040, 10400, 104000}
//   DFL_SCALE_SMOKE=1 abl_scale   # CI-sized: N in {104, 1040}, K in {1, 2, 8}
//
// The workload's equal-timestamp effects are commutative by construction
// (sum/max folds), which is the documented contract for cross-K
// bit-identity; every event timestamp is a pure function of
// (trainer, chunk), never of execution order.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/pool.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dfl;
using sim::TimeNs;

// A9 shape constants: 50 trainers + 2 aggregators per group, 4 MB model
// shipped as 256 KiB chunks.
constexpr std::size_t kGroup = 52;
constexpr std::size_t kAggsPerGroup = 2;
constexpr std::uint32_t kChunks = 16;
constexpr double kChunkBits = 256.0 * 1024.0 * 8.0;
constexpr TimeNs kMergeNs = sim::from_millis(25);  // aggregator merge cost

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Deterministic per-host link draws (the scenario layer does this with
// Rng; the bench inlines a fixed assignment so parameters are a pure
// function of the host id).
// Edge/home access band (4..40 Mbps), the regime the paper's FL clients
// live in: a 256 KiB chunk serializes for 52..524 ms.
double up_mbps(std::uint32_t h) { return 4.0 + static_cast<double>(mix(h * 2 + 1) % 37); }
TimeNs latency(std::uint32_t h) {
  // Datacenter-to-metro band (1..5 ms): short enough that chunk
  // serialization, not propagation, bounds the in-flight event population.
  return sim::from_millis(1.0 + static_cast<double>(mix(h * 2 + 2) % 5));
}
TimeNs serialize_ns(std::uint32_t h) {
  return static_cast<TimeNs>(kChunkBits * 1e9 / (up_mbps(h) * 1e6));
}

// One cache line of dense per-host state, touched on every event: acc[0]
// carries the order-independent hash fold, the rest stand in for the
// residual/partial-aggregate columns a merge would update.
struct alignas(64) HostLane {
  std::uint64_t acc[8] = {};
};
static_assert(sizeof(HostLane) == 64);

struct World {
  sim::ShardedSimulator* engine = nullptr;
  const sim::ShardPlacement* place = nullptr;
  std::vector<HostLane> lanes;           // [hosts]
  std::vector<std::uint32_t> received;   // [hosts], aggregators only
  std::vector<TimeNs> agg_done;          // [hosts], aggregators only
  std::uint32_t expected_per_agg = 0;
  std::size_t groups = 0;
};

bool is_agg(std::uint32_t h) { return h % kGroup < kAggsPerGroup; }
std::uint32_t group_of(std::uint32_t h) { return h / kGroup; }

// Primary aggregator: the trainer's own group; replica: the group half the
// ring away — guaranteed cross-shard for K > 1 block placements.
std::uint32_t primary_agg(std::uint32_t t) {
  return group_of(t) * kGroup + t % kAggsPerGroup;
}
std::uint32_t replica_agg(const World& w, std::uint32_t t) {
  const std::uint32_t g = (group_of(t) + static_cast<std::uint32_t>(w.groups) / 2) %
                          static_cast<std::uint32_t>(w.groups);
  return g * kGroup + t % kAggsPerGroup;
}

void deliver(World& w, std::uint32_t agg, std::uint32_t t, std::uint32_t chunk, TimeNs at);

// Trainer t finishes serializing chunk `chunk` at the current time: fold
// the local residual, ship the chunk to both aggregators, start the next.
void upload(World& w, std::uint32_t t, std::uint32_t chunk) {
  const std::uint32_t src_shard = w.place->shard(t);
  const TimeNs now = w.engine->shard(src_shard).now();
  HostLane& lane = w.lanes[t];
  const std::uint64_t token = mix(static_cast<std::uint64_t>(t) << 32 | chunk) ^
                              static_cast<std::uint64_t>(now);
  for (int j = 0; j < 8; ++j) lane.acc[j] += mix(token + static_cast<std::uint64_t>(j));
  const std::uint32_t dsts[2] = {primary_agg(t), replica_agg(w, t)};
  for (const std::uint32_t a : dsts) {
    const TimeNs arrival = now + latency(t) + latency(a);
    const std::uint32_t dst_shard = w.place->shard(a);
    auto fn = [pw = &w, a, t, chunk, arrival] { deliver(*pw, a, t, chunk, arrival); };
    if (dst_shard == src_shard) {
      w.engine->schedule_on(dst_shard, arrival, std::move(fn));
    } else {
      w.engine->send(src_shard, dst_shard, arrival, std::move(fn));
    }
  }
  if (chunk + 1 < kChunks) {
    const TimeNs next = now + serialize_ns(t);
    w.engine->schedule_on(src_shard, next,
                          [pw = &w, t, chunk] { upload(*pw, t, chunk + 1); });
  }
}

void deliver(World& w, std::uint32_t agg, std::uint32_t t, std::uint32_t chunk, TimeNs at) {
  // Commutative fold: additive per column, so the equal-timestamp tie
  // order (the one thing serial vs sharded may legally disagree on) cannot
  // change the result.
  HostLane& lane = w.lanes[agg];
  const std::uint64_t token = mix(static_cast<std::uint64_t>(t) << 32 | chunk) ^
                              static_cast<std::uint64_t>(at);
  for (std::uint64_t j = 0; j < 8; ++j) lane.acc[j] += mix(token ^ (j * 1315423911ULL));
  if (++w.received[agg] == w.expected_per_agg) {
    // Deliveries execute in timestamp order, so "now" is the last arrival.
    w.agg_done[agg] = at + kMergeNs;
  }
}

struct Cell {
  std::size_t hosts = 0;
  std::uint32_t shards = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  std::uint64_t agg_hash = 0;
  TimeNs round_done = 0;
  sim::ShardedStats stats;
  double speedup = 1.0;
};

Cell run_cell(std::size_t hosts, std::uint32_t k, ThreadPool* pool) {
  const sim::ShardPlacement place = sim::ShardPlacement::blocks(hosts, k);
  // Lookahead: every path is >= two 1 ms endpoint latencies; the network
  // layer derives the same bound with Network::min_cross_shard_latency.
  sim::ShardedSimulator engine(k, 2 * sim::from_millis(1), pool);

  World w;
  w.engine = &engine;
  w.place = &place;
  w.groups = hosts / kGroup;
  w.lanes.assign(hosts, HostLane{});
  w.received.assign(hosts, 0);
  w.agg_done.assign(hosts, 0);
  // Each group's trainers target their 2 aggs + 2 replica aggs; with the
  // half-ring shift every agg serves its own group plus one replica group.
  w.expected_per_agg =
      static_cast<std::uint32_t>((kGroup - kAggsPerGroup) / kAggsPerGroup * kChunks * 2);

  // Satellite: deployment-sized event-count hint. 1 upload + 2 deliveries
  // per (trainer, chunk).
  const std::size_t trainers = w.groups * (kGroup - kAggsPerGroup);
  engine.reserve_events(trainers * kChunks * 3 / k + 1);

  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (is_agg(h)) continue;
    // Stagger round starts the way train_time jitter does in A9.
    const TimeNs start = static_cast<TimeNs>(mix(h + 7) % sim::from_millis(500));
    engine.schedule_on(place.shard(h), start + serialize_ns(h),
                       [pw = &w, h] { upload(*pw, h, 0); });
  }

  bench::WallTimer timer;
  engine.run();
  Cell c;
  c.wall_s = timer.seconds();
  c.hosts = hosts;
  c.shards = k;
  c.events = engine.events_processed();
  c.events_per_sec = c.wall_s > 0 ? static_cast<double>(c.events) / c.wall_s : 0;
  for (const HostLane& lane : w.lanes) {
    for (int j = 0; j < 8; ++j) c.agg_hash += mix(lane.acc[j]);  // order-free sum
  }
  for (std::uint32_t h = 0; h < hosts; ++h) {
    if (is_agg(h)) c.round_done = std::max(c.round_done, w.agg_done[h]);
  }
  c.stats = engine.stats();
  return c;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("DFL_SCALE_SMOKE") != nullptr;
  std::vector<std::size_t> sizes;
  std::vector<std::uint32_t> ks;
  if (smoke) {
    sizes = {2 * kGroup, 20 * kGroup};
    ks = {1, 2, 8};
  } else {
    sizes = {2 * kGroup, 20 * kGroup, 200 * kGroup, 2000 * kGroup};
    ks = {1, 2, 4, 8};
  }
  ThreadPool& pool = ThreadPool::shared();

  std::vector<Cell> cells;
  bool identical = true;
  for (const std::size_t n : sizes) {
    Cell serial;
    for (const std::uint32_t k : ks) {
      Cell c = run_cell(n, k, k > 1 ? &pool : nullptr);
      if (k == 1) {
        serial = c;
      } else {
        c.speedup = serial.events_per_sec > 0 ? c.events_per_sec / serial.events_per_sec : 0;
        if (c.agg_hash != serial.agg_hash || c.round_done != serial.round_done ||
            c.events != serial.events) {
          identical = false;
          std::fprintf(stderr,
                       "abl_scale: N=%zu K=%u diverged from serial "
                       "(hash %016" PRIx64 " vs %016" PRIx64 ", round_done %lld vs %lld)\n",
                       n, k, c.agg_hash, serial.agg_hash,
                       static_cast<long long>(c.round_done),
                       static_cast<long long>(serial.round_done));
        }
      }
      std::printf("N=%6zu K=%u  %9" PRIu64 " events  %8.3f s  %10.0f ev/s  x%.2f  hash %016" PRIx64
                  "  round_done %.3f s\n",
                  n, k, c.events, c.wall_s, c.events_per_sec, c.speedup, c.agg_hash,
                  sim::to_seconds(c.round_done));
      cells.push_back(std::move(c));
    }
  }

  const char* env_path = std::getenv("DFL_BENCH_SCALE_JSON");
  const std::string path =
      env_path != nullptr && *env_path != '\0' ? env_path : "BENCH_scale.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "abl_scale: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"abl_scale\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"threads\": %zu,\n", pool.concurrency());
  std::fprintf(f, "  \"hash_identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"hosts\": %zu, \"shards\": %u, \"events\": %" PRIu64
                 ", \"wall_seconds\": %.6f, \"events_per_sec\": %.1f, "
                 "\"speedup_vs_serial\": %.3f, \"agg_hash\": \"%016" PRIx64
                 "\", \"sim_round_done_ns\": %lld, \"windows\": %" PRIu64
                 ", \"cross_shard_events\": %" PRIu64 ", \"max_window_events\": %" PRIu64
                 ", \"stalled_shard_windows\": %" PRIu64 "}%s\n",
                 c.hosts, c.shards, c.events, c.wall_s, c.events_per_sec, c.speedup,
                 c.agg_hash, static_cast<long long>(c.round_done), c.stats.windows,
                 c.stats.cross_shard_events, c.stats.max_window_events,
                 c.stats.stalled_shard_windows, i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  if (!identical) {
    std::fprintf(stderr, "abl_scale: sharded results diverged from serial\n");
    return 1;
  }
  return 0;
}
