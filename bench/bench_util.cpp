#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dfl::bench {

bool full_sweep_requested() {
  const char* v = std::getenv("DFL_BENCH_FULL");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

bool smoke_requested() {
  const char* v = std::getenv("DFL_BENCH_SMOKE");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

std::string bench_json_path() {
  const char* v = std::getenv("DFL_BENCH_JSON");
  return v != nullptr && *v != '\0' ? std::string(v) : std::string("BENCH_crypto.json");
}

namespace {

/// Extracts the value of `"key": ...` from one record line. Only parses the
/// line-oriented format emitted below — not a general JSON parser.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return {};
  std::size_t start = pos + needle.size();
  std::size_t end = start;
  if (line[start] == '"') {
    ++start;
    end = line.find('"', start);
  } else {
    end = line.find_first_of(",}", start);
  }
  return end == std::string::npos ? std::string{} : line.substr(start, end - start);
}

std::string record_key(const BenchRecord& r) {
  return r.op + "|" + std::to_string(r.size) + "|" + r.backend + "|" +
         std::to_string(r.threads);
}

std::string render(const BenchRecord& r) {
  std::ostringstream os;
  os << "  {\"op\": \"" << r.op << "\", \"size\": " << r.size << ", \"backend\": \""
     << r.backend << "\", \"threads\": " << r.threads << ", \"ns_per_op\": " << r.ns_per_op;
  if (!r.isa.empty()) os << ", \"isa\": \"" << r.isa << "\"";
  if (!r.cpu.empty()) os << ", \"cpu\": \"" << r.cpu << "\"";
  if (!r.digest.empty()) os << ", \"digest\": \"" << r.digest << "\"";
  os << "}";
  return os.str();
}

}  // namespace

void write_bench_json(const std::vector<BenchRecord>& records) {
  const std::string path = bench_json_path();

  // Load what previous bench binaries wrote, keyed for replacement.
  std::vector<std::pair<std::string, std::string>> rows;  // key -> rendered line
  if (std::ifstream in(path); in) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"op\"") == std::string::npos) continue;
      BenchRecord r;
      r.op = field(line, "op");
      r.size = static_cast<std::size_t>(std::strtoull(field(line, "size").c_str(), nullptr, 10));
      r.backend = field(line, "backend");
      r.threads =
          static_cast<std::size_t>(std::strtoull(field(line, "threads").c_str(), nullptr, 10));
      r.ns_per_op = std::strtod(field(line, "ns_per_op").c_str(), nullptr);
      r.isa = field(line, "isa");
      r.cpu = field(line, "cpu");
      r.digest = field(line, "digest");
      if (!r.op.empty()) rows.emplace_back(record_key(r), render(r));
    }
  }

  for (const BenchRecord& r : records) {
    const std::string key = record_key(r);
    bool replaced = false;
    for (auto& [k, line] : rows) {
      if (k == key) {
        line = render(r);
        replaced = true;
        break;
      }
    }
    if (!replaced) rows.emplace_back(key, render(r));
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << rows[i].second << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::printf("  # wrote %zu records to %s\n", records.size(), path.c_str());
}

}  // namespace dfl::bench
