#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>

namespace dfl::bench {

bool full_sweep_requested() {
  const char* v = std::getenv("DFL_BENCH_FULL");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

}  // namespace dfl::bench
