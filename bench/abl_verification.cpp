// Ablation A2: cost of the Section IV verifiability machinery.
// (a) Real wall-clock cost of committing and of verifying an opening, vs
//     partition size — the work a trainer does per round, and the work the
//     directory (or a peer aggregator) does per registered update.
// (b) End-to-end simulated round: verifiable on vs off (same deployment),
//     with the commitment compute charged to the simulated clock at the
//     measured per-element rate.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "crypto/encoding.hpp"
#include "crypto/pedersen.hpp"

namespace {

using namespace dfl;

std::vector<std::int64_t> values_of(std::size_t n) {
  Rng rng(3);
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(crypto::encode_fixed(rng.uniform_real(-1.0, 1.0)));
  }
  return v;
}

}  // namespace

int main() {
  bench::print_header("Ablation A2a: commit/verify wall-clock vs partition size (secp256k1)");
  const std::size_t max_n = 65'536;
  const crypto::PedersenKey key(crypto::Curve::secp256k1(), "abl-verify", max_n + 1,
                                crypto::MsmMode::kAuto);
  double commit_ns_per_elem = 0;
  std::printf("%-12s %14s %14s\n", "elements", "commit_s", "verify_s");
  for (std::size_t n = 1024; n <= max_n; n *= 4) {
    auto v = values_of(n);
    v.push_back(1);
    bench::WallTimer tc;
    const auto c = key.commit(v);
    const double commit_s = tc.seconds();
    bench::WallTimer tv;
    const bool ok = key.verify(c, v);
    const double verify_s = tv.seconds();
    std::printf("%-12zu %14.4f %14.4f%s\n", n, commit_s, verify_s, ok ? "" : "  (!!)");
    commit_ns_per_elem = commit_s / static_cast<double>(n) * 1e9;
  }
  std::printf("  measured commit cost: %.0f ns/element (Pippenger path)\n", commit_ns_per_elem);

  bench::print_header("Ablation A2b: end-to-end round, verifiability on vs off");
  bench::print_note("8 trainers, 2 partitions x 16k elements, commitment compute charged to");
  bench::print_note("the simulated clock at the measured rate");
  for (const bool verifiable : {false, true}) {
    core::DeploymentConfig cfg;
    cfg.num_trainers = 8;
    cfg.num_partitions = 2;
    cfg.partition_elements = 16'384;
    cfg.num_ipfs_nodes = 4;
    cfg.options.verifiable = verifiable;
    cfg.options.commit_ns_per_element = verifiable ? commit_ns_per_elem : 0.0;
    cfg.train_time = sim::from_seconds(1);
    core::Deployment d(cfg);
    const core::RoundMetrics m = d.run_round(0);
    std::printf("  verifiable=%-5s total_agg_delay=%8.2f s  round_done=%8.2f s\n",
                verifiable ? "on" : "off", m.total_aggregation_delay_s(),
                sim::to_seconds(m.round_done - m.round_start));
  }

  bench::print_header("Ablation A2d: individual vs batched verification of k partial updates");
  bench::print_note("random-linear-combination batching: one large MSM instead of k");
  {
    Rng rng(5);
    const std::size_t n = 4096;
    std::printf("%-6s %18s %16s %10s\n", "k", "individual_s", "batched_s", "speedup");
    for (const std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
      std::vector<std::vector<std::int64_t>> vecs;
      std::vector<crypto::Commitment> cs;
      for (std::size_t i = 0; i < k; ++i) {
        auto v = values_of(n);
        v.push_back(1);
        cs.push_back(key.commit(v));
        vecs.push_back(std::move(v));
      }
      bench::WallTimer ti;
      bool ok = true;
      for (std::size_t i = 0; i < k; ++i) ok = ok && key.verify(cs[i], vecs[i]);
      const double individual_s = ti.seconds();
      bench::WallTimer tb;
      ok = ok && key.verify_batch(cs, vecs, rng);
      const double batched_s = tb.seconds();
      std::printf("%-6zu %18.4f %16.4f %9.1fx%s\n", k, individual_s, batched_s,
                  individual_s / batched_s, ok ? "" : "  (!!)");
    }
    bench::print_note("crossover ~k=16: individual checks exploit 17-bit gradient scalars,");
    bench::print_note("the batch folds them with 128-bit coefficients into ~150-bit scalars");
  }

  bench::print_header("Ablation A2c: per-round verification load at the directory");
  bench::print_note("one partition-commitment check per (partition, round); cost scales with");
  bench::print_note("partition size, NOT with the number of trainers (Section IV-B)");
  for (const std::size_t partitions : {1u, 2u, 4u, 8u}) {
    const std::size_t elems = 65'536 / partitions;
    const double per_check_s =
        commit_ns_per_elem * static_cast<double>(elems) / 1e9;
    std::printf("  partitions=%zu  elems/partition=%-7zu directory work/round ~ %.3f s\n",
                static_cast<std::size_t>(partitions), elems,
                per_check_s * static_cast<double>(partitions));
  }
  return 0;
}
