// Figure 2: total aggregation delay (top) and total data received per
// aggregator per iteration (bottom), vs the number of aggregators |A_i|
// assigned to each partition.
//
// Paper setup (Section V, "Performance vs. variable |A_i|"): 16 trainers,
// 8 IPFS nodes, 4 partitions of 1.1 MB, 20 Mbps links, one partition per
// aggregator, NO merge-and-download (to isolate the |A_i| effect).
#include <cstdio>

#include "bench_util.hpp"
#include "core/runner.hpp"

namespace {

using namespace dfl;

// 1.1 MB / 8 bytes per element.
constexpr std::size_t kPartitionElements = 137'500;

core::DeploymentConfig config(std::size_t aggs_per_partition) {
  core::DeploymentConfig cfg;
  cfg.num_trainers = 16;
  cfg.num_partitions = 4;
  cfg.partition_elements = kPartitionElements;
  cfg.aggs_per_partition = aggs_per_partition;
  cfg.num_ipfs_nodes = 8;
  cfg.providers_per_agg = 8;  // gradients spread over all 8 storage nodes
  cfg.participant_mbps = 20.0;
  cfg.node_mbps = 20.0;
  cfg.options.merge_and_download = false;
  cfg.options.update_replicas = 4;  // hot global updates spread over 4 nodes  // hot global updates spread over 4 nodes
  cfg.train_time = sim::from_seconds(1);
  cfg.schedule =
      core::Schedule{sim::from_seconds(600), sim::from_seconds(1200), sim::from_millis(100)};
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Figure 2: delays and traffic vs aggregators per partition");
  bench::print_note("16 trainers, 8 IPFS nodes, 4 partitions x 1.1 MB, 20 Mbps, no merging");
  std::printf("%-8s %20s %18s %16s %18s %24s\n", "|A_i|", "total_agg_delay_s",
              "mean_agg_delay_s", "gather_delay_s", "sync_overhead_s",
              "bytes_per_aggregator_MB");

  for (const std::size_t a : {1u, 2u, 4u}) {
    core::Deployment d(config(a));
    const core::RoundMetrics m = d.run_round(0);
    std::printf("%-8zu %20.2f %18.2f %16.2f %18.2f %24.2f\n", static_cast<std::size_t>(a),
                m.total_aggregation_delay_s(),
                m.mean_aggregation_delay_s() + m.mean_sync_delay_s(),
                m.mean_aggregation_delay_s(), m.mean_sync_delay_s(),
                m.mean_aggregator_bytes() / 1e6);
  }

  bench::print_note("expected shape: gather delay ~halves per doubling of |A_i|; sync overhead");
  bench::print_note("grows; total delay decreases at a diminishing rate; bytes per aggregator");
  bench::print_note("follow (16/|A_i| + |A_i| - 1) x 1.1 MB");
  bench::print_note("note: the max-over-aggregators (total) series at |A_i|=4 is inflated by");
  bench::print_note("partial exchanges contending with trainers already fetching finished");
  bench::print_note("partitions; the mean series shows the diminishing-returns shape");
  return 0;
}
